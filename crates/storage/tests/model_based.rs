//! Model-based property tests: the record store against a plain
//! `BTreeSet` reference model, including transaction rollback, vacuum,
//! and codec round trips over arbitrary tuples.

use std::collections::BTreeSet;

use dme_storage::{decode_tuple, encode_tuple, RecordStore};
use dme_value::{Tuple, Value};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        1 => Just(Value::Null),
        2 => any::<bool>().prop_map(Value::bool),
        3 => any::<i64>().prop_map(Value::int),
        3 => ".{0,12}".prop_map(Value::str),
    ]
}

fn arb_tuple() -> impl Strategy<Value = Tuple> {
    prop::collection::vec(arb_value(), 0..5).prop_map(Tuple::new)
}

/// One step of the storage workload.
#[derive(Clone, Debug)]
enum Step {
    Insert(Tuple),
    Delete(Tuple),
    CommitTxn(Vec<(bool, Tuple)>),
    RollbackTxn(Vec<(bool, Tuple)>),
    Vacuum,
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        4 => arb_tuple().prop_map(Step::Insert),
        2 => arb_tuple().prop_map(Step::Delete),
        2 => prop::collection::vec((any::<bool>(), arb_tuple()), 1..4)
            .prop_map(Step::CommitTxn),
        2 => prop::collection::vec((any::<bool>(), arb_tuple()), 1..4)
            .prop_map(Step::RollbackTxn),
        1 => Just(Step::Vacuum),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn codec_round_trips(t in arb_tuple()) {
        let bytes = encode_tuple(&t);
        prop_assert_eq!(decode_tuple(&bytes), Ok(t));
    }

    #[test]
    fn codec_is_injective(a in arb_tuple(), b in arb_tuple()) {
        if a != b {
            prop_assert_ne!(encode_tuple(&a), encode_tuple(&b));
        }
    }

    #[test]
    fn store_matches_reference_model(steps in prop::collection::vec(arb_step(), 0..40)) {
        let mut store = RecordStore::new();
        store.create_table("T").expect("fresh table");
        let mut model: BTreeSet<Tuple> = BTreeSet::new();

        for step in steps {
            match step {
                Step::Insert(t) => {
                    let mut txn = store.begin();
                    let inserted = txn.insert("T", t.clone()).expect("insert works");
                    txn.commit();
                    prop_assert_eq!(inserted, model.insert(t));
                }
                Step::Delete(t) => {
                    let mut txn = store.begin();
                    let deleted = txn.delete("T", &t).expect("delete works");
                    txn.commit();
                    prop_assert_eq!(deleted, model.remove(&t));
                }
                Step::CommitTxn(ops) => {
                    let mut txn = store.begin();
                    for (is_insert, t) in &ops {
                        if *is_insert {
                            txn.insert("T", t.clone()).expect("insert works");
                        } else {
                            txn.delete("T", t).expect("delete works");
                        }
                    }
                    txn.commit();
                    for (is_insert, t) in ops {
                        if is_insert {
                            model.insert(t);
                        } else {
                            model.remove(&t);
                        }
                    }
                }
                Step::RollbackTxn(ops) => {
                    {
                        let mut txn = store.begin();
                        for (is_insert, t) in &ops {
                            if *is_insert {
                                txn.insert("T", t.clone()).expect("insert works");
                            } else {
                                txn.delete("T", t).expect("delete works");
                            }
                        }
                        // dropped without commit: rolls back
                    }
                    // model unchanged
                }
                Step::Vacuum => store.vacuum(),
            }
            // Full-state agreement after every step.
            let scanned: BTreeSet<Tuple> = store.scan("T").expect("scan works").into_iter().collect();
            prop_assert_eq!(&scanned, &model);
            prop_assert_eq!(store.len("T").expect("len works"), model.len());
        }
    }
}
