//! The transactional record store: heaps + indexes + journal.
//!
//! A [`RecordStore`] holds one heap file and one ordered index per table.
//! All mutation goes through a [`Transaction`], which journals inverses
//! and rolls back automatically when dropped without
//! [`Transaction::commit`] — giving the internal level the atomic
//! multi-table writes the conceptual level's operations require.

use std::collections::BTreeMap;
use std::fmt;

use dme_value::{Symbol, Tuple};

use crate::codec::{decode_tuple, encode_tuple};
use crate::heap::HeapFile;
use crate::index::OrderedIndex;
use crate::journal::{Journal, UndoOp};

/// Errors raised by the store.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// The table does not exist.
    NoSuchTable(Symbol),
    /// The table already exists.
    TableExists(Symbol),
    /// A page-level failure (record too large etc.).
    Page(String),
    /// A decode failure (corruption).
    Corrupt(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NoSuchTable(t) => write!(f, "no such table `{t}`"),
            StoreError::TableExists(t) => write!(f, "table `{t}` already exists"),
            StoreError::Page(s) => write!(f, "page error: {s}"),
            StoreError::Corrupt(s) => write!(f, "corrupt record: {s}"),
        }
    }
}

impl std::error::Error for StoreError {}

#[derive(Clone, Default, Debug)]
struct Table {
    heap: HeapFile,
    index: OrderedIndex,
}

/// A multi-table record store.
#[derive(Clone, Default)]
pub struct RecordStore {
    tables: BTreeMap<Symbol, Table>,
}

impl fmt::Debug for RecordStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RecordStore({} tables)", self.tables.len())
    }
}

impl RecordStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a table.
    pub fn create_table(&mut self, name: impl Into<Symbol>) -> Result<(), StoreError> {
        let name = name.into();
        if self.tables.contains_key(&name) {
            return Err(StoreError::TableExists(name));
        }
        self.tables.insert(name, Table::default());
        Ok(())
    }

    /// Table names in order.
    pub fn tables(&self) -> impl Iterator<Item = &Symbol> {
        self.tables.keys()
    }

    fn table(&self, name: &str) -> Result<&Table, StoreError> {
        self.tables
            .get(name)
            .ok_or_else(|| StoreError::NoSuchTable(Symbol::new(name)))
    }

    fn table_mut(&mut self, name: &str) -> Result<&mut Table, StoreError> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| StoreError::NoSuchTable(Symbol::new(name)))
    }

    /// Whether the tuple is stored.
    pub fn contains(&self, table: &str, tuple: &Tuple) -> Result<bool, StoreError> {
        Ok(self.table(table)?.index.get(&encode_tuple(tuple)).is_some())
    }

    /// Number of tuples in a table.
    pub fn len(&self, table: &str) -> Result<usize, StoreError> {
        Ok(self.table(table)?.index.len())
    }

    /// Whether a table is empty.
    pub fn is_empty(&self, table: &str) -> Result<bool, StoreError> {
        Ok(self.table(table)?.index.is_empty())
    }

    /// All tuples of a table in key order.
    pub fn scan(&self, table: &str) -> Result<Vec<Tuple>, StoreError> {
        let t = self.table(table)?;
        t.heap
            .scan()
            .map(|(_, bytes)| decode_tuple(bytes).map_err(|e| StoreError::Corrupt(e.to_string())))
            .collect::<Result<Vec<_>, _>>()
            .map(|mut v| {
                v.sort();
                v
            })
    }

    fn insert_inner(&mut self, table: &str, tuple: &Tuple) -> Result<bool, StoreError> {
        let encoded = encode_tuple(tuple);
        let t = self.table_mut(table)?;
        if t.index.get(&encoded).is_some() {
            return Ok(false);
        }
        let ptr = t
            .heap
            .insert(&encoded)
            .map_err(|e| StoreError::Page(e.to_string()))?;
        t.index.insert(encoded, ptr);
        Ok(true)
    }

    fn delete_inner(&mut self, table: &str, tuple: &Tuple) -> Result<bool, StoreError> {
        let encoded = encode_tuple(tuple);
        let t = self.table_mut(table)?;
        match t.index.remove(&encoded) {
            Some(ptr) => {
                t.heap
                    .delete(ptr)
                    .map_err(|e| StoreError::Page(e.to_string()))?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Begins a transaction. Dropping it without commit rolls back.
    pub fn begin(&mut self) -> Transaction<'_> {
        Transaction {
            store: self,
            journal: Journal::new(),
            committed: false,
        }
    }

    /// [`RecordStore::begin`], with the transaction's journal writes and
    /// rollback replays charged to `obs` (one
    /// [`JournalEntries`](dme_obs::Counter::JournalEntries) per recorded
    /// inverse, one [`UndoReplays`](dme_obs::Counter::UndoReplays) per
    /// replayed undo).
    pub fn begin_observed(&mut self, obs: dme_obs::Observer) -> Transaction<'_> {
        Transaction {
            store: self,
            journal: Journal::with_observer(obs),
            committed: false,
        }
    }

    /// Reclaims dead heap space across all tables, rebuilding indexes.
    pub fn vacuum(&mut self) {
        for t in self.tables.values_mut() {
            t.heap.vacuum();
            let mut index = OrderedIndex::new();
            for (ptr, bytes) in t.heap.scan() {
                index.insert(bytes.to_vec(), ptr);
            }
            t.index = index;
        }
    }
}

/// An open transaction: journaling writes with rollback-on-drop.
pub struct Transaction<'a> {
    store: &'a mut RecordStore,
    journal: Journal,
    committed: bool,
}

impl Transaction<'_> {
    /// Inserts a tuple; `false` means it was already present.
    pub fn insert(&mut self, table: &str, tuple: Tuple) -> Result<bool, StoreError> {
        let inserted = self.store.insert_inner(table, &tuple)?;
        if inserted {
            self.journal.push(UndoOp::Remove {
                table: Symbol::new(table),
                tuple,
            });
        }
        Ok(inserted)
    }

    /// Deletes a tuple; `false` means it was not present.
    pub fn delete(&mut self, table: &str, tuple: &Tuple) -> Result<bool, StoreError> {
        let deleted = self.store.delete_inner(table, tuple)?;
        if deleted {
            self.journal.push(UndoOp::Reinsert {
                table: Symbol::new(table),
                tuple: tuple.clone(),
            });
        }
        Ok(deleted)
    }

    /// Reads through to the store.
    pub fn contains(&self, table: &str, tuple: &Tuple) -> Result<bool, StoreError> {
        self.store.contains(table, tuple)
    }

    /// Commits: the journal is discarded and changes stay.
    pub fn commit(mut self) {
        self.journal.clear();
        self.committed = true;
    }
}

impl Drop for Transaction<'_> {
    fn drop(&mut self) {
        if self.committed {
            return;
        }
        let undos: Vec<UndoOp> = self.journal.drain_reverse().collect();
        for undo in undos {
            // Undo application cannot fail: tables exist and the tuples
            // were just present/absent.
            match undo {
                UndoOp::Remove { table, tuple } => {
                    let _ = self.store.delete_inner(table.as_str(), &tuple);
                }
                UndoOp::Reinsert { table, tuple } => {
                    let _ = self.store.insert_inner(table.as_str(), &tuple);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dme_value::tuple;

    fn store() -> RecordStore {
        let mut s = RecordStore::new();
        s.create_table("Jobs").unwrap();
        s.create_table("Operate").unwrap();
        s
    }

    #[test]
    fn create_and_duplicate_table() {
        let mut s = store();
        assert_eq!(
            s.create_table("Jobs"),
            Err(StoreError::TableExists("Jobs".into()))
        );
        assert_eq!(s.tables().count(), 2);
    }

    #[test]
    fn committed_writes_persist() {
        let mut s = store();
        let mut txn = s.begin();
        assert!(txn.insert("Jobs", tuple!["a", "b"]).unwrap());
        assert!(!txn.insert("Jobs", tuple!["a", "b"]).unwrap(), "duplicate");
        assert!(txn.contains("Jobs", &tuple!["a", "b"]).unwrap());
        txn.commit();
        assert!(s.contains("Jobs", &tuple!["a", "b"]).unwrap());
        assert_eq!(s.len("Jobs").unwrap(), 1);
        assert_eq!(s.scan("Jobs").unwrap(), vec![tuple!["a", "b"]]);
    }

    #[test]
    fn dropped_transaction_rolls_back() {
        let mut s = store();
        {
            let mut txn = s.begin();
            txn.insert("Jobs", tuple!["a"]).unwrap();
            txn.insert("Operate", tuple!["b"]).unwrap();
            // no commit
        }
        assert!(s.is_empty("Jobs").unwrap());
        assert!(s.is_empty("Operate").unwrap());
    }

    #[test]
    fn rollback_restores_deletes() {
        let mut s = store();
        let mut txn = s.begin();
        txn.insert("Jobs", tuple!["keep"]).unwrap();
        txn.commit();
        {
            let mut txn = s.begin();
            assert!(txn.delete("Jobs", &tuple!["keep"]).unwrap());
            assert!(!txn.delete("Jobs", &tuple!["keep"]).unwrap());
            txn.insert("Jobs", tuple!["new"]).unwrap();
        }
        assert_eq!(s.scan("Jobs").unwrap(), vec![tuple!["keep"]]);
    }

    #[test]
    fn observed_transaction_charges_journal_counters() {
        use dme_obs::{Counter, Observer, RingSink};
        let obs = Observer::new(RingSink::with_capacity(8));
        let mut s = store();
        {
            let mut txn = s.begin_observed(obs.clone());
            txn.insert("Jobs", tuple!["a"]).unwrap();
            txn.insert("Operate", tuple!["b"]).unwrap();
            // no commit: rollback replays both undos
        }
        assert_eq!(obs.counter(Counter::JournalEntries), 2);
        assert_eq!(obs.counter(Counter::UndoReplays), 2);
        // A committed transaction replays nothing.
        let mut txn = s.begin_observed(obs.clone());
        txn.insert("Jobs", tuple!["c"]).unwrap();
        txn.commit();
        assert_eq!(obs.counter(Counter::JournalEntries), 3);
        assert_eq!(obs.counter(Counter::UndoReplays), 2);
    }

    #[test]
    fn unknown_table_errors() {
        let mut s = store();
        let mut txn = s.begin();
        assert!(matches!(
            txn.insert("Ghost", tuple!["x"]),
            Err(StoreError::NoSuchTable(_))
        ));
        drop(txn);
        assert!(matches!(s.scan("Ghost"), Err(StoreError::NoSuchTable(_))));
        assert!(matches!(s.len("Ghost"), Err(StoreError::NoSuchTable(_))));
    }

    #[test]
    fn vacuum_preserves_contents() {
        let mut s = store();
        let mut txn = s.begin();
        for i in 0..100 {
            txn.insert("Jobs", tuple![i]).unwrap();
        }
        txn.commit();
        let mut txn = s.begin();
        for i in 0..50 {
            txn.delete("Jobs", &tuple![i]).unwrap();
        }
        txn.commit();
        s.vacuum();
        let remaining = s.scan("Jobs").unwrap();
        assert_eq!(remaining.len(), 50);
        for i in 50..100 {
            assert!(s.contains("Jobs", &tuple![i]).unwrap());
        }
    }

    #[test]
    fn scan_is_sorted() {
        let mut s = store();
        let mut txn = s.begin();
        txn.insert("Jobs", tuple![3]).unwrap();
        txn.insert("Jobs", tuple![1]).unwrap();
        txn.insert("Jobs", tuple![2]).unwrap();
        txn.commit();
        assert_eq!(
            s.scan("Jobs").unwrap(),
            vec![tuple![1], tuple![2], tuple![3]]
        );
    }
}
