//! Secondary indexes over encoded keys.
//!
//! Two access methods — an ordered index (range scans) and a hash index
//! (point lookups) — both mapping encoded key bytes to record pointers.
//! Which one the internal schema uses is invisible at the conceptual
//! level: the data-independence point of §1.2.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::ops::Bound;

use crate::heap::RecordPtr;

/// An ordered (range-capable) unique index.
#[derive(Clone, Default)]
pub struct OrderedIndex {
    map: BTreeMap<Vec<u8>, RecordPtr>,
}

impl fmt::Debug for OrderedIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "OrderedIndex({} keys)", self.map.len())
    }
}

impl OrderedIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a key; returns the previous pointer if the key existed.
    pub fn insert(&mut self, key: Vec<u8>, ptr: RecordPtr) -> Option<RecordPtr> {
        self.map.insert(key, ptr)
    }

    /// Removes a key.
    pub fn remove(&mut self, key: &[u8]) -> Option<RecordPtr> {
        self.map.remove(key)
    }

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> Option<RecordPtr> {
        self.map.get(key).copied()
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Range scan over `[lo, hi)` of encoded keys.
    pub fn range<'a>(
        &'a self,
        lo: Bound<&'a [u8]>,
        hi: Bound<&'a [u8]>,
    ) -> impl Iterator<Item = (&'a [u8], RecordPtr)> {
        self.map
            .range::<[u8], _>((lo, hi))
            .map(|(k, v)| (k.as_slice(), *v))
    }

    /// Keys with the given prefix.
    pub fn prefix<'a>(&'a self, prefix: &'a [u8]) -> impl Iterator<Item = (&'a [u8], RecordPtr)> {
        self.map
            .range::<[u8], _>((Bound::Included(prefix), Bound::Unbounded))
            .take_while(move |(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.as_slice(), *v))
    }
}

/// A hash (point-lookup) unique index.
#[derive(Clone, Default)]
pub struct HashIndex {
    map: HashMap<Vec<u8>, RecordPtr>,
}

impl fmt::Debug for HashIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "HashIndex({} keys)", self.map.len())
    }
}

impl HashIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a key; returns the previous pointer if the key existed.
    pub fn insert(&mut self, key: Vec<u8>, ptr: RecordPtr) -> Option<RecordPtr> {
        self.map.insert(key, ptr)
    }

    /// Removes a key.
    pub fn remove(&mut self, key: &[u8]) -> Option<RecordPtr> {
        self.map.remove(key)
    }

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> Option<RecordPtr> {
        self.map.get(key).copied()
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::encode_tuple;
    use dme_value::tuple;

    fn ptr(n: u32) -> RecordPtr {
        RecordPtr { page: n, slot: 0 }
    }

    #[test]
    fn ordered_basics() {
        let mut idx = OrderedIndex::new();
        assert!(idx.is_empty());
        assert_eq!(idx.insert(b"b".to_vec(), ptr(2)), None);
        assert_eq!(idx.insert(b"a".to_vec(), ptr(1)), None);
        assert_eq!(idx.insert(b"a".to_vec(), ptr(9)), Some(ptr(1)));
        assert_eq!(idx.get(b"a"), Some(ptr(9)));
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.remove(b"a"), Some(ptr(9)));
        assert_eq!(idx.get(b"a"), None);
    }

    #[test]
    fn ordered_range_scan() {
        let mut idx = OrderedIndex::new();
        for (i, n) in [10i64, 20, 30, 40].iter().enumerate() {
            idx.insert(encode_tuple(&tuple![*n]), ptr(i as u32));
        }
        let lo = encode_tuple(&tuple![15i64]);
        let hi = encode_tuple(&tuple![35i64]);
        let hits: Vec<_> = idx
            .range(
                Bound::Included(lo.as_slice()),
                Bound::Excluded(hi.as_slice()),
            )
            .map(|(_, p)| p)
            .collect();
        assert_eq!(hits, vec![ptr(1), ptr(2)]);
    }

    #[test]
    fn ordered_prefix_scan() {
        let mut idx = OrderedIndex::new();
        idx.insert(b"emp/alice".to_vec(), ptr(1));
        idx.insert(b"emp/bob".to_vec(), ptr(2));
        idx.insert(b"mach/nz".to_vec(), ptr(3));
        let hits: Vec<_> = idx.prefix(b"emp/").map(|(_, p)| p).collect();
        assert_eq!(hits, vec![ptr(1), ptr(2)]);
    }

    #[test]
    fn hash_basics() {
        let mut idx = HashIndex::new();
        assert!(idx.is_empty());
        assert_eq!(idx.insert(b"k".to_vec(), ptr(5)), None);
        assert_eq!(idx.get(b"k"), Some(ptr(5)));
        assert_eq!(idx.insert(b"k".to_vec(), ptr(6)), Some(ptr(5)));
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.remove(b"k"), Some(ptr(6)));
        assert!(idx.get(b"k").is_none());
    }
}
