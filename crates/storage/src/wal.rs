//! The write-ahead log: framed, checksummed, torn-write-tolerant.
//!
//! The session service's only durable state is a checkpoint plus a log
//! of committed transactions, so the WAL invariant is *log before
//! acknowledge*: a commit is reported to the client only after its
//! record is appended and synced. This module owns the byte format and
//! the replay logic; payloads are opaque to the storage level (the
//! server encodes conceptual deltas into them — "the internal schema
//! presumably contains much implementation information which has no
//! equivalent at the conceptual level", §3.2.3).
//!
//! ## Record framing
//!
//! ```text
//! [magic u16][flags u8][lsn u64][trace u64 ?][len u32][payload][checksum u64]
//! ```
//!
//! all big-endian; the checksum is FNV-1a over everything before it.
//! The flags byte gates optional fields: bit 0 ([`FLAG_TRACE`]) means an
//! 8-byte trace id follows the LSN, linking the record to one request's
//! observability trace (zero is reserved for "untraced" and never
//! framed); bit 1 ([`FLAG_SPAN`]) means two further 8-byte fields
//! follow — the appending step's span id and its parent span id within
//! the trace — so a cross-shard transaction's WAL frames carry enough
//! structure to be stitched back into one causal tree. Unknown flag
//! bits fail decoding with [`WalError::BadFlags`]
//! so a future format rev can't be silently misread. A crash can tear
//! the final record at any byte: [`replay_tolerant`] truncates the torn
//! tail and reports what it dropped, while [`replay`] returns a typed
//! [`WalError`] so callers who require a clean log (mid-log corruption
//! is *never* tolerated) can distinguish the shapes.

use std::fmt;

use bytes::{Buf, BufMut};

/// Magic leading every record, so a replay landing mid-garbage fails
/// fast instead of mis-framing.
pub const WAL_MAGIC: u16 = 0xDA7A;

/// Flags bit 0: the frame carries an 8-byte trace id after the LSN.
pub const FLAG_TRACE: u8 = 0x01;

/// Flags bit 1: the frame carries an 8-byte span id plus an 8-byte
/// parent span id after the trace field (causal-tree coordinates for
/// trace stitching).
pub const FLAG_SPAN: u8 = 0x02;

const KNOWN_FLAGS: u8 = FLAG_TRACE | FLAG_SPAN;

/// One replayed record: the log sequence number, the optional trace id
/// of the request that produced it, and the opaque payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalRecord {
    /// Monotonic log sequence number (assigned by the appender).
    pub lsn: u64,
    /// The producing request's trace id, when the appender recorded
    /// one. Opaque at this level (the observability layer renders it);
    /// zero is reserved and never stored.
    pub trace: Option<u64>,
    /// The appending step's `(span, parent)` causal-tree coordinates
    /// within the trace, when recorded. A span id of zero is reserved
    /// and never stored; a parent of zero marks a root step.
    pub span: Option<(u64, u64)>,
    /// Opaque payload bytes.
    pub payload: Vec<u8>,
}

impl WalRecord {
    /// The encoded size of this record's frame in bytes.
    pub fn frame_len(&self) -> usize {
        frame_len(self.payload.len())
            + if self.trace.is_some() { 8 } else { 0 }
            + if self.span.is_some() { 16 } else { 0 }
    }
}

/// Typed replay failures. `at` is always the byte offset of the record
/// that failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalError {
    /// The log ended mid-record (a torn write).
    Truncated {
        /// Byte offset of the torn record's frame.
        at: usize,
    },
    /// A record's checksum did not match its bytes.
    BadChecksum {
        /// Byte offset of the corrupt record's frame.
        at: usize,
        /// The LSN the frame claimed (pre-verification, best effort).
        lsn: u64,
    },
    /// A frame did not start with [`WAL_MAGIC`].
    BadMagic {
        /// Byte offset of the bad frame.
        at: usize,
    },
    /// A frame's flags byte set bits this decoder does not know.
    BadFlags {
        /// Byte offset of the bad frame.
        at: usize,
        /// The offending flags byte.
        flags: u8,
    },
    /// LSNs must be strictly increasing; the log violated that.
    NonMonotonicLsn {
        /// The previous record's LSN.
        prev: u64,
        /// The offending record's LSN.
        next: u64,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Truncated { at } => write!(f, "torn record at byte {at}"),
            WalError::BadChecksum { at, lsn } => {
                write!(f, "checksum mismatch at byte {at} (claimed lsn {lsn})")
            }
            WalError::BadMagic { at } => write!(f, "bad record magic at byte {at}"),
            WalError::BadFlags { at, flags } => {
                write!(f, "unknown record flags {flags:#04x} at byte {at}")
            }
            WalError::NonMonotonicLsn { prev, next } => {
                write!(f, "non-monotonic lsn {next} after {prev}")
            }
        }
    }
}

impl std::error::Error for WalError {}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Appends one untraced framed record to `buf` and returns the encoded
/// frame length in bytes.
pub fn append_record(buf: &mut Vec<u8>, lsn: u64, payload: &[u8]) -> usize {
    append_record_traced(buf, lsn, None, payload)
}

/// Appends one framed record carrying an optional trace id. A zero
/// trace is normalized to "untraced" (zero is the codec's reserved
/// sentinel). Returns the encoded frame length in bytes.
pub fn append_record_traced(
    buf: &mut Vec<u8>,
    lsn: u64,
    trace: Option<u64>,
    payload: &[u8],
) -> usize {
    append_record_spanned(buf, lsn, trace, None, payload)
}

/// Appends one framed record carrying an optional trace id and optional
/// `(span, parent)` causal-tree coordinates. Zero trace and zero span
/// ids are normalized to "absent" (both are reserved sentinels).
/// Returns the encoded frame length in bytes.
pub fn append_record_spanned(
    buf: &mut Vec<u8>,
    lsn: u64,
    trace: Option<u64>,
    span: Option<(u64, u64)>,
    payload: &[u8],
) -> usize {
    let trace = trace.filter(|t| *t != 0);
    let span = span.filter(|(s, _)| *s != 0);
    let start = buf.len();
    buf.put_u16(WAL_MAGIC);
    let mut flags = 0u8;
    if trace.is_some() {
        flags |= FLAG_TRACE;
    }
    if span.is_some() {
        flags |= FLAG_SPAN;
    }
    buf.put_u8(flags);
    buf.put_u64(lsn);
    if let Some(t) = trace {
        buf.put_u64(t);
    }
    if let Some((s, p)) = span {
        buf.put_u64(s);
        buf.put_u64(p);
    }
    buf.put_u32(payload.len() as u32);
    buf.put_slice(payload);
    let checksum = fnv1a(&buf[start..]);
    buf.put_u64(checksum);
    buf.len() - start
}

/// The encoded size of an *untraced* record carrying `payload_len`
/// payload bytes. Traced records add 8 (see [`WalRecord::frame_len`]).
pub fn frame_len(payload_len: usize) -> usize {
    2 + 1 + 8 + 4 + payload_len + 8
}

fn decode_record(buf: &[u8], at: usize) -> Result<(WalRecord, usize), WalError> {
    let mut rest = &buf[at..];
    if rest.len() < 2 {
        return Err(WalError::Truncated { at });
    }
    if rest.get_u16() != WAL_MAGIC {
        return Err(WalError::BadMagic { at });
    }
    if rest.is_empty() {
        return Err(WalError::Truncated { at });
    }
    let flags = rest.get_u8();
    if flags & !KNOWN_FLAGS != 0 {
        return Err(WalError::BadFlags { at, flags });
    }
    let trace_len = if flags & FLAG_TRACE != 0 { 8 } else { 0 };
    let span_len = if flags & FLAG_SPAN != 0 { 16 } else { 0 };
    if rest.len() < 8 + trace_len + span_len + 4 {
        return Err(WalError::Truncated { at });
    }
    let lsn = rest.get_u64();
    let trace = if trace_len > 0 {
        Some(rest.get_u64())
    } else {
        None
    };
    let span = if span_len > 0 {
        Some((rest.get_u64(), rest.get_u64()))
    } else {
        None
    };
    let len = rest.get_u32() as usize;
    if rest.len() < len + 8 {
        return Err(WalError::Truncated { at });
    }
    let payload = rest[..len].to_vec();
    rest.advance(len);
    let stored = rest.get_u64();
    let frame = frame_len(len) + trace_len + span_len;
    if fnv1a(&buf[at..at + frame - 8]) != stored {
        return Err(WalError::BadChecksum { at, lsn });
    }
    Ok((
        WalRecord {
            lsn,
            trace,
            span,
            payload,
        },
        frame,
    ))
}

/// Decodes the single frame starting at byte `at`, returning the record
/// and its encoded frame length. This is the streaming entry point the
/// network transport uses: a connection accumulates bytes and peels
/// complete frames off the front, treating [`WalError::Truncated`] as
/// "wait for more bytes" and every other error as a corrupt stream.
pub fn decode_frame(buf: &[u8], at: usize) -> Result<(WalRecord, usize), WalError> {
    decode_record(buf, at)
}

/// Strict replay: decodes every record or returns the typed error of
/// the first frame that fails. Use this when the log is expected to be
/// clean (e.g. after a graceful shutdown).
pub fn replay(buf: &[u8]) -> Result<Vec<WalRecord>, WalError> {
    let mut records = Vec::new();
    let mut at = 0;
    while at < buf.len() {
        let (record, frame) = decode_record(buf, at)?;
        if let Some(prev) = records.last().map(|r: &WalRecord| r.lsn) {
            if record.lsn <= prev {
                return Err(WalError::NonMonotonicLsn {
                    prev,
                    next: record.lsn,
                });
            }
        }
        records.push(record);
        at += frame;
    }
    Ok(records)
}

/// Crash-tolerant replay: decodes the longest clean prefix of records.
/// A torn or corrupt **final** frame is truncated (its error is
/// returned alongside the prefix so callers can log it); a bad frame
/// *followed by more decodable data* still truncates there — once the
/// tail is suspect nothing after it can be trusted, which is exactly
/// the prefix-consistency recovery needs.
pub fn replay_tolerant(buf: &[u8]) -> (Vec<WalRecord>, Option<WalError>) {
    let mut records = Vec::new();
    let mut at = 0;
    while at < buf.len() {
        match decode_record(buf, at) {
            Ok((record, frame)) => {
                if let Some(prev) = records.last().map(|r: &WalRecord| r.lsn) {
                    if record.lsn <= prev {
                        return (
                            records,
                            Some(WalError::NonMonotonicLsn {
                                prev,
                                next: record.lsn,
                            }),
                        );
                    }
                }
                records.push(record);
                at += frame;
            }
            Err(e) => return (records, Some(e)),
        }
    }
    (records, None)
}

/// The last record of a log whose frames each carry a full snapshot
/// (the checkpoint protocol: checkpoints are *appended*, so a torn
/// checkpoint write simply falls back to the previous one). Returns the
/// latest fully-written checkpoint, if any, plus the error describing a
/// dropped tail.
pub fn latest_checkpoint(buf: &[u8]) -> (Option<WalRecord>, Option<WalError>) {
    let (mut records, err) = replay_tolerant(buf);
    (records.pop(), err)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log3() -> Vec<u8> {
        let mut buf = Vec::new();
        append_record(&mut buf, 1, b"alpha");
        append_record(&mut buf, 2, b"");
        append_record(&mut buf, 3, b"gamma-gamma");
        buf
    }

    #[test]
    fn round_trips() {
        let records = replay(&log3()).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].payload, b"alpha");
        assert_eq!(records[0].trace, None);
        assert_eq!(records[1].payload, b"");
        assert_eq!(records[2].lsn, 3);
    }

    #[test]
    fn traced_records_round_trip_and_mix_with_untraced() {
        let mut buf = Vec::new();
        let n1 = append_record_traced(&mut buf, 1, Some(0xDEAD_BEEF), b"one");
        let n2 = append_record(&mut buf, 2, b"two");
        assert_eq!(n1, frame_len(3) + 8);
        assert_eq!(n2, frame_len(3));
        let records = replay(&buf).unwrap();
        assert_eq!(records[0].trace, Some(0xDEAD_BEEF));
        assert_eq!(records[0].frame_len(), n1);
        assert_eq!(records[1].trace, None);
        assert_eq!(records[1].frame_len(), n2);
    }

    #[test]
    fn spanned_records_round_trip_and_mix_with_plain() {
        let mut buf = Vec::new();
        let n1 = append_record_spanned(&mut buf, 1, Some(0xFEED), Some((4, 2)), b"one");
        let n2 = append_record_spanned(&mut buf, 2, None, Some((9, 0)), b"two");
        let n3 = append_record(&mut buf, 3, b"three");
        assert_eq!(n1, frame_len(3) + 8 + 16);
        assert_eq!(n2, frame_len(3) + 16);
        let records = replay(&buf).unwrap();
        assert_eq!(records[0].trace, Some(0xFEED));
        assert_eq!(records[0].span, Some((4, 2)));
        assert_eq!(records[0].frame_len(), n1);
        assert_eq!(records[1].trace, None);
        assert_eq!(records[1].span, Some((9, 0)), "parent 0 = root step");
        assert_eq!(records[2].span, None);
        assert_eq!(records[2].frame_len(), n3);
        // Zero span ids are normalized away like zero traces.
        let mut buf = Vec::new();
        let n = append_record_spanned(&mut buf, 1, Some(7), Some((0, 5)), b"x");
        assert_eq!(n, frame_len(1) + 8);
        assert_eq!(replay(&buf).unwrap()[0].span, None);
    }

    #[test]
    fn torn_spanned_tail_is_detected() {
        let mut buf = Vec::new();
        append_record(&mut buf, 1, b"ok");
        let clean = buf.len();
        append_record_spanned(&mut buf, 2, Some(7), Some((3, 1)), b"torn");
        for cut in clean + 1..buf.len() {
            let (records, err) = replay_tolerant(&buf[..cut]);
            assert_eq!(records.len(), 1, "cut at {cut}");
            assert!(matches!(err, Some(WalError::Truncated { .. })));
        }
    }

    #[test]
    fn zero_trace_is_normalized_to_untraced() {
        let mut buf = Vec::new();
        let n = append_record_traced(&mut buf, 1, Some(0), b"x");
        assert_eq!(n, frame_len(1));
        assert_eq!(replay(&buf).unwrap()[0].trace, None);
    }

    #[test]
    fn every_torn_tail_is_detected_and_truncated() {
        let buf = log3();
        let two = frame_len(5) + frame_len(0);
        for cut in two + 1..buf.len() {
            let torn = &buf[..cut];
            assert!(matches!(replay(torn), Err(WalError::Truncated { .. })));
            let (records, err) = replay_tolerant(torn);
            assert_eq!(records.len(), 2, "cut at {cut} keeps the clean prefix");
            assert!(matches!(err, Some(WalError::Truncated { .. })));
        }
    }

    #[test]
    fn torn_traced_tail_is_detected() {
        let mut buf = Vec::new();
        append_record(&mut buf, 1, b"ok");
        let clean = buf.len();
        append_record_traced(&mut buf, 2, Some(7), b"torn");
        for cut in clean + 1..buf.len() {
            let (records, err) = replay_tolerant(&buf[..cut]);
            assert_eq!(records.len(), 1, "cut at {cut}");
            assert!(matches!(err, Some(WalError::Truncated { .. })));
        }
    }

    #[test]
    fn corrupt_final_record_is_typed_not_panicking() {
        let mut buf = log3();
        let n = buf.len();
        buf[n - 1] ^= 0xFF; // flip a checksum byte of the last record
        let at = frame_len(5) + frame_len(0);
        assert_eq!(replay(&buf), Err(WalError::BadChecksum { at, lsn: 3 }));
        let (records, err) = replay_tolerant(&buf);
        assert_eq!(records.len(), 2);
        assert!(matches!(err, Some(WalError::BadChecksum { .. })));
    }

    #[test]
    fn corrupt_payload_fails_checksum() {
        let mut buf = log3();
        buf[2 + 1 + 8 + 4] ^= 0x01; // first payload byte of record 1
        assert!(matches!(
            replay(&buf),
            Err(WalError::BadChecksum { at: 0, .. })
        ));
        let (records, err) = replay_tolerant(&buf);
        assert!(records.is_empty());
        assert!(err.is_some());
    }

    #[test]
    fn bad_magic_detected() {
        let mut buf = log3();
        buf[0] = 0x00;
        assert_eq!(replay(&buf), Err(WalError::BadMagic { at: 0 }));
    }

    #[test]
    fn unknown_flag_bits_rejected() {
        let mut buf = Vec::new();
        append_record(&mut buf, 1, b"x");
        buf[2] |= 0x80; // set a flag bit no decoder version knows
        assert_eq!(replay(&buf), Err(WalError::BadFlags { at: 0, flags: 0x80 }));
        let (records, err) = replay_tolerant(&buf);
        assert!(records.is_empty());
        assert!(matches!(err, Some(WalError::BadFlags { .. })));
    }

    #[test]
    fn non_monotonic_lsns_rejected() {
        let mut buf = Vec::new();
        append_record(&mut buf, 5, b"a");
        append_record(&mut buf, 5, b"b");
        assert!(matches!(
            replay(&buf),
            Err(WalError::NonMonotonicLsn { prev: 5, next: 5 })
        ));
        let (records, err) = replay_tolerant(&buf);
        assert_eq!(records.len(), 1);
        assert!(err.is_some());
    }

    #[test]
    fn checkpoint_log_falls_back_past_a_torn_tail() {
        let mut buf = Vec::new();
        append_record(&mut buf, 10, b"checkpoint-at-10");
        let full = buf.len();
        append_record(&mut buf, 20, b"checkpoint-at-20");
        // Fully written: the latest wins.
        let (cp, err) = latest_checkpoint(&buf);
        assert_eq!(cp.as_ref().map(|c| c.lsn), Some(20));
        assert!(err.is_none());
        // Torn second write: fall back to the first.
        let (cp, err) = latest_checkpoint(&buf[..full + 7]);
        assert_eq!(cp.as_ref().map(|c| c.lsn), Some(10));
        assert!(matches!(err, Some(WalError::Truncated { .. })));
        // Nothing ever completed: no checkpoint.
        let (cp, _) = latest_checkpoint(&buf[..3]);
        assert!(cp.is_none());
    }

    #[test]
    fn error_display() {
        assert_eq!(
            WalError::Truncated { at: 7 }.to_string(),
            "torn record at byte 7"
        );
        assert!(WalError::BadChecksum { at: 0, lsn: 3 }
            .to_string()
            .contains("checksum"));
        assert!(WalError::BadFlags { at: 0, flags: 0x80 }
            .to_string()
            .contains("0x80"));
    }
}
