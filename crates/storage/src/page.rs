//! Slotted pages.
//!
//! Classic slotted-page layout over a fixed-size byte buffer:
//!
//! ```text
//! +--------------------+---------------------------+------------------+
//! | header (6 bytes)   | slot directory (4B/slot)  |   free space ... |
//! |  slot_count u16    |  per slot: offset u16,    | <- record data   |
//! |  free_start u16    |            len u16        |    grows down    |
//! |  free_end   u16    | (offset 0 = dead slot)    |                  |
//! +--------------------+---------------------------+------------------+
//! ```
//!
//! Records are byte strings; deletion tombstones the slot (slot numbers
//! stay stable so [`crate::heap::RecordPtr`]s never dangle onto wrong
//! records); compaction reclaims dead space without renumbering slots.

use std::fmt;

use bytes::{Buf, BufMut, BytesMut};

/// Fixed page size in bytes.
pub const PAGE_SIZE: usize = 4096;

const HEADER: usize = 6;
const SLOT: usize = 4;

/// Errors raised by page operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PageError {
    /// Not enough contiguous free space for the record.
    Full {
        /// Bytes the insertion needed (record + slot entry).
        needed: usize,
        /// Bytes available.
        available: usize,
    },
    /// The record is larger than any page can hold.
    TooLarge(usize),
    /// No live record in this slot.
    DeadSlot(u16),
    /// Slot index out of range.
    BadSlot(u16),
}

impl fmt::Display for PageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageError::Full { needed, available } => {
                write!(f, "page full: need {needed} bytes, have {available}")
            }
            PageError::TooLarge(n) => write!(f, "record of {n} bytes exceeds page capacity"),
            PageError::DeadSlot(s) => write!(f, "slot {s} is dead"),
            PageError::BadSlot(s) => write!(f, "slot {s} out of range"),
        }
    }
}

impl std::error::Error for PageError {}

/// A slotted page.
#[derive(Clone, PartialEq, Eq)]
pub struct Page {
    buf: BytesMut,
}

impl fmt::Debug for Page {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Page({} slots, {} live, {} bytes free)",
            self.slot_count(),
            self.live_records().count(),
            self.free_space()
        )
    }
}

impl Default for Page {
    fn default() -> Self {
        Self::new()
    }
}

impl Page {
    /// A fresh, empty page.
    pub fn new() -> Self {
        let mut buf = BytesMut::zeroed(PAGE_SIZE);
        // slot_count = 0, free_start = HEADER, free_end = PAGE_SIZE.
        (&mut buf[0..2]).put_u16(0);
        (&mut buf[2..4]).put_u16(HEADER as u16);
        (&mut buf[4..6]).put_u16(PAGE_SIZE as u16);
        Page { buf }
    }

    fn get_u16(&self, at: usize) -> u16 {
        (&self.buf[at..at + 2]).get_u16()
    }

    fn set_u16(&mut self, at: usize, v: u16) {
        (&mut self.buf[at..at + 2]).put_u16(v);
    }

    /// Number of slots ever allocated (live + dead).
    pub fn slot_count(&self) -> u16 {
        self.get_u16(0)
    }

    fn free_start(&self) -> usize {
        self.get_u16(2) as usize
    }

    fn free_end(&self) -> usize {
        self.get_u16(4) as usize
    }

    fn slot_at(&self, slot: u16) -> (usize, usize) {
        let base = HEADER + slot as usize * SLOT;
        (self.get_u16(base) as usize, self.get_u16(base + 2) as usize)
    }

    fn set_slot(&mut self, slot: u16, offset: usize, len: usize) {
        let base = HEADER + slot as usize * SLOT;
        self.set_u16(base, offset as u16);
        self.set_u16(base + 2, len as u16);
    }

    /// Contiguous free bytes (a new slot needs `SLOT` of them too).
    pub fn free_space(&self) -> usize {
        self.free_end() - self.free_start()
    }

    /// Inserts a record, returning its slot.
    pub fn insert(&mut self, record: &[u8]) -> Result<u16, PageError> {
        if record.len() + HEADER + SLOT > PAGE_SIZE {
            return Err(PageError::TooLarge(record.len()));
        }
        let needed = record.len() + SLOT;
        if needed > self.free_space() {
            return Err(PageError::Full {
                needed,
                available: self.free_space(),
            });
        }
        let slot = self.slot_count();
        let offset = self.free_end() - record.len();
        self.buf[offset..offset + record.len()].copy_from_slice(record);
        self.set_slot(slot, offset, record.len());
        self.set_u16(0, slot + 1);
        self.set_u16(2, (self.free_start() + SLOT) as u16);
        self.set_u16(4, offset as u16);
        Ok(slot)
    }

    /// Reads the record in `slot`.
    pub fn get(&self, slot: u16) -> Result<&[u8], PageError> {
        if slot >= self.slot_count() {
            return Err(PageError::BadSlot(slot));
        }
        let (offset, len) = self.slot_at(slot);
        if offset == 0 {
            return Err(PageError::DeadSlot(slot));
        }
        Ok(&self.buf[offset..offset + len])
    }

    /// Tombstones the record in `slot`. The space is reclaimed by
    /// [`Page::compact`].
    pub fn delete(&mut self, slot: u16) -> Result<(), PageError> {
        if slot >= self.slot_count() {
            return Err(PageError::BadSlot(slot));
        }
        let (offset, _) = self.slot_at(slot);
        if offset == 0 {
            return Err(PageError::DeadSlot(slot));
        }
        self.set_slot(slot, 0, 0);
        Ok(())
    }

    /// Live `(slot, record)` pairs.
    pub fn live_records(&self) -> impl Iterator<Item = (u16, &[u8])> {
        (0..self.slot_count()).filter_map(move |slot| {
            let (offset, len) = self.slot_at(slot);
            (offset != 0).then(|| (slot, &self.buf[offset..offset + len]))
        })
    }

    /// Dead bytes reclaimable by compaction.
    pub fn dead_space(&self) -> usize {
        let live: usize = self.live_records().map(|(_, r)| r.len()).sum();
        (PAGE_SIZE - self.free_end()) - live
    }

    /// Rewrites live records to eliminate dead space. Slot numbers are
    /// preserved.
    pub fn compact(&mut self) {
        let live: Vec<(u16, Vec<u8>)> = self.live_records().map(|(s, r)| (s, r.to_vec())).collect();
        let slot_count = self.slot_count();
        // Reset the data area (keep the slot directory size).
        self.set_u16(4, PAGE_SIZE as u16);
        for slot in 0..slot_count {
            let (offset, _) = self.slot_at(slot);
            if offset != 0 {
                self.set_slot(slot, 0, 0);
            }
        }
        for (slot, record) in live {
            let offset = self.free_end() - record.len();
            self.buf[offset..offset + record.len()].copy_from_slice(&record);
            self.set_slot(slot, offset, record.len());
            self.set_u16(4, offset as u16);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_delete() {
        let mut p = Page::new();
        let a = p.insert(b"hello").unwrap();
        let b = p.insert(b"world!").unwrap();
        assert_eq!(p.get(a).unwrap(), b"hello");
        assert_eq!(p.get(b).unwrap(), b"world!");
        assert_eq!(p.slot_count(), 2);
        p.delete(a).unwrap();
        assert_eq!(p.get(a), Err(PageError::DeadSlot(a)));
        assert_eq!(p.get(b).unwrap(), b"world!");
        assert_eq!(p.delete(a), Err(PageError::DeadSlot(a)));
        assert_eq!(p.get(99), Err(PageError::BadSlot(99)));
    }

    #[test]
    fn fills_up_and_reports_full() {
        let mut p = Page::new();
        let record = [0xabu8; 128];
        let mut inserted = 0;
        loop {
            match p.insert(&record) {
                Ok(_) => inserted += 1,
                Err(PageError::Full { .. }) => break,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        // 4096 - 6 header over (128 + 4) per record ≈ 30 records.
        assert_eq!(inserted, (PAGE_SIZE - HEADER) / (128 + SLOT));
    }

    #[test]
    fn oversized_record_rejected() {
        let mut p = Page::new();
        let record = vec![0u8; PAGE_SIZE];
        assert!(matches!(p.insert(&record), Err(PageError::TooLarge(_))));
    }

    #[test]
    fn compaction_reclaims_dead_space_and_keeps_slots() {
        let mut p = Page::new();
        let a = p.insert(&[1u8; 1000]).unwrap();
        let b = p.insert(&[2u8; 1000]).unwrap();
        let c = p.insert(&[3u8; 1000]).unwrap();
        p.delete(b).unwrap();
        assert_eq!(p.dead_space(), 1000);
        let before_free = p.free_space();
        p.compact();
        assert_eq!(p.dead_space(), 0);
        assert!(p.free_space() >= before_free + 1000);
        // Slot numbers survive compaction.
        assert_eq!(p.get(a).unwrap(), &[1u8; 1000][..]);
        assert_eq!(p.get(c).unwrap(), &[3u8; 1000][..]);
        assert!(p.get(b).is_err());
        // And the page accepts a record that previously would not fit.
        p.insert(&[4u8; 900]).unwrap();
    }

    #[test]
    fn live_records_iterates_in_slot_order() {
        let mut p = Page::new();
        p.insert(b"a").unwrap();
        let b = p.insert(b"b").unwrap();
        p.insert(b"c").unwrap();
        p.delete(b).unwrap();
        let live: Vec<_> = p.live_records().map(|(s, r)| (s, r.to_vec())).collect();
        assert_eq!(live, vec![(0, b"a".to_vec()), (2, b"c".to_vec())]);
    }

    #[test]
    fn debug_format() {
        let mut p = Page::new();
        p.insert(b"x").unwrap();
        assert!(format!("{p:?}").contains("1 live"));
    }
}
