//! Multi-version fact storage: LSN-keyed version chains over a heap
//! file and an ordered index.
//!
//! Each logical fact key maps to a chain of versions, one per commit
//! that touched it. A version is either a **value** (the encoded fact
//! record as of that commit) or a **tombstone** (the fact was deleted
//! by that commit). Versions live in a [`HeapFile`] and are found
//! through an [`OrderedIndex`] whose composite key is
//!
//! ```text
//! [u32 BE key length][key bytes][u64 BE lsn]
//! ```
//!
//! so all versions of one key are contiguous and sorted by LSN: a
//! snapshot read at LSN `s` is a short prefix scan that picks the
//! newest version with `lsn <= s`. Garbage collection drops versions
//! that no snapshot at or after `keep_lsn` can observe, always keeping
//! the newest version at or below the horizon (even a tombstone — it
//! still answers "deleted" for readers between it and the next
//! version). Fully-dead tombstone chains are reclaimed separately by
//! [`MvccStore::purge_tombstones`], which is observably safe: a read
//! that used to say "deleted" now says "absent", and the two are
//! indistinguishable to scans and reconstruction.

use std::collections::BTreeMap;
use std::fmt;

use crate::heap::HeapFile;
use crate::index::OrderedIndex;
use crate::page::PageError;

/// Heap-record tag for a deleted version.
const TAG_TOMBSTONE: u8 = 0x00;
/// Heap-record tag for a live value version.
const TAG_VALUE: u8 = 0x01;

/// Builds the composite index key for one version of a fact.
fn composite_key(key: &[u8], lsn: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + key.len() + 8);
    out.extend_from_slice(&(key.len() as u32).to_be_bytes());
    out.extend_from_slice(key);
    out.extend_from_slice(&lsn.to_be_bytes());
    out
}

/// Splits a composite index key back into `(fact key, lsn)`.
fn split_composite(composite: &[u8]) -> (&[u8], u64) {
    let klen = u32::from_be_bytes(composite[..4].try_into().unwrap()) as usize;
    let key = &composite[4..4 + klen];
    let lsn = u64::from_be_bytes(composite[4 + klen..].try_into().unwrap());
    (key, lsn)
}

/// One visible version of a fact: its commit LSN and, for value
/// versions, the encoded record (`None` marks a tombstone).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Version<'a> {
    /// Commit LSN that produced this version.
    pub lsn: u64,
    /// Encoded record bytes, or `None` for a tombstone.
    pub value: Option<&'a [u8]>,
}

/// What one garbage-collection pass reclaimed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Version entries dropped (values and tombstones).
    pub versions_dropped: u64,
    /// Whole chains removed because only a dead tombstone remained.
    pub chains_purged: u64,
}

/// An LSN-versioned fact store over a heap file and an ordered index.
#[derive(Clone, Default)]
pub struct MvccStore {
    heap: HeapFile,
    index: OrderedIndex,
}

impl fmt::Debug for MvccStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MvccStore({} versions, {} heap pages)",
            self.index.len(),
            self.heap.page_count()
        )
    }
}

impl MvccStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total version entries (all keys, values and tombstones).
    pub fn version_count(&self) -> usize {
        self.index.len()
    }

    /// Whether the store holds no versions at all.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Heap pages backing the version records.
    pub fn page_count(&self) -> usize {
        self.heap.page_count()
    }

    /// Records a value version of `key` at `lsn`.
    pub fn put(&mut self, key: &[u8], lsn: u64, value: &[u8]) -> Result<(), PageError> {
        let mut record = Vec::with_capacity(1 + value.len());
        record.push(TAG_VALUE);
        record.extend_from_slice(value);
        let ptr = self.heap.insert(&record)?;
        if let Some(old) = self.index.insert(composite_key(key, lsn), ptr) {
            // Same key re-written within one commit: the newer record
            // wins and the shadowed one is dead space.
            let _ = self.heap.delete(old);
        }
        Ok(())
    }

    /// Records a tombstone version of `key` at `lsn`.
    pub fn delete(&mut self, key: &[u8], lsn: u64) -> Result<(), PageError> {
        let ptr = self.heap.insert(&[TAG_TOMBSTONE])?;
        if let Some(old) = self.index.insert(composite_key(key, lsn), ptr) {
            let _ = self.heap.delete(old);
        }
        Ok(())
    }

    /// The newest version of `key` with `lsn <= snapshot_lsn`, if any.
    pub fn version_at(&self, key: &[u8], snapshot_lsn: u64) -> Option<Version<'_>> {
        let lo = composite_key(key, 0);
        let hi = composite_key(key, snapshot_lsn.saturating_add(1));
        let (composite, ptr) = self
            .index
            .range(
                std::ops::Bound::Included(lo.as_slice()),
                std::ops::Bound::Excluded(hi.as_slice()),
            )
            .last()?;
        let (_, lsn) = split_composite(composite);
        let record = self.heap.get(ptr).expect("index points at live record");
        Some(Version {
            lsn,
            value: (record[0] == TAG_VALUE).then(|| &record[1..]),
        })
    }

    /// Snapshot read: the value of `key` as of `snapshot_lsn`, or
    /// `None` if absent or deleted there.
    pub fn get_at(&self, key: &[u8], snapshot_lsn: u64) -> Option<&[u8]> {
        self.version_at(key, snapshot_lsn).and_then(|v| v.value)
    }

    /// Every version of `key`, oldest first. Mainly for tests and
    /// invariant checks.
    pub fn versions(&self, key: &[u8]) -> Vec<Version<'_>> {
        let lo = composite_key(key, 0);
        let hi = composite_key(key, u64::MAX);
        let mut out: Vec<Version<'_>> = self
            .index
            .range(
                std::ops::Bound::Included(lo.as_slice()),
                std::ops::Bound::Included(hi.as_slice()),
            )
            .map(|(composite, ptr)| {
                let (_, lsn) = split_composite(composite);
                let record = self.heap.get(ptr).expect("index points at live record");
                Version {
                    lsn,
                    value: (record[0] == TAG_VALUE).then(|| &record[1..]),
                }
            })
            .collect();
        out.sort_by_key(|v| v.lsn);
        out
    }

    /// For each key, the newest version with `lsn <= snapshot_lsn`:
    /// the materialized image a snapshot at that LSN would see, as
    /// `(key, version)` pairs in key order. Tombstoned keys are
    /// included (with `value: None`) so callers can distinguish
    /// "deleted here" from "never stored".
    pub fn latest_upto(&self, snapshot_lsn: u64) -> Vec<(Vec<u8>, Version<'_>)> {
        let mut out: Vec<(Vec<u8>, Version<'_>)> = Vec::new();
        let mut current: Option<(Vec<u8>, Version<'_>)> = None;
        for (composite, ptr) in self.index.range(std::ops::Bound::Unbounded, std::ops::Bound::Unbounded) {
            let (key, lsn) = split_composite(composite);
            if lsn > snapshot_lsn {
                continue;
            }
            let record = self.heap.get(ptr).expect("index points at live record");
            let version = Version {
                lsn,
                value: (record[0] == TAG_VALUE).then(|| &record[1..]),
            };
            match &mut current {
                Some((k, v)) if k.as_slice() == key => {
                    if lsn >= v.lsn {
                        *v = version;
                    }
                }
                _ => {
                    if let Some(done) = current.take() {
                        out.push(done);
                    }
                    current = Some((key.to_vec(), version));
                }
            }
        }
        if let Some(done) = current {
            out.push(done);
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Drops versions no snapshot at or after `keep_lsn` can observe:
    /// for each key, every version strictly older than the newest
    /// version with `lsn <= keep_lsn` goes away. The boundary version
    /// itself is kept even when it is a tombstone — readers between it
    /// and the next version still need the "deleted" answer, and
    /// incremental checkpoints read dirty keys' current versions from
    /// here. Use [`Self::purge_tombstones`] to reclaim chains that are
    /// nothing but a dead tombstone.
    pub fn gc(&mut self, keep_lsn: u64) -> GcStats {
        let mut stats = GcStats::default();
        let mut doomed: Vec<Vec<u8>> = Vec::new();
        let mut run_key: Option<Vec<u8>> = None;
        let mut run: Vec<(Vec<u8>, u64)> = Vec::new();
        let flush = |run: &mut Vec<(Vec<u8>, u64)>, doomed: &mut Vec<Vec<u8>>| {
            // `run` holds one key's versions with lsn <= keep_lsn in
            // LSN order; all but the newest are unobservable.
            run.sort_by_key(|(_, lsn)| *lsn);
            for (composite, _) in run.drain(..).rev().skip(1) {
                doomed.push(composite);
            }
        };
        for (composite, _) in self
            .index
            .range(std::ops::Bound::Unbounded, std::ops::Bound::Unbounded)
        {
            let (key, lsn) = split_composite(composite);
            if lsn > keep_lsn {
                continue;
            }
            if run_key.as_deref() != Some(key) {
                flush(&mut run, &mut doomed);
                run_key = Some(key.to_vec());
            }
            run.push((composite.to_vec(), lsn));
        }
        flush(&mut run, &mut doomed);
        for composite in doomed {
            if let Some(ptr) = self.index.remove(&composite) {
                let _ = self.heap.delete(ptr);
                stats.versions_dropped += 1;
            }
        }
        self.heap.vacuum();
        stats
    }

    /// Reclaims chains that consist of exactly one tombstone with
    /// `lsn <= keep_lsn`: after [`Self::gc`] these answer "deleted"
    /// forever, which is indistinguishable from "absent". Call only
    /// once the tombstoned keys are no longer needed by incremental
    /// checkpointing (i.e. the dirty set covering them has been
    /// flushed).
    pub fn purge_tombstones(&mut self, keep_lsn: u64) -> GcStats {
        self.purge_if(keep_lsn, |v| v.value.is_none())
    }

    /// Reclaims single-version chains whose one version has
    /// `lsn <= keep_lsn` and satisfies `dead`. The generalization of
    /// [`Self::purge_tombstones`] for callers that encode deletion
    /// *inside* their record bytes rather than via store tombstones:
    /// such a chain answers the same dead record forever, which the
    /// caller's predicate certifies is indistinguishable from absence.
    pub fn purge_if(&mut self, keep_lsn: u64, dead: impl Fn(&Version<'_>) -> bool) -> GcStats {
        let mut stats = GcStats::default();
        let mut doomed: Vec<Vec<u8>> = Vec::new();
        let mut run_key: Option<Vec<u8>> = None;
        // (composite, is_dead) per version of the current key.
        let mut run: Vec<(Vec<u8>, bool)> = Vec::new();
        let flush = |run: &mut Vec<(Vec<u8>, bool)>, doomed: &mut Vec<Vec<u8>>| {
            if run.len() == 1 && run[0].1 {
                doomed.push(run[0].0.clone());
            }
            run.clear();
        };
        let entries: Vec<(Vec<u8>, crate::heap::RecordPtr)> = self
            .index
            .range(std::ops::Bound::Unbounded, std::ops::Bound::Unbounded)
            .map(|(k, p)| (k.to_vec(), p))
            .collect();
        for (composite, ptr) in entries {
            let (key, lsn) = split_composite(&composite);
            if run_key.as_deref() != Some(key) {
                flush(&mut run, &mut doomed);
                run_key = Some(key.to_vec());
            }
            let is_dead = lsn <= keep_lsn
                && self
                    .heap
                    .get(ptr)
                    .map(|record| {
                        dead(&Version {
                            lsn,
                            value: (record[0] == TAG_VALUE).then_some(&record[1..]),
                        })
                    })
                    .unwrap_or(false);
            run.push((composite, is_dead));
        }
        flush(&mut run, &mut doomed);
        for composite in doomed {
            if let Some(ptr) = self.index.remove(&composite) {
                let _ = self.heap.delete(ptr);
                stats.versions_dropped += 1;
                stats.chains_purged += 1;
            }
        }
        self.heap.vacuum();
        stats
    }
}

/// Reference counts of live snapshot pins, keyed by LSN. The oldest
/// pinned LSN is the GC horizon: versions only a younger snapshot
/// could need stay; everything older than what the oldest pin can see
/// goes.
#[derive(Clone, Debug, Default)]
pub struct PinSet {
    pins: BTreeMap<u64, usize>,
}

impl PinSet {
    /// An empty pin set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a snapshot at `lsn`.
    pub fn pin(&mut self, lsn: u64) {
        *self.pins.entry(lsn).or_insert(0) += 1;
    }

    /// Releases one snapshot at `lsn`.
    pub fn unpin(&mut self, lsn: u64) {
        if let Some(count) = self.pins.get_mut(&lsn) {
            *count -= 1;
            if *count == 0 {
                self.pins.remove(&lsn);
            }
        }
    }

    /// The oldest pinned LSN, if any snapshot is live.
    pub fn oldest(&self) -> Option<u64> {
        self.pins.keys().next().copied()
    }

    /// Number of live pins across all LSNs.
    pub fn live(&self) -> usize {
        self.pins.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reads_pick_newest_version_at_or_below_lsn() {
        let mut s = MvccStore::new();
        s.put(b"k", 1, b"v1").unwrap();
        s.put(b"k", 5, b"v5").unwrap();
        s.delete(b"k", 9).unwrap();
        assert_eq!(s.get_at(b"k", 0), None, "before first version");
        assert_eq!(s.get_at(b"k", 1), Some(&b"v1"[..]));
        assert_eq!(s.get_at(b"k", 4), Some(&b"v1"[..]));
        assert_eq!(s.get_at(b"k", 5), Some(&b"v5"[..]));
        assert_eq!(s.get_at(b"k", 8), Some(&b"v5"[..]));
        assert_eq!(s.get_at(b"k", 9), None, "tombstone at 9");
        assert_eq!(s.get_at(b"k", u64::MAX - 1), None);
        assert_eq!(
            s.version_at(b"k", 9),
            Some(Version {
                lsn: 9,
                value: None
            })
        );
    }

    #[test]
    fn keys_do_not_interfere() {
        let mut s = MvccStore::new();
        s.put(b"a", 1, b"av").unwrap();
        s.put(b"ab", 2, b"abv").unwrap();
        s.put(b"b", 3, b"bv").unwrap();
        assert_eq!(s.get_at(b"a", 10), Some(&b"av"[..]));
        assert_eq!(s.get_at(b"ab", 10), Some(&b"abv"[..]));
        assert_eq!(s.get_at(b"ab", 1), None);
        assert_eq!(s.get_at(b"b", 10), Some(&b"bv"[..]));
        assert_eq!(s.version_count(), 3);
    }

    #[test]
    fn latest_upto_materializes_a_snapshot_image() {
        let mut s = MvccStore::new();
        s.put(b"x", 1, b"x1").unwrap();
        s.put(b"x", 4, b"x4").unwrap();
        s.put(b"y", 2, b"y2").unwrap();
        s.delete(b"y", 3).unwrap();
        s.put(b"z", 6, b"z6").unwrap();
        let at5: Vec<(Vec<u8>, u64, Option<Vec<u8>>)> = s
            .latest_upto(5)
            .into_iter()
            .map(|(k, v)| (k, v.lsn, v.value.map(|b| b.to_vec())))
            .collect();
        assert_eq!(
            at5,
            vec![
                (b"x".to_vec(), 4, Some(b"x4".to_vec())),
                (b"y".to_vec(), 3, None),
            ]
        );
    }

    #[test]
    fn gc_keeps_the_boundary_version_even_when_it_is_a_tombstone() {
        let mut s = MvccStore::new();
        s.put(b"k", 1, b"v1").unwrap();
        s.delete(b"k", 3).unwrap();
        s.put(b"k", 7, b"v7").unwrap();
        let stats = s.gc(5);
        assert_eq!(stats.versions_dropped, 1, "v1 is unobservable at 5+");
        assert_eq!(s.get_at(b"k", 5), None, "tombstone at 3 still answers");
        assert_eq!(s.get_at(b"k", 7), Some(&b"v7"[..]));
        assert_eq!(s.version_count(), 2);
    }

    #[test]
    fn gc_never_drops_versions_above_the_horizon() {
        let mut s = MvccStore::new();
        for lsn in 1..=10u64 {
            s.put(b"k", lsn, format!("v{lsn}").as_bytes()).unwrap();
        }
        let stats = s.gc(4);
        assert_eq!(stats.versions_dropped, 3, "lsns 1..=3 go, 4..=10 stay");
        for lsn in 4..=10u64 {
            assert_eq!(
                s.get_at(b"k", lsn),
                Some(format!("v{lsn}").as_bytes()),
                "version at {lsn} survives"
            );
        }
    }

    #[test]
    fn purge_reclaims_dead_tombstone_chains_only() {
        let mut s = MvccStore::new();
        s.put(b"dead", 1, b"dv").unwrap();
        s.delete(b"dead", 2).unwrap();
        s.put(b"live", 1, b"lv").unwrap();
        s.delete(b"gone-later", 8).unwrap();
        s.gc(5);
        let stats = s.purge_tombstones(5);
        assert_eq!(stats.chains_purged, 1, "only the dead chain at lsn 2");
        assert_eq!(s.get_at(b"dead", 5), None, "absent == deleted");
        assert_eq!(s.get_at(b"live", 5), Some(&b"lv"[..]));
        assert_eq!(
            s.version_at(b"gone-later", 8),
            Some(Version {
                lsn: 8,
                value: None
            }),
            "tombstone above the horizon is untouched"
        );
    }

    #[test]
    fn heap_space_is_reclaimed_by_gc() {
        let mut s = MvccStore::new();
        let big = vec![7u8; 512];
        for lsn in 1..=64u64 {
            s.put(b"hot", lsn, &big).unwrap();
        }
        let pages_before = s.page_count();
        s.gc(64);
        assert_eq!(s.version_count(), 1);
        assert!(
            s.heap.dead_space() == 0,
            "gc vacuums the heap: {} dead bytes",
            s.heap.dead_space()
        );
        assert!(pages_before >= s.page_count());
    }

    #[test]
    fn rewrite_within_one_lsn_keeps_the_newer_record() {
        let mut s = MvccStore::new();
        s.put(b"k", 2, b"first").unwrap();
        s.put(b"k", 2, b"second").unwrap();
        assert_eq!(s.get_at(b"k", 2), Some(&b"second"[..]));
        assert_eq!(s.version_count(), 1);
    }

    #[test]
    fn pin_set_tracks_the_oldest_live_snapshot() {
        let mut p = PinSet::new();
        assert_eq!(p.oldest(), None);
        p.pin(7);
        p.pin(3);
        p.pin(3);
        assert_eq!(p.oldest(), Some(3));
        assert_eq!(p.live(), 3);
        p.unpin(3);
        assert_eq!(p.oldest(), Some(3), "one pin at 3 remains");
        p.unpin(3);
        assert_eq!(p.oldest(), Some(7));
        p.unpin(7);
        assert_eq!(p.oldest(), None);
        assert_eq!(p.live(), 0);
    }
}
