//! Heap files: an append-friendly collection of slotted pages.

use std::fmt;

use crate::page::{Page, PageError};

/// A stable pointer to a stored record.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RecordPtr {
    /// Page index within the heap file.
    pub page: u32,
    /// Slot within the page.
    pub slot: u16,
}

impl fmt::Display for RecordPtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.page, self.slot)
    }
}

/// A heap file of byte records.
#[derive(Clone, Default)]
pub struct HeapFile {
    pages: Vec<Page>,
}

impl fmt::Debug for HeapFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "HeapFile({} pages, {} records)",
            self.pages.len(),
            self.len()
        )
    }
}

impl HeapFile {
    /// An empty heap file.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.pages.iter().map(|p| p.live_records().count()).sum()
    }

    /// Whether there are no live records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts a record, appending a page when needed.
    pub fn insert(&mut self, record: &[u8]) -> Result<RecordPtr, PageError> {
        // Try the last page first (append locality), then any page with
        // room, then a fresh page.
        if let Some((i, page)) = self.pages.iter_mut().enumerate().next_back() {
            if let Ok(slot) = page.insert(record) {
                return Ok(RecordPtr {
                    page: i as u32,
                    slot,
                });
            }
        }
        for (i, page) in self.pages.iter_mut().enumerate() {
            match page.insert(record) {
                Ok(slot) => {
                    return Ok(RecordPtr {
                        page: i as u32,
                        slot,
                    })
                }
                Err(PageError::Full { .. }) => continue,
                Err(e) => return Err(e),
            }
        }
        let mut page = Page::new();
        let slot = page.insert(record)?;
        self.pages.push(page);
        Ok(RecordPtr {
            page: (self.pages.len() - 1) as u32,
            slot,
        })
    }

    /// Reads the record at `ptr`.
    pub fn get(&self, ptr: RecordPtr) -> Result<&[u8], PageError> {
        self.pages
            .get(ptr.page as usize)
            .ok_or(PageError::BadSlot(ptr.slot))?
            .get(ptr.slot)
    }

    /// Deletes the record at `ptr`.
    pub fn delete(&mut self, ptr: RecordPtr) -> Result<(), PageError> {
        self.pages
            .get_mut(ptr.page as usize)
            .ok_or(PageError::BadSlot(ptr.slot))?
            .delete(ptr.slot)
    }

    /// All live `(ptr, record)` pairs.
    pub fn scan(&self) -> impl Iterator<Item = (RecordPtr, &[u8])> {
        self.pages.iter().enumerate().flat_map(|(i, page)| {
            page.live_records().map(move |(slot, record)| {
                (
                    RecordPtr {
                        page: i as u32,
                        slot,
                    },
                    record,
                )
            })
        })
    }

    /// Compacts every page with dead space. Record pointers stay valid.
    pub fn vacuum(&mut self) {
        for page in &mut self.pages {
            if page.dead_space() > 0 {
                page.compact();
            }
        }
    }

    /// Total dead bytes.
    pub fn dead_space(&self) -> usize {
        self.pages.iter().map(Page::dead_space).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_delete_scan() {
        let mut h = HeapFile::new();
        assert!(h.is_empty());
        let a = h.insert(b"alpha").unwrap();
        let b = h.insert(b"beta").unwrap();
        assert_eq!(h.len(), 2);
        assert_eq!(h.get(a).unwrap(), b"alpha");
        h.delete(a).unwrap();
        assert_eq!(h.len(), 1);
        let all: Vec<_> = h.scan().map(|(p, r)| (p, r.to_vec())).collect();
        assert_eq!(all, vec![(b, b"beta".to_vec())]);
        assert!(h.get(a).is_err());
    }

    #[test]
    fn spills_to_new_pages() {
        let mut h = HeapFile::new();
        let record = [7u8; 1024];
        for _ in 0..16 {
            h.insert(&record).unwrap();
        }
        assert!(h.page_count() > 1, "{h:?}");
        assert_eq!(h.len(), 16);
        // Pointers all resolve.
        for (ptr, r) in h.scan() {
            assert_eq!(h.get(ptr).unwrap(), r);
        }
    }

    #[test]
    fn reuses_space_in_earlier_pages() {
        let mut h = HeapFile::new();
        // 3000-byte records: exactly one fits per page.
        let big = [1u8; 3000];
        let a = h.insert(&big).unwrap(); // page 0
        let b = h.insert(&big).unwrap(); // page 1
        assert_eq!((a.page, b.page), (0, 1));
        h.delete(a).unwrap();
        h.vacuum();
        let c = h.insert(&big).unwrap();
        assert_eq!(c.page, 0, "freed space in page 0 is reused after vacuum");
        assert_eq!(h.page_count(), 2);
    }

    #[test]
    fn vacuum_reclaims_dead_space() {
        let mut h = HeapFile::new();
        let ptrs: Vec<_> = (0..8).map(|_| h.insert(&[9u8; 400]).unwrap()).collect();
        for p in &ptrs[..4] {
            h.delete(*p).unwrap();
        }
        assert_eq!(h.dead_space(), 1600);
        h.vacuum();
        assert_eq!(h.dead_space(), 0);
        for p in &ptrs[4..] {
            assert_eq!(h.get(*p).unwrap(), &[9u8; 400][..]);
        }
    }

    #[test]
    fn bad_pointer_is_an_error() {
        let h = HeapFile::new();
        assert!(h.get(RecordPtr { page: 3, slot: 0 }).is_err());
    }
}
