#![deny(missing_docs)]

//! # dme-storage — the internal-schema substrate
//!
//! The ANSI architecture the paper builds on (§1.2, Figure 1) has an
//! **internal schema** that "specifies the types of data structures,
//! devices and access methods which constitute the physical storage
//! aspects of the database system". This crate is that level: a small
//! storage engine with
//!
//! * slotted pages over raw byte buffers ([`page`]),
//! * heap files of encoded records ([`heap`]),
//! * a compact binary codec for tuples ([`codec`]),
//! * ordered and hash secondary indexes ([`index`]),
//! * an undo journal giving atomic multi-record operations
//!   ([`journal`]),
//! * a framed, checksummed write-ahead log with torn-write-tolerant
//!   replay and appended checkpoints ([`wal`]), and
//! * a transactional [`store::RecordStore`] combining them.
//!
//! `dme-ansi` maps conceptual-level operations onto this engine; the
//! paper's point that "the internal schema presumably contains much
//! implementation information which has no equivalent at the conceptual
//! level" (§3.2.3) shows up concretely: record pointers, page layouts and
//! index choices all vary without changing the conceptual state, so the
//! internal→conceptual correspondence is many-to-one rather than the 1-1
//! correspondence of the external levels.

pub mod codec;
pub mod heap;
pub mod index;
pub mod journal;
pub mod mvcc;
pub mod page;
pub mod store;
pub mod wal;

pub use codec::{decode_tuple, encode_tuple, CodecError};
pub use heap::{HeapFile, RecordPtr};
pub use mvcc::{GcStats, MvccStore, PinSet};
pub use journal::{Journal, JournalError};
pub use page::{Page, PageError, PAGE_SIZE};
pub use store::{RecordStore, StoreError};
pub use wal::{WalError, WalRecord};
