//! The undo journal.
//!
//! Multi-record operations at the conceptual level (one `insert-statements`
//! touching Operate *and* Jobs) must be atomic at the internal level.
//! The journal records the inverse of every applied change; aborting a
//! transaction replays the inverses in reverse order.

use dme_obs::{Counter, Observer};
use dme_value::{Symbol, Tuple};

/// The inverse of one applied change.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UndoOp {
    /// Undo an insert by removing the tuple again.
    Remove {
        /// The table.
        table: Symbol,
        /// The tuple to remove.
        tuple: Tuple,
    },
    /// Undo a delete by re-inserting the tuple.
    Reinsert {
        /// The table.
        table: Symbol,
        /// The tuple to re-insert.
        tuple: Tuple,
    },
}

/// An in-memory undo journal.
#[derive(Clone, Debug, Default)]
pub struct Journal {
    entries: Vec<UndoOp>,
    obs: Observer,
}

impl Journal {
    /// An empty journal.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty journal whose pushes and undo replays are charged to
    /// `obs` ([`Counter::JournalEntries`] / [`Counter::UndoReplays`]).
    pub fn with_observer(obs: Observer) -> Self {
        Journal {
            entries: Vec::new(),
            obs,
        }
    }

    /// Records an undo entry.
    pub fn push(&mut self, op: UndoOp) {
        self.obs.add(Counter::JournalEntries, 1);
        self.entries.push(op);
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drains the entries in reverse (undo) order. Every drained entry
    /// is an undo about to be replayed, so the whole batch is charged to
    /// [`Counter::UndoReplays`] up front.
    pub fn drain_reverse(&mut self) -> impl Iterator<Item = UndoOp> + '_ {
        self.obs.add(Counter::UndoReplays, self.entries.len() as u64);
        self.entries.drain(..).rev()
    }

    /// Discards all entries (commit).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dme_value::tuple;

    #[test]
    fn records_and_drains_in_reverse() {
        let mut j = Journal::new();
        assert!(j.is_empty());
        j.push(UndoOp::Remove {
            table: "A".into(),
            tuple: tuple![1],
        });
        j.push(UndoOp::Reinsert {
            table: "B".into(),
            tuple: tuple![2],
        });
        assert_eq!(j.len(), 2);
        let drained: Vec<_> = j.drain_reverse().collect();
        assert!(matches!(&drained[0], UndoOp::Reinsert { .. }));
        assert!(matches!(&drained[1], UndoOp::Remove { .. }));
        assert!(j.is_empty());
    }

    #[test]
    fn observed_journal_counts_entries_and_replays() {
        use dme_obs::RingSink;
        let obs = Observer::new(RingSink::with_capacity(8));
        let mut j = Journal::with_observer(obs.clone());
        j.push(UndoOp::Remove {
            table: "A".into(),
            tuple: tuple![1],
        });
        j.push(UndoOp::Reinsert {
            table: "B".into(),
            tuple: tuple![2],
        });
        assert_eq!(obs.counter(Counter::JournalEntries), 2);
        assert_eq!(obs.counter(Counter::UndoReplays), 0);
        let _ = j.drain_reverse().collect::<Vec<_>>();
        assert_eq!(obs.counter(Counter::UndoReplays), 2);
    }

    #[test]
    fn clear_discards() {
        let mut j = Journal::new();
        j.push(UndoOp::Remove {
            table: "A".into(),
            tuple: tuple![1],
        });
        j.clear();
        assert!(j.is_empty());
    }
}
