//! The undo journal.
//!
//! Multi-record operations at the conceptual level (one `insert-statements`
//! touching Operate *and* Jobs) must be atomic at the internal level.
//! The journal records the inverse of every applied change; aborting a
//! transaction replays the inverses in reverse order.

use std::fmt;

use bytes::{Buf, BufMut};

use dme_obs::{Counter, Observer};
use dme_value::{Symbol, Tuple};

use crate::codec::{decode_tuple, encode_tuple, CodecError};

/// Typed failures of [`Journal::replay`]. A corrupt or truncated final
/// record is an expected crash shape, not a programming error, so it
/// surfaces as a value rather than a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JournalError {
    /// The buffer ended mid-record.
    Truncated {
        /// Byte offset of the record that tore.
        at: usize,
    },
    /// An unknown record-kind byte (corruption).
    BadKind {
        /// Byte offset of the corrupt record.
        at: usize,
        /// The kind byte found.
        kind: u8,
    },
    /// The record's tuple payload failed to decode.
    Codec {
        /// Byte offset of the corrupt record.
        at: usize,
        /// The underlying codec failure.
        error: CodecError,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Truncated { at } => write!(f, "journal truncated at byte {at}"),
            JournalError::BadKind { at, kind } => {
                write!(f, "unknown journal record kind {kind} at byte {at}")
            }
            JournalError::Codec { at, error } => {
                write!(f, "corrupt journal record at byte {at}: {error}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

const KIND_REMOVE: u8 = 0;
const KIND_REINSERT: u8 = 1;

/// The inverse of one applied change.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UndoOp {
    /// Undo an insert by removing the tuple again.
    Remove {
        /// The table.
        table: Symbol,
        /// The tuple to remove.
        tuple: Tuple,
    },
    /// Undo a delete by re-inserting the tuple.
    Reinsert {
        /// The table.
        table: Symbol,
        /// The tuple to re-insert.
        tuple: Tuple,
    },
}

impl UndoOp {
    /// Appends this record's encoding:
    /// `[kind u8][table-len u16][table utf-8][tuple-len u32][tuple]`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let (kind, table, tuple) = match self {
            UndoOp::Remove { table, tuple } => (KIND_REMOVE, table, tuple),
            UndoOp::Reinsert { table, tuple } => (KIND_REINSERT, table, tuple),
        };
        out.put_u8(kind);
        let name = table.as_str().as_bytes();
        out.put_u16(name.len() as u16);
        out.put_slice(name);
        let encoded = encode_tuple(tuple);
        out.put_u32(encoded.len() as u32);
        out.put_slice(&encoded);
    }

    /// Decodes one record starting at `at`; returns the op and the
    /// frame length consumed.
    pub fn decode(buf: &[u8], at: usize) -> Result<(UndoOp, usize), JournalError> {
        let mut rest = &buf[at..];
        if rest.is_empty() {
            return Err(JournalError::Truncated { at });
        }
        let kind = rest.get_u8();
        if kind != KIND_REMOVE && kind != KIND_REINSERT {
            return Err(JournalError::BadKind { at, kind });
        }
        if rest.len() < 2 {
            return Err(JournalError::Truncated { at });
        }
        let name_len = rest.get_u16() as usize;
        if rest.len() < name_len {
            return Err(JournalError::Truncated { at });
        }
        let table = std::str::from_utf8(&rest[..name_len])
            .map_err(|_| JournalError::Codec {
                at,
                error: CodecError::BadUtf8,
            })?
            .to_owned();
        rest.advance(name_len);
        if rest.len() < 4 {
            return Err(JournalError::Truncated { at });
        }
        let tuple_len = rest.get_u32() as usize;
        if rest.len() < tuple_len {
            return Err(JournalError::Truncated { at });
        }
        let tuple =
            decode_tuple(&rest[..tuple_len]).map_err(|error| JournalError::Codec { at, error })?;
        let frame = 1 + 2 + name_len + 4 + tuple_len;
        let table = Symbol::new(table);
        let op = if kind == KIND_REMOVE {
            UndoOp::Remove { table, tuple }
        } else {
            UndoOp::Reinsert { table, tuple }
        };
        Ok((op, frame))
    }
}

/// An in-memory undo journal.
#[derive(Clone, Debug, Default)]
pub struct Journal {
    entries: Vec<UndoOp>,
    obs: Observer,
}

impl Journal {
    /// An empty journal.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty journal whose pushes and undo replays are charged to
    /// `obs` ([`Counter::JournalEntries`] / [`Counter::UndoReplays`]).
    pub fn with_observer(obs: Observer) -> Self {
        Journal {
            entries: Vec::new(),
            obs,
        }
    }

    /// Records an undo entry.
    pub fn push(&mut self, op: UndoOp) {
        self.obs.add(Counter::JournalEntries, 1);
        self.entries.push(op);
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drains the entries in reverse (undo) order. Every drained entry
    /// is an undo about to be replayed, so the whole batch is charged to
    /// [`Counter::UndoReplays`] up front.
    pub fn drain_reverse(&mut self) -> impl Iterator<Item = UndoOp> + '_ {
        self.obs
            .add(Counter::UndoReplays, self.entries.len() as u64);
        self.entries.drain(..).rev()
    }

    /// Discards all entries (commit).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Encodes every entry, in order, for durable spill (crash-time
    /// undo of a long transaction).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for op in &self.entries {
            op.encode(&mut out);
        }
        out
    }

    /// Replays a durable journal image back into undo entries.
    ///
    /// Returns a typed [`JournalError`] — never panics — on a corrupt
    /// or truncated final record, identifying the byte offset so the
    /// caller can decide whether the tail is a tolerable torn write
    /// (offset past the last full record) or mid-log corruption.
    pub fn replay(buf: &[u8]) -> Result<Vec<UndoOp>, JournalError> {
        let mut ops = Vec::new();
        let mut at = 0;
        while at < buf.len() {
            let (op, frame) = UndoOp::decode(buf, at)?;
            ops.push(op);
            at += frame;
        }
        Ok(ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dme_value::tuple;

    #[test]
    fn records_and_drains_in_reverse() {
        let mut j = Journal::new();
        assert!(j.is_empty());
        j.push(UndoOp::Remove {
            table: "A".into(),
            tuple: tuple![1],
        });
        j.push(UndoOp::Reinsert {
            table: "B".into(),
            tuple: tuple![2],
        });
        assert_eq!(j.len(), 2);
        let drained: Vec<_> = j.drain_reverse().collect();
        assert!(matches!(&drained[0], UndoOp::Reinsert { .. }));
        assert!(matches!(&drained[1], UndoOp::Remove { .. }));
        assert!(j.is_empty());
    }

    #[test]
    fn observed_journal_counts_entries_and_replays() {
        use dme_obs::RingSink;
        let obs = Observer::new(RingSink::with_capacity(8));
        let mut j = Journal::with_observer(obs.clone());
        j.push(UndoOp::Remove {
            table: "A".into(),
            tuple: tuple![1],
        });
        j.push(UndoOp::Reinsert {
            table: "B".into(),
            tuple: tuple![2],
        });
        assert_eq!(obs.counter(Counter::JournalEntries), 2);
        assert_eq!(obs.counter(Counter::UndoReplays), 0);
        let _ = j.drain_reverse().collect::<Vec<_>>();
        assert_eq!(obs.counter(Counter::UndoReplays), 2);
    }

    fn two_entry_journal() -> Journal {
        let mut j = Journal::new();
        j.push(UndoOp::Remove {
            table: "Jobs".into(),
            tuple: tuple!["G.Wayshum", 50],
        });
        j.push(UndoOp::Reinsert {
            table: "Operate".into(),
            tuple: tuple!["T.Manhart", "NZ745"],
        });
        j
    }

    #[test]
    fn durable_round_trip() {
        let j = two_entry_journal();
        let bytes = j.to_bytes();
        let ops = Journal::replay(&bytes).unwrap();
        assert_eq!(ops.len(), 2);
        assert!(matches!(&ops[0], UndoOp::Remove { table, .. } if table.as_str() == "Jobs"));
        assert!(
            matches!(&ops[1], UndoOp::Reinsert { table, tuple } if table.as_str() == "Operate"
                && *tuple == tuple!["T.Manhart", "NZ745"])
        );
        assert_eq!(Journal::replay(&[]).unwrap(), Vec::new());
    }

    /// Regression: a truncated final record must yield a typed error —
    /// at every possible tear point — never a panic.
    #[test]
    fn replay_truncated_final_record_is_typed_error() {
        let bytes = two_entry_journal().to_bytes();
        let first_frame = {
            let (_, frame) = UndoOp::decode(&bytes, 0).unwrap();
            frame
        };
        for cut in first_frame + 1..bytes.len() {
            match Journal::replay(&bytes[..cut]) {
                Err(JournalError::Truncated { at }) => {
                    assert_eq!(at, first_frame, "tear at {cut} points at the torn record")
                }
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    /// Regression: a corrupt final record (bad kind byte, bad tuple
    /// payload) must yield a typed error, never a panic.
    #[test]
    fn replay_corrupt_final_record_is_typed_error() {
        let good = two_entry_journal().to_bytes();
        let (_, first_frame) = UndoOp::decode(&good, 0).unwrap();

        // Shape 1: the record-kind byte is garbage.
        let mut bad_kind = good.clone();
        bad_kind[first_frame] = 0x7F;
        assert_eq!(
            Journal::replay(&bad_kind),
            Err(JournalError::BadKind {
                at: first_frame,
                kind: 0x7F
            })
        );

        // Shape 2: the tuple payload has a corrupt value tag.
        let mut bad_tuple = good;
        let tuple_start = first_frame + 1 + 2 + "Operate".len() + 4;
        bad_tuple[tuple_start + 2] = 0xEE; // first value tag inside the tuple
        match Journal::replay(&bad_tuple) {
            Err(JournalError::Codec { at, error }) => {
                assert_eq!(at, first_frame);
                assert_eq!(error, CodecError::BadTag(0xEE));
            }
            other => panic!("expected Codec error, got {other:?}"),
        }
    }

    #[test]
    fn journal_error_display() {
        assert_eq!(
            JournalError::Truncated { at: 9 }.to_string(),
            "journal truncated at byte 9"
        );
        assert!(JournalError::BadKind { at: 0, kind: 9 }
            .to_string()
            .contains("kind 9"));
        assert!(JournalError::Codec {
            at: 0,
            error: CodecError::Truncated
        }
        .to_string()
        .contains("truncated record"));
    }

    #[test]
    fn clear_discards() {
        let mut j = Journal::new();
        j.push(UndoOp::Remove {
            table: "A".into(),
            tuple: tuple![1],
        });
        j.clear();
        assert!(j.is_empty());
    }
}
