//! Binary codec for tuples.
//!
//! Encodes `dme-value` tuples into compact byte strings for heap storage
//! and index keys. The encoding is self-delimiting and **order-exact for
//! index keys** in the common case of same-shaped tuples: values encode
//! with a tag byte (null < bool < int < str) followed by a
//! big-endian/offset payload, so the byte order of two encoded tuples of
//! the same arity and value shapes matches the tuples' representation
//! order.

use std::fmt;

use bytes::{Buf, BufMut};

use dme_value::{Atom, Tuple, Value};

const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_STR: u8 = 3;

/// Errors raised while decoding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended mid-value.
    Truncated,
    /// An unknown tag byte.
    BadTag(u8),
    /// A string payload was not valid UTF-8.
    BadUtf8,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "truncated record"),
            CodecError::BadTag(t) => write!(f, "unknown value tag {t}"),
            CodecError::BadUtf8 => write!(f, "invalid utf-8 in string value"),
        }
    }
}

impl std::error::Error for CodecError {}

fn encode_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.put_u8(TAG_NULL),
        Value::Atom(Atom::Bool(b)) => {
            out.put_u8(TAG_BOOL);
            out.put_u8(*b as u8);
        }
        Value::Atom(Atom::Int(i)) => {
            out.put_u8(TAG_INT);
            // Offset encoding keeps byte order == numeric order.
            out.put_u64((*i as u64) ^ (1 << 63));
        }
        Value::Atom(Atom::Str(s)) => {
            out.put_u8(TAG_STR);
            out.put_u32(s.len() as u32);
            out.put_slice(s.as_bytes());
        }
    }
}

fn decode_value(buf: &mut &[u8]) -> Result<Value, CodecError> {
    if buf.is_empty() {
        return Err(CodecError::Truncated);
    }
    let tag = buf.get_u8();
    match tag {
        TAG_NULL => Ok(Value::Null),
        TAG_BOOL => {
            if buf.is_empty() {
                return Err(CodecError::Truncated);
            }
            Ok(Value::bool(buf.get_u8() != 0))
        }
        TAG_INT => {
            if buf.len() < 8 {
                return Err(CodecError::Truncated);
            }
            let raw = buf.get_u64();
            Ok(Value::int((raw ^ (1 << 63)) as i64))
        }
        TAG_STR => {
            if buf.len() < 4 {
                return Err(CodecError::Truncated);
            }
            let len = buf.get_u32() as usize;
            if buf.len() < len {
                return Err(CodecError::Truncated);
            }
            let (head, rest) = buf.split_at(len);
            let s = std::str::from_utf8(head).map_err(|_| CodecError::BadUtf8)?;
            *buf = rest;
            Ok(Value::str(s))
        }
        other => Err(CodecError::BadTag(other)),
    }
}

/// Encodes a tuple.
pub fn encode_tuple(t: &Tuple) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 * t.arity() + 2);
    out.put_u16(t.arity() as u16);
    for v in t.values() {
        encode_value(&mut out, v);
    }
    out
}

/// Decodes a tuple.
pub fn decode_tuple(mut buf: &[u8]) -> Result<Tuple, CodecError> {
    if buf.len() < 2 {
        return Err(CodecError::Truncated);
    }
    let arity = buf.get_u16() as usize;
    let mut values = Vec::with_capacity(arity);
    for _ in 0..arity {
        values.push(decode_value(&mut buf)?);
    }
    Ok(Tuple::new(values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dme_value::tuple;

    #[test]
    fn round_trip() {
        for t in [
            tuple![],
            tuple!["G.Wayshum", 50],
            tuple![Value::Null, "T.Manhart", "NZ745"],
            tuple![true, false, -5, i64::MIN, i64::MAX, ""],
        ] {
            let bytes = encode_tuple(&t);
            assert_eq!(decode_tuple(&bytes), Ok(t));
        }
    }

    #[test]
    fn int_key_order_matches_numeric_order() {
        let nums = [i64::MIN, -100, -1, 0, 1, 42, i64::MAX];
        let encoded: Vec<Vec<u8>> = nums.iter().map(|&n| encode_tuple(&tuple![n])).collect();
        let mut sorted = encoded.clone();
        sorted.sort();
        assert_eq!(encoded, sorted);
    }

    #[test]
    fn truncation_detected() {
        let bytes = encode_tuple(&tuple!["hello", 42]);
        for cut in 0..bytes.len() {
            assert!(
                decode_tuple(&bytes[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn bad_tag_detected() {
        let mut bytes = encode_tuple(&tuple![1]);
        bytes[2] = 99;
        assert_eq!(decode_tuple(&bytes), Err(CodecError::BadTag(99)));
    }

    #[test]
    fn bad_utf8_detected() {
        let mut bytes = encode_tuple(&tuple!["ab"]);
        let n = bytes.len();
        bytes[n - 1] = 0xff;
        assert_eq!(decode_tuple(&bytes), Err(CodecError::BadUtf8));
    }

    #[test]
    fn error_display() {
        assert_eq!(CodecError::Truncated.to_string(), "truncated record");
    }
}
