//! Events and the monotonic counter vocabulary.

use std::fmt;

use crate::json::escape;
use crate::trace::TraceId;

/// The fixed vocabulary of monotonic counters. A closed enum (rather
/// than arbitrary strings) keeps the hot-path increment a single indexed
/// atomic add and makes transcripts join-able across runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(usize)]
pub enum Counter {
    /// Engine nodes charged against the budget: state applications,
    /// signature compositions and reachability expansions.
    NodesExpanded,
    /// Valid states produced by closure enumeration.
    StatesEnumerated,
    /// States compiled to fact bases (interner hits and misses alike).
    StatesCompiled,
    /// Fact-base compilations answered from the interner cache.
    InternerHits,
    /// Fact-base compilations that had to run `to_facts`.
    InternerMisses,
    /// Behaviour signatures built (one per operation per check).
    SignaturesBuilt,
    /// Signatures produced while closing under composition.
    SignaturesComposed,
    /// States visited by per-state reachability searches.
    ReachabilityExpansions,
    /// §3.3.1 pairing checks performed (1-1 and onto verification).
    PairingChecks,
    /// Definition 6 grid cells (application-model pairs) examined.
    GridCells,
    /// Counterexample witnesses found.
    WitnessesFound,
    /// Scans cancelled early by a first counterexample.
    EarlyExits,
    /// Checks stopped by a blown node or wall-clock budget.
    BudgetTrips,
    /// Operations produced by operation enumeration.
    OpsEnumerated,
    /// Operations produced by the cross-model translators.
    OpsTranslated,
    /// Undo entries recorded by the storage journal.
    JournalEntries,
    /// Undo entries replayed by aborted transactions.
    UndoReplays,
    /// ANSI/SPARC consistency audits run.
    AuditsRun,
    /// Sessions opened against the session service.
    SessionsOpened,
    /// Transactions committed by the session service.
    TxnsCommitted,
    /// Transactions aborted by the session service (failed operations).
    TxnsAborted,
    /// Optimistic-commit conflicts (each one triggers a client retry).
    TxnConflicts,
    /// Group-commit batches flushed through the write-ahead log (one
    /// device sync each, covering one or more transactions).
    GroupCommits,
    /// Write-ahead-log records appended (one per committed transaction).
    WalRecordsAppended,
    /// Checkpoints taken of the conceptual state.
    CheckpointsTaken,
    /// Write-ahead-log records replayed during crash recovery.
    WalRecordsReplayed,
    /// Frontier probes answered by the state arena (successor already
    /// interned; no new state constructed).
    ArenaHits,
    /// Frontier probes that interned a genuinely new state.
    ArenaMisses,
    /// Incremental re-checks answered from the session verdict cache
    /// (no closure work at all).
    VerdictCacheHits,
    /// Incremental re-checks that missed the verdict cache and ran the
    /// engine.
    VerdictCacheMisses,
    /// Session closure caches invalidated because the model's universe
    /// (name, initial state, constraints) changed between runs.
    CacheInvalidations,
    /// Memoized transition-column entries reused by an incremental
    /// re-expansion instead of re-applying the operation.
    TransitionsReused,
    /// Transition-column entries computed fresh by an incremental
    /// re-expansion (new operation, new state, or cold cache).
    TransitionsRecomputed,
    /// Engine runs whose §3.3.1 pairing was rebuilt from a session's
    /// harvested rank cache instead of recompiling every state.
    PairingsReused,
    /// Wire requests served to completion by the network front door
    /// (every decoded frame that got a response, including errors).
    RequestsServed,
    /// Wire requests shed by admission control (bounded queue full —
    /// answered with a typed `Overloaded` response, never enqueued).
    RequestsShed,
    /// Committed transactions whose write set spanned more than one
    /// shard (serialized through multi-shard WAL appends).
    CrossShardCommits,
    /// CNF clauses emitted by the symbolic tier's encoders (path
    /// unrollings, constraint encodings, blocking clauses).
    SymbolicClauses,
    /// Conflicts hit by the symbolic tier's CDCL core across all solver
    /// queries of a check.
    SymbolicConflicts,
    /// Symbolic checks that ran out of bound before reaching the
    /// closure fixpoint — "no verdict", never "equivalent".
    BoundExhausted,
    /// Restarts taken by the symbolic tier's CDCL core (backtrack to
    /// the root after a conflict-count threshold, phases preserved).
    SymbolicRestarts,
    /// `TraceLookup` admin queries answered from the trace hub
    /// (hits and misses alike).
    TraceLookups,
    /// Delta telemetry snapshots pushed to `WatchMetrics` subscribers
    /// over the wire.
    MetricsDeltasStreamed,
    /// Snapshot handles opened by sessions (each an O(1) LSN pin over
    /// the shared state, never a state clone).
    SnapshotOpens,
    /// MVCC versions reclaimed by checkpoint-time garbage collection
    /// (unobservable behind the oldest live snapshot pin).
    VersionsGcd,
    /// Bytes of checkpoint images appended (full and incremental).
    CheckpointBytes,
    /// Bytes of WAL record payloads folded during crash recovery.
    ReplayBytes,
}

impl Counter {
    /// Every counter, in declaration order (the order snapshot arrays
    /// are indexed in).
    pub const ALL: [Counter; 47] = [
        Counter::NodesExpanded,
        Counter::StatesEnumerated,
        Counter::StatesCompiled,
        Counter::InternerHits,
        Counter::InternerMisses,
        Counter::SignaturesBuilt,
        Counter::SignaturesComposed,
        Counter::ReachabilityExpansions,
        Counter::PairingChecks,
        Counter::GridCells,
        Counter::WitnessesFound,
        Counter::EarlyExits,
        Counter::BudgetTrips,
        Counter::OpsEnumerated,
        Counter::OpsTranslated,
        Counter::JournalEntries,
        Counter::UndoReplays,
        Counter::AuditsRun,
        Counter::SessionsOpened,
        Counter::TxnsCommitted,
        Counter::TxnsAborted,
        Counter::TxnConflicts,
        Counter::GroupCommits,
        Counter::WalRecordsAppended,
        Counter::CheckpointsTaken,
        Counter::WalRecordsReplayed,
        Counter::ArenaHits,
        Counter::ArenaMisses,
        Counter::VerdictCacheHits,
        Counter::VerdictCacheMisses,
        Counter::CacheInvalidations,
        Counter::TransitionsReused,
        Counter::TransitionsRecomputed,
        Counter::PairingsReused,
        Counter::RequestsServed,
        Counter::RequestsShed,
        Counter::CrossShardCommits,
        Counter::SymbolicClauses,
        Counter::SymbolicConflicts,
        Counter::BoundExhausted,
        Counter::SymbolicRestarts,
        Counter::TraceLookups,
        Counter::MetricsDeltasStreamed,
        Counter::SnapshotOpens,
        Counter::VersionsGcd,
        Counter::CheckpointBytes,
        Counter::ReplayBytes,
    ];

    /// Number of counters (the length of a snapshot array).
    pub const COUNT: usize = Self::ALL.len();

    /// The counter's stable snake_case name, used in transcripts and
    /// reports.
    pub fn name(self) -> &'static str {
        match self {
            Counter::NodesExpanded => "nodes_expanded",
            Counter::StatesEnumerated => "states_enumerated",
            Counter::StatesCompiled => "states_compiled",
            Counter::InternerHits => "interner_hits",
            Counter::InternerMisses => "interner_misses",
            Counter::SignaturesBuilt => "signatures_built",
            Counter::SignaturesComposed => "signatures_composed",
            Counter::ReachabilityExpansions => "reachability_expansions",
            Counter::PairingChecks => "pairing_checks",
            Counter::GridCells => "grid_cells",
            Counter::WitnessesFound => "witnesses_found",
            Counter::EarlyExits => "early_exits",
            Counter::BudgetTrips => "budget_trips",
            Counter::OpsEnumerated => "ops_enumerated",
            Counter::OpsTranslated => "ops_translated",
            Counter::JournalEntries => "journal_entries",
            Counter::UndoReplays => "undo_replays",
            Counter::AuditsRun => "audits_run",
            Counter::SessionsOpened => "sessions_opened",
            Counter::TxnsCommitted => "txns_committed",
            Counter::TxnsAborted => "txns_aborted",
            Counter::TxnConflicts => "txn_conflicts",
            Counter::GroupCommits => "group_commits",
            Counter::WalRecordsAppended => "wal_records_appended",
            Counter::CheckpointsTaken => "checkpoints_taken",
            Counter::WalRecordsReplayed => "wal_records_replayed",
            Counter::ArenaHits => "arena_hits",
            Counter::ArenaMisses => "arena_misses",
            Counter::VerdictCacheHits => "verdict_cache_hits",
            Counter::VerdictCacheMisses => "verdict_cache_misses",
            Counter::CacheInvalidations => "cache_invalidations",
            Counter::TransitionsReused => "transitions_reused",
            Counter::TransitionsRecomputed => "transitions_recomputed",
            Counter::PairingsReused => "pairings_reused",
            Counter::RequestsServed => "requests_served",
            Counter::RequestsShed => "requests_shed",
            Counter::CrossShardCommits => "cross_shard_commits",
            Counter::SymbolicClauses => "symbolic_clauses",
            Counter::SymbolicConflicts => "symbolic_conflicts",
            Counter::BoundExhausted => "bound_exhausted",
            Counter::SymbolicRestarts => "symbolic_restarts",
            Counter::TraceLookups => "trace_lookups",
            Counter::MetricsDeltasStreamed => "metrics_deltas_streamed",
            Counter::SnapshotOpens => "snapshot_opens",
            Counter::VersionsGcd => "versions_gcd",
            Counter::CheckpointBytes => "checkpoint_bytes",
            Counter::ReplayBytes => "replay_bytes",
        }
    }

    /// The snapshot-array index of this counter.
    pub fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What happened.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A phase began.
    SpanStart {
        /// Span id, unique within one observer.
        id: u64,
        /// The phase's stable name (e.g. `par/closure`).
        name: &'static str,
        /// Free-form detail (a model name, a tier, …). Empty when the
        /// caller had nothing to add.
        detail: String,
    },
    /// A phase ended.
    SpanEnd {
        /// The matching [`EventKind::SpanStart`] id.
        id: u64,
        /// The phase's stable name.
        name: &'static str,
        /// Wall-clock spent inside the span, in microseconds.
        elapsed_micros: u64,
        /// Counter deltas attributed to this span: counters whose value
        /// grew while the span was open, with the growth. Sorted by
        /// counter declaration order; zero deltas are omitted.
        counters: Vec<(Counter, u64)>,
    },
    /// A one-off point annotation (a verdict size, a cache statistic).
    Mark {
        /// The mark's stable name.
        name: &'static str,
        /// The value observed.
        value: u64,
    },
    /// A point on one request's causal path, tagged with its
    /// [`TraceId`]. Grepping a transcript for the 16-hex-digit id
    /// reconstructs the request's journey through the service.
    Trace {
        /// The step's stable name (e.g. `server/admit`).
        name: &'static str,
        /// The request's trace id.
        trace: TraceId,
        /// This step's span id within the trace (`0` when the emitter
        /// did not assign one — legacy flat trace points).
        span: u64,
        /// The parent step's span id (`0` for a root step or a flat
        /// trace point). Parent links let a `TraceAssembler` stitch one
        /// cross-shard transaction back into a single causal tree.
        parent: u64,
        /// Free-form detail (a tier name, an LSN, …). Empty when the
        /// caller had nothing to add.
        detail: String,
    },
}

/// One observed event: a sequence number, a monotonic timestamp (µs
/// since the observer was created) and the payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Global sequence number within one observer, starting at 0.
    pub seq: u64,
    /// Microseconds since the observer was created.
    pub at_micros: u64,
    /// The payload.
    pub kind: EventKind,
}

impl Event {
    /// Renders the event as one JSON object (no trailing newline) — the
    /// line format of [`crate::JsonLinesSink`].
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"seq\":{},\"at_us\":{},", self.seq, self.at_micros);
        match &self.kind {
            EventKind::SpanStart { id, name, detail } => {
                out.push_str(&format!(
                    "\"ev\":\"span_start\",\"id\":{id},\"name\":\"{}\"",
                    escape(name)
                ));
                if !detail.is_empty() {
                    out.push_str(&format!(",\"detail\":\"{}\"", escape(detail)));
                }
            }
            EventKind::SpanEnd {
                id,
                name,
                elapsed_micros,
                counters,
            } => {
                out.push_str(&format!(
                    "\"ev\":\"span_end\",\"id\":{id},\"name\":\"{}\",\"elapsed_us\":{elapsed_micros}",
                    escape(name)
                ));
                if !counters.is_empty() {
                    out.push_str(",\"counters\":{");
                    for (i, (c, v)) in counters.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        out.push_str(&format!("\"{}\":{v}", c.name()));
                    }
                    out.push('}');
                }
            }
            EventKind::Mark { name, value } => {
                out.push_str(&format!(
                    "\"ev\":\"mark\",\"name\":\"{}\",\"value\":{value}",
                    escape(name)
                ));
            }
            EventKind::Trace {
                name,
                trace,
                span,
                parent,
                detail,
            } => {
                out.push_str(&crate::trace::trace_json(name, *trace, *span, *parent, detail));
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_names_are_unique_and_indexed() {
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Counter::COUNT);
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        assert_eq!(Counter::NodesExpanded.to_string(), "nodes_expanded");
    }

    #[test]
    fn json_lines_render() {
        let e = Event {
            seq: 1,
            at_micros: 5,
            kind: EventKind::SpanStart {
                id: 7,
                name: "par/closure",
                detail: "model \"m\"".into(),
            },
        };
        assert_eq!(
            e.to_json(),
            "{\"seq\":1,\"at_us\":5,\"ev\":\"span_start\",\"id\":7,\"name\":\"par/closure\",\"detail\":\"model \\\"m\\\"\"}"
        );
        let e = Event {
            seq: 2,
            at_micros: 9,
            kind: EventKind::SpanEnd {
                id: 7,
                name: "par/closure",
                elapsed_micros: 4,
                counters: vec![(Counter::NodesExpanded, 10)],
            },
        };
        assert!(e.to_json().contains("\"counters\":{\"nodes_expanded\":10}"));
        let e = Event {
            seq: 3,
            at_micros: 11,
            kind: EventKind::Mark {
                name: "witnesses",
                value: 2,
            },
        };
        assert!(e.to_json().contains("\"ev\":\"mark\""));
    }
}
