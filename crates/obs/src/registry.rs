//! Per-shard metric registries with lock-free mergeable snapshots.
//!
//! The sharded session service runs one commit lane per shard; a single
//! global counter table can say "9 requests were shed" but not *which
//! lane* was saturated. A [`ShardRegistry`] gives every shard its own
//! counter table, latency [`MetricsRegistry`](crate::MetricsRegistry)
//! and a commit-lane depth gauge, all updated with relaxed atomics —
//! the hot path never takes a lock and never allocates.
//!
//! Snapshots are plain relaxed loads; merging is bucket-wise addition
//! (the same modular arithmetic the live atomics use), so the merged
//! view of N shards equals the view a single shared registry would have
//! produced, and per-shard snapshots from different scrapes can be
//! combined offline in any order.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::event::Counter;
use crate::metrics::{Histogram, HistogramSnapshot, Metric, MetricsRegistry};

/// One shard's metric surface: counters, latency histograms and a
/// commit-lane depth gauge.
pub struct ShardMetrics {
    counters: [AtomicU64; Counter::COUNT],
    metrics: MetricsRegistry,
    lane_depth: AtomicU64,
}

impl ShardMetrics {
    fn new() -> Self {
        ShardMetrics {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            metrics: MetricsRegistry::new(),
            lane_depth: AtomicU64::new(0),
        }
    }

    /// Increments a monotonic counter by `n` on this shard.
    #[inline]
    pub fn add(&self, counter: Counter, n: u64) {
        self.counters[counter.index()].fetch_add(n, Ordering::Relaxed);
    }

    /// The current value of one counter on this shard.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter.index()].load(Ordering::Relaxed)
    }

    /// Records one observation against `metric` on this shard.
    #[inline]
    pub fn record(&self, metric: Metric, value: u64) {
        self.metrics.histogram(metric).record(value);
    }

    /// The histogram behind `metric` on this shard.
    pub fn histogram(&self, metric: Metric) -> &Histogram {
        self.metrics.histogram(metric)
    }

    /// Sets the commit-lane depth gauge (pending requests queued on
    /// this shard's lane right now).
    #[inline]
    pub fn set_lane_depth(&self, depth: u64) {
        self.lane_depth.store(depth, Ordering::Relaxed);
    }

    /// The commit-lane depth gauge's current value.
    pub fn lane_depth(&self) -> u64 {
        self.lane_depth.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of this shard's counters, histograms and
    /// gauge.
    pub fn snapshot(&self) -> ShardSnapshot {
        ShardSnapshot {
            counters: Counter::ALL.iter().map(|c| (*c, self.counter(*c))).collect(),
            metrics: self.metrics.snapshot(),
            lane_depth: self.lane_depth(),
        }
    }
}

/// An immutable copy of one shard's metric surface (or of a merge of
/// several shards').
#[derive(Clone, Debug, Default)]
pub struct ShardSnapshot {
    /// Every counter's value, in [`Counter::ALL`] order (zeros kept so
    /// snapshots align index-wise for merging and deltas).
    pub counters: Vec<(Counter, u64)>,
    /// Every populated metric's histogram, in [`Metric::ALL`] order.
    pub metrics: Vec<(Metric, HistogramSnapshot)>,
    /// The commit-lane depth gauge. Merging sums gauges: the merged
    /// value is the total backlog across the merged lanes.
    pub lane_depth: u64,
}

impl ShardSnapshot {
    /// An all-zero snapshot with the full counter sample set (the
    /// identity for [`merge`](Self::merge)).
    pub fn empty() -> Self {
        ShardSnapshot {
            counters: Counter::ALL.iter().map(|c| (*c, 0)).collect(),
            metrics: Vec::new(),
            lane_depth: 0,
        }
    }

    /// Merges `other` into `self`: counters add (wrapping, matching the
    /// live atomics), histograms merge bucket-wise, gauges sum. Merging
    /// is associative and commutative.
    pub fn merge(&mut self, other: &ShardSnapshot) {
        for (slot, (c, v)) in self.counters.iter_mut().zip(&other.counters) {
            debug_assert_eq!(slot.0, *c, "snapshots must share the counter order");
            slot.1 = slot.1.wrapping_add(*v);
        }
        for (m, s) in &other.metrics {
            match self.metrics.iter_mut().find(|(have, _)| have == m) {
                Some((_, mine)) => mine.merge(s),
                None => {
                    self.metrics.push((*m, s.clone()));
                    self.metrics.sort_by_key(|(m, _)| m.index());
                }
            }
        }
        self.lane_depth = self.lane_depth.wrapping_add(other.lane_depth);
    }
}

/// A fixed table of one [`ShardMetrics`] per shard lane.
///
/// Built once at service construction (the shard count is a config
/// constant); shared behind an `Arc` by every lane, dispatcher and
/// exporter that needs it.
pub struct ShardRegistry {
    shards: Vec<ShardMetrics>,
}

impl ShardRegistry {
    /// A registry for `shards` lanes (at least one).
    pub fn new(shards: usize) -> Self {
        ShardRegistry {
            shards: (0..shards.max(1)).map(|_| ShardMetrics::new()).collect(),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The metric surface of shard `i`.
    ///
    /// # Panics
    /// When `i` is out of range — shard indices come from the router,
    /// which reduces modulo the shard count.
    pub fn shard(&self, i: usize) -> &ShardMetrics {
        &self.shards[i]
    }

    /// Per-shard snapshots, in shard order.
    pub fn snapshot(&self) -> Vec<ShardSnapshot> {
        self.shards.iter().map(ShardMetrics::snapshot).collect()
    }

    /// The merged view of every shard (what one shared registry would
    /// have recorded).
    pub fn merged(&self) -> ShardSnapshot {
        let mut out = ShardSnapshot::empty();
        for s in &self.shards {
            out.merge(&s.snapshot());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_shard_counts_stay_separate_and_merge_adds() {
        let reg = ShardRegistry::new(3);
        reg.shard(0).add(Counter::RequestsShed, 2);
        reg.shard(2).add(Counter::RequestsShed, 5);
        reg.shard(2).add(Counter::TxnsCommitted, 1);
        reg.shard(1).set_lane_depth(4);
        reg.shard(2).set_lane_depth(7);

        assert_eq!(reg.shard(0).counter(Counter::RequestsShed), 2);
        assert_eq!(reg.shard(1).counter(Counter::RequestsShed), 0);
        assert_eq!(reg.shard(2).counter(Counter::RequestsShed), 5);

        let merged = reg.merged();
        let shed = merged
            .counters
            .iter()
            .find(|(c, _)| *c == Counter::RequestsShed)
            .unwrap()
            .1;
        assert_eq!(shed, 7);
        assert_eq!(merged.lane_depth, 11, "gauges sum under merge");
    }

    #[test]
    fn histograms_merge_like_a_shared_registry() {
        let reg = ShardRegistry::new(2);
        reg.shard(0).record(Metric::CommitLatency, 100);
        reg.shard(1).record(Metric::CommitLatency, 250);
        reg.shard(1).record(Metric::AdmitLatency, 3);

        let merged = reg.merged();
        assert_eq!(merged.metrics.len(), 2);
        // Metric order follows declaration order regardless of which
        // shard populated what.
        assert_eq!(merged.metrics[0].0, Metric::AdmitLatency);
        assert_eq!(merged.metrics[1].0, Metric::CommitLatency);
        let commit = &merged.metrics[1].1;
        assert_eq!(commit.count, 2);
        assert_eq!(commit.sum, 350);
        assert_eq!(commit.max, 250);
    }

    #[test]
    fn merge_is_commutative() {
        let reg = ShardRegistry::new(2);
        reg.shard(0).add(Counter::WalRecordsAppended, 3);
        reg.shard(0).record(Metric::WalSyncLatency, 10);
        reg.shard(1).add(Counter::WalRecordsAppended, 4);
        reg.shard(1).record(Metric::ReplayLatency, 20);
        let snaps = reg.snapshot();
        let mut ab = snaps[0].clone();
        ab.merge(&snaps[1]);
        let mut ba = snaps[1].clone();
        ba.merge(&snaps[0]);
        assert_eq!(ab.lane_depth, ba.lane_depth);
        assert_eq!(ab.counters, ba.counters);
        assert_eq!(ab.metrics, ba.metrics);
    }
}
