#![deny(missing_docs)]

//! # dme-obs — observability for the equivalence engine
//!
//! Structured tracing and metrics for the decision procedures of *Data
//! Model Equivalence*: every checker tier, closure exploration, state
//! compilation, signature composition and storage transaction can report
//! what it did — and how long it took — without changing what it
//! computes.
//!
//! The design goals, in order:
//!
//! 1. **Zero cost when disabled.** [`Observer::disabled`] is a `None`
//!    behind a pointer-sized handle; every instrumentation call is a
//!    single branch. The hot loops of `dme-core::parallel` charge their
//!    counters at the same batching granularity as the engine's own
//!    budget meter, never per inner iteration.
//! 2. **Deterministic, machine-readable output.** Events carry a global
//!    sequence number and a monotonic timestamp; the JSON-lines
//!    transcript ([`JsonLinesSink`]) is a stable, line-oriented format a
//!    future PR (or a human with `jq`) can diff.
//! 3. **Per-phase attribution.** A [`SpanGuard`] snapshots the counter
//!    table when a phase starts and emits the *delta* when it ends, so a
//!    transcript says not just "12 ms in reachability" but "12 ms and
//!    48 210 node expansions in reachability".
//!
//! ## Quick start
//!
//! ```
//! use dme_obs::{Counter, Observer, Report, RingSink};
//!
//! let ring = RingSink::with_capacity(1024);
//! let obs = Observer::new(ring.clone());
//! {
//!     let _span = obs.span("demo/phase");
//!     obs.add(Counter::NodesExpanded, 42);
//! }
//! let report = Report::from_events(&ring.events());
//! assert_eq!(report.phase("demo/phase").unwrap().calls, 1);
//! println!("{report}");
//! ```

mod event;
mod export;
mod flight;
mod metrics;
mod observer;
mod registry;
mod report;
mod sink;
mod stitch;
mod trace;

pub use event::{Counter, Event, EventKind};
pub use export::{json_snapshot, prometheus_text, TelemetrySnapshot};
pub use flight::FlightRecorder;
pub use metrics::{Histogram, HistogramSnapshot, Metric, MetricsRegistry, TimerGuard, BUCKETS};
pub use observer::{Observer, SpanGuard};
pub use registry::{ShardMetrics, ShardRegistry, ShardSnapshot};
pub use report::{PhaseStats, Report};
pub use sink::{EventSink, JsonLinesSink, RingSink};
pub use stitch::{TraceAssembler, TraceEvent, TraceHub};
pub use trace::TraceId;

pub(crate) mod json {
    //! Minimal JSON string escaping (no external deps in this tree).

    /// Escapes `s` as the *contents* of a JSON string literal.
    ///
    /// The output is pure ASCII: control characters and all non-ASCII
    /// code points become `\uXXXX` escapes (non-BMP code points as
    /// UTF-16 surrogate pairs), so transcripts survive locale-naive
    /// tooling and byte-wise diffing.
    pub fn escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if c.is_ascii() && (c as u32) >= 0x20 => out.push(c),
                c => {
                    let mut units = [0u16; 2];
                    for unit in c.encode_utf16(&mut units) {
                        out.push_str(&format!("\\u{:04x}", unit));
                    }
                }
            }
        }
        out
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn escapes_specials() {
            assert_eq!(super::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
            assert_eq!(super::escape("\u{1}"), "\\u0001");
        }

        #[test]
        fn escapes_non_ascii_and_non_bmp() {
            assert_eq!(super::escape("é"), "\\u00e9");
            assert_eq!(super::escape("€"), "\\u20ac");
            // U+1F600 as a UTF-16 surrogate pair.
            assert_eq!(super::escape("\u{1F600}"), "\\ud83d\\ude00");
            assert!(super::escape("π🎉").is_ascii());
        }
    }
}
