//! Exporters: stable text renderings of an observer's counters and
//! latency histograms.
//!
//! Two formats, both with deterministic field ordering (declaration
//! order of [`Counter::ALL`] and [`Metric::ALL`]):
//!
//! * [`prometheus_text`] — the Prometheus exposition text format:
//!   every counter as a `dme_counter{name="…"}` sample, every
//!   populated histogram as a `dme_latency_us{metric="…"}` summary
//!   with `quantile` labels plus `_sum`/`_count` samples.
//! * [`json_snapshot`] — one JSON object with `counters` (non-zero
//!   only) and `metrics` (populated only) maps, including the sparse
//!   bucket table so snapshots from different processes can be merged
//!   offline.

use crate::event::Counter;
use crate::json::escape;
use crate::metrics::{HistogramSnapshot, Metric};
use crate::registry::{ShardRegistry, ShardSnapshot};
use crate::Observer;

/// A point-in-time copy of everything an exporter needs: all counter
/// values, every populated histogram, and (when the process is
/// sharded) every shard lane's own registry.
#[derive(Clone, Debug, Default)]
pub struct TelemetrySnapshot {
    /// Every counter's current value, in [`Counter::ALL`] order
    /// (zeros included, so the sample set is fixed).
    pub counters: Vec<(Counter, u64)>,
    /// Every populated metric's histogram, in [`Metric::ALL`] order.
    pub metrics: Vec<(Metric, HistogramSnapshot)>,
    /// Per-shard registries, in shard order. Empty for unsharded
    /// processes — the renders are then byte-identical to the
    /// pre-sharding format.
    pub shards: Vec<ShardSnapshot>,
}

impl TelemetrySnapshot {
    /// Captures the observer's current state. Disabled observers yield
    /// an all-zero snapshot (still with the full counter sample set).
    pub fn capture(obs: &Observer) -> Self {
        TelemetrySnapshot {
            // Unlike `Observer::counters`, zeros stay: exporters need a
            // fixed sample set across scrapes.
            counters: Counter::ALL.iter().map(|c| (*c, obs.counter(*c))).collect(),
            metrics: obs.histograms(),
            shards: Vec::new(),
        }
    }

    /// Captures the observer plus every shard lane's registry.
    pub fn capture_with_shards(obs: &Observer, shards: &ShardRegistry) -> Self {
        let mut snap = Self::capture(obs);
        snap.shards = shards.snapshot();
        snap
    }

    /// The merged view of every shard in this snapshot (the identity
    /// [`ShardSnapshot::empty`] when unsharded).
    pub fn merged_shards(&self) -> ShardSnapshot {
        let mut out = ShardSnapshot::empty();
        for s in &self.shards {
            out.merge(s);
        }
        out
    }

    /// The delta of this snapshot against an earlier one: counters and
    /// histogram buckets subtract (wrapping, so wrapped atomics stay
    /// consistent), gauges keep their *current* value, `max` keeps the
    /// current high-water mark. Metrics whose count did not move are
    /// dropped. This is the frame format `WatchMetrics` streams: each
    /// push says what happened *since the previous push*.
    pub fn delta(&self, prev: &TelemetrySnapshot) -> TelemetrySnapshot {
        let counters = self
            .counters
            .iter()
            .map(|(c, v)| {
                let before = prev
                    .counters
                    .iter()
                    .find(|(pc, _)| pc == c)
                    .map(|(_, pv)| *pv)
                    .unwrap_or(0);
                (*c, v.wrapping_sub(before))
            })
            .collect();
        let metrics = delta_metrics(&self.metrics, &prev.metrics);
        let shards = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let before = prev.shards.get(i);
                ShardSnapshot {
                    counters: s
                        .counters
                        .iter()
                        .map(|(c, v)| {
                            let bv = before
                                .and_then(|b| b.counters.iter().find(|(bc, _)| bc == c))
                                .map(|(_, bv)| *bv)
                                .unwrap_or(0);
                            (*c, v.wrapping_sub(bv))
                        })
                        .collect(),
                    metrics: delta_metrics(
                        &s.metrics,
                        before.map(|b| b.metrics.as_slice()).unwrap_or(&[]),
                    ),
                    // A gauge has no meaningful difference; report the
                    // current depth.
                    lane_depth: s.lane_depth,
                }
            })
            .collect();
        TelemetrySnapshot {
            counters,
            metrics,
            shards,
        }
    }

    /// Renders the snapshot in the Prometheus exposition text format.
    ///
    /// Sharded snapshots additionally render every lane's registry as
    /// `shard="N"`-labelled families (`dme_shard_counter`,
    /// `dme_shard_latency_us`, `dme_shard_lane_depth`) after the
    /// merged/global view; per-shard counters render only non-zero
    /// samples to keep the scrape proportional to activity.
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        out.push_str("# HELP dme_counter Monotonic engine and service counters.\n");
        out.push_str("# TYPE dme_counter counter\n");
        for (c, v) in &self.counters {
            out.push_str(&format!("dme_counter{{name=\"{}\"}} {v}\n", c.name()));
        }
        out.push_str("# HELP dme_latency_us Log-bucketed latency summaries (microseconds).\n");
        out.push_str("# TYPE dme_latency_us summary\n");
        for (m, s) in &self.metrics {
            render_summary(&mut out, "dme_latency_us", &format!("metric=\"{}\"", m.name()), s);
        }
        if !self.shards.is_empty() {
            out.push_str("# HELP dme_shard_counter Per-shard monotonic counters (non-zero only).\n");
            out.push_str("# TYPE dme_shard_counter counter\n");
            for (i, shard) in self.shards.iter().enumerate() {
                for (c, v) in &shard.counters {
                    if *v != 0 {
                        out.push_str(&format!(
                            "dme_shard_counter{{shard=\"{i}\",name=\"{}\"}} {v}\n",
                            c.name()
                        ));
                    }
                }
            }
            out.push_str("# HELP dme_shard_lane_depth Commit-lane queue depth per shard.\n");
            out.push_str("# TYPE dme_shard_lane_depth gauge\n");
            for (i, shard) in self.shards.iter().enumerate() {
                out.push_str(&format!(
                    "dme_shard_lane_depth{{shard=\"{i}\"}} {}\n",
                    shard.lane_depth
                ));
            }
            out.push_str(
                "# HELP dme_shard_latency_us Per-shard log-bucketed latency summaries (microseconds).\n",
            );
            out.push_str("# TYPE dme_shard_latency_us summary\n");
            for (i, shard) in self.shards.iter().enumerate() {
                for (m, s) in &shard.metrics {
                    render_summary(
                        &mut out,
                        "dme_shard_latency_us",
                        &format!("shard=\"{i}\",metric=\"{}\"", m.name()),
                        s,
                    );
                }
            }
        }
        out
    }

    /// Renders the snapshot as one JSON object (no trailing newline):
    /// `{"counters":{…non-zero…},"metrics":{name:{count,sum,max,p50,
    /// p95,p99,buckets:[[bucket,count],…]}}}`. Sharded snapshots gain a
    /// `"shards"` array with one `{shard,lane_depth,counters,metrics}`
    /// object per lane; unsharded output is byte-identical to the
    /// pre-sharding format.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        push_counters_json(&mut out, &self.counters);
        out.push(',');
        push_metrics_json(&mut out, &self.metrics);
        if !self.shards.is_empty() {
            out.push_str(",\"shards\":[");
            for (i, shard) in self.shards.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"shard\":{i},\"lane_depth\":{},",
                    shard.lane_depth
                ));
                push_counters_json(&mut out, &shard.counters);
                out.push(',');
                push_metrics_json(&mut out, &shard.metrics);
                out.push('}');
            }
            out.push(']');
        }
        out.push('}');
        out
    }
}

/// Appends `"counters":{…non-zero…}` to `out`.
fn push_counters_json(out: &mut String, counters: &[(Counter, u64)]) {
    out.push_str("\"counters\":{");
    let mut first = true;
    for (c, v) in counters {
        if *v == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\"{}\":{v}", c.name()));
    }
    out.push('}');
}

/// Appends `"metrics":{…}` to `out`.
fn push_metrics_json(out: &mut String, metrics: &[(Metric, HistogramSnapshot)]) {
    out.push_str("\"metrics\":{");
    for (i, (m, s)) in metrics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\"{}\":{{\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":[",
            escape(m.name()),
            s.count,
            s.sum,
            s.max,
            s.p50(),
            s.p95(),
            s.p99()
        ));
        let mut first_bucket = true;
        for (b, n) in s.buckets.iter().enumerate() {
            if *n == 0 {
                continue;
            }
            if !first_bucket {
                out.push(',');
            }
            first_bucket = false;
            out.push_str(&format!("[{b},{n}]"));
        }
        out.push_str("]}");
    }
    out.push('}');
}

/// Appends one Prometheus summary (quantiles + `_sum`/`_count`) for a
/// histogram under `family{labels}`.
fn render_summary(out: &mut String, family: &str, labels: &str, s: &HistogramSnapshot) {
    for (q, v) in [
        ("0.5", s.p50()),
        ("0.95", s.p95()),
        ("0.99", s.p99()),
        ("1", s.max),
    ] {
        out.push_str(&format!("{family}{{{labels},quantile=\"{q}\"}} {v}\n"));
    }
    out.push_str(&format!("{family}_sum{{{labels}}} {}\n", s.sum));
    out.push_str(&format!("{family}_count{{{labels}}} {}\n", s.count));
}

/// Histogram deltas between two captures: buckets, count and sum
/// subtract (wrapping); `max` keeps the current high-water mark.
/// Metrics that did not move are dropped.
fn delta_metrics(
    now: &[(Metric, HistogramSnapshot)],
    prev: &[(Metric, HistogramSnapshot)],
) -> Vec<(Metric, HistogramSnapshot)> {
    now.iter()
        .filter_map(|(m, s)| {
            let before = prev.iter().find(|(pm, _)| pm == m).map(|(_, ps)| ps);
            let mut d = s.clone();
            if let Some(ps) = before {
                for (a, b) in d.buckets.iter_mut().zip(&ps.buckets) {
                    *a = a.wrapping_sub(*b);
                }
                d.count = d.count.wrapping_sub(ps.count);
                d.sum = d.sum.wrapping_sub(ps.sum);
            }
            (d.count > 0).then_some((*m, d))
        })
        .collect()
}

/// Captures `obs` and renders it in the Prometheus exposition format.
pub fn prometheus_text(obs: &Observer) -> String {
    TelemetrySnapshot::capture(obs).to_prometheus_text()
}

/// Captures `obs` and renders it as one JSON object.
pub fn json_snapshot(obs: &Observer) -> String {
    TelemetrySnapshot::capture(obs).to_json()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RingSink;

    fn sample_observer() -> Observer {
        let obs = Observer::new(RingSink::with_capacity(8));
        obs.add(Counter::TxnsCommitted, 4);
        obs.record(Metric::CommitLatency, 100);
        obs.record(Metric::CommitLatency, 250);
        obs
    }

    #[test]
    fn prometheus_text_has_fixed_counter_sample_set() {
        let text = prometheus_text(&sample_observer());
        // All 26 counters present, zero or not.
        assert_eq!(
            text.matches("dme_counter{").count(),
            Counter::COUNT,
            "{text}"
        );
        assert!(text.contains("dme_counter{name=\"txns_committed\"} 4"));
        assert!(text.contains("dme_counter{name=\"nodes_expanded\"} 0"));
        assert!(text.contains("dme_latency_us{metric=\"commit_latency_us\",quantile=\"0.5\"} 127"));
        assert!(text.contains("dme_latency_us_count{metric=\"commit_latency_us\"} 2"));
        assert!(text.contains("dme_latency_us_sum{metric=\"commit_latency_us\"} 350"));
    }

    #[test]
    fn json_snapshot_omits_zeros_and_carries_buckets() {
        let json = json_snapshot(&sample_observer());
        assert!(
            json.contains("\"counters\":{\"txns_committed\":4}"),
            "{json}"
        );
        assert!(json.contains("\"commit_latency_us\":{\"count\":2,\"sum\":350,\"max\":250"));
        // 100 has bit length 7, 250 has bit length 8.
        assert!(json.contains("\"buckets\":[[7,1],[8,1]]"), "{json}");
    }

    #[test]
    fn disabled_observer_exports_cleanly() {
        let obs = Observer::disabled();
        let text = prometheus_text(&obs);
        assert_eq!(text.matches("dme_counter{").count(), Counter::COUNT);
        assert!(!text.contains("dme_latency_us{"));
        assert_eq!(json_snapshot(&obs), "{\"counters\":{},\"metrics\":{}}");
    }

    fn sharded_snapshot() -> TelemetrySnapshot {
        let reg = ShardRegistry::new(2);
        reg.shard(0).add(Counter::RequestsShed, 3);
        reg.shard(0).set_lane_depth(5);
        reg.shard(1).add(Counter::TxnsCommitted, 2);
        reg.shard(1).record(Metric::CommitLatency, 100);
        TelemetrySnapshot::capture_with_shards(&sample_observer(), &reg)
    }

    #[test]
    fn sharded_render_labels_every_lane() {
        let snap = sharded_snapshot();
        let text = snap.to_prometheus_text();
        // The merged/global families are unchanged.
        assert_eq!(text.matches("dme_counter{").count(), Counter::COUNT);
        assert!(text.contains("dme_shard_counter{shard=\"0\",name=\"requests_shed\"} 3"));
        assert!(text.contains("dme_shard_counter{shard=\"1\",name=\"txns_committed\"} 2"));
        assert!(text.contains("dme_shard_lane_depth{shard=\"0\"} 5"));
        assert!(text.contains("dme_shard_lane_depth{shard=\"1\"} 0"));
        assert!(text.contains(
            "dme_shard_latency_us_count{shard=\"1\",metric=\"commit_latency_us\"} 1"
        ));
        let json = snap.to_json();
        assert!(json.contains("\"shards\":[{\"shard\":0,\"lane_depth\":5,"), "{json}");
        assert!(json.contains("\"requests_shed\":3"), "{json}");
        let merged = snap.merged_shards();
        let shed = merged
            .counters
            .iter()
            .find(|(c, _)| *c == Counter::RequestsShed)
            .unwrap()
            .1;
        assert_eq!(shed, 3);
    }

    #[test]
    fn deltas_subtract_counters_and_buckets() {
        let obs = sample_observer();
        let before = TelemetrySnapshot::capture(&obs);
        obs.add(Counter::TxnsCommitted, 6);
        obs.record(Metric::CommitLatency, 100);
        obs.record(Metric::AdmitLatency, 9);
        let after = TelemetrySnapshot::capture(&obs);
        let d = after.delta(&before);
        let committed = d
            .counters
            .iter()
            .find(|(c, _)| *c == Counter::TxnsCommitted)
            .unwrap()
            .1;
        assert_eq!(committed, 6, "delta counts only the new commits");
        // commit_latency moved by one sample; the two old samples
        // cancel out.
        let commit = d
            .metrics
            .iter()
            .find(|(m, _)| *m == Metric::CommitLatency)
            .unwrap();
        assert_eq!(commit.1.count, 1);
        assert_eq!(commit.1.sum, 100);
        let admit = d
            .metrics
            .iter()
            .find(|(m, _)| *m == Metric::AdmitLatency)
            .unwrap();
        assert_eq!(admit.1.count, 1);
        // A snapshot minus itself is all zeros and drops every metric.
        let zero = after.delta(&after);
        assert!(zero.counters.iter().all(|(_, v)| *v == 0));
        assert!(zero.metrics.is_empty());
    }

    #[test]
    fn shard_deltas_track_per_lane_movement() {
        let reg = ShardRegistry::new(2);
        let obs = Observer::disabled();
        reg.shard(0).add(Counter::RequestsShed, 1);
        let before = TelemetrySnapshot::capture_with_shards(&obs, &reg);
        reg.shard(0).add(Counter::RequestsShed, 4);
        reg.shard(1).set_lane_depth(9);
        let after = TelemetrySnapshot::capture_with_shards(&obs, &reg);
        let d = after.delta(&before);
        assert_eq!(d.shards.len(), 2);
        let shed = d.shards[0]
            .counters
            .iter()
            .find(|(c, _)| *c == Counter::RequestsShed)
            .unwrap()
            .1;
        assert_eq!(shed, 4);
        assert_eq!(d.shards[1].lane_depth, 9, "gauges report current depth");
    }
}
