//! Exporters: stable text renderings of an observer's counters and
//! latency histograms.
//!
//! Two formats, both with deterministic field ordering (declaration
//! order of [`Counter::ALL`] and [`Metric::ALL`]):
//!
//! * [`prometheus_text`] — the Prometheus exposition text format:
//!   every counter as a `dme_counter{name="…"}` sample, every
//!   populated histogram as a `dme_latency_us{metric="…"}` summary
//!   with `quantile` labels plus `_sum`/`_count` samples.
//! * [`json_snapshot`] — one JSON object with `counters` (non-zero
//!   only) and `metrics` (populated only) maps, including the sparse
//!   bucket table so snapshots from different processes can be merged
//!   offline.

use crate::event::Counter;
use crate::json::escape;
use crate::metrics::{HistogramSnapshot, Metric};
use crate::Observer;

/// A point-in-time copy of everything an exporter needs: all counter
/// values and every populated histogram.
#[derive(Clone, Debug, Default)]
pub struct TelemetrySnapshot {
    /// Every counter's current value, in [`Counter::ALL`] order
    /// (zeros included, so the sample set is fixed).
    pub counters: Vec<(Counter, u64)>,
    /// Every populated metric's histogram, in [`Metric::ALL`] order.
    pub metrics: Vec<(Metric, HistogramSnapshot)>,
}

impl TelemetrySnapshot {
    /// Captures the observer's current state. Disabled observers yield
    /// an all-zero snapshot (still with the full counter sample set).
    pub fn capture(obs: &Observer) -> Self {
        TelemetrySnapshot {
            // Unlike `Observer::counters`, zeros stay: exporters need a
            // fixed sample set across scrapes.
            counters: Counter::ALL.iter().map(|c| (*c, obs.counter(*c))).collect(),
            metrics: obs.histograms(),
        }
    }

    /// Renders the snapshot in the Prometheus exposition text format.
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        out.push_str("# HELP dme_counter Monotonic engine and service counters.\n");
        out.push_str("# TYPE dme_counter counter\n");
        for (c, v) in &self.counters {
            out.push_str(&format!("dme_counter{{name=\"{}\"}} {v}\n", c.name()));
        }
        out.push_str("# HELP dme_latency_us Log-bucketed latency summaries (microseconds).\n");
        out.push_str("# TYPE dme_latency_us summary\n");
        for (m, s) in &self.metrics {
            let name = m.name();
            for (q, v) in [
                ("0.5", s.p50()),
                ("0.95", s.p95()),
                ("0.99", s.p99()),
                ("1", s.max),
            ] {
                out.push_str(&format!(
                    "dme_latency_us{{metric=\"{name}\",quantile=\"{q}\"}} {v}\n"
                ));
            }
            out.push_str(&format!(
                "dme_latency_us_sum{{metric=\"{name}\"}} {}\n",
                s.sum
            ));
            out.push_str(&format!(
                "dme_latency_us_count{{metric=\"{name}\"}} {}\n",
                s.count
            ));
        }
        out
    }

    /// Renders the snapshot as one JSON object (no trailing newline):
    /// `{"counters":{…non-zero…},"metrics":{name:{count,sum,max,p50,
    /// p95,p99,buckets:[[bucket,count],…]}}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        let mut first = true;
        for (c, v) in &self.counters {
            if *v == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\"{}\":{v}", c.name()));
        }
        out.push_str("},\"metrics\":{");
        for (i, (m, s)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":[",
                escape(m.name()),
                s.count,
                s.sum,
                s.max,
                s.p50(),
                s.p95(),
                s.p99()
            ));
            let mut first_bucket = true;
            for (b, n) in s.buckets.iter().enumerate() {
                if *n == 0 {
                    continue;
                }
                if !first_bucket {
                    out.push(',');
                }
                first_bucket = false;
                out.push_str(&format!("[{b},{n}]"));
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

/// Captures `obs` and renders it in the Prometheus exposition format.
pub fn prometheus_text(obs: &Observer) -> String {
    TelemetrySnapshot::capture(obs).to_prometheus_text()
}

/// Captures `obs` and renders it as one JSON object.
pub fn json_snapshot(obs: &Observer) -> String {
    TelemetrySnapshot::capture(obs).to_json()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RingSink;

    fn sample_observer() -> Observer {
        let obs = Observer::new(RingSink::with_capacity(8));
        obs.add(Counter::TxnsCommitted, 4);
        obs.record(Metric::CommitLatency, 100);
        obs.record(Metric::CommitLatency, 250);
        obs
    }

    #[test]
    fn prometheus_text_has_fixed_counter_sample_set() {
        let text = prometheus_text(&sample_observer());
        // All 26 counters present, zero or not.
        assert_eq!(
            text.matches("dme_counter{").count(),
            Counter::COUNT,
            "{text}"
        );
        assert!(text.contains("dme_counter{name=\"txns_committed\"} 4"));
        assert!(text.contains("dme_counter{name=\"nodes_expanded\"} 0"));
        assert!(text.contains("dme_latency_us{metric=\"commit_latency_us\",quantile=\"0.5\"} 127"));
        assert!(text.contains("dme_latency_us_count{metric=\"commit_latency_us\"} 2"));
        assert!(text.contains("dme_latency_us_sum{metric=\"commit_latency_us\"} 350"));
    }

    #[test]
    fn json_snapshot_omits_zeros_and_carries_buckets() {
        let json = json_snapshot(&sample_observer());
        assert!(
            json.contains("\"counters\":{\"txns_committed\":4}"),
            "{json}"
        );
        assert!(json.contains("\"commit_latency_us\":{\"count\":2,\"sum\":350,\"max\":250"));
        // 100 has bit length 7, 250 has bit length 8.
        assert!(json.contains("\"buckets\":[[7,1],[8,1]]"), "{json}");
    }

    #[test]
    fn disabled_observer_exports_cleanly() {
        let obs = Observer::disabled();
        let text = prometheus_text(&obs);
        assert_eq!(text.matches("dme_counter{").count(), Counter::COUNT);
        assert!(!text.contains("dme_latency_us{"));
        assert_eq!(json_snapshot(&obs), "{\"counters\":{},\"metrics\":{}}");
    }
}
