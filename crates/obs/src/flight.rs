//! The flight recorder: a black box for crashing services.
//!
//! A [`FlightRecorder`] owns a bounded [`RingSink`] of recent events
//! and the [`Observer`] writing into it. On demand — or from a panic
//! hook armed with [`FlightRecorder::arm_panic_hook`] — it dumps the
//! surviving ring, a histogram snapshot and the full counter table to
//! a JSON-lines debug file, so an injected fault (or a real crash)
//! leaves a readable record of the service's last moments.
//!
//! The dump format is line-oriented JSON: a `flight_header` line, one
//! line per surviving event (the [`Event::to_json`] format), and a
//! final `flight_snapshot` line carrying the exporter JSON of
//! [`TelemetrySnapshot`](crate::TelemetrySnapshot).

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::export::TelemetrySnapshot;
use crate::sink::RingSink;
use crate::Observer;

/// A crash flight recorder: ring of recent events + metrics snapshot,
/// dumpable to a debug file at any moment.
#[derive(Clone)]
pub struct FlightRecorder {
    ring: RingSink,
    obs: Observer,
}

impl FlightRecorder {
    /// A recorder keeping the most recent `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        let ring = RingSink::with_capacity(capacity);
        let obs = Observer::new(ring.clone());
        FlightRecorder { ring, obs }
    }

    /// The observer to thread through instrumented code. Clones share
    /// the recorder's ring and counter/metric tables.
    pub fn observer(&self) -> Observer {
        self.obs.clone()
    }

    /// The underlying ring (for direct inspection in tests).
    pub fn ring(&self) -> &RingSink {
        &self.ring
    }

    /// Renders the black-box contents: header line, surviving events
    /// (oldest first), telemetry snapshot line.
    pub fn dump_string(&self) -> String {
        let events = self.ring.events();
        let mut out = format!(
            "{{\"ev\":\"flight_header\",\"events\":{},\"recorded\":{}}}\n",
            events.len(),
            self.ring.recorded()
        );
        for event in &events {
            out.push_str(&event.to_json());
            out.push('\n');
        }
        out.push_str(&format!(
            "{{\"ev\":\"flight_snapshot\",\"telemetry\":{}}}\n",
            TelemetrySnapshot::capture(&self.obs).to_json()
        ));
        out
    }

    /// Writes [`dump_string`](Self::dump_string) to `path`, creating
    /// parent directories as needed.
    pub fn dump_to(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut file = std::fs::File::create(path)?;
        file.write_all(self.dump_string().as_bytes())?;
        file.flush()
    }

    /// Arms a process-wide panic hook that dumps this recorder to
    /// `path` before delegating to the previously installed hook.
    /// Re-arming replaces the destination (the hooks chain, but each
    /// recorder dump is cheap and idempotent). Returns the recorder
    /// for chaining.
    pub fn arm_panic_hook(&self, path: impl Into<PathBuf>) -> &Self {
        let recorder = self.clone();
        let path: PathBuf = path.into();
        let previous = std::panic::take_hook();
        let guard: Mutex<()> = Mutex::new(());
        std::panic::set_hook(Box::new(move |info| {
            // Serialize concurrent panicking threads so dumps don't
            // interleave mid-write.
            let _lock = guard.lock().unwrap_or_else(|e| e.into_inner());
            let _ = recorder.dump_to(&path);
            previous(info);
        }));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metric;
    use crate::trace::TraceId;
    use crate::Counter;

    #[test]
    fn dump_contains_ring_and_snapshot() {
        let recorder = FlightRecorder::with_capacity(4);
        let obs = recorder.observer();
        obs.add(Counter::TxnsCommitted, 2);
        obs.record(Metric::CommitLatency, 33);
        for i in 0..6u64 {
            obs.mark("step", i);
        }
        let dump = recorder.dump_string();
        let lines: Vec<&str> = dump.lines().collect();
        // Header + 4 surviving events + snapshot.
        assert_eq!(lines.len(), 6, "{dump}");
        assert!(lines[0].contains("\"ev\":\"flight_header\""));
        assert!(lines[0].contains("\"events\":4"));
        assert!(lines[0].contains("\"recorded\":6"));
        // Oldest two marks were overwritten.
        assert!(lines[1].contains("\"value\":2"));
        assert!(lines[4].contains("\"value\":5"));
        let last = lines.last().unwrap();
        assert!(last.contains("\"ev\":\"flight_snapshot\""));
        assert!(last.contains("\"txns_committed\":2"));
        assert!(last.contains("\"commit_latency_us\""));
    }

    #[test]
    fn dump_to_writes_a_parseable_file() {
        let recorder = FlightRecorder::with_capacity(8);
        recorder
            .observer()
            .trace_event("server/admit", TraceId::derive(1), String::new);
        let dir = std::env::temp_dir().join("dme_flight_test");
        let path = dir.join("nested").join("dump.jsonl");
        recorder.dump_to(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.lines().count() >= 3);
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
