//! Lock-cheap latency metrics: log-bucketed histograms behind a fixed
//! registry.
//!
//! The registry follows the same closed-vocabulary design as
//! [`Counter`](crate::Counter): a [`Metric`] enum names every latency
//! distribution the system records, so the hot-path `record` is two
//! relaxed atomic adds into a preallocated table — no locks, no string
//! hashing, no allocation.
//!
//! Buckets are *logarithmic in microseconds*: a value `v` lands in
//! bucket `bit_length(v)` (bucket 0 holds exactly `v == 0`, bucket `b`
//! holds `2^(b-1) ..= 2^b - 1`). Sixty-four buckets cover the full u64
//! range; quantile estimates answer with the bucket's inclusive upper
//! bound, so reported p50/p95/p99 are conservative (never below the
//! true quantile) and within a factor of 2 of it — plenty for spotting
//! regressions, and mergeable across threads by plain addition.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::Observer;

/// The fixed vocabulary of latency metrics, one histogram each.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(usize)]
pub enum Metric {
    /// Session admission: `open_session` latency.
    AdmitLatency,
    /// Cross-model operation translation latency (relational sessions).
    TranslateLatency,
    /// Equivalence verification latency per staged transaction.
    VerifyLatency,
    /// End-to-end commit latency per transaction (enqueue → durable).
    CommitLatency,
    /// Group-commit batch flush latency (validate + WAL append + sync).
    GroupCommitLatency,
    /// WAL device sync latency.
    WalSyncLatency,
    /// Checkpoint encoding + append latency.
    CheckpointLatency,
    /// Per-record replay latency during crash recovery.
    ReplayLatency,
    /// Whole-check latency of a `Checker::run` invocation.
    CheckLatency,
    /// Closure-enumeration latency inside the parallel engine.
    ClosureLatency,
    /// End-to-end wire request latency at the network front door
    /// (frame decoded → response frame queued).
    RequestLatency,
    /// Symbolic-tier solver probe: decisions taken per depth layer
    /// (one observation per unrolled path depth, not a latency).
    SymbolicDecisionsPerDepth,
    /// Symbolic-tier solver probe: conflicts hit per depth layer.
    SymbolicConflictsPerDepth,
    /// Symbolic-tier solver probe: clauses held (encoded + learned)
    /// per depth layer.
    SymbolicClausesPerDepth,
    /// Symbolic-tier solver probe: restarts taken per depth layer.
    SymbolicRestartsPerDepth,
    /// Whole-recovery latency (checkpoint-chain resolution + WAL
    /// replay + re-checkpoint) per `recover_sharded` call.
    RecoveryLatency,
}

impl Metric {
    /// Every metric, in declaration order (the registry's table order).
    pub const ALL: [Metric; 16] = [
        Metric::AdmitLatency,
        Metric::TranslateLatency,
        Metric::VerifyLatency,
        Metric::CommitLatency,
        Metric::GroupCommitLatency,
        Metric::WalSyncLatency,
        Metric::CheckpointLatency,
        Metric::ReplayLatency,
        Metric::CheckLatency,
        Metric::ClosureLatency,
        Metric::RequestLatency,
        Metric::SymbolicDecisionsPerDepth,
        Metric::SymbolicConflictsPerDepth,
        Metric::SymbolicClausesPerDepth,
        Metric::SymbolicRestartsPerDepth,
        Metric::RecoveryLatency,
    ];

    /// Number of metrics (the registry table length).
    pub const COUNT: usize = Self::ALL.len();

    /// The metric's stable snake_case name, used by exporters.
    pub fn name(self) -> &'static str {
        match self {
            Metric::AdmitLatency => "admit_latency_us",
            Metric::TranslateLatency => "translate_latency_us",
            Metric::VerifyLatency => "verify_latency_us",
            Metric::CommitLatency => "commit_latency_us",
            Metric::GroupCommitLatency => "group_commit_latency_us",
            Metric::WalSyncLatency => "wal_sync_latency_us",
            Metric::CheckpointLatency => "checkpoint_latency_us",
            Metric::ReplayLatency => "replay_latency_us",
            Metric::CheckLatency => "check_latency_us",
            Metric::ClosureLatency => "closure_latency_us",
            Metric::RequestLatency => "request_latency_us",
            Metric::SymbolicDecisionsPerDepth => "symbolic_decisions_per_depth",
            Metric::SymbolicConflictsPerDepth => "symbolic_conflicts_per_depth",
            Metric::SymbolicClausesPerDepth => "symbolic_clauses_per_depth",
            Metric::SymbolicRestartsPerDepth => "symbolic_restarts_per_depth",
            Metric::RecoveryLatency => "recovery_latency_us",
        }
    }

    /// The registry-table index of this metric.
    pub fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Number of log buckets: bucket `b` holds values of bit-length `b`,
/// so 65 buckets (0 plus bit-lengths 1..=64) cover all of u64.
pub const BUCKETS: usize = 65;

/// The bucket index a value lands in: its bit length.
#[inline]
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// The inclusive upper bound of bucket `b` (`0` for bucket 0,
/// `2^b - 1` otherwise).
#[inline]
fn bucket_upper(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b >= 64 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

/// A concurrent log-bucketed histogram of microsecond latencies.
///
/// `record` is two relaxed atomic adds plus a relaxed max loop; readers
/// take a [`HistogramSnapshot`] and compute quantiles offline.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation of `v` microseconds.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// A point-in-time copy of the histogram's state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// An immutable histogram snapshot: mergeable, quantile-queryable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (bucket = bit length of the value).
    pub buckets: [u64; BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values, in microseconds.
    pub sum: u64,
    /// The largest observed value, in microseconds (exact, not
    /// bucketed).
    pub max: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot (the identity for [`merge`](Self::merge)).
    pub fn empty() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Merges `other` into `self` by bucket-wise addition. Merging is
    /// associative and commutative, so per-thread histograms can be
    /// combined in any order. `sum` wraps on overflow — the same
    /// modular arithmetic the live histogram's atomic adds use — so a
    /// merge of snapshots always equals the snapshot of the combined
    /// sample stream.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a = a.wrapping_add(*b);
        }
        self.count = self.count.wrapping_add(other.count);
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// A conservative estimate of the `q`-quantile (0.0 ..= 1.0): the
    /// inclusive upper bound of the first bucket whose cumulative count
    /// reaches `ceil(q * count)`. Returns 0 for an empty snapshot; the
    /// top quantile is clamped to the exact observed max.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(b).min(self.max);
            }
        }
        self.max
    }

    /// The median estimate (`quantile(0.50)`).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// The 95th-percentile estimate.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// The 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// The mean in microseconds (0 for an empty snapshot).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

/// A fixed table of one [`Histogram`] per [`Metric`].
pub struct MetricsRegistry {
    table: [Histogram; Metric::COUNT],
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry {
            table: std::array::from_fn(|_| Histogram::new()),
        }
    }

    /// The histogram behind `metric`.
    pub fn histogram(&self, metric: Metric) -> &Histogram {
        &self.table[metric.index()]
    }

    /// Snapshots every non-empty metric, in [`Metric::ALL`] order.
    pub fn snapshot(&self) -> Vec<(Metric, HistogramSnapshot)> {
        Metric::ALL
            .iter()
            .map(|m| (*m, self.table[m.index()].snapshot()))
            .filter(|(_, s)| s.count > 0)
            .collect()
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl Observer {
    /// Records one latency observation against `metric`. A no-op when
    /// the observer is disabled.
    #[inline]
    pub fn record(&self, metric: Metric, micros: u64) {
        if let Some(reg) = self.metrics() {
            reg.histogram(metric).record(micros);
        }
    }

    /// Starts a timer that records its elapsed microseconds against
    /// `metric` when the returned guard drops.
    pub fn time(&self, metric: Metric) -> TimerGuard {
        TimerGuard {
            obs: if self.enabled() {
                Some((self.clone(), metric, Instant::now()))
            } else {
                None
            },
        }
    }

    /// A snapshot of one metric's histogram (empty when disabled).
    pub fn histogram(&self, metric: Metric) -> HistogramSnapshot {
        self.metrics()
            .map(|reg| reg.histogram(metric).snapshot())
            .unwrap_or_else(HistogramSnapshot::empty)
    }

    /// Snapshots of every non-empty metric, in [`Metric::ALL`] order
    /// (empty when disabled).
    pub fn histograms(&self) -> Vec<(Metric, HistogramSnapshot)> {
        self.metrics().map(|reg| reg.snapshot()).unwrap_or_default()
    }
}

/// RAII timer returned by [`Observer::time`].
pub struct TimerGuard {
    obs: Option<(Observer, Metric, Instant)>,
}

impl Drop for TimerGuard {
    fn drop(&mut self) {
        if let Some((obs, metric, started)) = self.obs.take() {
            obs.record(metric, started.elapsed().as_micros() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RingSink;

    #[test]
    fn metric_names_are_unique_and_indexed() {
        let mut names: Vec<&str> = Metric::ALL.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Metric::COUNT);
        for (i, m) in Metric::ALL.iter().enumerate() {
            assert_eq!(m.index(), i);
        }
    }

    #[test]
    fn buckets_partition_u64() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        // Each bucket's upper bound lands back in that bucket, and lower
        // bounds are contiguous with the previous bucket's upper bound.
        for b in 0..BUCKETS {
            assert_eq!(bucket_of(bucket_upper(b)), b);
            if b > 0 {
                assert_eq!(bucket_of(bucket_upper(b - 1).wrapping_add(1)), b);
            }
        }
    }

    #[test]
    fn quantiles_are_conservative_bounds() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1106);
        assert_eq!(s.max, 1000);
        // p50 rank=3 → value 3 lives in bucket 2, upper bound 3.
        assert_eq!(s.p50(), 3);
        // Top quantiles clamp to the observed max, not the bucket bound.
        assert_eq!(s.p99(), 1000);
        assert!(s.quantile(1.0) == 1000);
        assert_eq!(HistogramSnapshot::empty().p50(), 0);
    }

    #[test]
    fn merge_is_commutative_and_identity_respecting() {
        let h1 = Histogram::new();
        let h2 = Histogram::new();
        for v in [5u64, 10, 20] {
            h1.record(v);
        }
        for v in [1u64, 10_000] {
            h2.record(v);
        }
        let (s1, s2) = (h1.snapshot(), h2.snapshot());
        let mut a = s1.clone();
        a.merge(&s2);
        let mut b = s2.clone();
        b.merge(&s1);
        assert_eq!(a, b);
        assert_eq!(a.count, 5);
        assert_eq!(a.max, 10_000);
        let mut c = s1.clone();
        c.merge(&HistogramSnapshot::empty());
        assert_eq!(c, s1);
    }

    #[test]
    fn observer_registry_round_trip() {
        let obs = crate::Observer::new(RingSink::with_capacity(4));
        obs.record(Metric::CommitLatency, 120);
        obs.record(Metric::CommitLatency, 80);
        {
            let _t = obs.time(Metric::AdmitLatency);
        }
        let snap = obs.histogram(Metric::CommitLatency);
        assert_eq!(snap.count, 2);
        assert_eq!(snap.sum, 200);
        let all = obs.histograms();
        assert_eq!(all.len(), 2, "admit + commit populated");
        assert_eq!(all[0].0, Metric::AdmitLatency);
        assert_eq!(all[1].0, Metric::CommitLatency);
    }

    #[test]
    fn disabled_observer_records_nothing() {
        let obs = crate::Observer::disabled();
        obs.record(Metric::CommitLatency, 10);
        let _t = obs.time(Metric::CommitLatency);
        assert_eq!(obs.histogram(Metric::CommitLatency).count, 0);
        assert!(obs.histograms().is_empty());
    }
}
