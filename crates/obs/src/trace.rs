//! Deterministic trace identifiers.
//!
//! A [`TraceId`] names one service request across every layer it
//! touches: session admit, translation, equivalence verification, group
//! commit, WAL framing, checkpointing and crash-recovery replay. The id
//! is *derived* from the request's stable identity (not sampled from a
//! clock or RNG), so replaying the same schedule reproduces the same
//! transcript byte for byte — the property every conformance oracle in
//! this tree leans on.

use std::fmt;

use crate::json::escape;
use crate::{Event, EventKind, Observer};

/// A 64-bit trace identifier, rendered as 16 lowercase hex digits.
///
/// The zero value is reserved as "untraced" at the codec layer, so
/// [`TraceId::derive`] never produces it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

impl TraceId {
    /// Derives a trace id from a stable seed (e.g. a request id) via
    /// one round of splitmix64 — well-mixed, deterministic, and never
    /// zero.
    pub fn derive(seed: u64) -> TraceId {
        let mut z = seed.wrapping_add(0x9e3779b97f4a7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^= z >> 31;
        TraceId(if z == 0 { 0x9e3779b97f4a7c15 } else { z })
    }

    /// The raw 64-bit value.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl Observer {
    /// Emits a trace event: a point annotation carrying a [`TraceId`],
    /// linking this moment to one request's causal path. The detail
    /// string is built only when the observer is enabled.
    pub fn trace_event(&self, name: &'static str, trace: TraceId, detail: impl FnOnce() -> String) {
        self.trace_event_linked(name, trace, 0, 0, detail);
    }

    /// Emits a trace event carrying causal-tree coordinates: this
    /// step's span id and its parent's (`0` = none). A flat
    /// [`Observer::trace_event`] is the `span = parent = 0` case.
    pub fn trace_event_linked(
        &self,
        name: &'static str,
        trace: TraceId,
        span: u64,
        parent: u64,
        detail: impl FnOnce() -> String,
    ) {
        if self.enabled() {
            self.emit_kind(EventKind::Trace {
                name,
                trace,
                span,
                parent,
                detail: detail(),
            });
        }
    }
}

impl Event {
    /// The trace id carried by this event, if any.
    pub fn trace(&self) -> Option<TraceId> {
        match &self.kind {
            EventKind::Trace { trace, .. } => Some(*trace),
            _ => None,
        }
    }
}

pub(crate) fn trace_json(name: &str, trace: TraceId, span: u64, parent: u64, detail: &str) -> String {
    let mut out = format!(
        "\"ev\":\"trace\",\"name\":\"{}\",\"trace\":\"{trace}\"",
        escape(name)
    );
    if span != 0 {
        out.push_str(&format!(",\"span\":{span}"));
    }
    if parent != 0 {
        out.push_str(&format!(",\"parent\":{parent}"));
    }
    if !detail.is_empty() {
        out.push_str(&format!(",\"detail\":\"{}\"", escape(detail)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RingSink;

    #[test]
    fn derive_is_deterministic_mixed_and_nonzero() {
        assert_eq!(TraceId::derive(7), TraceId::derive(7));
        assert_ne!(TraceId::derive(7), TraceId::derive(8));
        for seed in 0..1000 {
            assert_ne!(TraceId::derive(seed).as_u64(), 0);
        }
        // Adjacent seeds land far apart (splitmix64 mixes well).
        let a = TraceId::derive(1).as_u64();
        let b = TraceId::derive(2).as_u64();
        assert!((a ^ b).count_ones() > 10);
    }

    #[test]
    fn display_is_16_hex_digits() {
        assert_eq!(TraceId(0xabc).to_string(), "0000000000000abc");
        assert_eq!(TraceId(u64::MAX).to_string(), "ffffffffffffffff");
    }

    #[test]
    fn trace_events_flow_to_the_sink() {
        let ring = RingSink::with_capacity(8);
        let obs = Observer::new(ring.clone());
        let t = TraceId::derive(42);
        obs.trace_event("server/admit", t, || "session 3".into());
        let events = ring.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].trace(), Some(t));
        let json = events[0].to_json();
        assert!(json.contains("\"ev\":\"trace\""));
        assert!(json.contains(&format!("\"trace\":\"{t}\"")));
        assert!(json.contains("\"detail\":\"session 3\""));
    }

    #[test]
    fn disabled_observer_skips_detail_construction() {
        let obs = Observer::disabled();
        obs.trace_event("x", TraceId::derive(1), || panic!("must not build"));
    }

    #[test]
    fn linked_trace_events_render_span_coordinates() {
        let ring = RingSink::with_capacity(8);
        let obs = Observer::new(ring.clone());
        let t = TraceId::derive(9);
        obs.trace_event_linked("server/wal_append", t, 4, 2, || "lsn 7".into());
        obs.trace_event("server/admit", t, || String::new());
        let events = ring.events();
        let json = events[0].to_json();
        assert!(json.contains("\"span\":4"), "{json}");
        assert!(json.contains("\"parent\":2"), "{json}");
        // Flat trace points render exactly as before: no span keys.
        let flat = events[1].to_json();
        assert!(!flat.contains("\"span\""), "{flat}");
        assert!(!flat.contains("\"parent\""), "{flat}");
    }
}
