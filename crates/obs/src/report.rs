//! The report summarizer: per-phase wall-clock and counter tables.

use std::collections::BTreeMap;
use std::fmt;

use crate::event::{Counter, Event, EventKind};

/// Aggregated statistics of one span name (one engine phase).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseStats {
    /// How many spans closed under this name.
    pub calls: u64,
    /// Total wall-clock across those spans, in microseconds. Nested
    /// spans count their own elapsed time; a parent span's time includes
    /// its children's.
    pub total_micros: u64,
    /// Summed counter deltas attributed to those spans.
    pub counters: BTreeMap<Counter, u64>,
}

/// A rendered summary of an observation session: per-phase wall-clock
/// and counters, plus (optionally) the session-wide counter totals.
///
/// Build one from a sink's events with [`Report::from_events`], then
/// attach [`Observer::counters`](crate::Observer::counters) via
/// [`Report::with_totals`] for the grand-total row.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Report {
    phases: BTreeMap<&'static str, PhaseStats>,
    totals: Vec<(Counter, u64)>,
}

impl Report {
    /// Aggregates every `span_end` in `events` by span name.
    pub fn from_events(events: &[Event]) -> Self {
        let mut phases: BTreeMap<&'static str, PhaseStats> = BTreeMap::new();
        for event in events {
            if let EventKind::SpanEnd {
                name,
                elapsed_micros,
                counters,
                ..
            } = &event.kind
            {
                let stats = phases.entry(name).or_default();
                stats.calls += 1;
                stats.total_micros += elapsed_micros;
                for (c, v) in counters {
                    *stats.counters.entry(*c).or_default() += v;
                }
            }
        }
        Report {
            phases,
            totals: Vec::new(),
        }
    }

    /// Attaches session-wide counter totals (shown as a final row).
    pub fn with_totals(mut self, totals: Vec<(Counter, u64)>) -> Self {
        self.totals = totals;
        self
    }

    /// The stats of one phase, if any span closed under that name.
    pub fn phase(&self, name: &str) -> Option<&PhaseStats> {
        self.phases.get(name)
    }

    /// Phase names seen, in lexicographic order.
    pub fn phase_names(&self) -> Vec<&'static str> {
        self.phases.keys().copied().collect()
    }

    /// Whether no spans were recorded at all.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// The session-wide totals attached with [`Report::with_totals`].
    pub fn totals(&self) -> &[(Counter, u64)] {
        &self.totals
    }

    /// Renders the report as one JSON object:
    /// `{"phases": {name: {calls, total_us, counters: {...}}}, "totals": {...}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"phases\":{");
        for (i, (name, stats)) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"calls\":{},\"total_us\":{},\"counters\":{{",
                crate::json::escape(name),
                stats.calls,
                stats.total_micros
            ));
            for (j, (c, v)) in stats.counters.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":{v}", c.name()));
            }
            out.push_str("}}");
        }
        out.push_str("},\"totals\":{");
        for (i, (c, v)) in self.totals.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{v}", c.name()));
        }
        out.push_str("}}");
        out
    }
}

fn fmt_micros(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    } else if us >= 1_000 {
        format!("{:.2}ms", us as f64 / 1_000.0)
    } else {
        format!("{us}µs")
    }
}

fn fmt_counters(counters: impl Iterator<Item = (Counter, u64)>) -> String {
    counters
        .map(|(c, v)| format!("{}={v}", c.name()))
        .collect::<Vec<_>>()
        .join(" ")
}

impl fmt::Display for Report {
    /// The human table: one row per phase, widest columns win.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() && self.totals.is_empty() {
            return writeln!(f, "(no spans recorded)");
        }
        let name_width = self
            .phases
            .keys()
            .map(|n| n.len())
            .chain(std::iter::once("TOTAL".len()))
            .max()
            .unwrap_or(5);
        writeln!(
            f,
            "{:<name_width$}  {:>6}  {:>10}  counters",
            "phase", "calls", "wall"
        )?;
        for (name, stats) in &self.phases {
            writeln!(
                f,
                "{:<name_width$}  {:>6}  {:>10}  {}",
                name,
                stats.calls,
                fmt_micros(stats.total_micros),
                fmt_counters(stats.counters.iter().map(|(c, v)| (*c, *v)))
            )?;
        }
        if !self.totals.is_empty() {
            writeln!(
                f,
                "{:<name_width$}  {:>6}  {:>10}  {}",
                "TOTAL",
                "",
                "",
                fmt_counters(self.totals.iter().copied())
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Observer, RingSink};

    #[test]
    fn aggregates_span_ends_by_name() {
        let ring = RingSink::with_capacity(64);
        let obs = Observer::new(ring.clone());
        for i in 0..3u64 {
            let _span = obs.span("phase/a");
            obs.add(Counter::NodesExpanded, i + 1);
        }
        {
            let _span = obs.span("phase/b");
        }
        let report = Report::from_events(&ring.events()).with_totals(obs.counters());
        let a = report.phase("phase/a").unwrap();
        assert_eq!(a.calls, 3);
        assert_eq!(a.counters[&Counter::NodesExpanded], 6);
        assert_eq!(report.phase("phase/b").unwrap().calls, 1);
        assert!(report.phase("phase/c").is_none());
        assert_eq!(report.phase_names(), vec!["phase/a", "phase/b"]);
        assert_eq!(report.totals(), &[(Counter::NodesExpanded, 6)]);

        let text = report.to_string();
        assert!(text.contains("phase/a"), "{text}");
        assert!(text.contains("nodes_expanded=6"), "{text}");
        assert!(text.contains("TOTAL"), "{text}");

        let json = report.to_json();
        assert!(json.contains("\"phase/a\":{\"calls\":3"), "{json}");
        assert!(json.contains("\"totals\":{\"nodes_expanded\":6}"), "{json}");
    }

    #[test]
    fn empty_report_renders_placeholder() {
        let report = Report::from_events(&[]);
        assert!(report.is_empty());
        assert_eq!(report.to_string(), "(no spans recorded)\n");
        assert_eq!(report.to_json(), "{\"phases\":{},\"totals\":{}}");
    }

    #[test]
    fn micro_formatting_scales() {
        assert_eq!(super::fmt_micros(5), "5µs");
        assert_eq!(super::fmt_micros(1_500), "1.50ms");
        assert_eq!(super::fmt_micros(2_000_000), "2.00s");
    }
}
