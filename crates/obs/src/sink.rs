//! Event sinks: where observed events go.

use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::event::Event;

/// A destination for observed events. Implementations must tolerate
/// concurrent `record` calls from worker threads.
pub trait EventSink: Send + Sync {
    /// Records one event. Must not block for long — this is called from
    /// the engine's coordinating thread between phases.
    fn record(&self, event: &Event);
}

/// A bounded in-memory ring of the most recent events.
///
/// Slot claim is wait-free (one atomic `fetch_add`); each claimed slot
/// is then written under its own uncontended lock, so concurrent
/// recorders never serialize against each other unless they wrap onto
/// the same slot. When the ring overflows, the oldest events are
/// overwritten — [`RingSink::events`] returns what survived, in
/// sequence order.
#[derive(Clone)]
pub struct RingSink {
    inner: Arc<RingInner>,
}

struct RingInner {
    slots: Vec<Mutex<Option<Event>>>,
    cursor: AtomicUsize,
}

impl RingSink {
    /// A ring holding at most `capacity` events (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingSink {
            inner: Arc::new(RingInner {
                slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
                cursor: AtomicUsize::new(0),
            }),
        }
    }

    /// Total events ever recorded (including any overwritten).
    pub fn recorded(&self) -> usize {
        self.inner.cursor.load(Ordering::Relaxed)
    }

    /// The surviving events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        let mut out: Vec<Event> = self
            .inner
            .slots
            .iter()
            .filter_map(|slot| slot.lock().unwrap_or_else(|e| e.into_inner()).clone())
            .collect();
        out.sort_unstable_by_key(|e| e.seq);
        out
    }

    /// Drops all recorded events (the cursor keeps counting).
    pub fn clear(&self) {
        for slot in &self.inner.slots {
            *slot.lock().unwrap_or_else(|e| e.into_inner()) = None;
        }
    }
}

impl EventSink for RingSink {
    fn record(&self, event: &Event) {
        let i = self.inner.cursor.fetch_add(1, Ordering::Relaxed) % self.inner.slots.len();
        *self.inner.slots[i]
            .lock()
            .unwrap_or_else(|e| e.into_inner()) = Some(event.clone());
    }
}

/// A transcript sink: every event becomes one JSON object per line, in
/// the format of [`Event::to_json`].
///
/// Writes go through a shared buffered writer; call
/// [`JsonLinesSink::flush`] (or drop every clone) before reading the
/// file back.
#[derive(Clone)]
pub struct JsonLinesSink {
    writer: Arc<Mutex<Box<dyn Write + Send>>>,
}

impl JsonLinesSink {
    /// A sink over any writer.
    pub fn new(writer: impl Write + Send + 'static) -> Self {
        JsonLinesSink {
            writer: Arc::new(Mutex::new(Box::new(writer))),
        }
    }

    /// Creates (truncating) a transcript file at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self::new(io::BufWriter::new(file)))
    }

    /// Flushes buffered lines to the underlying writer.
    pub fn flush(&self) -> io::Result<()> {
        self.writer
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .flush()
    }
}

impl EventSink for JsonLinesSink {
    fn record(&self, event: &Event) {
        let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        // A full disk mid-transcript must not poison the check itself.
        let _ = writeln!(w, "{}", event.to_json());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn mark(seq: u64, value: u64) -> Event {
        Event {
            seq,
            at_micros: seq,
            kind: EventKind::Mark { name: "m", value },
        }
    }

    #[test]
    fn ring_keeps_most_recent_in_order() {
        let ring = RingSink::with_capacity(3);
        for i in 0..5 {
            ring.record(&mark(i, i));
        }
        let events = ring.events();
        assert_eq!(ring.recorded(), 5);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4], "oldest overwritten, order kept");
        ring.clear();
        assert!(ring.events().is_empty());
    }

    #[test]
    fn ring_survives_concurrent_recording() {
        let ring = RingSink::with_capacity(128);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let ring = ring.clone();
                scope.spawn(move || {
                    for i in 0..16 {
                        ring.record(&mark(t * 16 + i, i));
                    }
                });
            }
        });
        assert_eq!(ring.recorded(), 64);
        assert_eq!(ring.events().len(), 64);
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, data: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let sink = JsonLinesSink::new(Shared(Arc::clone(&buf)));
        sink.record(&mark(0, 7));
        sink.record(&mark(1, 8));
        sink.flush().unwrap();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"seq\":0,"));
        assert!(lines[1].contains("\"value\":8"));
    }
}
