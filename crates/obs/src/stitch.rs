//! Cross-shard trace stitching: reassembling one transaction's causal
//! tree from span-linked trace events.
//!
//! A [`TraceId`](crate::TraceId) names one request; PR 4 made every
//! layer stamp it, so a transcript *grep* finds the request's journey.
//! But a grep is flat: a cross-shard transaction fans out (admit →
//! demux → per-shard validate → cross-shard journal → reply) and the
//! flat view cannot say *which* WAL append belonged to *which* commit
//! batch. This module adds the missing structure:
//!
//! * [`TraceEvent`] — one step, carrying a per-trace **span id** and a
//!   **parent span id** (0 = root) plus an optional shard attribution.
//! * [`TraceHub`] — a bounded, thread-safe store of recent traces the
//!   service records steps into (span ids allocated under the hub's
//!   lock, so they are unique within a trace).
//! * [`TraceAssembler`] — rebuilds the causal tree from events in *any*
//!   order (network capture, shuffled transcript lines, merged
//!   per-shard logs) and renders it as indented text or nested JSON.
//!
//! Assembly is order-insensitive by construction: nodes are keyed by
//! span id and children are sorted by span id, so any permutation of
//! the same event set assembles to the same tree — the property the
//! conformance suite checks by permutation testing.

use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;

use crate::json::escape;
use crate::trace::TraceId;

/// One step on a trace's causal path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Arrival order within the trace (0-based). Used only as a
    /// tiebreaker for span-less events; tree shape ignores it.
    pub seq: u64,
    /// This step's span id, unique within the trace, never 0 for
    /// hub-recorded steps.
    pub span: u64,
    /// The parent step's span id; 0 marks a root.
    pub parent: u64,
    /// The step's stable name (e.g. `server/wal_append`).
    pub name: String,
    /// The shard lane this step ran on, when it ran on one.
    pub shard: Option<u32>,
    /// Free-form detail (an LSN, a tier, a batch size, …).
    pub detail: String,
}

/// Rebuilds one trace's causal tree from events in any order.
#[derive(Default)]
pub struct TraceAssembler {
    events: Vec<TraceEvent>,
}

impl TraceAssembler {
    /// An empty assembler.
    pub fn new() -> Self {
        TraceAssembler { events: Vec::new() }
    }

    /// Adds one event. Order does not matter.
    pub fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// Number of events added so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were added.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The set of shards that contributed at least one step, sorted.
    pub fn shards(&self) -> Vec<u32> {
        let mut out: Vec<u32> = self.events.iter().filter_map(|e| e.shard).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The canonical node order: roots and their subtrees, depth-first,
    /// children sorted by span id. Returns `(depth, index)` pairs into
    /// an internally sorted copy of the events.
    fn walk(&self) -> (Vec<TraceEvent>, Vec<(usize, usize)>) {
        let mut nodes = self.events.clone();
        // Canonical node order: span id, then arrival order for
        // span-less events. Span ids are allocation-ordered in the live
        // hub, so this also reads causally for real traces.
        nodes.sort_by_key(|e| (e.span, e.seq));
        let mut by_span: HashMap<u64, usize> = HashMap::new();
        for (i, e) in nodes.iter().enumerate() {
            if e.span != 0 {
                by_span.entry(e.span).or_insert(i);
            }
        }
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        let mut roots: Vec<usize> = Vec::new();
        for (i, e) in nodes.iter().enumerate() {
            match by_span.get(&e.parent) {
                // A self-parent is malformed input; treat it as a root
                // rather than recursing forever.
                Some(&p) if e.parent != 0 && p != i => children[p].push(i),
                _ => roots.push(i),
            }
        }
        let mut order: Vec<(usize, usize)> = Vec::new();
        let mut visited = vec![false; nodes.len()];
        let mut stack: Vec<(usize, usize)> = Vec::new();
        for &r in &roots {
            stack.push((0, r));
            while let Some((depth, i)) = stack.pop() {
                if visited[i] {
                    continue;
                }
                visited[i] = true;
                order.push((depth, i));
                for &c in children[i].iter().rev() {
                    stack.push((depth + 1, c));
                }
            }
        }
        // Cycles (malformed input) leave nodes unvisited; surface them
        // as extra roots in span order so assembly still terminates and
        // loses nothing.
        for i in 0..nodes.len() {
            if !visited[i] {
                stack.push((0, i));
                while let Some((depth, j)) = stack.pop() {
                    if visited[j] {
                        continue;
                    }
                    visited[j] = true;
                    order.push((depth, j));
                    for &c in children[j].iter().rev() {
                        stack.push((depth + 1, c));
                    }
                }
            }
        }
        (nodes, order)
    }

    /// Renders the causal tree as indented text, one step per line:
    /// depth markers, name, span coordinates, shard and detail.
    pub fn render(&self, trace: TraceId) -> String {
        let (nodes, order) = self.walk();
        let mut out = format!("trace {trace} ({} events)\n", nodes.len());
        for (depth, i) in order {
            let e = &nodes[i];
            out.push_str(&"  ".repeat(depth));
            out.push_str(if depth == 0 { "• " } else { "└─ " });
            out.push_str(&e.name);
            out.push_str(&format!(" [span {}]", e.span));
            if let Some(s) = e.shard {
                out.push_str(&format!(" shard={s}"));
            }
            if !e.detail.is_empty() {
                out.push_str(&format!(" — {}", e.detail));
            }
            out.push('\n');
        }
        out
    }

    /// Renders the causal tree as one JSON object:
    /// `{"trace":"…","shards":[…],"spans":[{span,parent,name,shard?,
    /// detail?,children:[…]},…]}` with children nested and sorted by
    /// span id.
    pub fn to_json(&self, trace: TraceId) -> String {
        let (nodes, order) = self.walk();
        let mut out = format!("{{\"trace\":\"{trace}\",\"shards\":[");
        for (i, s) in self.shards().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&s.to_string());
        }
        out.push_str("],\"spans\":[");
        let mut open_depths: Vec<usize> = Vec::new();
        for (k, &(depth, i)) in order.iter().enumerate() {
            while let Some(&d) = open_depths.last() {
                if d >= depth {
                    out.push_str("]}");
                    open_depths.pop();
                } else {
                    break;
                }
            }
            if k > 0 && out.ends_with('}') {
                out.push(',');
            }
            let e = &nodes[i];
            out.push_str(&format!(
                "{{\"span\":{},\"parent\":{},\"name\":\"{}\"",
                e.span,
                e.parent,
                escape(&e.name)
            ));
            if let Some(s) = e.shard {
                out.push_str(&format!(",\"shard\":{s}"));
            }
            if !e.detail.is_empty() {
                out.push_str(&format!(",\"detail\":\"{}\"", escape(&e.detail)));
            }
            out.push_str(",\"children\":[");
            open_depths.push(depth);
        }
        while open_depths.pop().is_some() {
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

struct TraceLog {
    events: Vec<TraceEvent>,
    next_span: u64,
}

struct HubInner {
    traces: HashMap<u64, TraceLog>,
    order: VecDeque<u64>,
}

/// A bounded, thread-safe store of recent traces.
///
/// The service records every step of every transaction here; admin
/// `TraceLookup` queries read assembled trees back out. Capacity is a
/// trace count — when full, the oldest trace is evicted FIFO. A
/// capacity of 0 disables the hub entirely: [`TraceHub::record`]
/// becomes a branch and the detail closure is never called.
pub struct TraceHub {
    inner: Mutex<HubInner>,
    capacity: usize,
}

impl TraceHub {
    /// A hub remembering up to `capacity` traces (0 = disabled).
    pub fn new(capacity: usize) -> Self {
        TraceHub {
            inner: Mutex::new(HubInner {
                traces: HashMap::new(),
                order: VecDeque::new(),
            }),
            capacity,
        }
    }

    /// Whether the hub stores anything at all.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Records one step of `trace` and returns its span id (0 when the
    /// hub is disabled). `parent` is a span id previously returned for
    /// the same trace, or 0 for the root. The detail string is built
    /// only when the hub is enabled.
    pub fn record(
        &self,
        trace: TraceId,
        name: &str,
        parent: u64,
        shard: Option<u32>,
        detail: impl FnOnce() -> String,
    ) -> u64 {
        if self.capacity == 0 {
            return 0;
        }
        let mut inner = self.inner.lock().expect("trace hub poisoned");
        let key = trace.as_u64();
        if !inner.traces.contains_key(&key) {
            if inner.traces.len() >= self.capacity {
                if let Some(old) = inner.order.pop_front() {
                    inner.traces.remove(&old);
                }
            }
            inner.order.push_back(key);
            inner.traces.insert(
                key,
                TraceLog {
                    events: Vec::new(),
                    next_span: 1,
                },
            );
        }
        let log = inner.traces.get_mut(&key).expect("just inserted");
        let span = log.next_span;
        log.next_span += 1;
        let seq = log.events.len() as u64;
        log.events.push(TraceEvent {
            seq,
            span,
            parent,
            name: name.to_string(),
            shard,
            detail: detail(),
        });
        span
    }

    /// The raw events of `trace`, in recording order, if the hub still
    /// remembers it.
    pub fn lookup(&self, trace: TraceId) -> Option<Vec<TraceEvent>> {
        let inner = self.inner.lock().expect("trace hub poisoned");
        inner.traces.get(&trace.as_u64()).map(|l| l.events.clone())
    }

    /// An assembler pre-loaded with `trace`'s events, if remembered.
    pub fn assemble(&self, trace: TraceId) -> Option<TraceAssembler> {
        self.lookup(trace).map(|events| {
            let mut asm = TraceAssembler::new();
            for e in events {
                asm.push(e);
            }
            asm
        })
    }

    /// Number of traces currently remembered.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("trace hub poisoned").traces.len()
    }

    /// Whether no traces are remembered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        // admit(1) ─┬─ verify(2)
        //           └─ group_commit(3) ─┬─ wal_append(4) shard 0
        //                               └─ wal_append(5) shard 2
        vec![
            TraceEvent {
                seq: 0,
                span: 1,
                parent: 0,
                name: "server/admit".into(),
                shard: None,
                detail: "session 3".into(),
            },
            TraceEvent {
                seq: 1,
                span: 2,
                parent: 1,
                name: "server/verify".into(),
                shard: None,
                detail: String::new(),
            },
            TraceEvent {
                seq: 2,
                span: 3,
                parent: 1,
                name: "server/group_commit".into(),
                shard: None,
                detail: "batch=1".into(),
            },
            TraceEvent {
                seq: 3,
                span: 4,
                parent: 3,
                name: "server/wal_append".into(),
                shard: Some(0),
                detail: "lsn 1".into(),
            },
            TraceEvent {
                seq: 4,
                span: 5,
                parent: 3,
                name: "server/wal_append".into(),
                shard: Some(2),
                detail: "lsn 1".into(),
            },
        ]
    }

    fn assembled(events: Vec<TraceEvent>) -> TraceAssembler {
        let mut asm = TraceAssembler::new();
        for e in events {
            asm.push(e);
        }
        asm
    }

    #[test]
    fn assembles_one_tree_with_shard_attribution() {
        let asm = assembled(sample_events());
        assert_eq!(asm.shards(), vec![0, 2]);
        let t = TraceId::derive(1);
        let text = asm.render(t);
        // One root, children indented under it.
        assert_eq!(text.matches("• ").count(), 1, "{text}");
        assert!(text.contains("• server/admit [span 1] — session 3"), "{text}");
        assert!(
            text.contains("    └─ server/wal_append [span 4] shard=0 — lsn 1"),
            "{text}"
        );
        let json = asm.to_json(t);
        assert!(json.contains("\"shards\":[0,2]"), "{json}");
        assert!(json.contains("\"name\":\"server/group_commit\""), "{json}");
        // wal_append nests inside group_commit's children array.
        let gc = json.find("server/group_commit").unwrap();
        let wal = json.find("server/wal_append").unwrap();
        assert!(wal > gc, "{json}");
    }

    #[test]
    fn assembly_is_order_insensitive() {
        let events = sample_events();
        let t = TraceId::derive(2);
        let reference = assembled(events.clone()).to_json(t);
        // Every rotation and a couple of seeded shuffles must assemble
        // to byte-identical output.
        for rot in 0..events.len() {
            let mut shuffled = events.clone();
            shuffled.rotate_left(rot);
            assert_eq!(assembled(shuffled).to_json(t), reference, "rotation {rot}");
        }
        let mut shuffled = events.clone();
        shuffled.swap(0, 4);
        shuffled.swap(1, 3);
        assert_eq!(assembled(shuffled).to_json(t), reference);
    }

    #[test]
    fn malformed_parents_terminate_and_keep_every_event() {
        let t = TraceId::derive(3);
        let events = vec![
            TraceEvent {
                seq: 0,
                span: 1,
                parent: 2, // cycle with span 2
                name: "a".into(),
                shard: None,
                detail: String::new(),
            },
            TraceEvent {
                seq: 1,
                span: 2,
                parent: 1,
                name: "b".into(),
                shard: None,
                detail: String::new(),
            },
            TraceEvent {
                seq: 2,
                span: 3,
                parent: 3, // self-parent
                name: "c".into(),
                shard: None,
                detail: String::new(),
            },
            TraceEvent {
                seq: 3,
                span: 4,
                parent: 99, // dangling parent
                name: "d".into(),
                shard: None,
                detail: String::new(),
            },
        ];
        let text = assembled(events).render(t);
        for name in ["a", "b", "c", "d"] {
            assert!(text.contains(name), "{text}");
        }
    }

    #[test]
    fn hub_records_allocates_spans_and_evicts_fifo() {
        let hub = TraceHub::new(2);
        let t1 = TraceId::derive(1);
        let t2 = TraceId::derive(2);
        let t3 = TraceId::derive(3);
        let root = hub.record(t1, "server/admit", 0, None, || "s".into());
        assert_eq!(root, 1);
        let child = hub.record(t1, "server/verify", root, None, String::new);
        assert_eq!(child, 2);
        hub.record(t2, "server/admit", 0, None, String::new);
        assert_eq!(hub.len(), 2);
        hub.record(t3, "server/admit", 0, None, String::new);
        assert_eq!(hub.len(), 2, "capacity enforced");
        assert!(hub.lookup(t1).is_none(), "oldest trace evicted");
        assert!(hub.lookup(t3).is_some());
        let asm = hub.assemble(t2).unwrap();
        assert_eq!(asm.len(), 1);
    }

    #[test]
    fn disabled_hub_skips_detail_construction() {
        let hub = TraceHub::new(0);
        assert!(!hub.enabled());
        let span = hub.record(TraceId::derive(1), "x", 0, None, || {
            panic!("must not build")
        });
        assert_eq!(span, 0);
        assert!(hub.is_empty());
    }
}
