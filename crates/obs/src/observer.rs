//! The observer handle and span guards.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::event::{Counter, Event, EventKind};
use crate::metrics::MetricsRegistry;
use crate::sink::EventSink;

struct Inner {
    sink: Box<dyn EventSink>,
    counters: [AtomicU64; Counter::COUNT],
    metrics: MetricsRegistry,
    next_span: AtomicU64,
    next_seq: AtomicU64,
    t0: Instant,
}

impl Inner {
    fn emit(&self, kind: EventKind) {
        let event = Event {
            seq: self.next_seq.fetch_add(1, Ordering::Relaxed),
            at_micros: self.t0.elapsed().as_micros() as u64,
            kind,
        };
        self.sink.record(&event);
    }

    fn snapshot(&self) -> [u64; Counter::COUNT] {
        let mut out = [0u64; Counter::COUNT];
        for (slot, counter) in out.iter_mut().zip(&self.counters) {
            *slot = counter.load(Ordering::Relaxed);
        }
        out
    }
}

/// A cheap, cloneable handle to an observation session — or to nothing.
///
/// Instrumented code takes `&Observer` and calls [`Observer::span`] /
/// [`Observer::add`] unconditionally; when the observer is
/// [disabled](Observer::disabled) every call is one branch on a `None`.
/// Cloning shares the session: clones write to the same sink, the same
/// counter table and the same sequence.
#[derive(Clone, Default)]
pub struct Observer {
    inner: Option<Arc<Inner>>,
}

impl Observer {
    /// The no-op observer: every instrumentation call returns
    /// immediately. This is what un-observed entry points pass down.
    pub fn disabled() -> Self {
        Observer { inner: None }
    }

    /// An observer writing events to `sink`.
    pub fn new(sink: impl EventSink + 'static) -> Self {
        Observer {
            inner: Some(Arc::new(Inner {
                sink: Box::new(sink),
                counters: std::array::from_fn(|_| AtomicU64::new(0)),
                metrics: MetricsRegistry::new(),
                next_span: AtomicU64::new(0),
                next_seq: AtomicU64::new(0),
                t0: Instant::now(),
            })),
        }
    }

    /// Whether events are being recorded. Instrumented code may use this
    /// to skip *building* expensive details; plain `span`/`add` calls
    /// need no guard.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Increments a monotonic counter by `n`.
    #[inline]
    pub fn add(&self, counter: Counter, n: u64) {
        if let Some(inner) = &self.inner {
            inner.counters[counter.index()].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Emits a one-off point annotation.
    pub fn mark(&self, name: &'static str, value: u64) {
        if let Some(inner) = &self.inner {
            inner.emit(EventKind::Mark { name, value });
        }
    }

    /// Opens a span: emits `span_start` now and `span_end` — with the
    /// elapsed wall-clock and the counter deltas attributable to the
    /// span — when the returned guard drops.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        self.span_impl(name, String::new())
    }

    /// Opens a span with a detail string built only when the observer is
    /// enabled (so hot paths don't format names for nobody).
    pub fn span_with(&self, name: &'static str, detail: impl FnOnce() -> String) -> SpanGuard {
        if self.inner.is_some() {
            self.span_impl(name, detail())
        } else {
            SpanGuard { live: None }
        }
    }

    fn span_impl(&self, name: &'static str, detail: String) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard { live: None };
        };
        let id = inner.next_span.fetch_add(1, Ordering::Relaxed);
        inner.emit(EventKind::SpanStart { id, name, detail });
        SpanGuard {
            live: Some(LiveSpan {
                inner: Arc::clone(inner),
                id,
                name,
                started: Instant::now(),
                base: inner.snapshot(),
            }),
        }
    }

    /// Current values of every counter, in [`Counter::ALL`] order,
    /// omitting zeros.
    pub fn counters(&self) -> Vec<(Counter, u64)> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let snap = inner.snapshot();
        Counter::ALL
            .iter()
            .zip(snap)
            .filter(|(_, v)| *v > 0)
            .map(|(c, v)| (*c, v))
            .collect()
    }

    /// The current value of one counter (0 when disabled).
    pub fn counter(&self, counter: Counter) -> u64 {
        self.inner
            .as_ref()
            .map(|inner| inner.counters[counter.index()].load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Emits an arbitrary event kind (used by the trace layer).
    pub(crate) fn emit_kind(&self, kind: EventKind) {
        if let Some(inner) = &self.inner {
            inner.emit(kind);
        }
    }

    /// The shared metrics registry, when enabled.
    pub(crate) fn metrics(&self) -> Option<&MetricsRegistry> {
        self.inner.as_ref().map(|inner| &inner.metrics)
    }
}

impl fmt::Debug for Observer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            None => write!(f, "Observer(disabled)"),
            Some(inner) => write!(
                f,
                "Observer({} events)",
                inner.next_seq.load(Ordering::Relaxed)
            ),
        }
    }
}

struct LiveSpan {
    inner: Arc<Inner>,
    id: u64,
    name: &'static str,
    started: Instant,
    base: [u64; Counter::COUNT],
}

/// The RAII guard returned by [`Observer::span`]; dropping it closes the
/// span.
pub struct SpanGuard {
    live: Option<LiveSpan>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else {
            return;
        };
        let now = live.inner.snapshot();
        let counters: Vec<(Counter, u64)> = Counter::ALL
            .iter()
            .zip(now.iter().zip(&live.base))
            .filter(|(_, (now, base))| *now > *base)
            .map(|(c, (now, base))| (*c, now - base))
            .collect();
        live.inner.emit(EventKind::SpanEnd {
            id: live.id,
            name: live.name,
            elapsed_micros: live.started.elapsed().as_micros() as u64,
            counters,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::RingSink;

    #[test]
    fn disabled_observer_is_inert() {
        let obs = Observer::disabled();
        assert!(!obs.enabled());
        obs.add(Counter::NodesExpanded, 5);
        obs.mark("x", 1);
        let _g = obs.span("phase");
        let _g2 = obs.span_with("phase", || panic!("detail must not be built"));
        assert!(obs.counters().is_empty());
        assert_eq!(obs.counter(Counter::NodesExpanded), 0);
        assert_eq!(format!("{obs:?}"), "Observer(disabled)");
    }

    #[test]
    fn spans_attribute_counter_deltas() {
        let ring = RingSink::with_capacity(64);
        let obs = Observer::new(ring.clone());
        obs.add(Counter::NodesExpanded, 3); // before the span: not attributed
        {
            let _span = obs.span_with("work", || "detail".into());
            obs.add(Counter::NodesExpanded, 7);
            obs.add(Counter::WitnessesFound, 1);
        }
        let events = ring.events();
        assert_eq!(events.len(), 2);
        let EventKind::SpanStart { id, name, detail } = &events[0].kind else {
            panic!("expected span_start, got {:?}", events[0]);
        };
        assert_eq!((*name, detail.as_str()), ("work", "detail"));
        let EventKind::SpanEnd {
            id: end_id,
            counters,
            ..
        } = &events[1].kind
        else {
            panic!("expected span_end, got {:?}", events[1]);
        };
        assert_eq!(end_id, id);
        assert_eq!(
            counters,
            &vec![(Counter::NodesExpanded, 7), (Counter::WitnessesFound, 1)]
        );
        // The global table still holds the full totals.
        assert_eq!(obs.counter(Counter::NodesExpanded), 10);
        assert_eq!(obs.counters().len(), 2);
    }

    #[test]
    fn clones_share_the_session() {
        let ring = RingSink::with_capacity(8);
        let obs = Observer::new(ring.clone());
        let clone = obs.clone();
        clone.add(Counter::AuditsRun, 2);
        obs.mark("m", 1);
        assert_eq!(obs.counter(Counter::AuditsRun), 2);
        assert_eq!(ring.events().len(), 1);
        assert!(format!("{obs:?}").contains("1 events"));
    }
}
