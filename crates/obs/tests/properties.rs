//! Property tests for the observability primitives: JSON-lines
//! escaping must round-trip arbitrary Unicode (control characters and
//! non-BMP code points included) through pure-ASCII transcripts, the
//! ring sink must keep exactly the most recent events in order across
//! wraparound, and histogram snapshot merging must be associative and
//! commutative (so per-thread histograms can be combined in any order).

use std::io::Write;
use std::sync::{Arc, Mutex};

use dme_obs::{
    Event, EventKind, EventSink, Histogram, HistogramSnapshot, JsonLinesSink, RingSink, TraceId,
};
use proptest::prelude::*;

/// A `Write` handle over a shared buffer, so a transcript written by
/// [`JsonLinesSink`] can be read back in-process.
#[derive(Clone)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Inverse of the transcript escaping: decodes the contents of a JSON
/// string literal, including `\uXXXX` escapes and UTF-16 surrogate
/// pairs.
fn unescape(s: &str) -> String {
    let mut out = String::new();
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next().expect("dangling backslash") {
            '"' => out.push('"'),
            '\\' => out.push('\\'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            't' => out.push('\t'),
            'u' => {
                let hex: String = chars.by_ref().take(4).collect();
                let unit = u16::from_str_radix(&hex, 16).expect("4 hex digits");
                if (0xD800..0xDC00).contains(&unit) {
                    // High surrogate: the low half must follow as \uXXXX.
                    assert_eq!(chars.next(), Some('\\'));
                    assert_eq!(chars.next(), Some('u'));
                    let hex2: String = chars.by_ref().take(4).collect();
                    let low = u16::from_str_radix(&hex2, 16).expect("4 hex digits");
                    out.extend(char::decode_utf16([unit, low]).map(|r| r.expect("valid pair")));
                } else {
                    out.extend(char::decode_utf16([unit]).map(|r| r.expect("BMP unit")));
                }
            }
            other => panic!("unknown escape \\{other}"),
        }
    }
    out
}

/// Extracts the `detail` field's raw (still-escaped) contents from one
/// transcript line. Works because the transcript is pure ASCII and all
/// quotes inside the literal are escaped.
fn detail_field(line: &str) -> &str {
    let start = line.find("\"detail\":\"").expect("detail field") + "\"detail\":\"".len();
    let rest = &line[start..];
    let mut escaped = false;
    for (i, b) in rest.bytes().enumerate() {
        match b {
            b'\\' if !escaped => escaped = true,
            b'"' if !escaped => return &rest[..i],
            _ => escaped = false,
        }
    }
    panic!("unterminated detail literal: {line}");
}

fn snapshot_of(samples: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in samples {
        h.record(v);
    }
    h.snapshot()
}

fn merged(a: &HistogramSnapshot, b: &HistogramSnapshot) -> HistogramSnapshot {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Transcript escaping round-trips arbitrary code points — ASCII,
    /// control characters, and non-BMP — through a pure-ASCII line.
    #[test]
    fn jsonl_escaping_roundtrips_and_stays_ascii(
        points in prop::collection::vec(0u32..0x110000, 0..24),
    ) {
        let detail: String = points.iter().filter_map(|&p| char::from_u32(p)).collect();
        let buf = SharedBuf(Arc::new(Mutex::new(Vec::new())));
        let sink = JsonLinesSink::new(buf.clone());
        sink.record(&Event {
            seq: 0,
            at_micros: 0,
            kind: EventKind::Trace {
                name: "prop/escape",
                trace: TraceId(1),
                span: 0,
                parent: 0,
                detail: detail.clone(),
            },
        });
        sink.flush().unwrap();
        let bytes = buf.0.lock().unwrap().clone();
        let line = String::from_utf8(bytes).expect("transcript is UTF-8");
        let line = line.trim_end_matches('\n');
        prop_assert!(line.is_ascii(), "transcript line must be pure ASCII");
        prop_assert!(
            line.bytes().all(|b| (0x20..0x7F).contains(&b)),
            "no raw control bytes in a transcript line"
        );
        if detail.is_empty() {
            prop_assert!(!line.contains("\"detail\""), "empty detail is omitted");
        } else {
            prop_assert_eq!(unescape(detail_field(line)), detail);
        }
    }

    /// The ring keeps exactly the most recent `capacity` events, in
    /// order, across any number of wraparounds.
    #[test]
    fn ring_sink_keeps_most_recent_in_order_across_wraparound(
        capacity in 1usize..=32,
        count in 0u64..100,
    ) {
        let ring = RingSink::with_capacity(capacity);
        for seq in 0..count {
            ring.record(&Event {
                seq,
                at_micros: seq,
                kind: EventKind::Mark { name: "m", value: seq },
            });
        }
        prop_assert_eq!(ring.recorded() as u64, count);
        let seqs: Vec<u64> = ring.events().iter().map(|e| e.seq).collect();
        let expected: Vec<u64> = (count.saturating_sub(capacity as u64)..count).collect();
        prop_assert_eq!(seqs, expected);
    }

    /// Merging is associative, commutative, has `empty` as identity,
    /// and agrees with recording the concatenated sample stream — the
    /// algebra that makes per-thread histograms combinable in any order.
    #[test]
    fn histogram_merge_is_an_order_insensitive_fold(
        a in prop::collection::vec(any::<u64>(), 0..20),
        b in prop::collection::vec(any::<u64>(), 0..20),
        c in prop::collection::vec(any::<u64>(), 0..20),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));
        prop_assert_eq!(merged(&merged(&sa, &sb), &sc), merged(&sa, &merged(&sb, &sc)));
        prop_assert_eq!(merged(&sa, &sb), merged(&sb, &sa));
        prop_assert_eq!(merged(&sa, &HistogramSnapshot::empty()), sa.clone());
        let concat: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert_eq!(merged(&merged(&sa, &sb), &sc), snapshot_of(&concat));
    }
}
