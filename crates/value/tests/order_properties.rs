//! Property-based tests: the semantic orders on values and tuples are
//! genuine partial orders, and the componentwise lift behaves as the paper
//! requires (null-padding moves strictly downward, never sideways).

use std::cmp::Ordering;

use dme_value::{Atom, Tuple, Value};
use proptest::prelude::*;

fn arb_atom() -> impl Strategy<Value = Atom> {
    prop_oneof![
        any::<bool>().prop_map(Atom::Bool),
        (-50i64..50).prop_map(Atom::Int),
        "[a-e]{1,3}".prop_map(Atom::Str),
    ]
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        1 => Just(Value::Null),
        4 => arb_atom().prop_map(Value::Atom),
    ]
}

fn arb_tuple(arity: usize) -> impl Strategy<Value = Tuple> {
    prop::collection::vec(arb_value(), arity).prop_map(Tuple::new)
}

proptest! {
    #[test]
    fn value_order_reflexive(v in arb_value()) {
        prop_assert_eq!(v.sem_cmp(&v), Some(Ordering::Equal));
    }

    #[test]
    fn value_order_antisymmetric(a in arb_value(), b in arb_value()) {
        if a.sem_le(&b) && b.sem_le(&a) {
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn value_order_transitive(a in arb_value(), b in arb_value(), c in arb_value()) {
        if a.sem_le(&b) && b.sem_le(&c) {
            prop_assert!(a.sem_le(&c));
        }
    }

    #[test]
    fn value_cmp_is_antisymmetric_in_result(a in arb_value(), b in arb_value()) {
        let ab = a.sem_cmp(&b);
        let ba = b.sem_cmp(&a);
        match ab {
            Some(o) => prop_assert_eq!(ba, Some(o.reverse())),
            None => prop_assert_eq!(ba, None),
        }
    }

    #[test]
    fn tuple_order_reflexive(t in arb_tuple(3)) {
        prop_assert_eq!(t.sem_cmp(&t), Some(Ordering::Equal));
    }

    #[test]
    fn tuple_order_antisymmetric(a in arb_tuple(3), b in arb_tuple(3)) {
        if a.sem_le(&b) && b.sem_le(&a) {
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn tuple_order_transitive(a in arb_tuple(2), b in arb_tuple(2), c in arb_tuple(2)) {
        if a.sem_le(&b) && b.sem_le(&c) {
            prop_assert!(a.sem_le(&c));
        }
    }

    #[test]
    fn tuple_cmp_mirrors(a in arb_tuple(3), b in arb_tuple(3)) {
        let ab = a.sem_cmp(&b);
        let ba = b.sem_cmp(&a);
        match ab {
            Some(o) => prop_assert_eq!(ba, Some(o.reverse())),
            None => prop_assert_eq!(ba, None),
        }
    }

    /// Replacing any single non-null component with null produces a
    /// strictly smaller tuple — the foundation of insert-subsumption.
    #[test]
    fn nulling_a_component_strictly_decreases(t in arb_tuple(4), idx in 0usize..4) {
        if !t[idx].is_null() {
            let smaller: Tuple = t
                .values()
                .enumerate()
                .map(|(i, v)| if i == idx { Value::Null } else { v.clone() })
                .collect();
            prop_assert!(smaller.sem_lt(&t));
            prop_assert!(!t.sem_le(&smaller));
        }
    }

    /// `t ≤ u` implies componentwise `t[i] ≤ u[i]`.
    #[test]
    fn le_implies_componentwise_le(a in arb_tuple(3), b in arb_tuple(3)) {
        if a.sem_le(&b) {
            for i in 0..3 {
                prop_assert!(a[i].sem_le(&b[i]));
            }
        }
    }

    /// Comparable tuples agree on all non-null components.
    #[test]
    fn comparable_tuples_agree_where_both_nonnull(a in arb_tuple(3), b in arb_tuple(3)) {
        if a.sem_cmp(&b).is_some() {
            for i in 0..3 {
                if !a[i].is_null() && !b[i].is_null() {
                    prop_assert_eq!(&a[i], &b[i]);
                }
            }
        }
    }

    #[test]
    fn projection_preserves_order(a in arb_tuple(4), b in arb_tuple(4)) {
        if a.sem_le(&b) {
            let pa = a.project(&[0, 2]).unwrap();
            let pb = b.project(&[0, 2]).unwrap();
            prop_assert!(pa.sem_le(&pb));
        }
    }

    #[test]
    fn concat_preserves_order(
        a in arb_tuple(2), b in arb_tuple(2),
        c in arb_tuple(2), d in arb_tuple(2),
    ) {
        if a.sem_le(&b) && c.sem_le(&d) {
            prop_assert!(a.concat(&c).sem_le(&b.concat(&d)));
        }
    }
}
