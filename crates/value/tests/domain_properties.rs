//! Property tests for domains: enumeration agrees with membership and
//! cardinality.

use dme_value::{Atom, DomainSpec};
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = DomainSpec> {
    prop_oneof![
        prop::collection::btree_set(
            prop_oneof![
                any::<bool>().prop_map(Atom::Bool),
                (-20i64..20).prop_map(Atom::Int),
                "[a-c]{1,2}".prop_map(Atom::Str),
            ],
            0..6,
        )
        .prop_map(DomainSpec::Enumerated),
        Just(DomainSpec::AnyBool),
        (-10i64..10, -10i64..10).prop_map(|(a, b)| DomainSpec::IntRange(a.min(b), a.max(b))),
        Just(DomainSpec::AnyInt),
        Just(DomainSpec::AnyStr),
    ]
}

proptest! {
    #[test]
    fn enumeration_agrees_with_membership(spec in arb_spec()) {
        match spec.enumerate() {
            Some(members) => {
                prop_assert!(spec.is_finite());
                prop_assert_eq!(Some(members.len()), spec.cardinality());
                for m in &members {
                    prop_assert!(spec.contains(m), "{m} enumerated but not contained");
                }
                // Enumeration is duplicate-free.
                let set: std::collections::BTreeSet<_> = members.iter().collect();
                prop_assert_eq!(set.len(), members.len());
            }
            None => {
                prop_assert!(!spec.is_finite() || spec.cardinality().is_none());
            }
        }
    }

    #[test]
    fn open_domains_partition_by_type(i in any::<i64>(), s in ".{0,8}", b in any::<bool>()) {
        prop_assert!(DomainSpec::AnyInt.contains(&Atom::Int(i)));
        prop_assert!(!DomainSpec::AnyInt.contains(&Atom::Str(s.clone())));
        prop_assert!(DomainSpec::AnyStr.contains(&Atom::Str(s.clone())));
        prop_assert!(!DomainSpec::AnyStr.contains(&Atom::Bool(b)));
        prop_assert!(DomainSpec::AnyBool.contains(&Atom::Bool(b)));
        prop_assert!(!DomainSpec::AnyBool.contains(&Atom::Int(i)));
    }

    #[test]
    fn int_range_membership_matches_bounds(lo in -20i64..20, hi in -20i64..20, probe in -25i64..25) {
        let spec = DomainSpec::IntRange(lo, hi);
        prop_assert_eq!(
            spec.contains(&Atom::Int(probe)),
            lo <= probe && probe <= hi
        );
    }
}
