#![deny(missing_docs)]

//! # dme-value — value domain substrate
//!
//! The lowest layer of the `borkin-equiv` workspace: the values that appear
//! in database states of every data model implemented here (the semantic
//! relation model, the semantic graph model, and the syntactic baselines).
//!
//! Borkin's paper (VLDB 1978, §3.2.1 and §3.3.1) requires three things of
//! the value layer:
//!
//! 1. **Atomic values** drawn from named *domains* ("the schema must contain
//!    a specification of the values comprising each domain").
//! 2. A distinguished **null value** ("----" in the paper's figures),
//!    allowed in some columns, meaning "no such participant".
//! 3. A **partial order** on values and tuples: "The partial ordering of
//!    tuples is based on all non-null domain values being greater than null
//!    and incomparable with any values other than null and itself."
//!    The `insert-statements` operation of the semantic relation model uses
//!    this order to automatically delete all tuples *less than* those
//!    inserted (the Figure 6 → Figure 7 transition).
//!
//! This crate provides [`Atom`], [`Value`], [`Tuple`], [`Domain`],
//! [`DomainCatalog`] and the interned [`Symbol`] type used for every name
//! (relations, predicates, cases, characteristics, entity types, roles).

pub mod atom;
pub mod domain;
pub mod symbol;
pub mod tuple;
pub mod value;

pub use atom::Atom;
pub use domain::{Domain, DomainCatalog, DomainError, DomainSpec};
pub use symbol::Symbol;
pub use tuple::Tuple;
pub use value::Value;
