//! Atomic (non-null) values.
//!
//! An [`Atom`] is a single value drawn from some domain: an employee name,
//! an age in years, a machine serial number. Atoms carry no domain
//! information themselves; domain membership is checked by
//! [`crate::Domain`].
//!
//! Atoms are totally ordered (`Ord`) so they can live in `BTreeSet`s and be
//! compared deterministically in golden tests, but note that this total
//! order is a *representation* order, not the paper's semantic partial
//! order — that order lives on [`crate::Value`], where any two distinct
//! atoms are incomparable.

use std::fmt;

/// A single atomic value.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Atom {
    /// A boolean value.
    Bool(bool),
    /// A 64-bit signed integer (ages, counts, quantities).
    Int(i64),
    /// A string (names, serial numbers, machine types).
    Str(String),
}

impl Atom {
    /// Builds a string atom.
    pub fn str(s: impl Into<String>) -> Self {
        Atom::Str(s.into())
    }

    /// Builds an integer atom.
    pub fn int(i: i64) -> Self {
        Atom::Int(i)
    }

    /// Returns the string contents if this is a `Str` atom.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Atom::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the integer if this is an `Int` atom.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Atom::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the boolean if this is a `Bool` atom.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Atom::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// A short name for the runtime type of this atom, used in error
    /// messages ("expected int, got str").
    pub fn type_name(&self) -> &'static str {
        match self {
            Atom::Bool(_) => "bool",
            Atom::Int(_) => "int",
            Atom::Str(_) => "str",
        }
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::Bool(b) => write!(f, "{b}"),
            Atom::Int(i) => write!(f, "{i}"),
            Atom::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::Bool(b) => write!(f, "{b}"),
            Atom::Int(i) => write!(f, "{i}"),
            Atom::Str(s) => f.write_str(s),
        }
    }
}

impl From<&str> for Atom {
    fn from(s: &str) -> Self {
        Atom::Str(s.to_owned())
    }
}

impl From<String> for Atom {
    fn from(s: String) -> Self {
        Atom::Str(s)
    }
}

impl From<i64> for Atom {
    fn from(i: i64) -> Self {
        Atom::Int(i)
    }
}

impl From<bool> for Atom {
    fn from(b: bool) -> Self {
        Atom::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Atom::str("x").as_str(), Some("x"));
        assert_eq!(Atom::int(3).as_int(), Some(3));
        assert_eq!(Atom::from(true).as_bool(), Some(true));
        assert_eq!(Atom::int(3).as_str(), None);
        assert_eq!(Atom::str("x").as_int(), None);
        assert_eq!(Atom::str("x").as_bool(), None);
    }

    #[test]
    fn type_names() {
        assert_eq!(Atom::from(false).type_name(), "bool");
        assert_eq!(Atom::int(0).type_name(), "int");
        assert_eq!(Atom::str("").type_name(), "str");
    }

    #[test]
    fn total_order_is_deterministic() {
        // Bool < Int < Str by variant order; within a variant, natural order.
        let mut atoms = vec![
            Atom::str("b"),
            Atom::int(10),
            Atom::from(true),
            Atom::str("a"),
            Atom::int(-5),
            Atom::from(false),
        ];
        atoms.sort();
        assert_eq!(
            atoms,
            vec![
                Atom::from(false),
                Atom::from(true),
                Atom::int(-5),
                Atom::int(10),
                Atom::str("a"),
                Atom::str("b"),
            ]
        );
    }

    #[test]
    fn display_forms() {
        assert_eq!(Atom::str("NZ745").to_string(), "NZ745");
        assert_eq!(Atom::int(32).to_string(), "32");
        assert_eq!(Atom::from(true).to_string(), "true");
    }
}
