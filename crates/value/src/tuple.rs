//! Tuples (the paper's *statements*) and their componentwise semantic
//! partial order.
//!
//! A [`Tuple`] is a fixed-arity sequence of [`Value`]s. The semantic
//! relation model stores relations as sets of tuples; the
//! `insert-statements` operation type "is defined to automatically delete
//! all tuples in a relation *less than* those inserted" (§3.3.1), where
//! "less than" is the componentwise lift of the value order: `t ≤ u` iff
//! the tuples have the same arity and `t[i] ≤ u[i]` for every `i`.
//!
//! Under this order, the Figure 3 Jobs tuple `(----, T.Manhart, NZ745)` is
//! strictly less than the Figure 7 tuple `(G.Wayshum, T.Manhart, NZ745)`,
//! which is why inserting the latter silently removes the former.

use std::cmp::Ordering;
use std::fmt;
use std::ops::Index;

use crate::Value;

/// A fixed-arity sequence of values; one statement of a relation.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tuple(Box<[Value]>);

impl Tuple {
    /// Builds a tuple from any iterable of values.
    ///
    /// ```
    /// use dme_value::{Tuple, Value};
    /// let t = Tuple::new([Value::str("G.Wayshum"), Value::Null]);
    /// assert_eq!(t.arity(), 2);
    /// ```
    pub fn new(values: impl IntoIterator<Item = Value>) -> Self {
        Tuple(values.into_iter().collect())
    }

    /// Number of components.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Component access without panicking.
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.0.get(i)
    }

    /// Iterator over components.
    pub fn values(&self) -> impl ExactSizeIterator<Item = &Value> {
        self.0.iter()
    }

    /// The underlying slice.
    pub fn as_slice(&self) -> &[Value] {
        &self.0
    }

    /// Whether any component is null.
    pub fn has_null(&self) -> bool {
        self.0.iter().any(Value::is_null)
    }

    /// Projects the tuple onto the given column indices. Returns `None` if
    /// any index is out of range.
    pub fn project(&self, columns: &[usize]) -> Option<Tuple> {
        columns
            .iter()
            .map(|&c| self.0.get(c).cloned())
            .collect::<Option<Vec<_>>>()
            .map(Tuple::new)
    }

    /// Concatenates two tuples (used by the semantic join operations).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        Tuple(self.0.iter().chain(other.0.iter()).cloned().collect())
    }

    /// Componentwise semantic partial order (see module docs).
    ///
    /// Tuples of different arity are incomparable.
    ///
    /// ```
    /// use std::cmp::Ordering;
    /// use dme_value::{Tuple, Value};
    ///
    /// let old = Tuple::new([Value::Null, Value::str("T.Manhart")]);
    /// let new = Tuple::new([Value::str("G.Wayshum"), Value::str("T.Manhart")]);
    /// assert_eq!(old.sem_cmp(&new), Some(Ordering::Less));
    /// ```
    pub fn sem_cmp(&self, other: &Tuple) -> Option<Ordering> {
        if self.arity() != other.arity() {
            return None;
        }
        let mut acc = Ordering::Equal;
        for (a, b) in self.0.iter().zip(other.0.iter()) {
            let c = a.sem_cmp(b)?;
            acc = match (acc, c) {
                (Ordering::Equal, c) => c,
                (acc, Ordering::Equal) => acc,
                (Ordering::Less, Ordering::Less) => Ordering::Less,
                (Ordering::Greater, Ordering::Greater) => Ordering::Greater,
                // Mixed directions: incomparable.
                _ => return None,
            };
        }
        Some(acc)
    }

    /// `self ≤ other` componentwise.
    pub fn sem_le(&self, other: &Tuple) -> bool {
        matches!(
            self.sem_cmp(other),
            Some(Ordering::Less) | Some(Ordering::Equal)
        )
    }

    /// `self < other` componentwise: `other` dominates `self`.
    pub fn sem_lt(&self, other: &Tuple) -> bool {
        self.sem_cmp(other) == Some(Ordering::Less)
    }

    /// The least upper bound of two tuples in the semantic order, when it
    /// exists: componentwise, take the non-null value where exactly one
    /// side is null, the common value where both agree, and fail on a
    /// conflict of distinct atoms.
    ///
    /// Used by statement normalization: two statements that agree wherever
    /// both speak can sometimes be combined into their join (e.g. the
    /// Figure 3 Jobs rows `(G.Wayshum, C.Gershag, ----)` and
    /// `(----, C.Gershag, JCL181)` join to
    /// `(G.Wayshum, C.Gershag, JCL181)`).
    ///
    /// ```
    /// use dme_value::{tuple, Value};
    /// let a = tuple!["G.Wayshum", "C.Gershag", Value::Null];
    /// let b = tuple![Value::Null, "C.Gershag", "JCL181"];
    /// assert_eq!(a.sem_join(&b), Some(tuple!["G.Wayshum", "C.Gershag", "JCL181"]));
    ///
    /// let c = tuple![Value::Null, "T.Manhart", "NZ745"];
    /// assert_eq!(a.sem_join(&c), None); // C.Gershag vs T.Manhart conflict
    /// ```
    pub fn sem_join(&self, other: &Tuple) -> Option<Tuple> {
        if self.arity() != other.arity() {
            return None;
        }
        self.0
            .iter()
            .zip(other.0.iter())
            .map(|(a, b)| match (a, b) {
                (Value::Null, v) | (v, Value::Null) => Some(v.clone()),
                (x, y) if x == y => Some(x.clone()),
                _ => None,
            })
            .collect::<Option<Vec<_>>>()
            .map(Tuple::new)
    }
}

impl Index<usize> for Tuple {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        &self.0[i]
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Tuple::new(iter)
    }
}

impl<const N: usize> From<[Value; N]> for Tuple {
    fn from(vs: [Value; N]) -> Self {
        Tuple::new(vs)
    }
}

/// Builds a [`Tuple`] from a comma-separated list of expressions, each
/// convertible into a [`Value`].
///
/// ```
/// use dme_value::{tuple, Tuple, Value};
/// let t = tuple!["T.Manhart", 32];
/// assert_eq!(t, Tuple::new([Value::str("T.Manhart"), Value::int(32)]));
/// let with_null = tuple![Value::Null, "NZ745"];
/// assert!(with_null.has_null());
/// ```
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::Tuple::new([$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Value {
        Value::str(s)
    }

    #[test]
    fn arity_and_access() {
        let t = tuple!["a", 1, Value::Null];
        assert_eq!(t.arity(), 3);
        assert_eq!(t[0], v("a"));
        assert_eq!(t.get(2), Some(&Value::Null));
        assert_eq!(t.get(3), None);
        assert!(t.has_null());
    }

    #[test]
    fn projection() {
        let t = tuple!["a", "b", "c"];
        assert_eq!(t.project(&[2, 0]), Some(tuple!["c", "a"]));
        assert_eq!(t.project(&[3]), None);
        assert_eq!(t.project(&[]), Some(Tuple::new([])));
    }

    #[test]
    fn concat() {
        let t = tuple!["a"].concat(&tuple!["b", "c"]);
        assert_eq!(t, tuple!["a", "b", "c"]);
    }

    #[test]
    fn different_arity_incomparable() {
        assert_eq!(tuple!["a"].sem_cmp(&tuple!["a", "b"]), None);
    }

    #[test]
    fn paper_figure7_subsumption_case() {
        // Figure 3 Jobs row 2 vs Figure 7 Jobs row 2.
        let old = tuple![Value::Null, "T.Manhart", "NZ745"];
        let new = tuple!["G.Wayshum", "T.Manhart", "NZ745"];
        assert!(old.sem_lt(&new));
        assert!(!new.sem_le(&old));
    }

    #[test]
    fn mixed_direction_incomparable() {
        let a = tuple![Value::Null, "x"];
        let b = tuple!["y", Value::Null];
        assert_eq!(a.sem_cmp(&b), None);
    }

    #[test]
    fn differing_atoms_incomparable() {
        let a = tuple!["x", "z"];
        let b = tuple!["y", "z"];
        assert_eq!(a.sem_cmp(&b), None);
    }

    #[test]
    fn equal_tuples() {
        let a = tuple!["x", Value::Null];
        assert_eq!(a.sem_cmp(&a.clone()), Some(Ordering::Equal));
        assert!(a.sem_le(&a));
        assert!(!a.sem_lt(&a));
    }

    #[test]
    fn order_properties_hold_on_sample() {
        let sample = vec![
            tuple![Value::Null, Value::Null],
            tuple![Value::Null, "b"],
            tuple!["a", Value::Null],
            tuple!["a", "b"],
            tuple!["a", "c"],
            tuple!["d", "b"],
        ];
        // Reflexivity + antisymmetry + transitivity on the sample.
        for x in &sample {
            assert!(x.sem_le(x));
            for y in &sample {
                if x.sem_le(y) && y.sem_le(x) {
                    assert_eq!(x, y);
                }
                for z in &sample {
                    if x.sem_le(y) && y.sem_le(z) {
                        assert!(x.sem_le(z), "{x} <= {y} <= {z}");
                    }
                }
            }
        }
    }

    #[test]
    fn display() {
        let t = tuple!["G.Wayshum", Value::Null, "JCL181"];
        assert_eq!(t.to_string(), "(G.Wayshum, ----, JCL181)");
    }

    #[test]
    fn join_is_least_upper_bound() {
        let a = tuple![Value::Null, "x"];
        let b = tuple!["y", Value::Null];
        let j = a.sem_join(&b).unwrap();
        assert_eq!(j, tuple!["y", "x"]);
        assert!(a.sem_le(&j));
        assert!(b.sem_le(&j));
    }

    #[test]
    fn join_of_comparable_is_the_larger() {
        let small = tuple![Value::Null, "x"];
        let big = tuple!["y", "x"];
        assert_eq!(small.sem_join(&big), Some(big.clone()));
        assert_eq!(big.sem_join(&small), Some(big.clone()));
        assert_eq!(big.sem_join(&big.clone()), Some(big));
    }

    #[test]
    fn join_fails_on_conflict_or_arity() {
        assert_eq!(tuple!["a"].sem_join(&tuple!["b"]), None);
        assert_eq!(tuple!["a"].sem_join(&tuple!["a", "b"]), None);
    }
}
