//! Domains of allowed values and the domain catalog.
//!
//! §2.1 of the paper: a relational schema "would specify the name of each
//! relation, the domains of allowed values for each column of a relation
//! and the integrity constraints…". §3.2.1: "The schema must contain a
//! specification of the values comprising each domain."
//!
//! The paper's Figure 3 uses the domains `names`, `years`,
//! `serial-numbers` and `machine-types`. We support both *enumerated*
//! domains (an explicit finite set of atoms — what the equivalence
//! checkers need to enumerate reachable states) and *open* domains (any
//! value of a base type — what a production schema would normally use).

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::fmt;

use crate::{Atom, Symbol, Value};

/// How a domain constrains its members.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DomainSpec {
    /// Exactly this finite set of atoms. Used by the bounded equivalence
    /// checkers, which enumerate all states over the schema's domains.
    Enumerated(BTreeSet<Atom>),
    /// Any integer.
    AnyInt,
    /// Any integer in the inclusive range `[lo, hi]`.
    IntRange(i64, i64),
    /// Any string.
    AnyStr,
    /// Any boolean.
    AnyBool,
}

impl DomainSpec {
    /// Whether `atom` is a member of this domain.
    pub fn contains(&self, atom: &Atom) -> bool {
        match self {
            DomainSpec::Enumerated(set) => set.contains(atom),
            DomainSpec::AnyInt => matches!(atom, Atom::Int(_)),
            DomainSpec::IntRange(lo, hi) => {
                matches!(atom, Atom::Int(i) if lo <= i && i <= hi)
            }
            DomainSpec::AnyStr => matches!(atom, Atom::Str(_)),
            DomainSpec::AnyBool => matches!(atom, Atom::Bool(_)),
        }
    }

    /// Whether the domain is finite, i.e. its members can be enumerated.
    pub fn is_finite(&self) -> bool {
        match self {
            DomainSpec::Enumerated(_) | DomainSpec::AnyBool => true,
            DomainSpec::IntRange(lo, hi) => lo <= hi,
            DomainSpec::AnyInt | DomainSpec::AnyStr => false,
        }
    }

    /// Enumerates the members of a finite domain; `None` for open domains.
    pub fn enumerate(&self) -> Option<Vec<Atom>> {
        match self {
            DomainSpec::Enumerated(set) => Some(set.iter().cloned().collect()),
            DomainSpec::AnyBool => Some(vec![Atom::Bool(false), Atom::Bool(true)]),
            DomainSpec::IntRange(lo, hi) if lo <= hi => Some((*lo..=*hi).map(Atom::Int).collect()),
            _ => None,
        }
    }

    /// Number of members of a finite domain; `None` for open domains.
    pub fn cardinality(&self) -> Option<usize> {
        match self {
            DomainSpec::Enumerated(set) => Some(set.len()),
            DomainSpec::AnyBool => Some(2),
            DomainSpec::IntRange(lo, hi) if lo <= hi => {
                usize::try_from(hi - lo).ok().and_then(|d| d.checked_add(1))
            }
            _ => None,
        }
    }
}

/// A named domain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Domain {
    name: Symbol,
    spec: DomainSpec,
}

impl Domain {
    /// Creates a named domain.
    pub fn new(name: impl Into<Symbol>, spec: DomainSpec) -> Self {
        Domain {
            name: name.into(),
            spec,
        }
    }

    /// An enumerated domain built from string atoms — the common case for
    /// the paper's examples (`names`, `serial-numbers`, `machine-types`).
    pub fn of_strs<'a>(
        name: impl Into<Symbol>,
        members: impl IntoIterator<Item = &'a str>,
    ) -> Self {
        Domain::new(
            name,
            DomainSpec::Enumerated(members.into_iter().map(Atom::from).collect()),
        )
    }

    /// An enumerated domain built from integer atoms (`years`).
    pub fn of_ints(name: impl Into<Symbol>, members: impl IntoIterator<Item = i64>) -> Self {
        Domain::new(
            name,
            DomainSpec::Enumerated(members.into_iter().map(Atom::Int).collect()),
        )
    }

    /// The domain's name.
    pub fn name(&self) -> &Symbol {
        &self.name
    }

    /// The domain's membership specification.
    pub fn spec(&self) -> &DomainSpec {
        &self.spec
    }

    /// Whether `atom` is a member.
    pub fn contains(&self, atom: &Atom) -> bool {
        self.spec.contains(atom)
    }

    /// Checks a possibly-null value: null is accepted here — *column*
    /// nullability is a schema property, not a domain property.
    pub fn admits(&self, value: &Value) -> bool {
        match value {
            Value::Null => true,
            Value::Atom(a) => self.contains(a),
        }
    }
}

/// Errors raised by [`DomainCatalog`] operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DomainError {
    /// A referenced domain is not present in the catalog.
    UnknownDomain(Symbol),
    /// A domain with this name is already defined.
    DuplicateDomain(Symbol),
    /// A value is not a member of the named domain.
    NotInDomain {
        /// The domain that rejected the value.
        domain: Symbol,
        /// The offending value.
        value: Value,
    },
}

impl fmt::Display for DomainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DomainError::UnknownDomain(d) => write!(f, "unknown domain `{d}`"),
            DomainError::DuplicateDomain(d) => write!(f, "duplicate domain `{d}`"),
            DomainError::NotInDomain { domain, value } => {
                write!(f, "value `{value}` is not in domain `{domain}`")
            }
        }
    }
}

impl std::error::Error for DomainError {}

/// A collection of named domains; the "specification of the values
/// comprising each domain" that the paper requires every schema to carry.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DomainCatalog {
    domains: BTreeMap<Symbol, Domain>,
}

impl DomainCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a domain, rejecting duplicates.
    pub fn add(&mut self, domain: Domain) -> Result<(), DomainError> {
        let name = domain.name().clone();
        if self.domains.contains_key(&name) {
            return Err(DomainError::DuplicateDomain(name));
        }
        self.domains.insert(name, domain);
        Ok(())
    }

    /// Builder-style `add` for schema construction code.
    pub fn with(mut self, domain: Domain) -> Self {
        let name = domain.name().clone();
        assert!(
            self.domains.insert(name.clone(), domain).is_none(),
            "duplicate domain `{name}`"
        );
        self
    }

    /// Looks up a domain by name.
    pub fn get(&self, name: &str) -> Option<&Domain> {
        self.domains.get(name)
    }

    /// Looks up a domain, producing a catalog error when missing.
    pub fn require(&self, name: &Symbol) -> Result<&Domain, DomainError> {
        self.domains
            .get(name)
            .ok_or_else(|| DomainError::UnknownDomain(name.clone()))
    }

    /// Checks that `value` is admitted by the named domain (nulls are
    /// always admitted at this layer).
    pub fn check(&self, name: &Symbol, value: &Value) -> Result<(), DomainError> {
        let domain = self.require(name)?;
        if domain.admits(value) {
            Ok(())
        } else {
            Err(DomainError::NotInDomain {
                domain: name.clone(),
                value: value.clone(),
            })
        }
    }

    /// Iterates over all domains in name order.
    pub fn iter(&self) -> impl Iterator<Item = &Domain> {
        self.domains.values()
    }

    /// Number of domains.
    pub fn len(&self) -> usize {
        self.domains.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.domains.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sym;

    #[test]
    fn enumerated_membership() {
        let d = Domain::of_strs("names", ["T.Manhart", "C.Gershag"]);
        assert!(d.contains(&Atom::str("T.Manhart")));
        assert!(!d.contains(&Atom::str("nobody")));
        assert!(!d.contains(&Atom::int(3)));
    }

    #[test]
    fn open_domains() {
        let ints = Domain::new("years", DomainSpec::AnyInt);
        assert!(ints.contains(&Atom::int(-7)));
        assert!(!ints.contains(&Atom::str("7")));
        assert!(!ints.spec().is_finite());
        assert_eq!(ints.spec().enumerate(), None);

        let strs = Domain::new("free", DomainSpec::AnyStr);
        assert!(strs.contains(&Atom::str("anything")));
        assert!(!strs.contains(&Atom::Bool(true)));
    }

    #[test]
    fn int_range() {
        let d = Domain::new("age", DomainSpec::IntRange(18, 65));
        assert!(d.contains(&Atom::int(18)));
        assert!(d.contains(&Atom::int(65)));
        assert!(!d.contains(&Atom::int(17)));
        assert_eq!(d.spec().cardinality(), Some(48));
        assert_eq!(d.spec().enumerate().unwrap().len(), 48);
    }

    #[test]
    fn empty_int_range_is_finite_and_empty() {
        let d = DomainSpec::IntRange(5, 4);
        assert!(!d.is_finite());
        assert!(!d.contains(&Atom::int(5)));
    }

    #[test]
    fn bool_domain_enumerates() {
        let d = DomainSpec::AnyBool;
        assert_eq!(d.cardinality(), Some(2));
        assert_eq!(
            d.enumerate().unwrap(),
            vec![Atom::Bool(false), Atom::Bool(true)]
        );
    }

    #[test]
    fn null_admitted_by_every_domain() {
        let d = Domain::of_strs("names", ["x"]);
        assert!(d.admits(&Value::Null));
        assert!(d.admits(&Value::str("x")));
        assert!(!d.admits(&Value::str("y")));
    }

    #[test]
    fn catalog_add_get_check() {
        let mut cat = DomainCatalog::new();
        cat.add(Domain::of_strs("names", ["a"])).unwrap();
        assert_eq!(
            cat.add(Domain::of_strs("names", ["b"])),
            Err(DomainError::DuplicateDomain(sym!("names")))
        );
        assert!(cat.get("names").is_some());
        assert!(cat.get("missing").is_none());
        assert_eq!(cat.len(), 1);
        assert!(!cat.is_empty());

        assert_eq!(cat.check(&sym!("names"), &Value::str("a")), Ok(()));
        assert_eq!(cat.check(&sym!("names"), &Value::Null), Ok(()));
        assert_eq!(
            cat.check(&sym!("names"), &Value::str("zzz")),
            Err(DomainError::NotInDomain {
                domain: sym!("names"),
                value: Value::str("zzz"),
            })
        );
        assert_eq!(
            cat.check(&sym!("nope"), &Value::Null),
            Err(DomainError::UnknownDomain(sym!("nope")))
        );
    }

    #[test]
    #[should_panic(expected = "duplicate domain")]
    fn builder_with_panics_on_duplicate() {
        let _ = DomainCatalog::new()
            .with(Domain::of_strs("d", ["a"]))
            .with(Domain::of_strs("d", ["b"]));
    }

    #[test]
    fn error_display() {
        let e = DomainError::NotInDomain {
            domain: sym!("names"),
            value: Value::str("zzz"),
        };
        assert_eq!(e.to_string(), "value `zzz` is not in domain `names`");
        assert_eq!(
            DomainError::UnknownDomain(sym!("d")).to_string(),
            "unknown domain `d`"
        );
    }
}
