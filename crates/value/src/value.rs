//! Nullable values and the paper's semantic partial order.
//!
//! §3.3.1 of the paper: *"The partial ordering of tuples is based on all
//! non-null domain values being greater than null and incomparable with any
//! values other than null and itself."*
//!
//! [`Value`] is therefore either [`Value::Null`] or an [`Atom`], and
//! implements exactly that partial order via [`Value::sem_cmp`]:
//!
//! * `Null == Null`,
//! * `Null < atom` for every atom,
//! * `atom == atom` for identical atoms,
//! * distinct atoms are **incomparable**.
//!
//! We deliberately do *not* expose the semantic order through
//! `PartialOrd`: `Value` derives a *total* representation order (`Ord`) so
//! states can be stored in `BTreeSet`s with deterministic iteration. The
//! semantic order — the one `insert-statements` subsumption is defined
//! over — is the explicit [`Value::sem_cmp`] / [`Tuple::sem_cmp`](crate::Tuple::sem_cmp)
//! (see [`crate::Tuple`]) API, which returns `Option<Ordering>`.

use std::cmp::Ordering;
use std::fmt;

use crate::Atom;

/// A value appearing in a database state: either the distinguished null
/// ("----" in the paper's figures) or an atomic value.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// The null value. In the semantic relation model a null in a case
    /// column means "no participant fills this case" (e.g. "an employee
    /// named T.Manhart has **no supervisor** and operates machine NZ745").
    Null,
    /// A non-null atomic value.
    Atom(Atom),
}

impl Value {
    /// Builds a string-atom value.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Atom(Atom::Str(s.into()))
    }

    /// Builds an integer-atom value.
    pub fn int(i: i64) -> Self {
        Value::Atom(Atom::Int(i))
    }

    /// Builds a boolean-atom value.
    pub fn bool(b: bool) -> Self {
        Value::Atom(Atom::Bool(b))
    }

    /// Whether this value is null.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The atom, if non-null.
    pub fn as_atom(&self) -> Option<&Atom> {
        match self {
            Value::Null => None,
            Value::Atom(a) => Some(a),
        }
    }

    /// Consumes the value, returning the atom if non-null.
    pub fn into_atom(self) -> Option<Atom> {
        match self {
            Value::Null => None,
            Value::Atom(a) => Some(a),
        }
    }

    /// The paper's semantic partial order on values.
    ///
    /// ```
    /// use std::cmp::Ordering;
    /// use dme_value::Value;
    ///
    /// let null = Value::Null;
    /// let a = Value::str("T.Manhart");
    /// let b = Value::str("G.Wayshum");
    ///
    /// assert_eq!(null.sem_cmp(&null), Some(Ordering::Equal));
    /// assert_eq!(null.sem_cmp(&a), Some(Ordering::Less));
    /// assert_eq!(a.sem_cmp(&null), Some(Ordering::Greater));
    /// assert_eq!(a.sem_cmp(&a), Some(Ordering::Equal));
    /// assert_eq!(a.sem_cmp(&b), None); // distinct atoms: incomparable
    /// ```
    pub fn sem_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, Value::Null) => Some(Ordering::Equal),
            (Value::Null, Value::Atom(_)) => Some(Ordering::Less),
            (Value::Atom(_), Value::Null) => Some(Ordering::Greater),
            (Value::Atom(a), Value::Atom(b)) => {
                if a == b {
                    Some(Ordering::Equal)
                } else {
                    None
                }
            }
        }
    }

    /// `self ≤ other` in the semantic partial order.
    pub fn sem_le(&self, other: &Value) -> bool {
        matches!(
            self.sem_cmp(other),
            Some(Ordering::Less) | Some(Ordering::Equal)
        )
    }

    /// `self < other` in the semantic partial order (i.e. `self` is null
    /// and `other` is not).
    pub fn sem_lt(&self, other: &Value) -> bool {
        self.sem_cmp(other) == Some(Ordering::Less)
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("----"),
            Value::Atom(a) => write!(f, "{a:?}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("----"),
            Value::Atom(a) => write!(f, "{a}"),
        }
    }
}

impl From<Atom> for Value {
    fn from(a: Atom) -> Self {
        Value::Atom(a)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Atom(Atom::Str(s))
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::int(i)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::bool(b)
    }
}

impl From<Option<Atom>> for Value {
    fn from(o: Option<Atom>) -> Self {
        match o {
            Some(a) => Value::Atom(a),
            None => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vals() -> Vec<Value> {
        vec![
            Value::Null,
            Value::str("a"),
            Value::str("b"),
            Value::int(1),
            Value::int(2),
            Value::bool(true),
        ]
    }

    #[test]
    fn sem_order_reflexive() {
        for v in vals() {
            assert_eq!(v.sem_cmp(&v), Some(Ordering::Equal));
            assert!(v.sem_le(&v));
            assert!(!v.sem_lt(&v));
        }
    }

    #[test]
    fn sem_order_antisymmetric() {
        for a in vals() {
            for b in vals() {
                if a.sem_le(&b) && b.sem_le(&a) {
                    assert_eq!(a, b, "{a:?} vs {b:?}");
                }
            }
        }
    }

    #[test]
    fn sem_order_transitive() {
        let vs = vals();
        for a in &vs {
            for b in &vs {
                for c in &vs {
                    if a.sem_le(b) && b.sem_le(c) {
                        assert!(a.sem_le(c), "{a:?} <= {b:?} <= {c:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn null_below_everything_nonnull() {
        for v in vals() {
            if !v.is_null() {
                assert!(Value::Null.sem_lt(&v));
                assert!(!v.sem_le(&Value::Null));
            }
        }
    }

    #[test]
    fn distinct_atoms_incomparable() {
        assert_eq!(Value::str("a").sem_cmp(&Value::str("b")), None);
        assert_eq!(Value::int(1).sem_cmp(&Value::int(2)), None);
        assert_eq!(Value::str("a").sem_cmp(&Value::int(1)), None);
        assert_eq!(Value::bool(true).sem_cmp(&Value::bool(false)), None);
    }

    #[test]
    fn representation_order_puts_null_first() {
        // The derived total order is only used for deterministic storage;
        // we pin down that Null sorts before atoms so golden outputs are
        // stable.
        let mut v = [Value::str("a"), Value::Null, Value::int(1)];
        v.sort();
        assert_eq!(v[0], Value::Null);
    }

    #[test]
    fn display_matches_paper_null_notation() {
        assert_eq!(Value::Null.to_string(), "----");
        assert_eq!(Value::str("JCL181").to_string(), "JCL181");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from("x"), Value::str("x"));
        assert_eq!(Value::from(5), Value::int(5));
        assert_eq!(Value::from(Some(Atom::int(1))), Value::int(1));
        assert_eq!(Value::from(None::<Atom>), Value::Null);
        assert_eq!(Value::int(7).into_atom(), Some(Atom::int(7)));
        assert_eq!(Value::Null.into_atom(), None);
    }
}
