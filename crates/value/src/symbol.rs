//! Interned-style names.
//!
//! Every schema-level name in the workspace — relation names, predicate
//! names, case names, characteristic names, domain names, entity-type
//! names, role names — is a [`Symbol`]. A `Symbol` is a cheaply cloneable,
//! ordered, hashable string. We use `Arc<str>` so that the very wide fan-out
//! of name references in schemas, states, and compiled fact bases shares a
//! single allocation per distinct name.

use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

/// An immutable, cheaply cloneable name.
///
/// ```
/// use dme_value::Symbol;
/// let s = Symbol::new("operate");
/// let t = s.clone(); // refcount bump, no allocation
/// assert_eq!(s, t);
/// assert_eq!(s.as_str(), "operate");
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(Arc<str>);

impl Symbol {
    /// Creates a symbol from anything string-like.
    pub fn new(name: impl AsRef<str>) -> Self {
        Symbol(Arc::from(name.as_ref()))
    }

    /// The underlying string.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Whether this symbol is the empty string. Empty symbols are never
    /// valid schema names; constructors in higher layers reject them.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", &self.0)
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Self {
        Symbol::new(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Self {
        Symbol(Arc::from(s))
    }
}

impl Borrow<str> for Symbol {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Symbol {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl PartialEq<str> for Symbol {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Symbol {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

/// Convenience macro for building a `Symbol` from a literal.
///
/// ```
/// use dme_value::{sym, Symbol};
/// let s: Symbol = sym!("supervise");
/// assert_eq!(s, "supervise");
/// ```
#[macro_export]
macro_rules! sym {
    ($s:expr) => {
        $crate::Symbol::new($s)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn symbols_compare_by_content() {
        assert_eq!(Symbol::new("a"), Symbol::new("a"));
        assert_ne!(Symbol::new("a"), Symbol::new("b"));
        assert!(Symbol::new("a") < Symbol::new("b"));
    }

    #[test]
    fn symbols_work_as_set_keys_via_str_borrow() {
        let mut set = BTreeSet::new();
        set.insert(Symbol::new("operate"));
        assert!(set.contains("operate"));
        assert!(!set.contains("supervise"));
    }

    #[test]
    fn display_and_debug() {
        let s = Symbol::new("employee");
        assert_eq!(s.to_string(), "employee");
        assert_eq!(format!("{s:?}"), "Symbol(\"employee\")");
    }

    #[test]
    fn clone_is_shallow() {
        let s = Symbol::new("x");
        let t = s.clone();
        // Both point at the same allocation.
        assert!(std::ptr::eq(s.as_str(), t.as_str()));
    }

    #[test]
    fn string_round_trip() {
        let s = Symbol::new("machine");
        let back = Symbol::new(s.as_str().to_owned());
        assert_eq!(back, s);
    }

    #[test]
    fn empty_detection() {
        assert!(Symbol::new("").is_empty());
        assert!(!Symbol::new("x").is_empty());
    }
}
