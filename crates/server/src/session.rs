//! Client sessions: the per-user face of the service.
//!
//! A **graph session** speaks the conceptual model directly and submits
//! conceptual operations as transactions. A **relational session** is
//! bound to one external view; it reads a snapshot of that view,
//! translates its relational operations up to conceptual operations
//! against the snapshot, and submits them with the snapshot's base
//! version attached — if another transaction committed first, the
//! service refuses the commit and the session rebases onto a fresh
//! snapshot and retries with exponential backoff.

use std::time::Duration;

use dme_ansi::ViewSession;
use dme_graph::{GraphOp, GraphState};
use dme_relation::{RelOp, RelationState};

use crate::error::ServerError;
use crate::service::{CommitInfo, CommitOutcome, Outcome, SessionService};

/// Which model a session speaks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SessionKind {
    /// The conceptual graph model.
    Graph,
    /// A relational external view, by name.
    Relational {
        /// The external view this session is bound to.
        view: String,
    },
}

/// One client session. Not `Clone`: a session is a single client's
/// serial stream of operations (run sessions on separate threads for
/// concurrency).
pub struct Session {
    service: SessionService,
    id: u64,
    kind: SessionKind,
    /// Relational sessions: the snapshot handle, its base version, and
    /// the LSN pin holding the MVCC GC horizon for this snapshot.
    snapshot: Option<(ViewSession, u64, u64)>,
    closed: bool,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Session({}, {:?})", self.id, self.kind)
    }
}

impl Session {
    pub(crate) fn new(
        service: SessionService,
        id: u64,
        kind: SessionKind,
        snapshot: Option<(ViewSession, u64, u64)>,
    ) -> Self {
        Session {
            service,
            id,
            kind,
            snapshot,
            closed: false,
        }
    }

    /// The session's id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Which model the session speaks.
    pub fn kind(&self) -> &SessionKind {
        &self.kind
    }

    fn ensure_open(&self) -> Result<(), ServerError> {
        if self.closed {
            Err(ServerError::SessionClosed)
        } else {
            Ok(())
        }
    }

    /// Submits conceptual operations as one transaction (graph sessions
    /// only). `Ok` does not always mean committed: under load the home
    /// commit lane may refuse admission, yielding
    /// [`CommitOutcome::Shed`] — typed backpressure the client decides
    /// how to absorb.
    pub fn submit_graph(&mut self, gops: Vec<GraphOp>) -> Result<CommitOutcome, ServerError> {
        self.ensure_open()?;
        if self.kind != SessionKind::Graph {
            return Err(ServerError::Translate(
                "relational sessions submit relational operations".into(),
            ));
        }
        let obs = self.service.shared.config.obs.clone();
        let hub = std::sync::Arc::clone(&self.service.shared.trace_hub);
        let trace = self.service.next_trace();
        let session_id = self.id;
        let ops = gops.len();
        // The admit step is the transaction's root span; everything the
        // commit pipeline records downstream hangs off it.
        let admit = hub.record(trace, "server/admit", 0, None, || {
            format!("session {session_id} model=graph ops={ops}")
        });
        obs.trace_event_linked("server/admit", trace, admit, 0, || {
            format!("session {session_id} model=graph ops={ops}")
        });
        match self.service.submit(gops, None, trace, admit) {
            Outcome::Committed { lsn, version } => {
                hub.record(trace, "server/reply", admit, None, || {
                    format!("lsn {lsn} version {version}")
                });
                Ok(CommitOutcome::Committed(CommitInfo {
                    lsn,
                    version,
                    attempts: 1,
                    trace,
                }))
            }
            Outcome::Shed { shard, depth } => Ok(CommitOutcome::Shed { shard, depth }),
            Outcome::Aborted(why) => Err(ServerError::Aborted(why)),
            Outcome::Conflict => unreachable!("graph commits carry no base version"),
            Outcome::Lockstep(view) => Err(ServerError::LockstepDiverged { view }),
            Outcome::Crashed(why) => Err(ServerError::Crashed(why)),
        }
    }

    /// Submits one relational operation as a transaction (relational
    /// sessions only): translate against the snapshot, commit with the
    /// snapshot's base version, and on conflict rebase + retry with
    /// exponential backoff up to the configured attempt budget. A
    /// commit that needed retries reports them via
    /// [`CommitOutcome::Retried`]; an overloaded commit lane yields
    /// [`CommitOutcome::Shed`] immediately (shedding is backpressure,
    /// not a conflict — the retry loop does not spin on it).
    pub fn submit_relational(&mut self, op: &RelOp) -> Result<CommitOutcome, ServerError> {
        self.ensure_open()?;
        let view_name = match &self.kind {
            SessionKind::Relational { view } => view.clone(),
            SessionKind::Graph => {
                return Err(ServerError::Translate(
                    "graph sessions submit conceptual operations".into(),
                ))
            }
        };
        let config = &self.service.shared.config;
        let obs = config.obs.clone();
        let hub = std::sync::Arc::clone(&self.service.shared.trace_hub);
        let max_attempts = config.max_attempts.max(1);
        let backoff_micros = config.backoff_micros;
        let trace = self.service.next_trace();
        let session_id = self.id;
        let admit = hub.record(trace, "server/admit", 0, None, || {
            format!("session {session_id} model=relational view={view_name}")
        });
        obs.trace_event_linked("server/admit", trace, admit, 0, || {
            format!("session {session_id} model=relational view={view_name}")
        });
        for attempt in 1..=max_attempts {
            let (handle, base_version, _) = self
                .snapshot
                .as_ref()
                .expect("relational sessions hold a snapshot");
            let gops = {
                let _span = obs.span("server/translate");
                let _timer = obs.time(dme_obs::Metric::TranslateLatency);
                let gops = handle.translate_up(op)?;
                let n = gops.len();
                let t_span = hub.record(trace, "server/translate", admit, None, || {
                    format!("attempt {attempt} gops={n}")
                });
                obs.trace_event_linked("server/translate", trace, t_span, admit, || {
                    format!("attempt {attempt} gops={n}")
                });
                gops
            };
            match self.service.submit(gops, Some(*base_version), trace, admit) {
                Outcome::Committed { lsn, version } => {
                    hub.record(trace, "server/reply", admit, None, || {
                        format!("lsn {lsn} version {version}")
                    });
                    // The snapshot is stale by exactly this commit (and
                    // possibly batch-mates): rebase onto the new state.
                    self.rebase(&view_name)?;
                    let info = CommitInfo {
                        lsn,
                        version,
                        attempts: attempt,
                        trace,
                    };
                    return Ok(if attempt == 1 {
                        CommitOutcome::Committed(info)
                    } else {
                        CommitOutcome::Retried {
                            info,
                            retries: attempt - 1,
                        }
                    });
                }
                Outcome::Shed { shard, depth } => return Ok(CommitOutcome::Shed { shard, depth }),
                Outcome::Conflict => {
                    if attempt < max_attempts && backoff_micros > 0 {
                        std::thread::sleep(Duration::from_micros(
                            backoff_micros << (attempt - 1).min(10),
                        ));
                    }
                    self.rebase(&view_name)?;
                }
                Outcome::Aborted(why) => return Err(ServerError::Aborted(why)),
                Outcome::Lockstep(view) => return Err(ServerError::LockstepDiverged { view }),
                Outcome::Crashed(why) => return Err(ServerError::Crashed(why)),
            }
        }
        Err(ServerError::Conflict {
            attempts: max_attempts,
        })
    }

    fn rebase(&mut self, view: &str) -> Result<(), ServerError> {
        let fresh = self.service.snapshot_for(view)?;
        if let Some((_, _, pin)) = self.snapshot.replace(fresh) {
            self.service.unpin(pin);
        }
        Ok(())
    }

    /// Snapshot read of the session's relational view (relational
    /// sessions only). Reads see the snapshot, not in-flight commits;
    /// [`Session::refresh`] advances it.
    pub fn relational_state(&self) -> Result<&RelationState, ServerError> {
        self.ensure_open()?;
        self.snapshot
            .as_ref()
            .map(|(handle, _, _)| handle.state())
            .ok_or_else(|| ServerError::Translate("graph sessions read conceptual state".into()))
    }

    /// Snapshot read of the conceptual state (graph sessions read the
    /// current committed state; relational sessions read the conceptual
    /// state paired with their view snapshot).
    pub fn conceptual_state(&self) -> Result<std::sync::Arc<GraphState>, ServerError> {
        self.ensure_open()?;
        match &self.snapshot {
            Some((handle, _, _)) => Ok(handle.conceptual_shared()),
            None => Ok(self.service.conceptual()),
        }
    }

    /// Advances a relational session's snapshot to the latest committed
    /// state. No-op for graph sessions (they snapshot on every read).
    pub fn refresh(&mut self) -> Result<(), ServerError> {
        self.ensure_open()?;
        if let SessionKind::Relational { view } = self.kind.clone() {
            self.rebase(&view)?;
        }
        Ok(())
    }

    /// Gracefully tears the session down: verifies a relational
    /// snapshot is still state equivalent to its paired conceptual
    /// state (Definition 2 within the view's vocabulary), then releases
    /// the service's session slot. Dropping a session without closing
    /// releases the slot too, skipping the check.
    pub fn close(mut self) -> Result<(), ServerError> {
        self.ensure_open()?;
        if let Some((handle, _, _)) = &self.snapshot {
            if !handle.consistent() {
                let view = handle.name().to_string();
                self.closed = true;
                self.release();
                return Err(ServerError::LockstepDiverged { view });
            }
        }
        self.closed = true;
        self.release();
        Ok(())
    }

    fn release(&mut self) {
        if let Some((_, _, pin)) = self.snapshot.take() {
            self.service.unpin(pin);
        }
        self.service
            .shared
            .open_sessions
            .fetch_sub(1, std::sync::atomic::Ordering::Relaxed);
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        if !self.closed {
            self.closed = true;
            self.release();
        }
    }
}
