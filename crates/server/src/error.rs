//! Service error types.
//!
//! Every failure the service can hand a client flows through
//! [`ServerError`], and every variant carries a stable numeric
//! [`ServerError::code`] that is part of the wire protocol: clients on
//! the network path match on codes, not on display strings, so the
//! code assignments here must never be reused or renumbered.

use std::fmt;

use dme_core::translate::TranslateError;
use dme_storage::WalError;

use crate::device::DeviceError;

/// Errors surfaced to sessions and operators of the service.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServerError {
    /// A relational session's snapshot went stale and the retry budget
    /// ran out: another transaction committed first every time.
    Conflict {
        /// How many commit attempts were made (initial + retries).
        attempts: u32,
    },
    /// The transaction's operations no longer apply to the committed
    /// conceptual state; nothing was written.
    Aborted(String),
    /// Operation translation between models failed.
    Translate(String),
    /// The session was already closed.
    SessionClosed,
    /// The log device failed; the service refuses further commits (the
    /// durable image ends at the last synced byte).
    Crashed(String),
    /// Lockstep verification caught a committed transaction whose
    /// external views diverged from the conceptual state.
    LockstepDiverged {
        /// The view that is no longer state equivalent.
        view: String,
    },
    /// Recovery could not rebuild a consistent state from the image.
    Recovery(String),
    /// A relational session named an external view the service does not
    /// serve.
    UnknownView(String),
    /// A service configuration was rejected by validation before the
    /// service started.
    InvalidConfig(String),
    /// A wire frame decoded cleanly at the transport layer but did not
    /// form a well-typed request (bad discriminant, malformed body, or
    /// an unsupported protocol version).
    Protocol(String),
    /// A request named a session id the service does not know — never
    /// opened, already closed, or currently checked out by another
    /// in-flight request on the same connection.
    UnknownSession(u64),
}

impl ServerError {
    /// The stable wire code for this error. Codes are part of the
    /// protocol: new variants take fresh numbers, old numbers are never
    /// reused.
    pub fn code(&self) -> u16 {
        match self {
            ServerError::Conflict { .. } => 1,
            ServerError::Aborted(_) => 2,
            ServerError::Translate(_) => 3,
            ServerError::SessionClosed => 4,
            ServerError::Crashed(_) => 5,
            ServerError::LockstepDiverged { .. } => 6,
            ServerError::Recovery(_) => 7,
            ServerError::UnknownView(_) => 8,
            ServerError::InvalidConfig(_) => 9,
            ServerError::Protocol(_) => 10,
            ServerError::UnknownSession(_) => 11,
        }
    }
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Conflict { attempts } => {
                write!(f, "commit conflict persisted across {attempts} attempts")
            }
            ServerError::Aborted(why) => write!(f, "transaction aborted: {why}"),
            ServerError::Translate(why) => write!(f, "translation failed: {why}"),
            ServerError::SessionClosed => write!(f, "session is closed"),
            ServerError::Crashed(why) => write!(f, "service crashed: {why}"),
            ServerError::LockstepDiverged { view } => {
                write!(f, "lockstep verification failed: view {view} diverged")
            }
            ServerError::Recovery(why) => write!(f, "recovery failed: {why}"),
            ServerError::UnknownView(name) => write!(f, "unknown external view {name}"),
            ServerError::InvalidConfig(why) => write!(f, "invalid service config: {why}"),
            ServerError::Protocol(why) => write!(f, "protocol violation: {why}"),
            ServerError::UnknownSession(id) => {
                write!(f, "unknown or busy session {id}")
            }
        }
    }
}

impl std::error::Error for ServerError {}

impl From<TranslateError> for ServerError {
    fn from(e: TranslateError) -> Self {
        ServerError::Translate(e.to_string())
    }
}

impl From<DeviceError> for ServerError {
    fn from(e: DeviceError) -> Self {
        ServerError::Crashed(e.to_string())
    }
}

impl From<WalError> for ServerError {
    fn from(e: WalError) -> Self {
        ServerError::Recovery(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(ServerError::Conflict { attempts: 3 }
            .to_string()
            .contains("3 attempts"));
        assert!(ServerError::Aborted("dup".into())
            .to_string()
            .contains("dup"));
        assert!(ServerError::SessionClosed.to_string().contains("closed"));
        assert!(ServerError::LockstepDiverged {
            view: "shop".into()
        }
        .to_string()
        .contains("shop"));
        assert!(ServerError::UnknownView("x".into())
            .to_string()
            .contains('x'));
        assert!(ServerError::InvalidConfig("zero shards".into())
            .to_string()
            .contains("zero shards"));
        assert!(ServerError::Protocol("bad tag".into())
            .to_string()
            .contains("bad tag"));
        assert!(ServerError::UnknownSession(7).to_string().contains('7'));
        let e: ServerError = DeviceError::Full { at: 9 }.into();
        assert!(matches!(e, ServerError::Crashed(_)));
    }

    #[test]
    fn codes_are_unique_and_stable() {
        let all = [
            ServerError::Conflict { attempts: 1 },
            ServerError::Aborted(String::new()),
            ServerError::Translate(String::new()),
            ServerError::SessionClosed,
            ServerError::Crashed(String::new()),
            ServerError::LockstepDiverged {
                view: String::new(),
            },
            ServerError::Recovery(String::new()),
            ServerError::UnknownView(String::new()),
            ServerError::InvalidConfig(String::new()),
            ServerError::Protocol(String::new()),
            ServerError::UnknownSession(0),
        ];
        let codes: Vec<u16> = all.iter().map(ServerError::code).collect();
        assert_eq!(codes, (1..=11).collect::<Vec<u16>>());
    }
}
