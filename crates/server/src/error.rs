//! Service error types.

use std::fmt;

use dme_core::translate::TranslateError;
use dme_storage::WalError;

use crate::device::DeviceError;

/// Errors surfaced to sessions and operators of the service.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServerError {
    /// A relational session's snapshot went stale and the retry budget
    /// ran out: another transaction committed first every time.
    Conflict {
        /// How many commit attempts were made (initial + retries).
        attempts: u32,
    },
    /// The transaction's operations no longer apply to the committed
    /// conceptual state; nothing was written.
    Aborted(String),
    /// Operation translation between models failed.
    Translate(String),
    /// The session was already closed.
    SessionClosed,
    /// The log device failed; the service refuses further commits (the
    /// durable image ends at the last synced byte).
    Crashed(String),
    /// Lockstep verification caught a committed transaction whose
    /// external views diverged from the conceptual state.
    LockstepDiverged {
        /// The view that is no longer state equivalent.
        view: String,
    },
    /// Recovery could not rebuild a consistent state from the image.
    Recovery(String),
    /// A relational session named an external view the service does not
    /// serve.
    UnknownView(String),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Conflict { attempts } => {
                write!(f, "commit conflict persisted across {attempts} attempts")
            }
            ServerError::Aborted(why) => write!(f, "transaction aborted: {why}"),
            ServerError::Translate(why) => write!(f, "translation failed: {why}"),
            ServerError::SessionClosed => write!(f, "session is closed"),
            ServerError::Crashed(why) => write!(f, "service crashed: {why}"),
            ServerError::LockstepDiverged { view } => {
                write!(f, "lockstep verification failed: view {view} diverged")
            }
            ServerError::Recovery(why) => write!(f, "recovery failed: {why}"),
            ServerError::UnknownView(name) => write!(f, "unknown external view {name}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<TranslateError> for ServerError {
    fn from(e: TranslateError) -> Self {
        ServerError::Translate(e.to_string())
    }
}

impl From<DeviceError> for ServerError {
    fn from(e: DeviceError) -> Self {
        ServerError::Crashed(e.to_string())
    }
}

impl From<WalError> for ServerError {
    fn from(e: WalError) -> Self {
        ServerError::Recovery(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(ServerError::Conflict { attempts: 3 }
            .to_string()
            .contains("3 attempts"));
        assert!(ServerError::Aborted("dup".into()).to_string().contains("dup"));
        assert!(ServerError::SessionClosed.to_string().contains("closed"));
        assert!(ServerError::LockstepDiverged { view: "shop".into() }
            .to_string()
            .contains("shop"));
        assert!(ServerError::UnknownView("x".into()).to_string().contains('x'));
        let e: ServerError = DeviceError::Full { at: 9 }.into();
        assert!(matches!(e, ServerError::Crashed(_)));
    }
}
