//! Log devices: the append-only byte stores the WAL and checkpoint
//! stream are written to.
//!
//! Crash semantics are modeled the way real disks fail under a
//! power cut: everything up to the last `sync` is durable, appended but
//! unsynced bytes may survive *partially* (a torn tail). A crash image
//! is therefore always a byte prefix of the device contents, which is
//! exactly what [`dme_storage::wal::replay_tolerant`] is built to
//! handle.

use std::fmt;
use std::time::Duration;

/// Errors raised by a log device.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeviceError {
    /// The device stopped accepting writes at the given byte offset
    /// (simulated media failure / disk full).
    Full {
        /// Offset of the first byte that could not be written.
        at: usize,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::Full { at } => write!(f, "device stopped accepting writes at byte {at}"),
        }
    }
}

impl std::error::Error for DeviceError {}

/// An append-only, syncable byte device.
pub trait LogDevice: Send {
    /// Appends bytes. May write a *prefix* and then fail (torn write).
    fn append(&mut self, bytes: &[u8]) -> Result<(), DeviceError>;
    /// Makes all appended bytes durable.
    fn sync(&mut self) -> Result<(), DeviceError>;
    /// Every byte appended so far (durable + not-yet-synced tail).
    fn contents(&self) -> Vec<u8>;
    /// Bytes guaranteed durable (appended and synced).
    fn synced_len(&self) -> usize;
    /// Total bytes appended.
    fn len(&self) -> usize;
    /// How many `sync` calls completed (the commit-economy measure).
    fn syncs(&self) -> u64;
    /// Whether nothing has been appended.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// An in-memory log device with fault injection and a configurable
/// per-`sync` latency (what makes group commit measurably cheaper than
/// per-operation commit: one sync amortized over a batch).
pub struct MemDevice {
    buf: Vec<u8>,
    synced: usize,
    syncs: u64,
    sync_delay: Duration,
    /// When set, writes stop (tear) at this byte offset.
    crash_at: Option<usize>,
}

impl fmt::Debug for MemDevice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MemDevice({} bytes, {} synced, {} syncs)",
            self.buf.len(),
            self.synced,
            self.syncs
        )
    }
}

impl Default for MemDevice {
    fn default() -> Self {
        MemDevice::new()
    }
}

impl MemDevice {
    /// An empty device with no fault injection and instant syncs.
    pub fn new() -> Self {
        MemDevice {
            buf: Vec::new(),
            synced: 0,
            syncs: 0,
            sync_delay: Duration::ZERO,
            crash_at: None,
        }
    }

    /// A device pre-loaded with a recovered image (e.g. the surviving
    /// prefix of a crashed device).
    pub fn with_contents(bytes: Vec<u8>) -> Self {
        let synced = bytes.len();
        MemDevice {
            buf: bytes,
            synced,
            syncs: 0,
            sync_delay: Duration::ZERO,
            crash_at: None,
        }
    }

    /// Sets a simulated per-`sync` latency.
    pub fn with_sync_delay(mut self, delay: Duration) -> Self {
        self.sync_delay = delay;
        self
    }

    /// Injects a media failure: writes tear at byte offset `at`.
    pub fn with_crash_at(mut self, at: usize) -> Self {
        self.crash_at = Some(at);
        self
    }

}

impl LogDevice for MemDevice {
    fn append(&mut self, bytes: &[u8]) -> Result<(), DeviceError> {
        if let Some(limit) = self.crash_at {
            if self.buf.len() + bytes.len() > limit {
                // Torn write: the prefix that fits reaches the medium.
                let room = limit.saturating_sub(self.buf.len());
                self.buf.extend_from_slice(&bytes[..room]);
                return Err(DeviceError::Full { at: limit });
            }
        }
        self.buf.extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&mut self) -> Result<(), DeviceError> {
        if !self.sync_delay.is_zero() {
            std::thread::sleep(self.sync_delay);
        }
        self.syncs += 1;
        self.synced = self.buf.len();
        Ok(())
    }

    fn contents(&self) -> Vec<u8> {
        self.buf.clone()
    }

    fn synced_len(&self) -> usize {
        self.synced
    }

    fn len(&self) -> usize {
        self.buf.len()
    }

    fn syncs(&self) -> u64 {
        self.syncs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_sync_track_durability() {
        let mut d = MemDevice::new();
        assert!(d.is_empty());
        d.append(b"hello").unwrap();
        assert_eq!((d.len(), d.synced_len()), (5, 0));
        d.sync().unwrap();
        assert_eq!((d.len(), d.synced_len(), d.syncs()), (5, 5, 1));
        assert_eq!(d.contents(), b"hello");
        assert!(format!("{d:?}").contains("5 bytes"));
    }

    #[test]
    fn crash_injection_tears_the_write() {
        let mut d = MemDevice::new().with_crash_at(8);
        d.append(b"abcde").unwrap();
        let err = d.append(b"fghij").unwrap_err();
        assert_eq!(err, DeviceError::Full { at: 8 });
        assert!(err.to_string().contains("byte 8"));
        // The torn prefix reached the medium; nothing after byte 8 did.
        assert_eq!(d.contents(), b"abcdefgh");
    }

    #[test]
    fn preloaded_contents_count_as_durable() {
        let d = MemDevice::with_contents(b"image".to_vec());
        assert_eq!(d.synced_len(), 5);
        assert_eq!(d.contents(), b"image");
    }
}
