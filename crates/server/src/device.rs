//! Log devices: the append-only byte stores the WAL and checkpoint
//! stream are written to.
//!
//! Crash semantics are modeled the way real disks fail under a
//! power cut: everything up to the last `sync` is durable, appended but
//! unsynced bytes may survive *partially* (a torn tail). A crash image
//! is therefore always a byte prefix of the device contents, which is
//! exactly what [`dme_storage::wal::replay_tolerant`] is built to
//! handle.
//!
//! ## Fault points and concurrent shard writers
//!
//! The sharded WAL path writes several devices from several commit
//! lanes at once, so fault injection has to be stated as an ordering
//! contract rather than "the Nth write fails":
//!
//! * **Per-device** ([`MemDevice::with_crash_at`]): the device tears at
//!   an absolute byte offset *of that device*. Each device is owned by
//!   exactly one lane mutex, so its tear point is deterministic no
//!   matter how lanes interleave.
//! * **Cross-device** ([`WriteBudget`], [`MemDevice::with_budget`]): a
//!   shared atomic byte budget drained by every append on every device
//!   that carries it. *Which* device trips depends on lane scheduling,
//!   but three invariants hold deterministically under any
//!   interleaving: the total bytes written across all sharing devices
//!   never exceeds the budget; the write that exhausts it tears
//!   (a prefix reaches the medium) and **trips** the budget; and a
//!   tripped budget is sticky — every later append on every sharing
//!   device fails without writing a byte. Recovery therefore always
//!   sees per-device byte prefixes, which is the only property the
//!   crash matrix relies on.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Errors raised by a log device.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeviceError {
    /// The device stopped accepting writes at the given byte offset
    /// (simulated media failure / disk full).
    Full {
        /// Offset of the first byte that could not be written.
        at: usize,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::Full { at } => write!(f, "device stopped accepting writes at byte {at}"),
        }
    }
}

impl std::error::Error for DeviceError {}

/// An append-only, syncable byte device.
pub trait LogDevice: Send {
    /// Appends bytes. May write a *prefix* and then fail (torn write).
    fn append(&mut self, bytes: &[u8]) -> Result<(), DeviceError>;
    /// Makes all appended bytes durable.
    fn sync(&mut self) -> Result<(), DeviceError>;
    /// Every byte appended so far (durable + not-yet-synced tail).
    fn contents(&self) -> Vec<u8>;
    /// Bytes guaranteed durable (appended and synced).
    fn synced_len(&self) -> usize;
    /// Total bytes appended.
    fn len(&self) -> usize;
    /// How many `sync` calls completed (the commit-economy measure).
    fn syncs(&self) -> u64;
    /// Whether nothing has been appended.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Discards up to `bytes` bytes from the *front* of the device —
    /// log truncation after a durable checkpoint has made the prefix
    /// redundant. Returns how many bytes were actually discarded; the
    /// default is a no-op `Ok(0)` for devices that keep everything.
    /// Callers must only truncate at record boundaries within the
    /// synced prefix, so the surviving contents still start at a
    /// decodable frame.
    fn truncate_prefix(&mut self, bytes: usize) -> Result<u64, DeviceError> {
        let _ = bytes;
        Ok(0)
    }
}

/// A thread-safe byte budget shared by several devices: the
/// cross-device fault point of the sharded WAL path. See the module
/// docs for the ordering contract.
pub struct WriteBudget {
    remaining: AtomicI64,
    tripped: AtomicBool,
}

impl WriteBudget {
    /// A budget of `bytes` total writable bytes across every device
    /// sharing it.
    pub fn new(bytes: usize) -> Arc<Self> {
        Arc::new(WriteBudget {
            remaining: AtomicI64::new(bytes as i64),
            tripped: AtomicBool::new(false),
        })
    }

    /// Whether some write already exhausted the budget (sticky).
    pub fn tripped(&self) -> bool {
        self.tripped.load(Ordering::SeqCst)
    }

    /// Reserves up to `want` bytes: returns how many may be written.
    /// The reservation that crosses zero trips the budget.
    fn reserve(&self, want: usize) -> usize {
        if self.tripped() {
            return 0;
        }
        let before = self.remaining.fetch_sub(want as i64, Ordering::SeqCst);
        if before <= 0 {
            self.tripped.store(true, Ordering::SeqCst);
            return 0;
        }
        let allowed = (before as usize).min(want);
        if allowed < want {
            self.tripped.store(true, Ordering::SeqCst);
        }
        allowed
    }
}

impl fmt::Debug for WriteBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "WriteBudget({} bytes left, tripped: {})",
            self.remaining.load(Ordering::SeqCst).max(0),
            self.tripped()
        )
    }
}

/// An in-memory log device with fault injection and a configurable
/// per-`sync` latency (what makes group commit measurably cheaper than
/// per-operation commit: one sync amortized over a batch).
pub struct MemDevice {
    buf: Vec<u8>,
    synced: usize,
    syncs: u64,
    sync_delay: Duration,
    /// When set, writes stop (tear) at this byte offset of this device.
    crash_at: Option<usize>,
    /// When set, writes also drain this shared cross-device budget.
    budget: Option<Arc<WriteBudget>>,
}

impl fmt::Debug for MemDevice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MemDevice({} bytes, {} synced, {} syncs)",
            self.buf.len(),
            self.synced,
            self.syncs
        )
    }
}

impl Default for MemDevice {
    fn default() -> Self {
        MemDevice::new()
    }
}

impl MemDevice {
    /// An empty device with no fault injection and instant syncs.
    pub fn new() -> Self {
        MemDevice {
            buf: Vec::new(),
            synced: 0,
            syncs: 0,
            sync_delay: Duration::ZERO,
            crash_at: None,
            budget: None,
        }
    }

    /// A device pre-loaded with a recovered image (e.g. the surviving
    /// prefix of a crashed device).
    pub fn with_contents(bytes: Vec<u8>) -> Self {
        let synced = bytes.len();
        MemDevice {
            buf: bytes,
            synced,
            syncs: 0,
            sync_delay: Duration::ZERO,
            crash_at: None,
            budget: None,
        }
    }

    /// Sets a simulated per-`sync` latency.
    pub fn with_sync_delay(mut self, delay: Duration) -> Self {
        self.sync_delay = delay;
        self
    }

    /// Injects a media failure: writes tear at byte offset `at` of this
    /// device. Deterministic even with concurrent shard writers, since
    /// each device is single-writer behind its lane lock.
    pub fn with_crash_at(mut self, at: usize) -> Self {
        self.crash_at = Some(at);
        self
    }

    /// Attaches a shared cross-device [`WriteBudget`]: this device's
    /// appends drain the budget and fail (torn) once it is exhausted by
    /// any sharing device.
    pub fn with_budget(mut self, budget: Arc<WriteBudget>) -> Self {
        self.budget = Some(budget);
        self
    }
}

impl LogDevice for MemDevice {
    fn append(&mut self, bytes: &[u8]) -> Result<(), DeviceError> {
        // Fault points compose: the write is clipped to whatever both
        // the per-device tear point and the shared budget admit, and
        // any clipping is a torn-write failure.
        let mut allowed = bytes.len();
        if let Some(limit) = self.crash_at {
            if self.buf.len() + bytes.len() > limit {
                allowed = allowed.min(limit.saturating_sub(self.buf.len()));
            }
        }
        if let Some(budget) = &self.budget {
            allowed = budget.reserve(allowed);
        }
        if allowed < bytes.len() {
            // Torn write: the prefix that fits reaches the medium.
            self.buf.extend_from_slice(&bytes[..allowed]);
            return Err(DeviceError::Full { at: self.buf.len() });
        }
        self.buf.extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&mut self) -> Result<(), DeviceError> {
        if !self.sync_delay.is_zero() {
            std::thread::sleep(self.sync_delay);
        }
        self.syncs += 1;
        self.synced = self.buf.len();
        Ok(())
    }

    fn contents(&self) -> Vec<u8> {
        self.buf.clone()
    }

    fn synced_len(&self) -> usize {
        self.synced
    }

    fn len(&self) -> usize {
        self.buf.len()
    }

    fn syncs(&self) -> u64 {
        self.syncs
    }

    fn truncate_prefix(&mut self, bytes: usize) -> Result<u64, DeviceError> {
        // Only durable bytes may be discarded: truncating an unsynced
        // tail would silently un-tear a pending fault point.
        let n = bytes.min(self.synced).min(self.buf.len());
        self.buf.drain(..n);
        self.synced -= n;
        if let Some(limit) = &mut self.crash_at {
            *limit = limit.saturating_sub(n);
        }
        Ok(n as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_sync_track_durability() {
        let mut d = MemDevice::new();
        assert!(d.is_empty());
        d.append(b"hello").unwrap();
        assert_eq!((d.len(), d.synced_len()), (5, 0));
        d.sync().unwrap();
        assert_eq!((d.len(), d.synced_len(), d.syncs()), (5, 5, 1));
        assert_eq!(d.contents(), b"hello");
        assert!(format!("{d:?}").contains("5 bytes"));
    }

    #[test]
    fn crash_injection_tears_the_write() {
        let mut d = MemDevice::new().with_crash_at(8);
        d.append(b"abcde").unwrap();
        let err = d.append(b"fghij").unwrap_err();
        assert_eq!(err, DeviceError::Full { at: 8 });
        assert!(err.to_string().contains("byte 8"));
        // The torn prefix reached the medium; nothing after byte 8 did.
        assert_eq!(d.contents(), b"abcdefgh");
    }

    #[test]
    fn truncate_prefix_discards_only_durable_bytes() {
        let mut d = MemDevice::new();
        d.append(b"durable|").unwrap();
        d.sync().unwrap();
        d.append(b"tail").unwrap();
        // Asking past the synced prefix clips to it: the unsynced tail
        // stays append-only.
        assert_eq!(d.truncate_prefix(64).unwrap(), 8);
        assert_eq!(d.contents(), b"tail");
        assert_eq!(d.synced_len(), 0);
        assert_eq!(d.truncate_prefix(2).unwrap(), 0);
        d.sync().unwrap();
        assert_eq!(d.truncate_prefix(2).unwrap(), 2);
        assert_eq!(d.contents(), b"il");
    }

    #[test]
    fn preloaded_contents_count_as_durable() {
        let d = MemDevice::with_contents(b"image".to_vec());
        assert_eq!(d.synced_len(), 5);
        assert_eq!(d.contents(), b"image");
    }

    #[test]
    fn shared_budget_trips_across_devices_and_is_sticky() {
        let budget = WriteBudget::new(8);
        let mut a = MemDevice::new().with_budget(Arc::clone(&budget));
        let mut b = MemDevice::new().with_budget(Arc::clone(&budget));
        a.append(b"abcde").unwrap();
        assert!(!budget.tripped());
        // b's 5-byte write finds only 3 budget bytes left: torn + trip.
        let err = b.append(b"vwxyz").unwrap_err();
        assert!(matches!(err, DeviceError::Full { .. }));
        assert_eq!(b.contents(), b"vwx");
        assert!(budget.tripped());
        // Sticky: every later write on every sharing device fails dry.
        assert!(a.append(b"!").is_err());
        assert_eq!(a.contents(), b"abcde");
        assert!(format!("{budget:?}").contains("tripped: true"));
    }

    #[test]
    fn budget_totals_are_deterministic_under_interleaving() {
        use std::sync::Mutex;
        for trial in 0..8 {
            let budget = WriteBudget::new(64);
            let devices: Vec<Mutex<MemDevice>> = (0..4)
                .map(|_| Mutex::new(MemDevice::new().with_budget(Arc::clone(&budget))))
                .collect();
            crossbeam::scope(|sc| {
                for d in &devices {
                    sc.spawn(move |_| {
                        for _ in 0..8 {
                            let _ = d.lock().unwrap().append(&[trial as u8; 7]);
                        }
                    });
                }
            })
            .unwrap();
            let total: usize = devices.iter().map(|d| d.lock().unwrap().len()).sum();
            assert!(total <= 64, "trial {trial}: wrote {total} of 64 budget");
            assert!(budget.tripped());
        }
    }
}
