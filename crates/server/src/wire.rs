//! The typed wire API: one versioned [`Request`]/[`Response`] enum pair
//! covering everything a client can ask the service, encoded into the
//! same length/LSN/CRC frames the WAL uses.
//!
//! ## Frame layout
//!
//! A wire message is exactly one WAL frame
//! (`[magic][flags][correlation id][len][payload][fnv1a]`, big-endian,
//! checksum over the whole frame) whose LSN field carries the client's
//! **correlation id** — responses echo it, so one connection can have
//! many requests in flight. The payload is
//! `[version u8][tag u8][body]`; unknown versions and tags are typed
//! [`ServerError::Protocol`] rejections, and any bit flip anywhere in
//! the frame is caught by the frame checksum before the payload is
//! looked at.
//!
//! Request tags live in `0x01..=0x09`, response tags in `0x81..=0x8B`,
//! so a frame can never be misread across directions. One response is
//! **server-push**: [`Response::MetricsDelta`] frames are emitted
//! unprompted under a `WatchMetrics` subscription's correlation id,
//! the first path where the server speaks without being spoken to.

use dme_graph::{Association, Entity, EntityRef, GraphOp, SemanticUnit};
use dme_obs::{Counter, Metric, TraceId};
use dme_relation::ops::StatementSet;
use dme_relation::{RelOp, RelationState};
use dme_storage::{decode_tuple, encode_tuple, wal};
use dme_value::{Atom, Tuple};

use crate::codec::AdminRequest;
use crate::error::ServerError;
use crate::service::{CommitInfo, CommitOutcome, SessionService};
use crate::session::{Session, SessionKind};

/// The wire protocol version this build speaks.
pub const WIRE_VERSION: u8 = 1;

const REQ_OPEN_SESSION: u8 = 0x01;
const REQ_SUBMIT_GRAPH: u8 = 0x02;
const REQ_SUBMIT_RELATIONAL: u8 = 0x03;
const REQ_REFRESH: u8 = 0x04;
const REQ_CLOSE: u8 = 0x05;
const REQ_VIEW_STATE: u8 = 0x06;
const REQ_METRICS: u8 = 0x07;
const REQ_CHECKPOINT: u8 = 0x08;
const REQ_ADMIN: u8 = 0x09;

const RESP_SESSION_OPENED: u8 = 0x81;
const RESP_COMMITTED: u8 = 0x82;
const RESP_OVERLOADED: u8 = 0x83;
const RESP_REFRESHED: u8 = 0x84;
const RESP_CLOSED: u8 = 0x85;
const RESP_VIEW_STATE: u8 = 0x86;
const RESP_METRICS: u8 = 0x87;
const RESP_CHECKPOINT_TAKEN: u8 = 0x88;
const RESP_ADMIN: u8 = 0x89;
const RESP_ERROR: u8 = 0x8A;
const RESP_METRICS_DELTA: u8 = 0x8B;

/// Everything a client can ask the service over the wire.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Open a session of the given kind; answered with
    /// [`Response::SessionOpened`].
    OpenSession {
        /// Which model the session speaks.
        kind: SessionKind,
    },
    /// Submit conceptual operations as one transaction on a graph
    /// session.
    SubmitGraph {
        /// The session to submit on.
        session: u64,
        /// The transaction's conceptual operations.
        ops: Vec<GraphOp>,
    },
    /// Submit one relational operation on a relational session.
    SubmitRelational {
        /// The session to submit on.
        session: u64,
        /// The relational operation.
        op: RelOp,
    },
    /// Advance a relational session's snapshot to the latest committed
    /// state.
    Refresh {
        /// The session to refresh.
        session: u64,
    },
    /// Close a session (with the closing equivalence check).
    Close {
        /// The session to close.
        session: u64,
    },
    /// Read one external view's full relational state.
    ViewState {
        /// The view's name.
        view: String,
    },
    /// Render the service's telemetry.
    Metrics {
        /// `true` for the JSON snapshot, `false` for Prometheus text.
        json: bool,
    },
    /// Take a checkpoint now.
    Checkpoint,
    /// A legacy admin request, in its historical one-byte encoding,
    /// tunneled through the typed protocol.
    Admin {
        /// The [`AdminRequest`] wire bytes.
        body: Vec<u8>,
    },
}

/// The service's answer to a [`Request`].
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// A session is open and registered under this id.
    SessionOpened {
        /// The new session's id.
        session: u64,
    },
    /// The transaction committed ([`CommitInfo::attempts`] > 1 means it
    /// was retried past conflicts first).
    Committed(CommitInfo),
    /// The transaction was shed at admission: its home commit lane was
    /// at capacity. Nothing was enqueued or written; retry later.
    Overloaded {
        /// The lane that refused the transaction.
        shard: u64,
        /// The queue depth observed at refusal.
        depth: u64,
    },
    /// The session's snapshot now sits at this database version.
    Refreshed {
        /// The committed version the snapshot advanced to.
        version: u64,
    },
    /// The session is closed.
    Closed,
    /// One external view's relational state, relation by relation.
    ViewState {
        /// `(relation name, tuples)` in name order.
        relations: Vec<(String, Vec<Tuple>)>,
    },
    /// Rendered telemetry.
    Metrics {
        /// The rendered body (Prometheus text or JSON).
        body: String,
    },
    /// The checkpoint is durable.
    CheckpointTaken,
    /// A legacy admin request's rendered answer.
    Admin {
        /// The rendered body.
        body: String,
    },
    /// One server-pushed telemetry delta under a `WatchMetrics`
    /// subscription: a JSON [`dme_obs::TelemetrySnapshot`] rendering of
    /// what moved since the previous push (gauges report their current
    /// value). Pushed periodically, never in reply to a request.
    MetricsDelta {
        /// The delta snapshot's JSON rendering.
        body: String,
    },
    /// The request failed; `code` is the stable [`ServerError::code`].
    Error {
        /// Stable numeric error code.
        code: u16,
        /// Human-readable diagnostic (not part of the stable surface).
        message: String,
    },
}

fn bad(why: impl Into<String>) -> ServerError {
    ServerError::Protocol(why.into())
}

// ---------------------------------------------------------------------
// Primitive writers/readers. Strings are u16-length-prefixed (schema
// names and keys), blobs u32-prefixed.

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u16(out, s.len() as u16);
    out.extend_from_slice(s.as_bytes());
}

fn put_blob(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

fn put_atom(out: &mut Vec<u8>, a: &Atom) {
    match a {
        Atom::Bool(b) => {
            out.push(1);
            out.push(*b as u8);
        }
        Atom::Int(i) => {
            out.push(2);
            out.extend_from_slice(&i.to_be_bytes());
        }
        Atom::Str(s) => {
            out.push(3);
            put_str(out, s);
        }
    }
}

fn put_entity_ref(out: &mut Vec<u8>, r: &EntityRef) {
    put_str(out, r.entity_type.as_str());
    put_atom(out, &r.key);
}

fn put_entity(out: &mut Vec<u8>, e: &Entity) {
    put_str(out, e.entity_type.as_str());
    put_u16(out, e.characteristics.len() as u16);
    for (name, atom) in &e.characteristics {
        put_str(out, name.as_str());
        put_atom(out, atom);
    }
}

fn put_assoc(out: &mut Vec<u8>, a: &Association) {
    put_str(out, a.predicate.as_str());
    put_u16(out, a.roles.len() as u16);
    for (role, r) in &a.roles {
        put_str(out, role.as_str());
        put_entity_ref(out, r);
    }
}

fn put_graph_op(out: &mut Vec<u8>, op: &GraphOp) {
    match op {
        GraphOp::InsertEntity(e) => {
            out.push(0);
            put_entity(out, e);
        }
        GraphOp::DeleteEntity(r) => {
            out.push(1);
            put_entity_ref(out, r);
        }
        GraphOp::InsertAssociation(a) => {
            out.push(2);
            put_assoc(out, a);
        }
        GraphOp::DeleteAssociation(a) => {
            out.push(3);
            put_assoc(out, a);
        }
        GraphOp::InsertUnit(u) => {
            out.push(4);
            put_unit(out, u);
        }
        GraphOp::DeleteUnit(u) => {
            out.push(5);
            put_unit(out, u);
        }
    }
}

fn put_unit(out: &mut Vec<u8>, u: &SemanticUnit) {
    put_u16(out, u.entities.len() as u16);
    for e in &u.entities {
        put_entity(out, e);
    }
    put_u16(out, u.associations.len() as u16);
    for a in &u.associations {
        put_assoc(out, a);
    }
}

fn put_statements(out: &mut Vec<u8>, s: &StatementSet) {
    put_u32(out, s.len() as u32);
    for (relation, tuple) in s.iter() {
        put_str(out, relation.as_str());
        put_blob(out, &encode_tuple(tuple));
    }
}

fn put_rel_op(out: &mut Vec<u8>, op: &RelOp) {
    match op {
        RelOp::Insert(s) => {
            out.push(0);
            put_statements(out, s);
        }
        RelOp::Delete(s) => {
            out.push(1);
            put_statements(out, s);
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ServerError> {
        if self.buf.len() < self.at + n {
            return Err(bad(format!(
                "payload truncated at byte {} (wanted {n} more)",
                self.at
            )));
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ServerError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ServerError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, ServerError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ServerError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn bool(&mut self) -> Result<bool, ServerError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(bad(format!("bad boolean byte {other:#04x}"))),
        }
    }

    fn str(&mut self) -> Result<String, ServerError> {
        let n = self.u16()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| bad("string is not utf-8"))
    }

    fn blob(&mut self) -> Result<&'a [u8], ServerError> {
        let n = self.u32()? as usize;
        self.take(n)
    }

    fn atom(&mut self) -> Result<Atom, ServerError> {
        match self.u8()? {
            1 => Ok(Atom::Bool(self.bool()?)),
            2 => Ok(Atom::Int(i64::from_be_bytes(
                self.take(8)?.try_into().unwrap(),
            ))),
            3 => Ok(Atom::Str(self.str()?)),
            other => Err(bad(format!("bad atom tag {other:#04x}"))),
        }
    }

    fn entity_ref(&mut self) -> Result<EntityRef, ServerError> {
        let ty = self.str()?;
        let key = self.atom()?;
        Ok(EntityRef::new(ty, key))
    }

    fn entity(&mut self) -> Result<Entity, ServerError> {
        let ty = self.str()?;
        let n = self.u16()? as usize;
        let mut chars = Vec::with_capacity(n);
        for _ in 0..n {
            let name = self.str()?;
            let atom = self.atom()?;
            chars.push((name, atom));
        }
        Ok(Entity::new(ty, chars))
    }

    fn assoc(&mut self) -> Result<Association, ServerError> {
        let pred = self.str()?;
        let n = self.u16()? as usize;
        let mut roles = Vec::with_capacity(n);
        for _ in 0..n {
            let role = self.str()?;
            let r = self.entity_ref()?;
            roles.push((role, r));
        }
        Ok(Association::new(pred, roles))
    }

    fn unit(&mut self) -> Result<SemanticUnit, ServerError> {
        let ne = self.u16()? as usize;
        let mut u = SemanticUnit::new();
        for _ in 0..ne {
            u = u.with_entity(self.entity()?);
        }
        let na = self.u16()? as usize;
        for _ in 0..na {
            u = u.with_association(self.assoc()?);
        }
        Ok(u)
    }

    fn graph_op(&mut self) -> Result<GraphOp, ServerError> {
        match self.u8()? {
            0 => Ok(GraphOp::InsertEntity(self.entity()?)),
            1 => Ok(GraphOp::DeleteEntity(self.entity_ref()?)),
            2 => Ok(GraphOp::InsertAssociation(self.assoc()?)),
            3 => Ok(GraphOp::DeleteAssociation(self.assoc()?)),
            4 => Ok(GraphOp::InsertUnit(self.unit()?)),
            5 => Ok(GraphOp::DeleteUnit(self.unit()?)),
            other => Err(bad(format!("bad graph op tag {other:#04x}"))),
        }
    }

    fn tuple(&mut self) -> Result<Tuple, ServerError> {
        let bytes = self.blob()?;
        decode_tuple(bytes).map_err(|e| bad(format!("tuple decode: {e}")))
    }

    fn statements(&mut self) -> Result<StatementSet, ServerError> {
        let n = self.u32()? as usize;
        let mut s = StatementSet::new();
        for _ in 0..n {
            let relation = self.str()?;
            let tuple = self.tuple()?;
            s.add(relation, tuple);
        }
        Ok(s)
    }

    fn rel_op(&mut self) -> Result<RelOp, ServerError> {
        match self.u8()? {
            0 => Ok(RelOp::Insert(self.statements()?)),
            1 => Ok(RelOp::Delete(self.statements()?)),
            other => Err(bad(format!("bad relational op tag {other:#04x}"))),
        }
    }

    fn done(&self) -> Result<(), ServerError> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(bad(format!(
                "{} trailing bytes after the message body",
                self.buf.len() - self.at
            )))
        }
    }
}

// ---------------------------------------------------------------------
// Payload codecs.

impl Request {
    /// The session this request addresses, if it addresses one — the
    /// routing key the network layer uses to pin a session's requests
    /// to one dispatcher shard (sessionless requests may run anywhere).
    pub fn session(&self) -> Option<u64> {
        match self {
            Request::SubmitGraph { session, .. }
            | Request::SubmitRelational { session, .. }
            | Request::Refresh { session }
            | Request::Close { session } => Some(*session),
            _ => None,
        }
    }

    /// Encodes the request payload (version + tag + body, no frame).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![WIRE_VERSION];
        match self {
            Request::OpenSession { kind } => {
                out.push(REQ_OPEN_SESSION);
                match kind {
                    SessionKind::Graph => out.push(0),
                    SessionKind::Relational { view } => {
                        out.push(1);
                        put_str(&mut out, view);
                    }
                }
            }
            Request::SubmitGraph { session, ops } => {
                out.push(REQ_SUBMIT_GRAPH);
                put_u64(&mut out, *session);
                put_u32(&mut out, ops.len() as u32);
                for op in ops {
                    put_graph_op(&mut out, op);
                }
            }
            Request::SubmitRelational { session, op } => {
                out.push(REQ_SUBMIT_RELATIONAL);
                put_u64(&mut out, *session);
                put_rel_op(&mut out, op);
            }
            Request::Refresh { session } => {
                out.push(REQ_REFRESH);
                put_u64(&mut out, *session);
            }
            Request::Close { session } => {
                out.push(REQ_CLOSE);
                put_u64(&mut out, *session);
            }
            Request::ViewState { view } => {
                out.push(REQ_VIEW_STATE);
                put_str(&mut out, view);
            }
            Request::Metrics { json } => {
                out.push(REQ_METRICS);
                out.push(*json as u8);
            }
            Request::Checkpoint => out.push(REQ_CHECKPOINT),
            Request::Admin { body } => {
                out.push(REQ_ADMIN);
                put_blob(&mut out, body);
            }
        }
        out
    }

    /// Decodes a request payload; every malformation is a typed
    /// [`ServerError::Protocol`].
    pub fn decode(payload: &[u8]) -> Result<Request, ServerError> {
        let mut r = Reader::new(payload);
        let version = r.u8()?;
        if version != WIRE_VERSION {
            return Err(bad(format!(
                "unsupported wire version {version} (this build speaks {WIRE_VERSION})"
            )));
        }
        let req = match r.u8()? {
            REQ_OPEN_SESSION => {
                let kind = match r.u8()? {
                    0 => SessionKind::Graph,
                    1 => SessionKind::Relational { view: r.str()? },
                    other => return Err(bad(format!("bad session kind {other:#04x}"))),
                };
                Request::OpenSession { kind }
            }
            REQ_SUBMIT_GRAPH => {
                let session = r.u64()?;
                let n = r.u32()? as usize;
                let mut ops = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    ops.push(r.graph_op()?);
                }
                Request::SubmitGraph { session, ops }
            }
            REQ_SUBMIT_RELATIONAL => {
                let session = r.u64()?;
                let op = r.rel_op()?;
                Request::SubmitRelational { session, op }
            }
            REQ_REFRESH => Request::Refresh { session: r.u64()? },
            REQ_CLOSE => Request::Close { session: r.u64()? },
            REQ_VIEW_STATE => Request::ViewState { view: r.str()? },
            REQ_METRICS => Request::Metrics { json: r.bool()? },
            REQ_CHECKPOINT => Request::Checkpoint,
            REQ_ADMIN => Request::Admin {
                body: r.blob()?.to_vec(),
            },
            other => return Err(bad(format!("unknown request tag {other:#04x}"))),
        };
        r.done()?;
        Ok(req)
    }
}

impl Response {
    /// Encodes the response payload (version + tag + body, no frame).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![WIRE_VERSION];
        match self {
            Response::SessionOpened { session } => {
                out.push(RESP_SESSION_OPENED);
                put_u64(&mut out, *session);
            }
            Response::Committed(info) => {
                out.push(RESP_COMMITTED);
                put_u64(&mut out, info.lsn);
                put_u64(&mut out, info.version);
                put_u32(&mut out, info.attempts);
                put_u64(&mut out, info.trace.as_u64());
            }
            Response::Overloaded { shard, depth } => {
                out.push(RESP_OVERLOADED);
                put_u64(&mut out, *shard);
                put_u64(&mut out, *depth);
            }
            Response::Refreshed { version } => {
                out.push(RESP_REFRESHED);
                put_u64(&mut out, *version);
            }
            Response::Closed => out.push(RESP_CLOSED),
            Response::ViewState { relations } => {
                out.push(RESP_VIEW_STATE);
                put_u16(&mut out, relations.len() as u16);
                for (name, tuples) in relations {
                    put_str(&mut out, name);
                    put_u32(&mut out, tuples.len() as u32);
                    for t in tuples {
                        put_blob(&mut out, &encode_tuple(t));
                    }
                }
            }
            Response::Metrics { body } => {
                out.push(RESP_METRICS);
                put_blob(&mut out, body.as_bytes());
            }
            Response::CheckpointTaken => out.push(RESP_CHECKPOINT_TAKEN),
            Response::Admin { body } => {
                out.push(RESP_ADMIN);
                put_blob(&mut out, body.as_bytes());
            }
            Response::MetricsDelta { body } => {
                out.push(RESP_METRICS_DELTA);
                put_blob(&mut out, body.as_bytes());
            }
            Response::Error { code, message } => {
                out.push(RESP_ERROR);
                put_u16(&mut out, *code);
                put_blob(&mut out, message.as_bytes());
            }
        }
        out
    }

    /// Decodes a response payload.
    pub fn decode(payload: &[u8]) -> Result<Response, ServerError> {
        let mut r = Reader::new(payload);
        let version = r.u8()?;
        if version != WIRE_VERSION {
            return Err(bad(format!(
                "unsupported wire version {version} (this build speaks {WIRE_VERSION})"
            )));
        }
        let resp = match r.u8()? {
            RESP_SESSION_OPENED => Response::SessionOpened { session: r.u64()? },
            RESP_COMMITTED => Response::Committed(CommitInfo {
                lsn: r.u64()?,
                version: r.u64()?,
                attempts: r.u32()?,
                trace: TraceId(r.u64()?),
            }),
            RESP_OVERLOADED => Response::Overloaded {
                shard: r.u64()?,
                depth: r.u64()?,
            },
            RESP_REFRESHED => Response::Refreshed { version: r.u64()? },
            RESP_CLOSED => Response::Closed,
            RESP_VIEW_STATE => {
                let nr = r.u16()? as usize;
                let mut relations = Vec::with_capacity(nr);
                for _ in 0..nr {
                    let name = r.str()?;
                    let nt = r.u32()? as usize;
                    let mut tuples = Vec::with_capacity(nt.min(4096));
                    for _ in 0..nt {
                        tuples.push(r.tuple()?);
                    }
                    relations.push((name, tuples));
                }
                Response::ViewState { relations }
            }
            RESP_METRICS => Response::Metrics {
                body: String::from_utf8(r.blob()?.to_vec())
                    .map_err(|_| bad("metrics body is not utf-8"))?,
            },
            RESP_CHECKPOINT_TAKEN => Response::CheckpointTaken,
            RESP_ADMIN => Response::Admin {
                body: String::from_utf8(r.blob()?.to_vec())
                    .map_err(|_| bad("admin body is not utf-8"))?,
            },
            RESP_METRICS_DELTA => Response::MetricsDelta {
                body: String::from_utf8(r.blob()?.to_vec())
                    .map_err(|_| bad("metrics delta body is not utf-8"))?,
            },
            RESP_ERROR => Response::Error {
                code: r.u16()?,
                message: String::from_utf8(r.blob()?.to_vec())
                    .map_err(|_| bad("error message is not utf-8"))?,
            },
            other => return Err(bad(format!("unknown response tag {other:#04x}"))),
        };
        r.done()?;
        Ok(resp)
    }
}

// ---------------------------------------------------------------------
// Framing: one message = one WAL frame, correlation id in the LSN slot.

fn frame(correlation: u64, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(payload.len() + 32);
    wal::append_record_traced(&mut buf, correlation, None, payload);
    buf
}

fn unframe(bytes: &[u8]) -> Result<(u64, Vec<u8>), ServerError> {
    let (record, consumed) = wal::decode_frame(bytes, 0).map_err(|e| bad(e.to_string()))?;
    if consumed != bytes.len() {
        return Err(bad(format!(
            "{} trailing bytes after the frame",
            bytes.len() - consumed
        )));
    }
    Ok((record.lsn, record.payload))
}

/// Frames a request with its correlation id.
pub fn encode_request_frame(correlation: u64, request: &Request) -> Vec<u8> {
    frame(correlation, &request.encode())
}

/// Decodes exactly one framed request, returning its correlation id.
pub fn decode_request_frame(bytes: &[u8]) -> Result<(u64, Request), ServerError> {
    let (correlation, payload) = unframe(bytes)?;
    Ok((correlation, Request::decode(&payload)?))
}

/// Frames a response with the correlation id it answers.
pub fn encode_response_frame(correlation: u64, response: &Response) -> Vec<u8> {
    frame(correlation, &response.encode())
}

/// Decodes exactly one framed response, returning its correlation id.
pub fn decode_response_frame(bytes: &[u8]) -> Result<(u64, Response), ServerError> {
    let (correlation, payload) = unframe(bytes)?;
    Ok((correlation, Response::decode(&payload)?))
}

/// Rebuilds a [`ServerError`] from its wire form. The stable code picks
/// the variant; string fields are restored from the message verbatim,
/// but fields the `Display` rendering already folded into prose (retry
/// counts, view names, session ids) are not parsed back out — clients
/// match on [`ServerError::code`], not on reconstructed fields.
pub fn error_from_wire(code: u16, message: String) -> ServerError {
    match code {
        1 => ServerError::Conflict { attempts: 0 },
        2 => ServerError::Aborted(message),
        3 => ServerError::Translate(message),
        4 => ServerError::SessionClosed,
        5 => ServerError::Crashed(message),
        6 => ServerError::LockstepDiverged { view: message },
        7 => ServerError::Recovery(message),
        8 => ServerError::UnknownView(message),
        9 => ServerError::InvalidConfig(message),
        11 => ServerError::UnknownSession(0),
        // 10 and anything a newer server might mint.
        _ => ServerError::Protocol(message),
    }
}

// ---------------------------------------------------------------------
// The service-side request handler.

fn outcome_response(outcome: CommitOutcome) -> Response {
    match outcome {
        CommitOutcome::Committed(info) | CommitOutcome::Retried { info, .. } => {
            Response::Committed(info)
        }
        CommitOutcome::Shed { shard, depth } => Response::Overloaded {
            shard: shard as u64,
            depth: depth as u64,
        },
    }
}

fn view_relations(state: &RelationState) -> Vec<(String, Vec<Tuple>)> {
    state
        .schema()
        .relations()
        .map(|r| {
            let name = r.name().as_str().to_string();
            let tuples = state.tuples(name.as_str()).cloned().collect();
            (name, tuples)
        })
        .collect()
}

impl SessionService {
    /// Serves one typed request — the single front door every transport
    /// funnels through. Errors come back as [`Response::Error`] with the
    /// stable [`ServerError::code`]; this function never panics on bad
    /// input.
    pub fn handle(&self, request: Request) -> Response {
        match self.try_handle(request) {
            Ok(response) => response,
            Err(e) => Response::Error {
                code: e.code(),
                message: e.to_string(),
            },
        }
    }

    /// Serves one CRC-framed request and frames the answer under the
    /// same correlation id. A frame that fails the checksum or does not
    /// parse is answered under correlation id 0 (the reserved "broken
    /// frame" id) so the client's demultiplexer can surface it.
    pub fn handle_frame(&self, bytes: &[u8]) -> Vec<u8> {
        let obs = self.shared.config.obs.clone();
        let timer = obs.time(Metric::RequestLatency);
        let (correlation, response) = match decode_request_frame(bytes) {
            Ok((correlation, request)) => (correlation, self.handle(request)),
            Err(e) => (
                0,
                Response::Error {
                    code: e.code(),
                    message: e.to_string(),
                },
            ),
        };
        obs.add(Counter::RequestsServed, 1);
        drop(timer);
        encode_response_frame(correlation, &response)
    }

    /// Runs `f` against a registered session, *checking the session out*
    /// for the duration: a concurrent request against the same id gets
    /// [`ServerError::UnknownSession`] instead of interleaved access.
    fn with_session<T>(
        &self,
        id: u64,
        f: impl FnOnce(&mut Session) -> Result<T, ServerError>,
    ) -> Result<T, ServerError> {
        let mut session = self
            .shared
            .registry
            .lock()
            .unwrap()
            .remove(&id)
            .ok_or(ServerError::UnknownSession(id))?;
        let result = f(&mut session);
        self.shared.registry.lock().unwrap().insert(id, session);
        result
    }

    fn try_handle(&self, request: Request) -> Result<Response, ServerError> {
        match request {
            Request::OpenSession { kind } => {
                let session = self.open_session(kind)?;
                let id = session.id();
                self.shared.registry.lock().unwrap().insert(id, session);
                Ok(Response::SessionOpened { session: id })
            }
            Request::SubmitGraph { session, ops } => self
                .with_session(session, |s| s.submit_graph(ops))
                .map(outcome_response),
            Request::SubmitRelational { session, op } => self
                .with_session(session, |s| s.submit_relational(&op))
                .map(outcome_response),
            Request::Refresh { session } => {
                self.with_session(session, |s| s.refresh())?;
                Ok(Response::Refreshed {
                    version: self.version(),
                })
            }
            Request::Close { session } => {
                let s = self
                    .shared
                    .registry
                    .lock()
                    .unwrap()
                    .remove(&session)
                    .ok_or(ServerError::UnknownSession(session))?;
                s.close()?;
                Ok(Response::Closed)
            }
            Request::ViewState { view } => {
                let state = self
                    .view_state(&view)
                    .ok_or(ServerError::UnknownView(view))?;
                Ok(Response::ViewState {
                    relations: view_relations(&state),
                })
            }
            Request::Metrics { json } => Ok(Response::Metrics {
                body: self.render_metrics(json),
            }),
            Request::Checkpoint => {
                self.checkpoint_now()?;
                Ok(Response::CheckpointTaken)
            }
            Request::Admin { body } => {
                let body = match AdminRequest::decode(&body)? {
                    AdminRequest::MetricsText => self.render_metrics(false),
                    AdminRequest::MetricsJson => self.render_metrics(true),
                    AdminRequest::TraceLookup(id) => {
                        self.shared.config.obs.add(Counter::TraceLookups, 1);
                        self.lookup_trace(TraceId(id))
                    }
                    // Streaming subscriptions are intercepted by the
                    // network layer before dispatch; a WatchMetrics
                    // that reaches the service directly (embedded
                    // callers, no push path) is acknowledged with the
                    // effective interval.
                    AdminRequest::WatchMetrics { interval_ms } => {
                        format!("{{\"watch\":{{\"interval_ms\":{}}}}}", interval_ms.max(1))
                    }
                };
                Ok(Response::Admin { body })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_echo_the_correlation_id() {
        let req = Request::Checkpoint;
        let bytes = encode_request_frame(77, &req);
        let (corr, back) = decode_request_frame(&bytes).unwrap();
        assert_eq!((corr, back), (77, req));
        let resp = Response::CheckpointTaken;
        let bytes = encode_response_frame(77, &resp);
        assert_eq!(decode_response_frame(&bytes).unwrap(), (77, resp));
    }

    #[test]
    fn unknown_version_and_tag_are_protocol_errors() {
        let mut payload = Request::Checkpoint.encode();
        payload[0] = 99;
        assert!(matches!(
            Request::decode(&payload),
            Err(ServerError::Protocol(_))
        ));
        let mut payload = Request::Checkpoint.encode();
        payload[1] = 0x7E;
        assert!(matches!(
            Request::decode(&payload),
            Err(ServerError::Protocol(_))
        ));
        // Direction confusion: a response tag is not a request.
        assert!(Request::decode(&Response::Closed.encode()).is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut payload = Request::Refresh { session: 3 }.encode();
        payload.push(0);
        assert!(Request::decode(&payload).is_err());
        let mut framed = encode_request_frame(1, &Request::Checkpoint);
        framed.push(0xAB);
        assert!(decode_request_frame(&framed).is_err());
    }
}
