//! Encoding conceptual deltas and checkpoint images into WAL payloads.
//!
//! A committed transaction is logged as the *difference* between the
//! conceptual state before and after it — entity and association
//! records keyed by type/predicate name, tuples encoded with the
//! storage codec in the same schema order (`BTreeMap` name order for
//! characteristics and roles) the internal level uses. A checkpoint is
//! the same format applied from the empty state, so one decoder serves
//! both: recovery decodes the checkpoint into a state, then folds the
//! logged deltas over it.

use std::collections::BTreeSet;
use std::sync::Arc;

use dme_graph::{Association, Entity, EntityRef, GraphChange, GraphSchema, GraphState};
use dme_storage::{decode_tuple, encode_tuple};
use dme_value::{Tuple, Value};

use crate::error::ServerError;

const KIND_ENTITY_INSERT: u8 = 0;
const KIND_ENTITY_DELETE: u8 = 1;
const KIND_ASSOC_INSERT: u8 = 2;
const KIND_ASSOC_DELETE: u8 = 3;

// Checkpoint payload tags live in a disjoint 0xF_ range: a checkpoint
// record on the checkpoint stream is either a full image (the delta
// from the empty state, as before) or an incremental image (the
// current records of the keys dirtied since the previous checkpoint,
// chained to it by LSN). Untagged payloads are accepted as full images
// for compatibility with pre-compaction checkpoint streams.
const CP_FULL: u8 = 0xF0;
const CP_INCR: u8 = 0xF1;

// Admin request kinds live in a disjoint 0xA_ range so a stray admin
// byte can never be misread as a delta record (and vice versa).
const KIND_ADMIN_METRICS_TEXT: u8 = 0xA0;
const KIND_ADMIN_METRICS_JSON: u8 = 0xA1;
const KIND_ADMIN_TRACE_LOOKUP: u8 = 0xA2;
const KIND_ADMIN_WATCH_METRICS: u8 = 0xA3;

/// A control-channel request served by the session service outside the
/// transactional data path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdminRequest {
    /// Render counters + latency histograms in the Prometheus
    /// exposition text format.
    MetricsText,
    /// Render counters + latency histograms as one JSON object.
    MetricsJson,
    /// Look a transaction's trace up in the service's trace hub and
    /// render its stitched cross-shard causal tree as JSON.
    TraceLookup(u64),
    /// Subscribe this connection to periodic telemetry delta pushes
    /// (server-push [`crate::wire::Response::MetricsDelta`] frames).
    WatchMetrics {
        /// Push interval in milliseconds (0 is clamped up to 1).
        interval_ms: u32,
    },
}

impl AdminRequest {
    /// The request's wire encoding: one kind byte, plus the trace id
    /// (8 bytes) or interval (4 bytes) for the parameterized kinds.
    pub fn encode(self) -> Vec<u8> {
        match self {
            AdminRequest::MetricsText => vec![KIND_ADMIN_METRICS_TEXT],
            AdminRequest::MetricsJson => vec![KIND_ADMIN_METRICS_JSON],
            AdminRequest::TraceLookup(trace) => {
                let mut out = vec![KIND_ADMIN_TRACE_LOOKUP];
                out.extend_from_slice(&trace.to_be_bytes());
                out
            }
            AdminRequest::WatchMetrics { interval_ms } => {
                let mut out = vec![KIND_ADMIN_WATCH_METRICS];
                out.extend_from_slice(&interval_ms.to_be_bytes());
                out
            }
        }
    }

    /// Decodes a wire-encoded admin request.
    pub fn decode(bytes: &[u8]) -> Result<AdminRequest, ServerError> {
        match bytes {
            [KIND_ADMIN_METRICS_TEXT] => Ok(AdminRequest::MetricsText),
            [KIND_ADMIN_METRICS_JSON] => Ok(AdminRequest::MetricsJson),
            [KIND_ADMIN_TRACE_LOOKUP, rest @ ..] => {
                let id: [u8; 8] = rest
                    .try_into()
                    .map_err(|_| corrupt("trace lookup wants exactly 8 id bytes"))?;
                Ok(AdminRequest::TraceLookup(u64::from_be_bytes(id)))
            }
            [KIND_ADMIN_WATCH_METRICS, rest @ ..] => {
                let ms: [u8; 4] = rest
                    .try_into()
                    .map_err(|_| corrupt("watch metrics wants exactly 4 interval bytes"))?;
                Ok(AdminRequest::WatchMetrics {
                    interval_ms: u32::from_be_bytes(ms),
                })
            }
            [] => Err(corrupt("empty admin request")),
            other => Err(corrupt(format!(
                "unknown admin request {:#04x} ({} bytes)",
                other[0],
                other.len()
            ))),
        }
    }
}

fn entity_tuple(e: &Entity) -> Tuple {
    Tuple::new(e.characteristics.values().map(|a| Value::Atom(a.clone())))
}

fn assoc_tuple(a: &Association) -> Tuple {
    Tuple::new(a.roles.values().map(|e| Value::Atom(e.key.clone())))
}

fn push_record(out: &mut Vec<u8>, kind: u8, name: &str, tuple: &Tuple) {
    out.push(kind);
    let name_bytes = name.as_bytes();
    out.extend_from_slice(&(name_bytes.len() as u16).to_be_bytes());
    out.extend_from_slice(name_bytes);
    let encoded = encode_tuple(tuple);
    out.extend_from_slice(&(encoded.len() as u32).to_be_bytes());
    out.extend_from_slice(&encoded);
}

/// Encodes the conceptual difference `before → after` as a WAL payload.
///
/// Record order is replay-safe: association deletes, entity deletes,
/// entity inserts, association inserts — objects are always removed
/// before their anchors and anchors inserted before their dependents.
pub fn encode_delta(before: &GraphState, after: &GraphState) -> Vec<u8> {
    let before_entities: BTreeSet<&Entity> = before.entities().collect();
    let after_entities: BTreeSet<&Entity> = after.entities().collect();
    let before_assocs: BTreeSet<&Association> = before.associations().collect();
    let after_assocs: BTreeSet<&Association> = after.associations().collect();

    let mut out = Vec::new();
    for a in before_assocs.difference(&after_assocs) {
        push_record(
            &mut out,
            KIND_ASSOC_DELETE,
            a.predicate.as_str(),
            &assoc_tuple(a),
        );
    }
    for e in before_entities.difference(&after_entities) {
        push_record(
            &mut out,
            KIND_ENTITY_DELETE,
            e.entity_type.as_str(),
            &entity_tuple(e),
        );
    }
    for e in after_entities.difference(&before_entities) {
        push_record(
            &mut out,
            KIND_ENTITY_INSERT,
            e.entity_type.as_str(),
            &entity_tuple(e),
        );
    }
    for a in after_assocs.difference(&before_assocs) {
        push_record(
            &mut out,
            KIND_ASSOC_INSERT,
            a.predicate.as_str(),
            &assoc_tuple(a),
        );
    }
    out
}

/// Encodes a committed transaction's raw change log as a WAL payload —
/// the same record format [`apply_delta`] decodes, but built in
/// O(changes) from the log instead of diffing two whole states. Records
/// are emitted in application order, which is replay-exact by
/// construction: the log *is* the sequence of raw mutations that
/// produced the post-state.
pub fn encode_changes(changes: &[GraphChange]) -> Vec<u8> {
    let mut out = Vec::new();
    for change in changes {
        match change {
            GraphChange::InsertEntity(e) => push_record(
                &mut out,
                KIND_ENTITY_INSERT,
                e.entity_type.as_str(),
                &entity_tuple(e),
            ),
            GraphChange::DeleteEntity(e) => push_record(
                &mut out,
                KIND_ENTITY_DELETE,
                e.entity_type.as_str(),
                &entity_tuple(e),
            ),
            GraphChange::InsertAssociation(a) => push_record(
                &mut out,
                KIND_ASSOC_INSERT,
                a.predicate.as_str(),
                &assoc_tuple(a),
            ),
            GraphChange::DeleteAssociation(a) => push_record(
                &mut out,
                KIND_ASSOC_DELETE,
                a.predicate.as_str(),
                &assoc_tuple(a),
            ),
        }
    }
    out
}

/// Encodes a full conceptual state (a checkpoint image): the delta from
/// the empty state.
pub fn encode_state(state: &GraphState) -> Vec<u8> {
    encode_delta(&GraphState::empty(Arc::clone(state.schema())), state)
}

fn corrupt(why: impl Into<String>) -> ServerError {
    ServerError::Recovery(why.into())
}

fn decode_entity(schema: &GraphSchema, name: &str, tuple: &Tuple) -> Result<Entity, ServerError> {
    let et = schema
        .universe()
        .entity_types()
        .find(|et| et.name().as_str() == name)
        .ok_or_else(|| corrupt(format!("unknown entity type {name} in log")))?;
    let chars: Vec<_> = et.characteristics().map(|(c, _)| c.clone()).collect();
    if tuple.arity() != chars.len() {
        return Err(corrupt(format!(
            "entity record arity {} != {} characteristics of {name}",
            tuple.arity(),
            chars.len()
        )));
    }
    let values: Result<Vec<_>, _> = tuple
        .values()
        .map(|v| {
            v.as_atom()
                .cloned()
                .ok_or_else(|| corrupt(format!("null in entity record for {name}")))
        })
        .collect();
    Ok(Entity::new(
        et.name().clone(),
        chars.into_iter().zip(values?),
    ))
}

fn decode_assoc(
    schema: &GraphSchema,
    name: &str,
    tuple: &Tuple,
) -> Result<Association, ServerError> {
    let pred = schema
        .universe()
        .predicates()
        .find(|p| p.name().as_str() == name)
        .ok_or_else(|| corrupt(format!("unknown predicate {name} in log")))?;
    let cases: Vec<_> = pred.cases().map(|(c, t)| (c.clone(), t.clone())).collect();
    if tuple.arity() != cases.len() {
        return Err(corrupt(format!("association record arity for {name}")));
    }
    let roles: Result<Vec<_>, ServerError> = cases
        .into_iter()
        .zip(tuple.values())
        .map(|((case, et), v)| {
            let key = v
                .as_atom()
                .cloned()
                .ok_or_else(|| corrupt(format!("null in association record for {name}")))?;
            Ok((case, EntityRef::new(et, key)))
        })
        .collect();
    Ok(Association::new(pred.name().clone(), roles?))
}

/// Walks every `(kind, name, tuple)` record of an encoded delta.
fn for_each_record(
    payload: &[u8],
    mut f: impl FnMut(u8, &str, &Tuple) -> Result<(), ServerError>,
) -> Result<(), ServerError> {
    let mut at = 0;
    while at < payload.len() {
        let kind = payload[at];
        at += 1;
        if payload.len() < at + 2 {
            return Err(corrupt("truncated record name length"));
        }
        let name_len = u16::from_be_bytes([payload[at], payload[at + 1]]) as usize;
        at += 2;
        if payload.len() < at + name_len {
            return Err(corrupt("truncated record name"));
        }
        let name = std::str::from_utf8(&payload[at..at + name_len])
            .map_err(|_| corrupt("record name is not utf-8"))?;
        let name_end = at + name_len;
        at = name_end;
        if payload.len() < at + 4 {
            return Err(corrupt("truncated tuple length"));
        }
        let tuple_len = u32::from_be_bytes([
            payload[at],
            payload[at + 1],
            payload[at + 2],
            payload[at + 3],
        ]) as usize;
        at += 4;
        if payload.len() < at + tuple_len {
            return Err(corrupt("truncated tuple"));
        }
        let tuple = decode_tuple(&payload[at..at + tuple_len])
            .map_err(|e| corrupt(format!("tuple decode: {e}")))?;
        at += tuple_len;
        f(kind, name, &tuple)?;
    }
    Ok(())
}

/// Folds an encoded delta over `state`, yielding the state after it.
pub fn apply_delta(state: &GraphState, payload: &[u8]) -> Result<GraphState, ServerError> {
    let mut next = state.clone();
    apply_delta_in_place(&mut next, payload)?;
    Ok(next)
}

/// [`apply_delta`] without the clone: folds the delta directly into
/// `state`. Recovery replays every WAL record since the checkpoint
/// through this — a clone per record would make replay O(records ×
/// state) and sink the recovery SLO; in place it is O(delta) per
/// record. On error the state may hold a partial application, so
/// callers must discard it (recovery abandons the whole attempt).
pub fn apply_delta_in_place(state: &mut GraphState, payload: &[u8]) -> Result<(), ServerError> {
    let schema = Arc::clone(state.schema());
    for_each_record(payload, |kind, name, tuple| {
        match kind {
            KIND_ENTITY_INSERT => {
                let e = decode_entity(&schema, name, tuple)?;
                state
                    .insert_entity_raw(e)
                    .map_err(|e| corrupt(format!("replayed entity insert: {e}")))?;
            }
            KIND_ENTITY_DELETE => {
                let e = decode_entity(&schema, name, tuple)?;
                let r = e
                    .to_ref(&schema)
                    .ok_or_else(|| corrupt(format!("entity of type {name} has no key")))?;
                state
                    .remove_entity_raw(&r)
                    .map_err(|e| corrupt(format!("replayed entity delete: {e}")))?;
            }
            KIND_ASSOC_INSERT => {
                let a = decode_assoc(&schema, name, tuple)?;
                state
                    .insert_association_raw(a)
                    .map_err(|e| corrupt(format!("replayed association insert: {e}")))?;
            }
            KIND_ASSOC_DELETE => {
                let a = decode_assoc(&schema, name, tuple)?;
                state
                    .remove_association_raw(&a)
                    .map_err(|e| corrupt(format!("replayed association delete: {e}")))?;
            }
            other => return Err(corrupt(format!("unknown delta record kind {other}"))),
        }
        Ok(())
    })
}

/// Folds an encoded delta over `state` with *upsert/ignore* semantics:
/// inserts overwrite an existing fact, deletes of an absent fact are
/// no-ops. This is how incremental checkpoint images apply — they
/// carry the dirty keys' **current** records, not a before/after diff,
/// so "already there" and "already gone" are expected states, not
/// corruption. Malformed records are still typed errors.
pub fn apply_delta_lenient(state: &GraphState, payload: &[u8]) -> Result<GraphState, ServerError> {
    let schema = Arc::clone(state.schema());
    let mut state = state.clone();
    for_each_record(payload, |kind, name, tuple| {
        match kind {
            KIND_ENTITY_INSERT => {
                let e = decode_entity(&schema, name, tuple)?;
                if let Some(r) = e.to_ref(&schema) {
                    let _ = state.remove_entity_raw(&r);
                }
                state
                    .insert_entity_raw(e)
                    .map_err(|e| corrupt(format!("checkpointed entity upsert: {e}")))?;
            }
            KIND_ENTITY_DELETE => {
                let e = decode_entity(&schema, name, tuple)?;
                let r = e
                    .to_ref(&schema)
                    .ok_or_else(|| corrupt(format!("entity of type {name} has no key")))?;
                let _ = state.remove_entity_raw(&r);
            }
            KIND_ASSOC_INSERT => {
                let a = decode_assoc(&schema, name, tuple)?;
                let _ = state.remove_association_raw(&a);
                state
                    .insert_association_raw(a)
                    .map_err(|e| corrupt(format!("checkpointed association upsert: {e}")))?;
            }
            KIND_ASSOC_DELETE => {
                let a = decode_assoc(&schema, name, tuple)?;
                let _ = state.remove_association_raw(&a);
            }
            other => return Err(corrupt(format!("unknown delta record kind {other}"))),
        }
        Ok(())
    })?;
    Ok(state)
}

/// Decodes a checkpoint image into a state over `schema`.
pub fn decode_state(schema: Arc<GraphSchema>, payload: &[u8]) -> Result<GraphState, ServerError> {
    apply_delta(&GraphState::empty(schema), payload)
}

/// A decoded checkpoint payload: either a self-contained full image or
/// an incremental image chained to the checkpoint at `prev_lsn`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckpointImage<'a> {
    /// A full image: `delta` rebuilds the state from empty.
    Full {
        /// Encoded delta from the empty state.
        delta: &'a [u8],
    },
    /// An incremental image: `delta` holds the *current* records of
    /// every key dirtied since the checkpoint whose LSN is `prev_lsn`,
    /// to be folded leniently over that checkpoint's state.
    Incremental {
        /// LSN of the checkpoint this delta chains to.
        prev_lsn: u64,
        /// Encoded records of the dirty keys (upsert/delete semantics).
        delta: &'a [u8],
    },
}

/// Encodes a full checkpoint payload: tag + delta-from-empty.
pub fn encode_full_checkpoint(state: &GraphState) -> Vec<u8> {
    let mut out = vec![CP_FULL];
    out.extend_from_slice(&encode_state(state));
    out
}

/// Encodes an incremental checkpoint payload: tag + chain link +
/// the dirty keys' current records (already class-ordered by the
/// caller: association deletes, entity deletes, entity inserts,
/// association inserts).
pub fn encode_incremental_checkpoint(prev_lsn: u64, records: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(9 + records.len());
    out.push(CP_INCR);
    out.extend_from_slice(&prev_lsn.to_be_bytes());
    out.extend_from_slice(records);
    out
}

/// Decodes a checkpoint payload. Untagged payloads (whose first byte
/// is a delta record kind, or which are empty) are legacy full images.
pub fn decode_checkpoint(payload: &[u8]) -> Result<CheckpointImage<'_>, ServerError> {
    match payload.first() {
        None => Ok(CheckpointImage::Full { delta: payload }),
        Some(&CP_FULL) => Ok(CheckpointImage::Full {
            delta: &payload[1..],
        }),
        Some(&CP_INCR) => {
            if payload.len() < 9 {
                return Err(corrupt("incremental checkpoint lacks its chain link"));
            }
            let prev_lsn = u64::from_be_bytes(payload[1..9].try_into().unwrap());
            Ok(CheckpointImage::Incremental {
                prev_lsn,
                delta: &payload[9..],
            })
        }
        Some(&kind) if kind <= KIND_ASSOC_DELETE => Ok(CheckpointImage::Full { delta: payload }),
        Some(other) => Err(corrupt(format!("unknown checkpoint tag {other:#04x}"))),
    }
}

/// The replay-safe ordering class of a delta record kind: association
/// deletes, entity deletes, entity inserts, association inserts.
pub(crate) fn record_class(kind: u8) -> u8 {
    match kind {
        KIND_ASSOC_DELETE => 0,
        KIND_ENTITY_DELETE => 1,
        KIND_ENTITY_INSERT => 2,
        KIND_ASSOC_INSERT => 3,
        other => other,
    }
}

/// The stable MVCC fact key of a change: the key identifies the fact
/// (entity by type + characteristics, association by predicate +
/// roles) independent of whether the version is an insert or a delete,
/// so both versions of one fact land on one chain.
pub(crate) fn mvcc_fact_key(change: &GraphChange) -> Vec<u8> {
    fn key(tag: u8, name: &str, tuple: &Tuple) -> Vec<u8> {
        let mut out = Vec::with_capacity(3 + name.len() + 16);
        out.push(tag);
        out.extend_from_slice(&(name.len() as u16).to_be_bytes());
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(&encode_tuple(tuple));
        out
    }
    match change {
        GraphChange::InsertEntity(e) | GraphChange::DeleteEntity(e) => {
            key(b'E', e.entity_type.as_str(), &entity_tuple(e))
        }
        GraphChange::InsertAssociation(a) | GraphChange::DeleteAssociation(a) => {
            key(b'A', a.predicate.as_str(), &assoc_tuple(a))
        }
    }
}

/// Encodes one change as a single delta record — the per-version
/// payload the MVCC store keeps. The embedded kind byte (`record[0]`)
/// doubles as the version's insert/delete marker.
pub(crate) fn mvcc_fact_record(change: &GraphChange) -> Vec<u8> {
    encode_changes(std::slice::from_ref(change))
}

/// Whether a stored MVCC record is a delete marker.
pub(crate) fn record_is_delete(record: &[u8]) -> bool {
    matches!(
        record.first(),
        Some(&KIND_ENTITY_DELETE) | Some(&KIND_ASSOC_DELETE)
    )
}

/// Routes an MVCC fact key to one of `shards` version-store
/// partitions (FNV-1a over the key bytes — independent of the WAL's
/// entity-based sharding, it only balances the version index).
pub(crate) fn mvcc_shard(key: &[u8], shards: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    (h % shards.max(1) as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use dme_graph::fixtures as gfix;
    use dme_graph::GraphOp;
    use dme_value::Atom;

    #[test]
    fn state_round_trips_through_checkpoint_image() {
        let g = gfix::figure4_state();
        let image = encode_state(&g);
        let rebuilt = decode_state(Arc::clone(g.schema()), &image).unwrap();
        assert_eq!(rebuilt, g);
    }

    #[test]
    fn delta_round_trips_every_record_kind() {
        let g = gfix::figure4_state();
        // A unit deletion exercises association + entity deletes; the
        // reverse exercises both inserts.
        let premise = gfix::figure8_premise_state();
        let down = encode_delta(&g, &premise);
        assert_eq!(apply_delta(&g, &down).unwrap(), premise);
        let up = encode_delta(&premise, &g);
        assert_eq!(apply_delta(&premise, &up).unwrap(), g);
    }

    #[test]
    fn delta_of_an_association_insert() {
        let g = gfix::figure4_state();
        let op = GraphOp::InsertAssociation(Association::new(
            "supervise",
            [
                ("agent", EntityRef::new("employee", Atom::str("G.Wayshum"))),
                ("object", EntityRef::new("employee", Atom::str("T.Manhart"))),
            ],
        ));
        let g2 = op.apply(&g).unwrap();
        let delta = encode_delta(&g, &g2);
        assert_eq!(apply_delta(&g, &delta).unwrap(), g2);
        assert_eq!(apply_delta(&g2, &encode_delta(&g2, &g)).unwrap(), g);
    }

    #[test]
    fn admin_requests_round_trip_and_reject_junk() {
        for req in [
            AdminRequest::MetricsText,
            AdminRequest::MetricsJson,
            AdminRequest::TraceLookup(0),
            AdminRequest::TraceLookup(u64::MAX),
            AdminRequest::WatchMetrics { interval_ms: 100 },
            AdminRequest::WatchMetrics { interval_ms: 0 },
        ] {
            assert_eq!(AdminRequest::decode(&req.encode()).unwrap(), req);
        }
        assert!(AdminRequest::decode(&[]).is_err());
        assert!(
            AdminRequest::decode(&[0x00]).is_err(),
            "delta kinds rejected"
        );
        assert!(AdminRequest::decode(&[KIND_ADMIN_METRICS_TEXT, 0]).is_err());
        // Parameterized kinds demand exact operand lengths: truncated
        // and padded forms are both rejected.
        assert!(AdminRequest::decode(&[KIND_ADMIN_TRACE_LOOKUP]).is_err());
        assert!(AdminRequest::decode(&[KIND_ADMIN_TRACE_LOOKUP, 1, 2, 3]).is_err());
        let mut long = AdminRequest::TraceLookup(7).encode();
        long.push(0);
        assert!(AdminRequest::decode(&long).is_err());
        assert!(AdminRequest::decode(&[KIND_ADMIN_WATCH_METRICS, 1]).is_err());
        let mut long = AdminRequest::WatchMetrics { interval_ms: 50 }.encode();
        long.push(0);
        assert!(AdminRequest::decode(&long).is_err());
    }

    #[test]
    fn checkpoint_payloads_round_trip_and_accept_legacy_images() {
        let g = gfix::figure4_state();
        let full = encode_full_checkpoint(&g);
        match decode_checkpoint(&full).unwrap() {
            CheckpointImage::Full { delta } => {
                assert_eq!(decode_state(Arc::clone(g.schema()), delta).unwrap(), g);
            }
            other => panic!("full image decoded as {other:?}"),
        }
        let incr = encode_incremental_checkpoint(42, b"");
        assert_eq!(
            decode_checkpoint(&incr).unwrap(),
            CheckpointImage::Incremental {
                prev_lsn: 42,
                delta: b"",
            }
        );
        // Untagged legacy payloads (first byte is a record kind, or
        // empty) still read as full images.
        let legacy = encode_state(&g);
        assert_eq!(
            decode_checkpoint(&legacy).unwrap(),
            CheckpointImage::Full {
                delta: legacy.as_slice()
            }
        );
        assert_eq!(
            decode_checkpoint(b"").unwrap(),
            CheckpointImage::Full { delta: b"" }
        );
        assert!(decode_checkpoint(&[0x7F]).is_err(), "unknown tag");
        assert!(
            decode_checkpoint(&[CP_INCR, 0, 0]).is_err(),
            "truncated chain link"
        );
    }

    #[test]
    fn lenient_apply_upserts_and_ignores_absent_deletes() {
        let g = gfix::figure4_state();
        // Re-applying a full image over the state it encodes is a
        // no-op under lenient semantics (and an error under strict).
        let image = encode_state(&g);
        assert!(apply_delta(&g, &image).is_err());
        assert_eq!(apply_delta_lenient(&g, &image).unwrap(), g);
        // Deleting what is already gone is ignored.
        let premise = gfix::figure8_premise_state();
        let down = encode_delta(&g, &premise);
        let once = apply_delta_lenient(&g, &down).unwrap();
        assert_eq!(once, premise);
        assert_eq!(apply_delta_lenient(&once, &down).unwrap(), premise);
        // Malformed records stay typed errors.
        assert!(apply_delta_lenient(&g, &image[..3]).is_err());
    }

    #[test]
    fn mvcc_fact_keys_identify_facts_across_insert_and_delete() {
        let g = gfix::figure4_state();
        let e = g.entities().next().unwrap().clone();
        let a = g.associations().next().unwrap().clone();
        let ins = GraphChange::InsertEntity(e.clone());
        let del = GraphChange::DeleteEntity(e);
        assert_eq!(
            mvcc_fact_key(&ins),
            mvcc_fact_key(&del),
            "both versions of one fact share a chain"
        );
        let ains = GraphChange::InsertAssociation(a.clone());
        let adel = GraphChange::DeleteAssociation(a);
        assert_eq!(mvcc_fact_key(&ains), mvcc_fact_key(&adel));
        assert_ne!(mvcc_fact_key(&ins), mvcc_fact_key(&ains));
        // Record bytes carry the insert/delete marker in the kind byte.
        assert!(!record_is_delete(&mvcc_fact_record(&ins)));
        assert!(record_is_delete(&mvcc_fact_record(&del)));
        assert!(record_is_delete(&mvcc_fact_record(&adel)));
        // Class order: assoc-del < ent-del < ent-ins < assoc-ins.
        assert!(record_class(KIND_ASSOC_DELETE) < record_class(KIND_ENTITY_DELETE));
        assert!(record_class(KIND_ENTITY_DELETE) < record_class(KIND_ENTITY_INSERT));
        assert!(record_class(KIND_ENTITY_INSERT) < record_class(KIND_ASSOC_INSERT));
        // Sharding is deterministic and in range.
        for shards in [1usize, 2, 4, 7] {
            let s = mvcc_shard(&mvcc_fact_key(&ins), shards);
            assert!(s < shards);
            assert_eq!(s, mvcc_shard(&mvcc_fact_key(&ins), shards));
        }
    }

    #[test]
    fn corrupt_payloads_are_typed_errors() {
        let g = gfix::figure4_state();
        let image = encode_state(&g);
        // Truncation inside the first record is caught (a cut at a
        // record boundary is a shorter but well-formed delta).
        for cut in 1..12 {
            assert!(decode_state(Arc::clone(g.schema()), &image[..cut]).is_err());
        }
        // Unknown record kind.
        let mut bad = image.clone();
        bad[0] = 0x7F;
        assert!(matches!(
            decode_state(Arc::clone(g.schema()), &bad),
            Err(ServerError::Recovery(_))
        ));
    }
}
