//! Hash-sharding of the conceptual write set.
//!
//! Every entity reference a transaction touches is hashed to a shard;
//! the set of shards touched is the transaction's *shard set*. A
//! transaction is routed to its lowest shard's commit lane (its *home*
//! lane) and its WAL frame is journaled on **every** shard in the set,
//! so each shard's log alone is a complete record of the transactions
//! that touched it. Two dependent transactions (ones whose write sets
//! overlap) necessarily share a shard, which is what makes per-shard
//! prefix durability sufficient for recovery: a gap in the merged log
//! can only separate independent transactions.
//!
//! Hashing is fnv-1a over the reference's type name and key atom, so
//! placement is deterministic across runs and across processes — a
//! requirement for the crash matrix and for conformance replay.

use std::collections::BTreeSet;

use dme_graph::{Association, Entity, EntityRef, GraphOp, GraphSchema};
use dme_value::Atom;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    let mut h = h;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn hash_atom(h: u64, atom: &Atom) -> u64 {
    match atom {
        Atom::Bool(b) => fnv1a(fnv1a(h, &[1]), &[*b as u8]),
        Atom::Int(i) => fnv1a(fnv1a(h, &[2]), &i.to_be_bytes()),
        Atom::Str(s) => fnv1a(fnv1a(h, &[3]), s.as_bytes()),
    }
}

/// The shard an entity reference lives on, out of `shards`.
pub fn shard_of(r: &EntityRef, shards: usize) -> usize {
    let h = fnv1a(FNV_OFFSET, r.entity_type.as_str().as_bytes());
    let h = hash_atom(fnv1a(h, &[0xff]), &r.key);
    (h % shards.max(1) as u64) as usize
}

fn collect_entity(schema: &GraphSchema, e: &Entity, out: &mut BTreeSet<EntityRef>) {
    if let Some(r) = e.to_ref(schema) {
        out.insert(r);
    }
}

fn collect_assoc(a: &Association, out: &mut BTreeSet<EntityRef>) {
    for r in a.roles.values() {
        out.insert(r.clone());
    }
}

/// Every entity reference a conceptual operation touches (its write
/// set, as far as placement is concerned).
pub fn refs_of(schema: &GraphSchema, op: &GraphOp) -> BTreeSet<EntityRef> {
    let mut out = BTreeSet::new();
    match op {
        GraphOp::InsertEntity(e) => collect_entity(schema, e, &mut out),
        GraphOp::DeleteEntity(r) => {
            out.insert(r.clone());
        }
        GraphOp::InsertAssociation(a) | GraphOp::DeleteAssociation(a) => collect_assoc(a, &mut out),
        GraphOp::InsertUnit(u) | GraphOp::DeleteUnit(u) => {
            for e in &u.entities {
                collect_entity(schema, e, &mut out);
            }
            for a in &u.associations {
                collect_assoc(a, &mut out);
            }
        }
    }
    out
}

/// The shard set of a transaction's operations. Empty write sets (a
/// transaction of zero operations) land on shard 0 so every transaction
/// has a home lane.
pub fn shard_set(schema: &GraphSchema, ops: &[GraphOp], shards: usize) -> BTreeSet<usize> {
    let mut set = BTreeSet::new();
    for op in ops {
        for r in refs_of(schema, op) {
            set.insert(shard_of(&r, shards));
        }
    }
    if set.is_empty() {
        set.insert(0);
    }
    set
}

/// The commit lane a transaction is routed to: the lowest shard in its
/// shard set (deterministic, so retries of the same transaction queue
/// on the same lane).
pub fn home_shard(schema: &GraphSchema, ops: &[GraphOp], shards: usize) -> usize {
    *shard_set(schema, ops, shards)
        .iter()
        .next()
        .expect("shard sets are never empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dme_graph::fixtures as gfix;
    use dme_value::Atom;

    fn emp(name: &str) -> EntityRef {
        EntityRef::new("employee", Atom::str(name))
    }

    #[test]
    fn placement_is_deterministic_and_spread() {
        let a = shard_of(&emp("T.Manhart"), 4);
        assert_eq!(a, shard_of(&emp("T.Manhart"), 4));
        let used: BTreeSet<usize> = (0..64)
            .map(|i| shard_of(&emp(&format!("worker-{i}")), 4))
            .collect();
        assert!(used.len() > 1, "64 keys all hashed to one of 4 shards");
    }

    #[test]
    fn single_shard_collapses_everything() {
        assert_eq!(shard_of(&emp("anyone"), 1), 0);
        let g = gfix::figure4_state();
        let ops = vec![GraphOp::DeleteEntity(emp("T.Manhart"))];
        assert_eq!(shard_set(g.schema(), &ops, 1), BTreeSet::from([0]));
    }

    #[test]
    fn dependent_transactions_share_a_shard() {
        // Two transactions touching the same entity land its shard in
        // both shard sets, whatever else they touch.
        let g = gfix::figure4_state();
        let schema = g.schema();
        let shared = emp("C.Gershag");
        let t1 = vec![GraphOp::DeleteEntity(shared.clone())];
        let t2 = vec![
            GraphOp::DeleteEntity(emp("G.Wayshum")),
            GraphOp::DeleteEntity(shared.clone()),
        ];
        let s = shard_of(&shared, 8);
        assert!(shard_set(schema, &t1, 8).contains(&s));
        assert!(shard_set(schema, &t2, 8).contains(&s));
    }

    #[test]
    fn associations_and_units_contribute_their_participants() {
        let g = gfix::figure4_state();
        let schema = g.schema();
        let assoc = dme_graph::Association::new(
            "supervise",
            [("agent", emp("G.Wayshum")), ("object", emp("T.Manhart"))],
        );
        let set = shard_set(schema, &[GraphOp::InsertAssociation(assoc)], 16);
        assert!(set.contains(&shard_of(&emp("G.Wayshum"), 16)));
        assert!(set.contains(&shard_of(&emp("T.Manhart"), 16)));
    }

    #[test]
    fn empty_transactions_are_homed_on_shard_zero() {
        let g = gfix::figure4_state();
        assert_eq!(home_shard(g.schema(), &[], 8), 0);
    }
}
