#![deny(missing_docs)]

//! # dme-server — the concurrent multi-model session service
//!
//! The conclusion of *Data Model Equivalence* claims operation
//! equivalence "would actually allow the implementation of a database
//! system which provides users of two different data models with access
//! to the same data". This crate is that database system, grown from
//! the sequential machinery of the other crates:
//!
//! * **Sessions** ([`Session`], [`SessionKind`]) — N concurrent
//!   clients, some speaking conceptual graph operations, some speaking
//!   relational operations against external views (including §1.2
//!   *subset* schemas), all updating one conceptual database.
//! * **Transactions** ([`SessionService`]) — snapshot reads, optimistic
//!   base-version conflict detection for relational sessions, and
//!   serialized, *batched* commits routed by write-set hash to
//!   per-shard commit lanes ([`crate::shard`]): each lane's leader
//!   drains a batch that shares one WAL append + sync per involved
//!   shard (group commit, [`CommitMode`]), and different lanes' syncs
//!   overlap.
//! * **Admission control** — every lane's queue is bounded
//!   ([`ServiceConfig::queue_depth`]); a submit that finds its home
//!   lane full is *shed* with a typed [`CommitOutcome::Shed`] /
//!   [`wire::Response::Overloaded`] instead of queuing unboundedly.
//! * **Durability** ([`device`], [`codec`]) — write-ahead journaling of
//!   conceptual deltas with appended checkpoints; the durable state is
//!   *only* the checkpoint + logs ([`DurableImage`]), and commits are
//!   acknowledged strictly after their record is synced on every shard
//!   they touch.
//! * **Recovery** ([`SessionService::recover_sharded`]) — merge the
//!   shard logs by LSN (cross-shard frames dedupe), replay to the last
//!   committed transaction, truncating torn tails; aborted transactions
//!   never reach the log and so can never be resurrected.
//! * **The wire front door** ([`wire`], [`net`]) — a single versioned
//!   [`wire::Request`]/[`wire::Response`] enum pair speaking the WAL's
//!   CRC framing end-to-end, served over an in-process duplex transport
//!   by per-shard dispatcher pools with typed overload shedding, and
//!   consumed through a typed [`net::Client`].
//! * **Observability** — every commit lane owns its own metric
//!   registry ([`SessionService::shard_metrics`]) merged and
//!   `shard`-labelled by the exporters; every transaction's causal path
//!   (admit → verify → group commit → per-shard WAL append → reply) is
//!   recorded as a cross-shard span tree in a bounded trace hub
//!   ([`SessionService::trace_hub`]), stamped into the WAL frames, and
//!   served back over the wire via `AdminRequest::TraceLookup`; and
//!   `AdminRequest::WatchMetrics` streams periodic telemetry deltas as
//!   server-push [`wire::Response::MetricsDelta`] frames
//!   ([`Client::watch_metrics`]).
//! * **Verification** — with `lockstep-verify` (compile feature or
//!   [`ServiceConfig::lockstep_verify`]) every commit re-checks
//!   Definition 2 between the conceptual state and every external view,
//!   within each view's vocabulary.

pub mod codec;
pub mod device;
pub mod error;
pub mod net;
pub mod service;
pub mod session;
pub mod shard;
pub mod wire;

pub use codec::AdminRequest;
pub use device::{DeviceError, LogDevice, MemDevice, WriteBudget};
pub use error::ServerError;
pub use net::{Client, MetricsWatch, NetServer, RemoteSession};
pub use service::{
    CommitInfo, CommitMode, CommitOutcome, CommittedTxn, DurableImage, RecoveryReport,
    ServiceConfig, ServiceConfigBuilder, SessionService, ViewSpec,
};
pub use session::{Session, SessionKind};

#[cfg(test)]
mod tests {
    use super::*;
    use dme_core::translate::CompletionMode;
    use dme_graph::fixtures as gfix;
    use dme_graph::{Association, EntityRef, GraphOp};
    use dme_relation::fixtures as rfix;
    use dme_relation::RelOp;
    use dme_value::{tuple, Atom, Value};
    use std::sync::Arc;
    use std::time::Duration;

    fn shop_views() -> Vec<ViewSpec> {
        vec![
            ViewSpec {
                name: "shop".into(),
                schema: rfix::machine_shop_schema(),
                mode: CompletionMode::StateCompleted,
            },
            ViewSpec {
                name: "personnel".into(),
                schema: rfix::personnel_schema(),
                mode: CompletionMode::Minimal,
            },
        ]
    }

    fn boot(config: ServiceConfig) -> SessionService {
        SessionService::new(
            gfix::figure4_state(),
            shop_views(),
            config,
            Box::new(MemDevice::new()),
            Box::new(MemDevice::new()),
        )
        .unwrap()
    }

    fn supervise(agent: &str, object: &str) -> GraphOp {
        GraphOp::InsertAssociation(Association::new(
            "supervise",
            [
                ("agent", EntityRef::new("employee", Atom::str(agent))),
                ("object", EntityRef::new("employee", Atom::str(object))),
            ],
        ))
    }

    #[test]
    fn graph_session_commit_updates_every_view() {
        let service = boot(ServiceConfig {
            lockstep_verify: true,
            ..ServiceConfig::default()
        });
        let mut s = service.open_session(SessionKind::Graph).unwrap();
        let info = s
            .submit_graph(vec![supervise("G.Wayshum", "T.Manhart")])
            .unwrap()
            .expect_commit();
        assert_eq!((info.lsn, info.version, info.attempts), (1, 1, 1));
        assert_eq!(*service.conceptual(), gfix::figure6_state());
        assert_eq!(service.view_state("shop").unwrap(), rfix::figure7_state());
        // The subset view sees the new supervision too.
        let personnel = service.view_state("personnel").unwrap();
        assert!(personnel
            .relation("Supervisions")
            .unwrap()
            .contains(&tuple!["G.Wayshum", "T.Manhart"]));
        s.close().unwrap();
        assert_eq!(service.open_sessions(), 0);
    }

    #[test]
    fn relational_session_round_trips_through_conceptual() {
        let service = boot(ServiceConfig::default());
        let mut s = service
            .open_session(SessionKind::Relational {
                view: "shop".into(),
            })
            .unwrap();
        let op = RelOp::insert("Jobs", [tuple!["G.Wayshum", "T.Manhart", Value::Null]]);
        let outcome = s.submit_relational(&op).unwrap();
        assert!(matches!(outcome, CommitOutcome::Committed(_)));
        assert_eq!(outcome.expect_commit().attempts, 1);
        assert_eq!(*service.conceptual(), gfix::figure6_state());
        assert_eq!(s.relational_state().unwrap(), &rfix::figure7_state());
        s.close().unwrap();
    }

    #[test]
    fn aborted_transactions_leave_no_trace() {
        let service = boot(ServiceConfig::default());
        let mut s = service.open_session(SessionKind::Graph).unwrap();
        let op = supervise("G.Wayshum", "T.Manhart");
        s.submit_graph(vec![op.clone()]).unwrap();
        let image_before = service.durable_image();
        // The same insert again no longer applies: abort.
        let err = s.submit_graph(vec![op]).unwrap_err();
        assert!(matches!(err, ServerError::Aborted(_)));
        assert_eq!(service.durable_image(), image_before);
        assert_eq!(service.committed_history().len(), 1);
        assert_eq!(*service.conceptual(), gfix::figure6_state());
    }

    #[test]
    fn stale_relational_snapshot_conflicts_then_retries() {
        let service = boot(ServiceConfig::default());
        let mut rel = service
            .open_session(SessionKind::Relational {
                view: "personnel".into(),
            })
            .unwrap();
        let mut graph = service.open_session(SessionKind::Graph).unwrap();
        // The graph session commits while the relational snapshot is out.
        graph
            .submit_graph(vec![supervise("G.Wayshum", "T.Manhart")])
            .unwrap();
        // The relational session's first attempt conflicts (stale base
        // version), rebases and succeeds on retry — reported as a
        // Retried outcome.
        let op = RelOp::insert("Supervisions", [tuple!["T.Manhart", "C.Gershag"]]);
        let outcome = rel.submit_relational(&op).unwrap();
        match outcome {
            CommitOutcome::Retried { info, retries } => {
                assert!(retries >= 1);
                assert_eq!(info.attempts, retries + 1);
            }
            other => panic!("expected a conflict retry, got {other:?}"),
        }
        assert_eq!(service.version(), 2);
        let personnel = service.view_state("personnel").unwrap();
        assert!(personnel
            .relation("Supervisions")
            .unwrap()
            .contains(&tuple!["T.Manhart", "C.Gershag"]));
    }

    #[test]
    fn recovery_replays_to_last_committed_txn() {
        let service = boot(ServiceConfig::default());
        let mut s = service.open_session(SessionKind::Graph).unwrap();
        s.submit_graph(vec![supervise("G.Wayshum", "T.Manhart")])
            .unwrap();
        s.submit_graph(vec![supervise("T.Manhart", "C.Gershag")])
            .unwrap();
        let expected = service.conceptual();
        let image = service.durable_image();
        let schema = Arc::clone(expected.schema());
        let (recovered, report) = SessionService::recover(
            schema,
            &image,
            shop_views(),
            ServiceConfig::default(),
            Box::new(MemDevice::new()),
            Box::new(MemDevice::new()),
        )
        .unwrap();
        assert_eq!(report.checkpoint_lsn, 0);
        assert_eq!(report.replayed, 2);
        assert!(report.wal_tail.is_none());
        assert_eq!(recovered.conceptual(), expected);
        assert_eq!(recovered.view_state("shop"), service.view_state("shop"));
    }

    #[test]
    fn recovery_truncates_a_torn_wal_tail() {
        let service = boot(ServiceConfig::default());
        let mut s = service.open_session(SessionKind::Graph).unwrap();
        s.submit_graph(vec![supervise("G.Wayshum", "T.Manhart")])
            .unwrap();
        let after_first = service.conceptual();
        let cut_at = service.durable_image().wal.len();
        s.submit_graph(vec![supervise("T.Manhart", "C.Gershag")])
            .unwrap();
        let mut image = service.durable_image();
        image.wal.truncate(cut_at + 5); // tear the second record
        let schema = Arc::clone(after_first.schema());
        let (recovered, report) = SessionService::recover(
            schema,
            &image,
            shop_views(),
            ServiceConfig::default(),
            Box::new(MemDevice::new()),
            Box::new(MemDevice::new()),
        )
        .unwrap();
        assert_eq!(report.replayed, 1);
        assert!(report.wal_tail.is_some());
        assert_eq!(recovered.conceptual(), after_first);
    }

    #[test]
    fn wal_device_failure_crashes_the_service_without_acknowledging() {
        let service = SessionService::new(
            gfix::figure4_state(),
            vec![],
            ServiceConfig::default(),
            Box::new(MemDevice::new().with_crash_at(10)),
            Box::new(MemDevice::new()),
        )
        .unwrap();
        let mut s = service.open_session(SessionKind::Graph).unwrap();
        let err = s
            .submit_graph(vec![supervise("G.Wayshum", "T.Manhart")])
            .unwrap_err();
        assert!(matches!(err, ServerError::Crashed(_)));
        // The service refuses everything afterwards.
        assert!(matches!(
            service.open_session(SessionKind::Graph),
            Err(ServerError::Crashed(_))
        ));
        assert!(matches!(
            service.checkpoint_now(),
            Err(ServerError::Crashed(_))
        ));
    }

    #[test]
    fn checkpoints_bound_replay_work() {
        let service = boot(ServiceConfig {
            checkpoint_every: 2,
            ..ServiceConfig::default()
        });
        let mut s = service.open_session(SessionKind::Graph).unwrap();
        for (a, o) in [
            ("G.Wayshum", "T.Manhart"),
            ("T.Manhart", "C.Gershag"),
            ("C.Gershag", "T.Manhart"),
        ] {
            s.submit_graph(vec![supervise(a, o)]).unwrap();
        }
        let image = service.durable_image();
        let expected = service.conceptual();
        let (recovered, report) = SessionService::recover(
            Arc::clone(expected.schema()),
            &image,
            shop_views(),
            ServiceConfig::default(),
            Box::new(MemDevice::new()),
            Box::new(MemDevice::new()),
        )
        .unwrap();
        // Checkpoint at lsn 2 absorbs the first two commits: only the
        // third replays.
        assert_eq!(report.checkpoint_lsn, 2);
        assert_eq!(report.replayed, 1);
        assert_eq!(recovered.conceptual(), expected);
    }

    #[test]
    fn unknown_view_and_kind_mismatches_are_errors() {
        let service = boot(ServiceConfig::default());
        assert!(matches!(
            service.open_session(SessionKind::Relational {
                view: "nope".into()
            }),
            Err(ServerError::UnknownView(_))
        ));
        let mut g = service.open_session(SessionKind::Graph).unwrap();
        assert!(g
            .submit_relational(&RelOp::insert("Jobs", [tuple![Value::Null]]))
            .is_err());
        let mut r = service
            .open_session(SessionKind::Relational {
                view: "shop".into(),
            })
            .unwrap();
        assert!(r.submit_graph(vec![]).is_err());
        assert!(r.relational_state().is_ok());
        assert!(g.relational_state().is_err());
        assert_eq!(service.view_names(), vec!["personnel", "shop"]);
    }

    #[test]
    fn config_builder_validates_the_knobs() {
        let config = ServiceConfig::builder()
            .shards(4)
            .queue_depth(128)
            .max_batch(16)
            .commit_mode(CommitMode::Group)
            .checkpoint_every(10)
            .lockstep_verify(false)
            .max_attempts(3)
            .backoff_micros(5)
            .build()
            .unwrap();
        assert_eq!(
            (config.shards, config.queue_depth, config.max_batch),
            (4, 128, 16)
        );
        for broken in [
            ServiceConfig::builder().shards(0).build(),
            ServiceConfig::builder().shards(100_000).build(),
            ServiceConfig::builder().queue_depth(0).build(),
            ServiceConfig::builder().max_batch(0).build(),
            ServiceConfig::builder().max_attempts(0).build(),
        ] {
            match broken {
                Err(e @ ServerError::InvalidConfig(_)) => assert_eq!(e.code(), 9),
                other => panic!("expected InvalidConfig, got {other:?}"),
            }
        }
        // Constructors validate too: a mismatched device count is typed.
        let err = SessionService::new_sharded(
            gfix::figure4_state(),
            vec![],
            ServiceConfig::builder().shards(2).build().unwrap(),
            vec![Box::new(MemDevice::new())],
            Box::new(MemDevice::new()),
        )
        .unwrap_err();
        assert!(matches!(err, ServerError::InvalidConfig(_)));
    }

    #[test]
    fn sharded_service_commits_across_lanes_and_recovers() {
        use crossbeam::scope;
        let config = ServiceConfig::builder().shards(4).build().unwrap();
        let service = SessionService::new_sharded(
            gfix::figure4_state(),
            shop_views(),
            config,
            (0..4)
                .map(|_| Box::new(MemDevice::new()) as Box<dyn LogDevice>)
                .collect(),
            Box::new(MemDevice::new()),
        )
        .unwrap();
        let pairs = [
            ("G.Wayshum", "T.Manhart"),
            ("T.Manhart", "C.Gershag"),
            ("C.Gershag", "T.Manhart"),
            ("T.Manhart", "G.Wayshum"),
        ];
        scope(|sc| {
            for (a, o) in pairs {
                let service = service.clone();
                sc.spawn(move |_| {
                    let mut s = service.open_session(SessionKind::Graph).unwrap();
                    s.submit_graph(vec![supervise(a, o)])
                        .unwrap()
                        .expect_commit();
                });
            }
        })
        .unwrap();
        let history = service.committed_history();
        assert_eq!(history.len(), 4);
        let lsns: Vec<u64> = history.iter().map(|t| t.lsn).collect();
        assert!(
            lsns.windows(2).all(|w| w[0] < w[1]),
            "history sorted: {lsns:?}"
        );
        // Every committed frame is on some shard's log; supervise
        // associations touch two employees, so cross-shard frames are
        // journaled on each involved shard and recovery dedupes them.
        let image = service.durable_image();
        assert_eq!(image.shard_wals.len(), 3);
        let expected = service.conceptual();
        let (recovered, report) = SessionService::recover_sharded(
            Arc::clone(expected.schema()),
            &image,
            shop_views(),
            ServiceConfig::builder().shards(4).build().unwrap(),
            (0..4)
                .map(|_| Box::new(MemDevice::new()) as Box<dyn LogDevice>)
                .collect(),
            Box::new(MemDevice::new()),
        )
        .unwrap();
        assert_eq!(report.replayed, 4);
        assert_eq!(recovered.conceptual(), expected);
        assert_eq!(recovered.view_state("shop"), service.view_state("shop"));
    }

    #[test]
    fn full_lanes_shed_with_a_typed_outcome() {
        // One-slot queue and a slow sync: the first submit becomes the
        // lane leader and parks in the sync, the second occupies the
        // only queue slot, the third is refused at admission.
        let config = ServiceConfig::builder().queue_depth(1).build().unwrap();
        let service = SessionService::new(
            gfix::figure4_state(),
            vec![],
            config,
            Box::new(MemDevice::new().with_sync_delay(Duration::from_millis(200))),
            Box::new(MemDevice::new()),
        )
        .unwrap();
        // new() checkpoints to the checkpoint device, so only commit
        // syncs pay the delay.
        let outcome = crossbeam::scope(|sc| {
            let leader = {
                let service = service.clone();
                sc.spawn(move |_| {
                    let mut s = service.open_session(SessionKind::Graph).unwrap();
                    s.submit_graph(vec![supervise("G.Wayshum", "T.Manhart")])
                        .unwrap()
                })
            };
            std::thread::sleep(Duration::from_millis(50));
            let queued = {
                let service = service.clone();
                sc.spawn(move |_| {
                    let mut s = service.open_session(SessionKind::Graph).unwrap();
                    s.submit_graph(vec![supervise("T.Manhart", "C.Gershag")])
                        .unwrap()
                })
            };
            std::thread::sleep(Duration::from_millis(50));
            let mut s = service.open_session(SessionKind::Graph).unwrap();
            let shed = s
                .submit_graph(vec![supervise("C.Gershag", "G.Wayshum")])
                .unwrap();
            leader.join().unwrap().expect_commit();
            queued.join().unwrap().expect_commit();
            shed
        })
        .unwrap();
        match outcome {
            CommitOutcome::Shed { shard: 0, depth } => assert!(depth >= 1),
            other => panic!("expected Shed, got {other:?}"),
        }
        // Nothing of the shed transaction reached the log.
        assert_eq!(service.committed_history().len(), 2);
    }

    #[test]
    fn the_wire_front_door_serves_sessions_by_id() {
        let service = boot(ServiceConfig::default());
        let opened = service.handle(wire::Request::OpenSession {
            kind: SessionKind::Graph,
        });
        let id = match opened {
            wire::Response::SessionOpened { session } => session,
            other => panic!("expected SessionOpened, got {other:?}"),
        };
        let committed = service.handle(wire::Request::SubmitGraph {
            session: id,
            ops: vec![supervise("G.Wayshum", "T.Manhart")],
        });
        match committed {
            wire::Response::Committed(info) => assert_eq!(info.lsn, 1),
            other => panic!("expected Committed, got {other:?}"),
        }
        // The view read returns the same tuples the embedded API sees.
        match service.handle(wire::Request::ViewState {
            view: "shop".into(),
        }) {
            wire::Response::ViewState { relations } => {
                let jobs = relations.iter().find(|(n, _)| n == "Jobs").unwrap();
                assert!(!jobs.1.is_empty());
            }
            other => panic!("expected ViewState, got {other:?}"),
        }
        // Metrics render through the typed door, and the legacy admin
        // envelope tunnels to the same renderer.
        match service.handle(wire::Request::Metrics { json: false }) {
            wire::Response::Metrics { body } => assert!(body.contains("dme_counter")),
            other => panic!("expected Metrics, got {other:?}"),
        }
        match service.handle(wire::Request::Admin {
            body: AdminRequest::MetricsJson.encode(),
        }) {
            wire::Response::Admin { body } => assert!(body.starts_with('{')),
            other => panic!("expected Admin, got {other:?}"),
        }
        assert!(matches!(
            service.handle(wire::Request::Admin { body: vec![0xFF] }),
            wire::Response::Error { .. }
        ));
        // Close, then the id is gone.
        assert_eq!(
            service.handle(wire::Request::Close { session: id }),
            wire::Response::Closed
        );
        match service.handle(wire::Request::Refresh { session: id }) {
            wire::Response::Error { code, .. } => {
                assert_eq!(code, ServerError::UnknownSession(id).code())
            }
            other => panic!("expected UnknownSession, got {other:?}"),
        }
    }

    #[test]
    fn commits_are_traced_end_to_end_and_metrics_render_over_the_wire() {
        let ring = dme_obs::RingSink::with_capacity(256);
        let service = boot(ServiceConfig {
            obs: dme_obs::Observer::new(ring.clone()),
            ..ServiceConfig::default()
        });
        let mut s = service.open_session(SessionKind::Graph).unwrap();
        let info = s
            .submit_graph(vec![supervise("G.Wayshum", "T.Manhart")])
            .unwrap()
            .expect_commit();
        assert_ne!(info.trace.as_u64(), 0);
        // The WAL frame is stamped with the commit's trace id.
        let records = dme_storage::wal::replay(&service.durable_image().wal).unwrap();
        assert_eq!(records[0].trace, Some(info.trace.as_u64()));
        // The transcript shows the commit's causal path, in order.
        let path: Vec<&str> = ring
            .events()
            .iter()
            .filter(|e| e.trace() == Some(info.trace))
            .map(|e| match &e.kind {
                dme_obs::EventKind::Trace { name, .. } => *name,
                other => panic!("non-trace event carried a trace: {other:?}"),
            })
            .collect();
        assert_eq!(
            path,
            vec![
                "server/admit",
                "server/verify",
                "server/group_commit",
                "server/wal_append"
            ]
        );
        // Both renderings are served through the typed front door.
        let text = match service.handle(wire::Request::Metrics { json: false }) {
            wire::Response::Metrics { body } => body,
            other => panic!("expected Metrics, got {other:?}"),
        };
        assert!(
            text.contains("dme_counter{name=\"txns_committed\"} 1"),
            "{text}"
        );
        assert!(text.contains("dme_latency_us_count{metric=\"commit_latency_us\"} 1"));
        let json = match service.handle(wire::Request::Metrics { json: true }) {
            wire::Response::Metrics { body } => body,
            other => panic!("expected Metrics, got {other:?}"),
        };
        assert!(json.contains("\"commit_latency_us\""), "{json}");
    }

    #[test]
    fn group_commit_syncs_less_than_per_op() {
        use crossbeam::scope;
        for (mode, name) in [(CommitMode::Group, "group"), (CommitMode::PerOp, "per-op")] {
            let service = boot(ServiceConfig {
                commit_mode: mode,
                ..ServiceConfig::default()
            });
            let pairs = [
                ("G.Wayshum", "T.Manhart"),
                ("T.Manhart", "C.Gershag"),
                ("C.Gershag", "T.Manhart"),
                ("T.Manhart", "G.Wayshum"),
            ];
            scope(|sc| {
                for (a, o) in pairs {
                    let service = service.clone();
                    sc.spawn(move |_| {
                        let mut s = service.open_session(SessionKind::Graph).unwrap();
                        s.submit_graph(vec![supervise(a, o)]).unwrap();
                    });
                }
            })
            .unwrap();
            assert_eq!(service.committed_history().len(), 4, "{name}");
            assert!(
                service.wal_syncs() <= 4,
                "{name}: {} syncs",
                service.wal_syncs()
            );
            // Recovery agrees regardless of batching.
            let expected = service.conceptual();
            let (recovered, _) = SessionService::recover(
                Arc::clone(expected.schema()),
                &service.durable_image(),
                shop_views(),
                ServiceConfig::default(),
                Box::new(MemDevice::new()),
                Box::new(MemDevice::new()),
            )
            .unwrap();
            assert_eq!(recovered.conceptual(), expected);
        }
    }
}
