#![deny(missing_docs)]

//! # dme-server — the concurrent multi-model session service
//!
//! The conclusion of *Data Model Equivalence* claims operation
//! equivalence "would actually allow the implementation of a database
//! system which provides users of two different data models with access
//! to the same data". This crate is that database system, grown from
//! the sequential machinery of the other crates:
//!
//! * **Sessions** ([`Session`], [`SessionKind`]) — N concurrent
//!   clients, some speaking conceptual graph operations, some speaking
//!   relational operations against external views (including §1.2
//!   *subset* schemas), all updating one conceptual database.
//! * **Transactions** ([`SessionService`]) — snapshot reads, optimistic
//!   base-version conflict detection for relational sessions, and
//!   serialized, *batched* commits: a leader thread drains the commit
//!   queue and the whole batch shares one WAL append + sync (group
//!   commit, [`CommitMode`]).
//! * **Durability** ([`device`], [`codec`]) — write-ahead journaling of
//!   conceptual deltas with appended checkpoints; the durable state is
//!   *only* the checkpoint + log ([`DurableImage`]), and commits are
//!   acknowledged strictly after their record is synced.
//! * **Recovery** ([`SessionService::recover`]) — replay to the last
//!   committed transaction, truncating torn tails; aborted transactions
//!   never reach the log and so can never be resurrected.
//! * **Verification** — with `lockstep-verify` (compile feature or
//!   [`ServiceConfig::lockstep_verify`]) every commit re-checks
//!   Definition 2 between the conceptual state and every external view,
//!   within each view's vocabulary.

pub mod codec;
pub mod device;
pub mod error;
pub mod service;
pub mod session;

pub use codec::AdminRequest;
pub use device::{DeviceError, LogDevice, MemDevice};
pub use error::ServerError;
pub use service::{
    CommitInfo, CommitMode, CommittedTxn, DurableImage, RecoveryReport, ServiceConfig,
    SessionService, ViewSpec,
};
pub use session::{Session, SessionKind};

#[cfg(test)]
mod tests {
    use super::*;
    use dme_core::translate::CompletionMode;
    use dme_graph::fixtures as gfix;
    use dme_graph::{Association, EntityRef, GraphOp};
    use dme_relation::fixtures as rfix;
    use dme_relation::RelOp;
    use dme_value::{tuple, Atom, Value};
    use std::sync::Arc;

    fn shop_views() -> Vec<ViewSpec> {
        vec![
            ViewSpec {
                name: "shop".into(),
                schema: rfix::machine_shop_schema(),
                mode: CompletionMode::StateCompleted,
            },
            ViewSpec {
                name: "personnel".into(),
                schema: rfix::personnel_schema(),
                mode: CompletionMode::Minimal,
            },
        ]
    }

    fn boot(config: ServiceConfig) -> SessionService {
        SessionService::new(
            gfix::figure4_state(),
            shop_views(),
            config,
            Box::new(MemDevice::new()),
            Box::new(MemDevice::new()),
        )
        .unwrap()
    }

    fn supervise(agent: &str, object: &str) -> GraphOp {
        GraphOp::InsertAssociation(Association::new(
            "supervise",
            [
                ("agent", EntityRef::new("employee", Atom::str(agent))),
                ("object", EntityRef::new("employee", Atom::str(object))),
            ],
        ))
    }

    #[test]
    fn graph_session_commit_updates_every_view() {
        let service = boot(ServiceConfig {
            lockstep_verify: true,
            ..ServiceConfig::default()
        });
        let mut s = service.open_session(SessionKind::Graph).unwrap();
        let info = s
            .submit_graph(vec![supervise("G.Wayshum", "T.Manhart")])
            .unwrap();
        assert_eq!((info.lsn, info.version, info.attempts), (1, 1, 1));
        assert_eq!(service.conceptual(), gfix::figure6_state());
        assert_eq!(service.view_state("shop").unwrap(), rfix::figure7_state());
        // The subset view sees the new supervision too.
        let personnel = service.view_state("personnel").unwrap();
        assert!(personnel
            .relation("Supervisions")
            .unwrap()
            .contains(&tuple!["G.Wayshum", "T.Manhart"]));
        s.close().unwrap();
        assert_eq!(service.open_sessions(), 0);
    }

    #[test]
    fn relational_session_round_trips_through_conceptual() {
        let service = boot(ServiceConfig::default());
        let mut s = service
            .open_session(SessionKind::Relational {
                view: "shop".into(),
            })
            .unwrap();
        let op = RelOp::insert("Jobs", [tuple!["G.Wayshum", "T.Manhart", Value::Null]]);
        let info = s.submit_relational(&op).unwrap();
        assert_eq!(info.attempts, 1);
        assert_eq!(service.conceptual(), gfix::figure6_state());
        assert_eq!(s.relational_state().unwrap(), &rfix::figure7_state());
        s.close().unwrap();
    }

    #[test]
    fn aborted_transactions_leave_no_trace() {
        let service = boot(ServiceConfig::default());
        let mut s = service.open_session(SessionKind::Graph).unwrap();
        let op = supervise("G.Wayshum", "T.Manhart");
        s.submit_graph(vec![op.clone()]).unwrap();
        let image_before = service.durable_image();
        // The same insert again no longer applies: abort.
        let err = s.submit_graph(vec![op]).unwrap_err();
        assert!(matches!(err, ServerError::Aborted(_)));
        assert_eq!(service.durable_image(), image_before);
        assert_eq!(service.committed_history().len(), 1);
        assert_eq!(service.conceptual(), gfix::figure6_state());
    }

    #[test]
    fn stale_relational_snapshot_conflicts_then_retries() {
        let service = boot(ServiceConfig::default());
        let mut rel = service
            .open_session(SessionKind::Relational {
                view: "personnel".into(),
            })
            .unwrap();
        let mut graph = service.open_session(SessionKind::Graph).unwrap();
        // The graph session commits while the relational snapshot is out.
        graph
            .submit_graph(vec![supervise("G.Wayshum", "T.Manhart")])
            .unwrap();
        // The relational session's first attempt conflicts (stale base
        // version), rebases and succeeds on retry.
        let op = RelOp::insert("Supervisions", [tuple!["T.Manhart", "C.Gershag"]]);
        let info = rel.submit_relational(&op).unwrap();
        assert!(info.attempts > 1, "expected a conflict retry");
        assert_eq!(service.version(), 2);
        let personnel = service.view_state("personnel").unwrap();
        assert!(personnel
            .relation("Supervisions")
            .unwrap()
            .contains(&tuple!["T.Manhart", "C.Gershag"]));
    }

    #[test]
    fn recovery_replays_to_last_committed_txn() {
        let service = boot(ServiceConfig::default());
        let mut s = service.open_session(SessionKind::Graph).unwrap();
        s.submit_graph(vec![supervise("G.Wayshum", "T.Manhart")])
            .unwrap();
        s.submit_graph(vec![supervise("T.Manhart", "C.Gershag")])
            .unwrap();
        let expected = service.conceptual();
        let image = service.durable_image();
        let schema = Arc::clone(expected.schema());
        let (recovered, report) = SessionService::recover(
            schema,
            &image,
            shop_views(),
            ServiceConfig::default(),
            Box::new(MemDevice::new()),
            Box::new(MemDevice::new()),
        )
        .unwrap();
        assert_eq!(report.checkpoint_lsn, 0);
        assert_eq!(report.replayed, 2);
        assert!(report.wal_tail.is_none());
        assert_eq!(recovered.conceptual(), expected);
        assert_eq!(
            recovered.view_state("shop"),
            service.view_state("shop")
        );
    }

    #[test]
    fn recovery_truncates_a_torn_wal_tail() {
        let service = boot(ServiceConfig::default());
        let mut s = service.open_session(SessionKind::Graph).unwrap();
        s.submit_graph(vec![supervise("G.Wayshum", "T.Manhart")])
            .unwrap();
        let after_first = service.conceptual();
        let cut_at = service.durable_image().wal.len();
        s.submit_graph(vec![supervise("T.Manhart", "C.Gershag")])
            .unwrap();
        let mut image = service.durable_image();
        image.wal.truncate(cut_at + 5); // tear the second record
        let schema = Arc::clone(after_first.schema());
        let (recovered, report) = SessionService::recover(
            schema,
            &image,
            shop_views(),
            ServiceConfig::default(),
            Box::new(MemDevice::new()),
            Box::new(MemDevice::new()),
        )
        .unwrap();
        assert_eq!(report.replayed, 1);
        assert!(report.wal_tail.is_some());
        assert_eq!(recovered.conceptual(), after_first);
    }

    #[test]
    fn wal_device_failure_crashes_the_service_without_acknowledging() {
        let service = SessionService::new(
            gfix::figure4_state(),
            vec![],
            ServiceConfig::default(),
            Box::new(MemDevice::new().with_crash_at(10)),
            Box::new(MemDevice::new()),
        )
        .unwrap();
        let mut s = service.open_session(SessionKind::Graph).unwrap();
        let err = s
            .submit_graph(vec![supervise("G.Wayshum", "T.Manhart")])
            .unwrap_err();
        assert!(matches!(err, ServerError::Crashed(_)));
        // The service refuses everything afterwards.
        assert!(matches!(
            service.open_session(SessionKind::Graph),
            Err(ServerError::Crashed(_))
        ));
        assert!(matches!(
            service.checkpoint_now(),
            Err(ServerError::Crashed(_))
        ));
    }

    #[test]
    fn checkpoints_bound_replay_work() {
        let service = boot(ServiceConfig {
            checkpoint_every: 2,
            ..ServiceConfig::default()
        });
        let mut s = service.open_session(SessionKind::Graph).unwrap();
        for (a, o) in [
            ("G.Wayshum", "T.Manhart"),
            ("T.Manhart", "C.Gershag"),
            ("C.Gershag", "T.Manhart"),
        ] {
            s.submit_graph(vec![supervise(a, o)]).unwrap();
        }
        let image = service.durable_image();
        let expected = service.conceptual();
        let (recovered, report) = SessionService::recover(
            Arc::clone(expected.schema()),
            &image,
            shop_views(),
            ServiceConfig::default(),
            Box::new(MemDevice::new()),
            Box::new(MemDevice::new()),
        )
        .unwrap();
        // Checkpoint at lsn 2 absorbs the first two commits: only the
        // third replays.
        assert_eq!(report.checkpoint_lsn, 2);
        assert_eq!(report.replayed, 1);
        assert_eq!(recovered.conceptual(), expected);
    }

    #[test]
    fn unknown_view_and_kind_mismatches_are_errors() {
        let service = boot(ServiceConfig::default());
        assert!(matches!(
            service.open_session(SessionKind::Relational {
                view: "nope".into()
            }),
            Err(ServerError::UnknownView(_))
        ));
        let mut g = service.open_session(SessionKind::Graph).unwrap();
        assert!(g
            .submit_relational(&RelOp::insert("Jobs", [tuple![Value::Null]]))
            .is_err());
        let mut r = service
            .open_session(SessionKind::Relational {
                view: "shop".into(),
            })
            .unwrap();
        assert!(r.submit_graph(vec![]).is_err());
        assert!(r.relational_state().is_ok());
        assert!(g.relational_state().is_err());
        assert_eq!(service.view_names(), vec!["personnel", "shop"]);
    }

    #[test]
    fn commits_are_traced_end_to_end_and_admin_renders_telemetry() {
        let ring = dme_obs::RingSink::with_capacity(256);
        let service = boot(ServiceConfig {
            obs: dme_obs::Observer::new(ring.clone()),
            ..ServiceConfig::default()
        });
        let mut s = service.open_session(SessionKind::Graph).unwrap();
        let info = s
            .submit_graph(vec![supervise("G.Wayshum", "T.Manhart")])
            .unwrap();
        assert_ne!(info.trace.as_u64(), 0);
        // The WAL frame is stamped with the commit's trace id.
        let records = dme_storage::wal::replay(&service.durable_image().wal).unwrap();
        assert_eq!(records[0].trace, Some(info.trace.as_u64()));
        // The transcript shows the commit's causal path, in order.
        let path: Vec<&str> = ring
            .events()
            .iter()
            .filter(|e| e.trace() == Some(info.trace))
            .map(|e| match &e.kind {
                dme_obs::EventKind::Trace { name, .. } => *name,
                other => panic!("non-trace event carried a trace: {other:?}"),
            })
            .collect();
        assert_eq!(
            path,
            vec![
                "server/admit",
                "server/verify",
                "server/group_commit",
                "server/wal_append"
            ]
        );
        // Both admin renderings are served over the wire codec.
        let text = service
            .admin_bytes(&AdminRequest::MetricsText.encode())
            .unwrap();
        assert!(text.contains("dme_counter{name=\"txns_committed\"} 1"), "{text}");
        assert!(text.contains("dme_latency_us_count{metric=\"commit_latency_us\"} 1"));
        let json = service
            .admin_bytes(&AdminRequest::MetricsJson.encode())
            .unwrap();
        assert!(json.contains("\"commit_latency_us\""), "{json}");
        assert!(service.admin_bytes(&[0xFF]).is_err());
    }

    #[test]
    fn group_commit_syncs_less_than_per_op() {
        use crossbeam::scope;
        for (mode, name) in [(CommitMode::Group, "group"), (CommitMode::PerOp, "per-op")] {
            let service = boot(ServiceConfig {
                commit_mode: mode,
                ..ServiceConfig::default()
            });
            let pairs = [
                ("G.Wayshum", "T.Manhart"),
                ("T.Manhart", "C.Gershag"),
                ("C.Gershag", "T.Manhart"),
                ("T.Manhart", "G.Wayshum"),
            ];
            scope(|sc| {
                for (a, o) in pairs {
                    let service = service.clone();
                    sc.spawn(move |_| {
                        let mut s = service.open_session(SessionKind::Graph).unwrap();
                        s.submit_graph(vec![supervise(a, o)]).unwrap();
                    });
                }
            })
            .unwrap();
            assert_eq!(service.committed_history().len(), 4, "{name}");
            assert!(
                service.wal_syncs() <= 4,
                "{name}: {} syncs",
                service.wal_syncs()
            );
            // Recovery agrees regardless of batching.
            let expected = service.conceptual();
            let (recovered, _) = SessionService::recover(
                Arc::clone(expected.schema()),
                &service.durable_image(),
                shop_views(),
                ServiceConfig::default(),
                Box::new(MemDevice::new()),
                Box::new(MemDevice::new()),
            )
            .unwrap();
            assert_eq!(recovered.conceptual(), expected);
        }
    }
}
