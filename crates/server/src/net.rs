//! The networked front door: an in-process duplex transport, a
//! listener, per-shard dispatcher pools with bounded admission, and a
//! typed client — everything between a remote caller and
//! [`SessionService::handle`].
//!
//! ## Transport
//!
//! A [`Conn`] is a pair of bounded byte-chunk channels (one per
//! direction). Chunks are arbitrary byte runs, *not* frames: the
//! receiver accumulates them and peels complete CRC frames off the
//! front with [`wal::decode_frame`], treating a truncated tail as "wait
//! for more bytes" and any other decode failure as a corrupt stream.
//! Writers that send whole frames per chunk (the normal path) and
//! writers that fragment frames across chunks (the adversarial tests)
//! are indistinguishable to the reader.
//!
//! ## Server shape
//!
//! ```text
//! accept thread ──spawns──▶ per-conn reader tasks (smol executor)
//!                                   │ try_send (bounded)
//!                                   ▼
//!                 per-shard dispatcher threads ──handle()──▶ service
//!                                   │
//!                                   ▼ response frames, by correlation
//!                              back down the conn
//! ```
//!
//! A request that names a session is routed to dispatcher shard
//! `session % shards`, so one session's requests execute serially even
//! when its client pipelines them; sessionless requests spread by
//! correlation id. Every dispatcher queue is bounded at the service's
//! [`queue_depth`](crate::ServiceConfig::queue_depth): a reader that
//! finds the home queue full does **not** wait — it answers
//! [`Response::Overloaded`] immediately (typed shedding, counted in
//! [`Counter::RequestsShed`]) and stays responsive to the rest of the
//! connection's traffic.
//!
//! ## Client
//!
//! [`Client`] multiplexes many in-flight calls over one connection by
//! correlation id: a demultiplexer thread owns the receive side and
//! wakes whichever caller registered the id. [`RemoteSession`] wraps a
//! server-side session id in the same `submit_graph` /
//! `submit_relational` / `refresh` / `close` surface [`Session`]
//! offers locally, with errors rebuilt from their stable wire codes.
//!
//! [`Session`]: crate::Session

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use dme_graph::GraphOp;
use dme_obs::{Counter, Observer};
use dme_relation::RelOp;
use dme_storage::wal::{self, WalError};
use dme_value::Tuple;
use smol::channel::{self, Receiver, Sender, TrySendError};

use crate::codec::AdminRequest;
use crate::error::ServerError;
use crate::service::{CommitOutcome, SessionService};
use crate::session::SessionKind;
use crate::wire::{self, Request, Response};

// ---------------------------------------------------------------------
// Transport.

/// Peels one complete frame off the front of `buf`, or reports that the
/// bytes so far are only a prefix (`Ok(None)`), or that the stream can
/// never parse again (`Err`).
fn take_frame(buf: &mut Vec<u8>) -> Result<Option<Vec<u8>>, ServerError> {
    if buf.is_empty() {
        return Ok(None);
    }
    match wal::decode_frame(buf, 0) {
        Ok((_, consumed)) => Ok(Some(buf.drain(..consumed).collect())),
        Err(WalError::Truncated { .. }) => Ok(None),
        Err(e) => Err(ServerError::Protocol(format!("corrupt wire stream: {e}"))),
    }
}

/// The receive half of a connection: a chunk stream plus the
/// reassembly buffer that turns it back into frames.
struct FrameReader {
    rx: Receiver<Vec<u8>>,
    buf: Vec<u8>,
}

impl FrameReader {
    /// Receives the next complete frame, blocking for more chunks as
    /// needed. `Ok(None)` is a clean close at a frame boundary; a close
    /// mid-frame is a protocol error.
    fn recv_frame_blocking(&mut self) -> Result<Option<Vec<u8>>, ServerError> {
        loop {
            if let Some(frame) = take_frame(&mut self.buf)? {
                return Ok(Some(frame));
            }
            match self.rx.recv_blocking() {
                Ok(chunk) => self.buf.extend_from_slice(&chunk),
                Err(_) if self.buf.is_empty() => return Ok(None),
                Err(_) => return Err(ServerError::Protocol("connection closed mid-frame".into())),
            }
        }
    }

    /// Async [`FrameReader::recv_frame_blocking`].
    async fn recv_frame(&mut self) -> Result<Option<Vec<u8>>, ServerError> {
        loop {
            if let Some(frame) = take_frame(&mut self.buf)? {
                return Ok(Some(frame));
            }
            match self.rx.recv().await {
                Ok(chunk) => self.buf.extend_from_slice(&chunk),
                Err(_) if self.buf.is_empty() => return Ok(None),
                Err(_) => return Err(ServerError::Protocol("connection closed mid-frame".into())),
            }
        }
    }
}

/// One end of an in-process duplex byte stream. Dropping an end closes
/// the connection in both directions once in-flight chunks drain.
pub struct Conn {
    tx: Sender<Vec<u8>>,
    reader: FrameReader,
}

impl Conn {
    /// A connected pair of ends, each direction a bounded channel of
    /// `window` chunks.
    pub fn pair(window: usize) -> (Conn, Conn) {
        let (a_tx, a_rx) = channel::bounded(window.max(1));
        let (b_tx, b_rx) = channel::bounded(window.max(1));
        let end = |tx, rx| Conn {
            tx,
            reader: FrameReader {
                rx,
                buf: Vec::new(),
            },
        };
        (end(a_tx, b_rx), end(b_tx, a_rx))
    }

    /// Sends a raw byte chunk (blocking when the peer's window is
    /// full). The chunk need not align with frame boundaries.
    pub fn send_bytes(&self, bytes: Vec<u8>) -> Result<(), ServerError> {
        self.tx
            .send_blocking(bytes)
            .map_err(|_| ServerError::Protocol("connection closed".into()))
    }

    /// Receives the next complete frame; see
    /// [`FrameReader::recv_frame_blocking`].
    pub fn recv_frame_blocking(&mut self) -> Result<Option<Vec<u8>>, ServerError> {
        self.reader.recv_frame_blocking()
    }

    /// Splits into the send half and the receive half, so each can be
    /// owned (and dropped) independently.
    fn split(self) -> (Sender<Vec<u8>>, FrameReader) {
        (self.tx, self.reader)
    }
}

/// The server side of connection establishment: an accept queue the
/// [`NetServer`]'s accept thread drains.
pub struct Listener {
    accept_rx: Receiver<Conn>,
}

/// The client side of connection establishment. Cloneable; every clone
/// dials the same listener.
#[derive(Clone)]
pub struct Dialer {
    accept_tx: Sender<Conn>,
    window: usize,
}

impl Listener {
    /// A listener and its dialer. `backlog` bounds connections accepted
    /// but not yet served; `window` sizes each new connection's
    /// per-direction chunk channel.
    pub fn new(backlog: usize, window: usize) -> (Listener, Dialer) {
        let (accept_tx, accept_rx) = channel::bounded(backlog.max(1));
        (Listener { accept_rx }, Dialer { accept_tx, window })
    }

    /// The next inbound connection, or `None` once every dialer is
    /// gone.
    pub fn accept_blocking(&self) -> Option<Conn> {
        self.accept_rx.recv_blocking().ok()
    }
}

impl Dialer {
    /// Establishes a connection, handing the server its end.
    pub fn connect(&self) -> Result<Conn, ServerError> {
        let (client_end, server_end) = Conn::pair(self.window);
        self.accept_tx
            .send_blocking(server_end)
            .map_err(|_| ServerError::Protocol("listener is gone".into()))?;
        Ok(client_end)
    }
}

// ---------------------------------------------------------------------
// The server.

/// Network-layer tuning for [`NetServer::serve_with`].
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Connections accepted but not yet picked up by the accept thread.
    pub backlog: usize,
    /// Per-direction chunk-channel capacity of each connection.
    pub conn_window: usize,
    /// Worker threads in the reader executor (the dispatcher pool is
    /// always one thread per service shard).
    pub reader_workers: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            backlog: 64,
            conn_window: 256,
            reader_workers: 2,
        }
    }
}

struct Job {
    correlation: u64,
    request: Request,
    reply: Sender<Vec<u8>>,
}

/// The served front door: accept thread + per-connection reader tasks
/// on a vendored async executor + one dispatcher thread per shard.
///
/// Threads wind down on their own once the server handle and every
/// client connection are dropped; [`NetServer::shutdown`] does that
/// explicitly and joins them.
pub struct NetServer {
    dial: Dialer,
    threads: Vec<JoinHandle<()>>,
}

impl NetServer {
    /// Serves `service` with default network tuning.
    pub fn serve(service: SessionService) -> NetServer {
        Self::serve_with(service, NetConfig::default())
    }

    /// Serves `service` over a fresh in-process listener.
    pub fn serve_with(service: SessionService, net: NetConfig) -> NetServer {
        let shards = service.shards();
        let depth = service.config().queue_depth;
        let obs = service.config().obs.clone();
        let (listener, dial) = Listener::new(net.backlog, net.conn_window);

        let mut threads = Vec::new();
        let mut queues = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (tx, rx) = channel::bounded::<Job>(depth);
            queues.push(tx);
            let service = service.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("dme-dispatch-{shard}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv_blocking() {
                            let response = service.handle(job.request);
                            let frame = wire::encode_response_frame(job.correlation, &response);
                            // A vanished client drops its responses.
                            let _ = job.reply.send_blocking(frame);
                        }
                    })
                    .expect("spawn dispatcher"),
            );
        }

        let readers = net.reader_workers.max(1);
        threads.push(
            std::thread::Builder::new()
                .name("dme-accept".into())
                .spawn(move || {
                    let executor = smol::Executor::new(readers);
                    while let Some(conn) = listener.accept_blocking() {
                        let queues = queues.clone();
                        let obs = obs.clone();
                        let service = service.clone();
                        executor
                            .spawn(async move {
                                serve_conn(conn, queues, shards, obs, service).await;
                            })
                            .detach();
                    }
                    // Executor drop waits for in-flight readers, which
                    // end when their clients hang up.
                })
                .expect("spawn acceptor"),
        );

        NetServer { dial, threads }
    }

    /// Dials the server and wraps the connection in a typed [`Client`].
    pub fn connect(&self) -> Result<Client, ServerError> {
        Ok(Client::over(self.dial.connect()?))
    }

    /// A dialer for handing to other threads.
    pub fn dialer(&self) -> Dialer {
        self.dial.clone()
    }

    /// Stops accepting, then joins every server thread. Returns only
    /// after in-flight connections close, so drop all clients first.
    pub fn shutdown(self) {
        drop(self.dial);
        for t in self.threads {
            let _ = t.join();
        }
    }
}

/// One connection's read loop: peel frames, decode, route to the home
/// dispatcher, shed typed `Overloaded` when the home queue is full.
/// `WatchMetrics` subscriptions are intercepted here, before dispatch:
/// each spawns a pusher thread that streams [`Response::MetricsDelta`]
/// frames under the subscribing correlation until the connection
/// closes.
async fn serve_conn(
    conn: Conn,
    queues: Vec<Sender<Job>>,
    shards: usize,
    obs: Observer,
    service: SessionService,
) {
    let (reply, mut reader) = conn.split();
    loop {
        let frame = match reader.recv_frame().await {
            Ok(Some(frame)) => frame,
            Ok(None) => return,
            Err(e) => {
                // The stream can never re-synchronise: answer under the
                // reserved correlation 0 and hang up.
                let resp = Response::Error {
                    code: e.code(),
                    message: e.to_string(),
                };
                let _ = reply.send(wire::encode_response_frame(0, &resp)).await;
                return;
            }
        };
        let (correlation, request) = match wire::decode_request_frame(&frame) {
            Ok(decoded) => decoded,
            Err(e) => {
                obs.add(Counter::RequestsServed, 1);
                let resp = Response::Error {
                    code: e.code(),
                    message: e.to_string(),
                };
                let _ = reply.send(wire::encode_response_frame(0, &resp)).await;
                continue;
            }
        };
        if let Request::Admin { body } = &request {
            if let Ok(AdminRequest::WatchMetrics { interval_ms }) = AdminRequest::decode(body) {
                spawn_metrics_pusher(service.clone(), reply.clone(), correlation, interval_ms);
                continue;
            }
        }
        let shard = match request.session() {
            Some(id) => (id % shards as u64) as usize,
            None => (correlation % shards as u64) as usize,
        };
        match queues[shard].try_send(Job {
            correlation,
            request,
            reply: reply.clone(),
        }) {
            Ok(()) => {}
            Err(TrySendError::Full(job)) => {
                obs.add(Counter::RequestsShed, 1);
                let lane = shard % service.shard_metrics().shards();
                service
                    .shard_metrics()
                    .shard(lane)
                    .add(Counter::RequestsShed, 1);
                let resp = Response::Overloaded {
                    shard: shard as u64,
                    depth: queues[shard].len() as u64,
                };
                let frame = wire::encode_response_frame(job.correlation, &resp);
                if reply.send(frame).await.is_err() {
                    return;
                }
            }
            Err(TrySendError::Closed(_)) => return,
        }
    }
}

/// Spawns the pusher thread behind one `WatchMetrics` subscription:
/// every `interval_ms` it captures the service's telemetry, frames the
/// delta against the previous capture as a [`Response::MetricsDelta`]
/// under the subscription's correlation id, and pushes it down the
/// connection. The thread exits when the connection closes (the send
/// fails); it holds only a service clone and the reply sender, so it
/// never outlives the server's shared state.
fn spawn_metrics_pusher(
    service: SessionService,
    reply: Sender<Vec<u8>>,
    correlation: u64,
    interval_ms: u32,
) {
    std::thread::Builder::new()
        .name("dme-metrics-push".into())
        .spawn(move || {
            let interval = std::time::Duration::from_millis(interval_ms.max(1) as u64);
            let obs = service.config().obs.clone();
            let mut prev = service.telemetry_snapshot();
            loop {
                std::thread::sleep(interval);
                let now = service.telemetry_snapshot();
                let delta = now.delta(&prev);
                prev = now;
                let resp = Response::MetricsDelta {
                    body: delta.to_json(),
                };
                let frame = wire::encode_response_frame(correlation, &resp);
                if reply.send_blocking(frame).is_err() {
                    return;
                }
                obs.add(Counter::MetricsDeltasStreamed, 1);
            }
        })
        .expect("spawn metrics pusher");
}

// ---------------------------------------------------------------------
// The client.

struct ClientInner {
    tx: Sender<Vec<u8>>,
    pending: Mutex<HashMap<u64, Sender<Response>>>,
    /// Persistent server-push subscriptions (`WatchMetrics`): unlike
    /// `pending` waiters, a subscription stays registered across
    /// responses and receives every frame pushed under its correlation.
    subs: Mutex<HashMap<u64, Sender<Response>>>,
    next_correlation: AtomicU64,
}

/// A typed handle over one connection, multiplexing concurrent calls by
/// correlation id. Cheap to clone; clones share the connection.
#[derive(Clone)]
pub struct Client {
    inner: Arc<ClientInner>,
}

impl Client {
    /// Wraps an established connection, spawning its demultiplexer.
    /// The demultiplexer owns only the receive half, so dropping the
    /// last `Client` clone closes the outbound direction and lets the
    /// server wind the connection down.
    pub fn over(conn: Conn) -> Client {
        let (tx, mut reader) = conn.split();
        let inner = Arc::new(ClientInner {
            tx,
            pending: Mutex::new(HashMap::new()),
            subs: Mutex::new(HashMap::new()),
            next_correlation: AtomicU64::new(1),
        });
        let demux = Arc::downgrade(&inner);
        std::thread::Builder::new()
            .name("dme-client-demux".into())
            .spawn(move || loop {
                // Weak, not Arc: the inner holds the send half, and the
                // demultiplexer must not keep the connection open after
                // the last `Client` clone is gone.
                let result = reader.recv_frame_blocking();
                let Some(inner) = demux.upgrade() else { return };
                match result {
                    Ok(Some(frame)) => {
                        let (correlation, response) = match wire::decode_response_frame(&frame) {
                            Ok(decoded) => decoded,
                            // The server never sends bad frames; a
                            // flipped bit in transit fails everyone.
                            Err(e) => {
                                fail_all(&inner, &e);
                                return;
                            }
                        };
                        if correlation == 0 {
                            // The server could not attribute the fault
                            // to a call: surface it to every waiter.
                            if let Response::Error { code, message } = response {
                                fail_all(&inner, &wire::error_from_wire(code, message));
                            }
                            continue;
                        }
                        // Subscriptions first: a subscribed correlation
                        // stays registered and swallows every push.
                        let sub = inner.subs.lock().unwrap().get(&correlation).cloned();
                        if let Some(sub) = sub {
                            if sub.send_blocking(response).is_err() {
                                inner.subs.lock().unwrap().remove(&correlation);
                            }
                            continue;
                        }
                        let waiter = inner.pending.lock().unwrap().remove(&correlation);
                        if let Some(waiter) = waiter {
                            let _ = waiter.send_blocking(response);
                        }
                    }
                    Ok(None) => {
                        inner.subs.lock().unwrap().clear();
                        return;
                    }
                    Err(e) => {
                        fail_all(&inner, &e);
                        return;
                    }
                }
            })
            .expect("spawn client demux");
        Client { inner }
    }

    fn register(&self) -> (u64, Receiver<Response>) {
        let correlation = self.inner.next_correlation.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = channel::bounded(1);
        self.inner.pending.lock().unwrap().insert(correlation, tx);
        (correlation, rx)
    }

    fn closed(&self) -> ServerError {
        ServerError::Protocol("connection closed".into())
    }

    /// One framed round trip, blocking until the response arrives.
    pub fn call_blocking(&self, request: &Request) -> Result<Response, ServerError> {
        let (correlation, rx) = self.register();
        let frame = wire::encode_request_frame(correlation, request);
        if self.inner.tx.send_blocking(frame).is_err() {
            self.inner.pending.lock().unwrap().remove(&correlation);
            return Err(self.closed());
        }
        rx.recv_blocking().map_err(|_| self.closed())
    }

    /// Async [`Client::call_blocking`] for callers on an executor.
    pub async fn call(&self, request: &Request) -> Result<Response, ServerError> {
        let (correlation, rx) = self.register();
        let frame = wire::encode_request_frame(correlation, request);
        if self.inner.tx.send(frame).await.is_err() {
            self.inner.pending.lock().unwrap().remove(&correlation);
            return Err(self.closed());
        }
        rx.recv().await.map_err(|_| self.closed())
    }

    /// Opens a server-side session and wraps its id.
    pub fn open_session(&self, kind: SessionKind) -> Result<RemoteSession, ServerError> {
        match self.call_blocking(&Request::OpenSession { kind })? {
            Response::SessionOpened { session } => Ok(RemoteSession {
                client: self.clone(),
                session,
            }),
            other => Err(unexpected(other)),
        }
    }

    /// Reads a view's full relational state over the wire.
    pub fn view_state(&self, view: &str) -> Result<Vec<(String, Vec<Tuple>)>, ServerError> {
        match self.call_blocking(&Request::ViewState { view: view.into() })? {
            Response::ViewState { relations } => Ok(relations),
            other => Err(unexpected(other)),
        }
    }

    /// Renders the service's telemetry over the wire.
    pub fn metrics(&self, json: bool) -> Result<String, ServerError> {
        match self.call_blocking(&Request::Metrics { json })? {
            Response::Metrics { body } => Ok(body),
            other => Err(unexpected(other)),
        }
    }

    /// Forces a checkpoint over the wire.
    pub fn checkpoint(&self) -> Result<(), ServerError> {
        match self.call_blocking(&Request::Checkpoint)? {
            Response::CheckpointTaken => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Looks a transaction's trace up over the wire, returning the
    /// stitched cross-shard causal tree as JSON (or a JSON error object
    /// for traces the server no longer remembers).
    pub fn trace_lookup(&self, trace: u64) -> Result<String, ServerError> {
        match self.call_blocking(&Request::Admin {
            body: AdminRequest::TraceLookup(trace).encode(),
        })? {
            Response::Admin { body } => Ok(body),
            other => Err(unexpected(other)),
        }
    }

    /// Subscribes to live telemetry: the server pushes one JSON delta
    /// snapshot every `interval_ms` milliseconds over this connection
    /// until the connection closes. Multiple watches multiplex with
    /// ordinary calls over the same connection.
    pub fn watch_metrics(&self, interval_ms: u32) -> Result<MetricsWatch, ServerError> {
        let correlation = self.inner.next_correlation.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = channel::bounded(64);
        self.inner.subs.lock().unwrap().insert(correlation, tx);
        let request = Request::Admin {
            body: AdminRequest::WatchMetrics { interval_ms }.encode(),
        };
        let frame = wire::encode_request_frame(correlation, &request);
        if self.inner.tx.send_blocking(frame).is_err() {
            self.inner.subs.lock().unwrap().remove(&correlation);
            return Err(self.closed());
        }
        Ok(MetricsWatch { rx })
    }
}

/// A live telemetry subscription: each item is one server-pushed JSON
/// delta snapshot (what moved since the previous push). The stream ends
/// when the connection closes.
pub struct MetricsWatch {
    rx: Receiver<Response>,
}

impl MetricsWatch {
    /// Blocks for the next delta snapshot's JSON body; `None` once the
    /// connection is gone.
    pub fn recv_blocking(&self) -> Option<String> {
        loop {
            match self.rx.recv_blocking() {
                Ok(Response::MetricsDelta { body }) => return Some(body),
                Ok(_) => continue,
                Err(_) => return None,
            }
        }
    }
}

fn fail_all(inner: &ClientInner, error: &ServerError) {
    let waiters: Vec<Sender<Response>> = inner
        .pending
        .lock()
        .unwrap()
        .drain()
        .map(|(_, tx)| tx)
        .collect();
    for tx in waiters {
        let _ = tx.send_blocking(Response::Error {
            code: error.code(),
            message: error.to_string(),
        });
    }
    // Dropping the subscription senders ends every watch cleanly.
    inner.subs.lock().unwrap().clear();
}

fn unexpected(response: Response) -> ServerError {
    match response {
        Response::Error { code, message } => wire::error_from_wire(code, message),
        other => ServerError::Protocol(format!("unexpected response: {other:?}")),
    }
}

fn outcome_from(response: Response) -> Result<CommitOutcome, ServerError> {
    match response {
        Response::Committed(info) => Ok(if info.attempts > 1 {
            CommitOutcome::Retried {
                retries: info.attempts - 1,
                info,
            }
        } else {
            CommitOutcome::Committed(info)
        }),
        Response::Overloaded { shard, depth } => Ok(CommitOutcome::Shed {
            shard: shard as usize,
            depth: depth as usize,
        }),
        other => Err(unexpected(other)),
    }
}

/// A server-side session driven over the wire, mirroring the local
/// [`Session`](crate::Session) surface.
pub struct RemoteSession {
    client: Client,
    session: u64,
}

impl RemoteSession {
    /// The server-side session id.
    pub fn id(&self) -> u64 {
        self.session
    }

    /// Submits conceptual operations as one transaction.
    pub fn submit_graph(&self, ops: Vec<GraphOp>) -> Result<CommitOutcome, ServerError> {
        outcome_from(self.client.call_blocking(&Request::SubmitGraph {
            session: self.session,
            ops,
        })?)
    }

    /// Submits one relational operation as a transaction.
    pub fn submit_relational(&self, op: RelOp) -> Result<CommitOutcome, ServerError> {
        outcome_from(self.client.call_blocking(&Request::SubmitRelational {
            session: self.session,
            op,
        })?)
    }

    /// Advances the session's snapshot; returns the service version.
    pub fn refresh(&self) -> Result<u64, ServerError> {
        match self.client.call_blocking(&Request::Refresh {
            session: self.session,
        })? {
            Response::Refreshed { version } => Ok(version),
            other => Err(unexpected(other)),
        }
    }

    /// Closes the session (with the closing equivalence check).
    pub fn close(self) -> Result<(), ServerError> {
        match self.client.call_blocking(&Request::Close {
            session: self.session,
        })? {
            Response::Closed => Ok(()),
            other => Err(unexpected(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemDevice;
    use crate::service::{ServiceConfig, SessionService, ViewSpec};
    use dme_graph::fixtures as gfix;

    fn serve() -> (NetServer, SessionService) {
        let service = SessionService::new(
            gfix::figure4_state(),
            Vec::<ViewSpec>::new(),
            ServiceConfig::default(),
            Box::new(MemDevice::new()),
            Box::new(MemDevice::new()),
        )
        .unwrap();
        (NetServer::serve(service.clone()), service)
    }

    #[test]
    fn frames_survive_arbitrary_fragmentation() {
        let (server, _service) = serve();
        let conn = server.dialer().connect().unwrap();
        let frame = wire::encode_request_frame(42, &Request::Metrics { json: false });
        // Drip the frame one byte at a time; the reader reassembles.
        for b in &frame {
            conn.send_bytes(vec![*b]).unwrap();
        }
        let mut conn = conn;
        let reply = conn.recv_frame_blocking().unwrap().unwrap();
        let (corr, resp) = wire::decode_response_frame(&reply).unwrap();
        assert_eq!(corr, 42);
        assert!(matches!(resp, Response::Metrics { .. }));
        drop(conn);
        server.shutdown();
    }

    #[test]
    fn a_corrupt_stream_gets_a_correlation_zero_error() {
        let (server, _service) = serve();
        let mut conn = server.dialer().connect().unwrap();
        let mut frame = wire::encode_request_frame(7, &Request::Checkpoint);
        let last = frame.len() - 1;
        frame[last] ^= 0x40; // bit flip in transit, caught by the CRC
        conn.send_bytes(frame).unwrap();
        let reply = conn.recv_frame_blocking().unwrap().unwrap();
        let (corr, resp) = wire::decode_response_frame(&reply).unwrap();
        assert_eq!(corr, 0);
        match resp {
            Response::Error { code, .. } => {
                assert_eq!(code, ServerError::Protocol(String::new()).code())
            }
            other => panic!("expected Error, got {other:?}"),
        }
        // The server hung up on the poisoned stream.
        assert!(conn.recv_frame_blocking().unwrap().is_none());
        drop(conn);
        server.shutdown();
    }

    #[test]
    fn clients_multiplex_sessions_over_one_connection() {
        let (server, service) = serve();
        let client = server.connect().unwrap();
        let sessions: Vec<RemoteSession> = (0..8)
            .map(|_| client.open_session(SessionKind::Graph).unwrap())
            .collect();
        crossbeam::scope(|sc| {
            for (i, s) in sessions.iter().enumerate() {
                sc.spawn(move |_| {
                    // Two distinct supervisions not present in Figure 4,
                    // each raced by four sessions: exactly one of each
                    // commits, the duplicates abort.
                    let (agent, object) =
                        [("G.Wayshum", "T.Manhart"), ("T.Manhart", "C.Gershag")][i % 2];
                    let op = dme_graph::GraphOp::InsertAssociation(dme_graph::Association::new(
                        "supervise",
                        [
                            (
                                "agent",
                                dme_graph::EntityRef::new("employee", dme_value::Atom::str(agent)),
                            ),
                            (
                                "object",
                                dme_graph::EntityRef::new("employee", dme_value::Atom::str(object)),
                            ),
                        ],
                    ));
                    // Duplicate inserts abort; both faces are typed.
                    match s.submit_graph(vec![op]) {
                        Ok(outcome) => assert!(outcome.info().is_some()),
                        Err(e) => assert_eq!(e.code(), 2, "{e}"),
                    }
                });
            }
        })
        .unwrap();
        for s in sessions {
            s.close().unwrap();
        }
        assert_eq!(service.open_sessions(), 0);
        assert_eq!(service.committed_history().len(), 2);
        drop(client);
        server.shutdown();
    }
}
