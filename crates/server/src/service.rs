//! The concurrent session service.
//!
//! One conceptual database, many concurrent sessions speaking different
//! application models. Updates are routed by write set to per-shard
//! **commit lanes**: every entity reference a transaction touches is
//! hashed to a shard (see [`crate::shard`]), the transaction queues on
//! its lowest shard's lane, and the first free thread on a lane becomes
//! that lane's *leader*, draining a batch and committing it with one
//! WAL append + sync per involved shard (group commit). Durability
//! follows the classic log-before-acknowledge rule: a commit is
//! reported to its session only after its record is on every involved
//! shard's log device.
//!
//! Validation (conflict checks, conceptual application, view
//! advancement) is serialized through one core lock, so the database
//! still has a single global commit order and a single version counter;
//! what shards buy is **sync overlap** — different lanes wait on
//! different log devices at the same time, so the dominant cost of a
//! commit (the sync) is paid concurrently.
//!
//! ## Lock protocol
//!
//! `core → WAL locks in ascending shard order → (release core) →
//! append+sync → release WAL locks → re-acquire core for bookkeeping`.
//! WAL locks are only ever acquired while holding the core lock, and a
//! thread holding WAL locks never waits on the core lock, so the order
//! `core < wal_0 < wal_1 < …` is total and the protocol is
//! deadlock-free. Because WAL acquisition is serialized by the core
//! lock, each shard's log receives records in strictly increasing LSN
//! order.
//!
//! ## Cross-shard commits and recovery
//!
//! A transaction whose write set spans shards journals its frame on
//! **every** involved shard (recovery dedupes by LSN). Dependent
//! transactions share a shard by construction, so per-shard prefix
//! durability covers them; a gap in the merged log can only separate
//! independent transactions, whose deltas commute. One asymmetry
//! remains and is deliberate: a crash between a lane's sync and its
//! acknowledgment can *resurrect an unacknowledged transaction* on
//! recovery (it is in some shard's log but its session saw an error).
//! The converse — an acknowledged transaction lost — cannot happen.
//!
//! Conflict control is optimistic. Relational sessions translate
//! against a snapshot; if another transaction committed first, the
//! snapshot's base version no longer matches and the commit is refused
//! with a conflict — the session rebases and retries with backoff.
//! Graph sessions submit conceptual operations directly, which are
//! position-independent, so they carry no base version and never
//! conflict (they can still *abort* if an operation no longer applies).
//!
//! Aborted transactions never reach the log, so recovery cannot
//! resurrect them: the durable image is exactly a checkpoint plus
//! clean prefixes of committed deltas.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use dme_ansi::ExternalView;
use dme_core::translate::CompletionMode;
use dme_graph::{GraphOp, GraphSchema, GraphState};
use dme_obs::{Counter, Metric, Observer, ShardRegistry, TelemetrySnapshot, TraceHub, TraceId};
use dme_relation::{RelationState, RelationalSchema};
use dme_storage::wal;
use dme_storage::{MvccStore, PinSet, WalError};

use crate::codec;
use crate::device::{DeviceError, LogDevice};
use crate::error::ServerError;
use crate::session::{Session, SessionKind};
use crate::shard;

/// How commits are batched through the journal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommitMode {
    /// The leader drains up to `max_batch` requests and syncs once per
    /// batch per involved shard.
    Group,
    /// One transaction per append + sync (the baseline group commit is
    /// measured against).
    PerOp,
}

/// An external view the service serves to relational sessions.
#[derive(Clone, Debug)]
pub struct ViewSpec {
    /// The view's name (what sessions ask for).
    pub name: String,
    /// Its relational application-model schema.
    pub schema: RelationalSchema,
    /// The completion mode translations into the view use.
    pub mode: CompletionMode,
}

/// Service tuning knobs. Build one with [`ServiceConfig::builder`] (which
/// validates) or field-by-field from [`ServiceConfig::default`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Commit batching mode.
    pub commit_mode: CommitMode,
    /// Take a checkpoint after this many commits (0 = only on demand).
    pub checkpoint_every: u64,
    /// Verify every committed transaction's views against the
    /// conceptual state (Definition 2 within each view's vocabulary).
    /// Defaults to the `lockstep-verify` compile feature.
    pub lockstep_verify: bool,
    /// Commit attempts a relational session makes before giving up on a
    /// conflicted snapshot.
    pub max_attempts: u32,
    /// Base backoff between conflict retries, in microseconds (doubles
    /// each attempt).
    pub backoff_micros: u64,
    /// Observation session for spans and counters.
    pub obs: Observer,
    /// Commit lanes the conceptual write set is hashed across. Each
    /// shard journals to its own WAL device.
    pub shards: usize,
    /// Admission bound per commit lane: a submit finding this many
    /// requests already queued is shed with a typed `Overloaded`
    /// outcome instead of waiting.
    pub queue_depth: usize,
    /// Most transactions a lane leader drains into one group commit.
    pub max_batch: usize,
    /// Recent traces the service's trace hub remembers for
    /// `TraceLookup` queries (FIFO-evicted; 0 disables cross-shard
    /// trace stitching entirely).
    pub trace_capacity: usize,
    /// Every Nth checkpoint is a **full** image; the checkpoints in
    /// between are **incremental** (the dirty keys' current records,
    /// chained to the previous checkpoint). 1 = every checkpoint full
    /// (the compaction-free baseline). Recovery and boot always start
    /// from a full image regardless of this knob.
    pub full_checkpoint_every: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            commit_mode: CommitMode::Group,
            checkpoint_every: 0,
            lockstep_verify: cfg!(feature = "lockstep-verify"),
            max_attempts: 8,
            backoff_micros: 20,
            obs: Observer::disabled(),
            shards: 1,
            queue_depth: 4096,
            max_batch: 64,
            trace_capacity: 512,
            full_checkpoint_every: 1,
        }
    }
}

impl ServiceConfig {
    /// A validating builder starting from the defaults.
    pub fn builder() -> ServiceConfigBuilder {
        ServiceConfigBuilder {
            config: ServiceConfig::default(),
        }
    }

    /// Checks the knobs are mutually sensible. Service constructors call
    /// this, so a hand-assembled config cannot boot a broken service.
    pub fn validate(&self) -> Result<(), ServerError> {
        if self.shards == 0 {
            return Err(ServerError::InvalidConfig(
                "shards must be at least 1".into(),
            ));
        }
        if self.shards > 1024 {
            return Err(ServerError::InvalidConfig(format!(
                "{} shards is past the 1024 sanity bound",
                self.shards
            )));
        }
        if self.queue_depth == 0 {
            return Err(ServerError::InvalidConfig(
                "queue_depth 0 would shed every request".into(),
            ));
        }
        if self.max_batch == 0 {
            return Err(ServerError::InvalidConfig(
                "max_batch 0 would commit nothing".into(),
            ));
        }
        if self.max_attempts == 0 {
            return Err(ServerError::InvalidConfig(
                "max_attempts 0 would refuse every relational commit".into(),
            ));
        }
        if self.full_checkpoint_every == 0 {
            return Err(ServerError::InvalidConfig(
                "full_checkpoint_every 0 would never write a full image".into(),
            ));
        }
        Ok(())
    }
}

/// Builder for [`ServiceConfig`]; [`ServiceConfigBuilder::build`]
/// validates.
#[derive(Clone, Debug)]
pub struct ServiceConfigBuilder {
    config: ServiceConfig,
}

impl ServiceConfigBuilder {
    /// Sets the commit batching mode.
    pub fn commit_mode(mut self, mode: CommitMode) -> Self {
        self.config.commit_mode = mode;
        self
    }

    /// Checkpoint after this many commits (0 = only on demand).
    pub fn checkpoint_every(mut self, every: u64) -> Self {
        self.config.checkpoint_every = every;
        self
    }

    /// Toggles lockstep (Definition 2) verification of every commit.
    pub fn lockstep_verify(mut self, on: bool) -> Self {
        self.config.lockstep_verify = on;
        self
    }

    /// Commit attempts before a conflicted snapshot gives up.
    pub fn max_attempts(mut self, attempts: u32) -> Self {
        self.config.max_attempts = attempts;
        self
    }

    /// Base conflict backoff in microseconds.
    pub fn backoff_micros(mut self, micros: u64) -> Self {
        self.config.backoff_micros = micros;
        self
    }

    /// Observation session for spans and counters.
    pub fn obs(mut self, obs: Observer) -> Self {
        self.config.obs = obs;
        self
    }

    /// Number of commit lanes (each needs its own WAL device).
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards;
        self
    }

    /// Per-lane admission bound before submits are shed.
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.config.queue_depth = depth;
        self
    }

    /// Most transactions per group commit.
    pub fn max_batch(mut self, batch: usize) -> Self {
        self.config.max_batch = batch;
        self
    }

    /// Recent traces kept for `TraceLookup` (0 disables stitching).
    pub fn trace_capacity(mut self, capacity: usize) -> Self {
        self.config.trace_capacity = capacity;
        self
    }

    /// Full-image cadence: every Nth checkpoint is full, the rest are
    /// incremental dirty-key images (1 = all full).
    pub fn full_checkpoint_every(mut self, every: u64) -> Self {
        self.config.full_checkpoint_every = every;
        self
    }

    /// Validates and yields the config.
    pub fn build(self) -> Result<ServiceConfig, ServerError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// The durable bytes a crash leaves behind: prefixes of the append-only
/// devices.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DurableImage {
    /// Shard 0's write-ahead log of committed conceptual deltas (for a
    /// single-sharded service, *the* WAL).
    pub wal: Vec<u8>,
    /// The appended-checkpoint stream.
    pub checkpoint: Vec<u8>,
    /// The write-ahead logs of shards 1… (empty when single-sharded).
    pub shard_wals: Vec<Vec<u8>>,
}

impl DurableImage {
    /// All shard WALs in shard order (shard 0 first).
    pub fn wals(&self) -> impl Iterator<Item = &[u8]> {
        std::iter::once(self.wal.as_slice()).chain(self.shard_wals.iter().map(Vec::as_slice))
    }
}

/// What recovery found and did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoveryReport {
    /// LSN of the checkpoint recovery started from (the end of the
    /// resolved checkpoint chain).
    pub checkpoint_lsn: u64,
    /// Committed transactions replayed on top of the checkpoint.
    pub replayed: usize,
    /// Incremental checkpoint images folded on top of the full image
    /// the resolved chain starts from (0 = a single full checkpoint).
    pub chained_checkpoints: usize,
    /// WAL payload bytes folded over the checkpoint state — the
    /// quantity the recovery-time SLO is stated against.
    pub replayed_bytes: u64,
    /// The first torn/corrupt WAL tail that was truncated, if any
    /// (sharded recovery checks every shard's log, lowest shard first).
    pub wal_tail: Option<WalError>,
    /// The torn checkpoint tail that was skipped, if any.
    pub checkpoint_tail: Option<WalError>,
}

/// One committed transaction, as the conformance oracle wants it: its
/// log position and the conceptual operations that were applied.
#[derive(Clone, Debug)]
pub struct CommittedTxn {
    /// Log sequence number.
    pub lsn: u64,
    /// The conceptual operations, in application order.
    pub ops: Vec<GraphOp>,
}

/// What a successful commit tells the session.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommitInfo {
    /// The transaction's log sequence number.
    pub lsn: u64,
    /// The database version after the commit.
    pub version: u64,
    /// Commit attempts used (1 = no conflict).
    pub attempts: u32,
    /// The transaction's trace id — greppable from the observability
    /// transcript and stamped into the transaction's WAL frame.
    pub trace: TraceId,
}

/// How a submission ended, when it did not end in an error: committed
/// (possibly after conflict retries), or shed at admission because the
/// target commit lane was full. Shedding is backpressure, not failure —
/// nothing was enqueued, and the client decides whether to retry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommitOutcome {
    /// Committed on the first attempt.
    Committed(CommitInfo),
    /// Committed after `retries` conflict rebases.
    Retried {
        /// The commit that finally stuck.
        info: CommitInfo,
        /// How many attempts were refused before it (= attempts - 1).
        retries: u32,
    },
    /// Shed at admission: the home lane's queue was at capacity.
    Shed {
        /// The lane that refused the transaction.
        shard: usize,
        /// The queue depth observed at refusal.
        depth: usize,
    },
}

impl CommitOutcome {
    /// The commit info, unless the submission was shed.
    pub fn info(&self) -> Option<CommitInfo> {
        match self {
            CommitOutcome::Committed(info) | CommitOutcome::Retried { info, .. } => Some(*info),
            CommitOutcome::Shed { .. } => None,
        }
    }

    /// Whether the submission was shed under load.
    pub fn is_shed(&self) -> bool {
        matches!(self, CommitOutcome::Shed { .. })
    }

    /// Unwraps the commit info; panics if the submission was shed.
    /// Intended for tests and single-client tools where shedding is
    /// impossible by construction.
    pub fn expect_commit(self) -> CommitInfo {
        self.info().expect("submission was shed under load")
    }
}

pub(crate) struct Request {
    id: u64,
    trace: TraceId,
    /// The transaction's root (admit) span in the trace hub — the
    /// parent every downstream span hangs off.
    span: u64,
    enqueued: std::time::Instant,
    gops: Vec<GraphOp>,
    base_version: Option<u64>,
}

#[derive(Clone, Debug)]
pub(crate) enum Outcome {
    Committed { lsn: u64, version: u64 },
    Conflict,
    Aborted(String),
    Lockstep(String),
    Crashed(String),
    Shed { shard: usize, depth: usize },
}

/// A validated transaction awaiting its journal write.
struct StagedTxn {
    id: u64,
    lsn: u64,
    version: u64,
    trace: TraceId,
    /// The admit (root) span this transaction's journal spans hang off.
    span: u64,
    /// The group-commit span, allocated when the journal buffers are
    /// built (0 until then, or when the hub is disabled).
    gc_span: u64,
    /// One `(shard, span)` per involved shard's WAL append — the span
    /// stamped into that shard's frame.
    wal_spans: Vec<(usize, u64)>,
    enqueued: std::time::Instant,
    payload: Vec<u8>,
    ops: Vec<GraphOp>,
    shards: BTreeSet<usize>,
}

struct Core {
    /// The committed conceptual state. Shared copy-on-write with every
    /// open snapshot: opening a session bumps the refcount, and the
    /// commit path pays one state copy per *pinned generation* (via
    /// `Arc::make_mut`) instead of every reader paying a clone.
    conceptual: Arc<GraphState>,
    views: BTreeMap<String, Arc<ExternalView>>,
    version: u64,
    next_lsn: u64,
    commits_since_checkpoint: u64,
    history: Vec<CommittedTxn>,
    checkpoints: Box<dyn LogDevice>,
    crashed: Option<String>,
    /// Per-partition MVCC version stores (fact keys are routed by
    /// `codec::mvcc_shard`, one partition per commit lane). Every
    /// committed change lands here as an LSN-keyed version, backing
    /// incremental checkpoints and `state_at` reconstruction.
    mvcc: Vec<MvccStore>,
    /// Fact keys dirtied since the last checkpoint — the payload of
    /// the next incremental checkpoint image.
    dirty: BTreeSet<Vec<u8>>,
    /// The anchor state `state_at` folds MVCC versions over, and the
    /// LSN it reflects. Advanced to the current state at full
    /// checkpoints once no older snapshot pin needs history behind it.
    base: Arc<GraphState>,
    base_lsn: u64,
    /// LSN of the newest durable checkpoint record (the chain link
    /// incremental images carry).
    last_cp_lsn: u64,
    /// LSNs of the newest and second-newest full checkpoint images:
    /// WAL truncation keeps everything after the *previous* full image
    /// so a single corrupt record in the newest chain still leaves a
    /// recoverable (older checkpoint + longer replay) image.
    last_full_lsn: u64,
    prev_full_lsn: u64,
    /// Checkpoint records written so far (drives the full/incremental
    /// cadence).
    checkpoints_taken: u64,
}

struct QueueInner {
    pending: VecDeque<Request>,
    results: BTreeMap<u64, Outcome>,
    leader: bool,
    next_id: u64,
}

/// One shard's WAL device plus the batch-granularity frame map log
/// truncation needs: each entry records the highest LSN a synced batch
/// carried and the cumulative byte offset its frames end at. Because
/// the core lock serializes WAL acquisition, per-shard LSNs are
/// strictly increasing, so truncating whole front batches whose
/// highest LSN is covered by a durable checkpoint always cuts at a
/// frame boundary.
struct WalShard {
    device: Box<dyn LogDevice>,
    /// `(highest LSN in batch, cumulative appended bytes at batch
    /// end)`, in append order.
    frames: VecDeque<(u64, u64)>,
    /// Total bytes ever appended (including bytes since truncated).
    appended: u64,
    /// Bytes already truncated from the front.
    trimmed: u64,
}

impl WalShard {
    fn over(device: Box<dyn LogDevice>) -> WalShard {
        let appended = device.len() as u64;
        WalShard {
            device,
            frames: VecDeque::new(),
            appended,
            trimmed: 0,
        }
    }

    /// Records one durably-synced batch in the frame map.
    fn note_batch(&mut self, max_lsn: u64, bytes: u64) {
        self.appended += bytes;
        self.frames.push_back((max_lsn, self.appended));
    }

    /// Drops every whole front batch whose highest LSN is ≤ `lsn`
    /// (i.e. fully covered by a durable checkpoint at `lsn`). Returns
    /// the bytes reclaimed; devices that do not support truncation
    /// simply keep their bytes.
    fn truncate_upto(&mut self, lsn: u64) -> u64 {
        let mut target = None;
        while let Some(&(max_lsn, end)) = self.frames.front() {
            if max_lsn > lsn {
                break;
            }
            target = Some(end);
            self.frames.pop_front();
        }
        let Some(end) = target else { return 0 };
        let want = (end - self.trimmed) as usize;
        let dropped = self.device.truncate_prefix(want).unwrap_or(0);
        self.trimmed += dropped;
        dropped
    }
}

/// One shard's commit lane: an admission queue with its own leader
/// election, and the shard's WAL device.
struct Lane {
    queue: Mutex<QueueInner>,
    cv: Condvar,
    wal: Mutex<WalShard>,
}

impl Lane {
    fn over(device: Box<dyn LogDevice>) -> Lane {
        Lane {
            queue: Mutex::new(QueueInner {
                pending: VecDeque::new(),
                results: BTreeMap::new(),
                leader: false,
                next_id: 0,
            }),
            cv: Condvar::new(),
            wal: Mutex::new(WalShard::over(device)),
        }
    }
}

pub(crate) struct Shared {
    core: Mutex<Core>,
    lanes: Vec<Lane>,
    /// The conceptual schema, cached so shard routing never takes the
    /// core lock.
    schema: Arc<GraphSchema>,
    pub(crate) config: ServiceConfig,
    /// Per-shard metric registries — one lane, one registry — merged
    /// and labelled by the exporters.
    pub(crate) shard_metrics: Arc<ShardRegistry>,
    /// Recent transactions' cross-shard span trees, served by
    /// `AdminRequest::TraceLookup`.
    pub(crate) trace_hub: Arc<TraceHub>,
    pub(crate) open_sessions: AtomicU64,
    /// Live snapshot pins by LSN: the oldest pin is the MVCC garbage
    /// collection horizon. A leaf lock — taken briefly, never while
    /// waiting on any other lock.
    pins: Mutex<PinSet>,
    next_session: AtomicU64,
    next_txn: AtomicU64,
    /// Sessions owned by the wire front door, keyed by id. A request
    /// *takes the session out* for its duration and puts it back, so
    /// concurrent requests against one session see `UnknownSession`
    /// rather than interleaving. Sessions stay here until `Close`.
    pub(crate) registry: Mutex<BTreeMap<u64, Session>>,
}

/// The concurrent multi-model session service. Cheap to clone; clones
/// share the database.
#[derive(Clone)]
pub struct SessionService {
    pub(crate) shared: Arc<Shared>,
}

impl std::fmt::Debug for SessionService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let core = self.shared.core.lock().unwrap();
        write!(
            f,
            "SessionService(version {}, {} views, {} committed, {} shards)",
            core.version,
            core.views.len(),
            core.history.len(),
            self.shared.lanes.len()
        )
    }
}

impl SessionService {
    /// Boots a fresh single-sharded service over `initial`, serving
    /// `views`, logging to the given devices. Writes an initial
    /// checkpoint so the durable image is self-contained from the first
    /// commit on. Requires `config.shards == 1`; use
    /// [`SessionService::new_sharded`] for more lanes.
    pub fn new(
        initial: GraphState,
        views: Vec<ViewSpec>,
        config: ServiceConfig,
        wal_device: Box<dyn LogDevice>,
        checkpoint_device: Box<dyn LogDevice>,
    ) -> Result<Self, ServerError> {
        Self::new_sharded(initial, views, config, vec![wal_device], checkpoint_device)
    }

    /// Boots a fresh service with one WAL device per commit lane
    /// (`wal_devices.len()` must equal `config.shards`).
    pub fn new_sharded(
        initial: GraphState,
        views: Vec<ViewSpec>,
        config: ServiceConfig,
        wal_devices: Vec<Box<dyn LogDevice>>,
        checkpoint_device: Box<dyn LogDevice>,
    ) -> Result<Self, ServerError> {
        config.validate()?;
        if wal_devices.len() != config.shards {
            return Err(ServerError::InvalidConfig(format!(
                "{} WAL devices for {} shards",
                wal_devices.len(),
                config.shards
            )));
        }
        let mut materialized = BTreeMap::new();
        for spec in views {
            let view = ExternalView::materialize(&spec.name, spec.schema, &initial, spec.mode)?;
            materialized.insert(spec.name, Arc::new(view));
        }
        let schema = Arc::clone(initial.schema());
        let shards = config.shards;
        let conceptual = Arc::new(initial);
        let core = Core {
            base: Arc::clone(&conceptual),
            conceptual,
            views: materialized,
            version: 0,
            next_lsn: 1,
            commits_since_checkpoint: 0,
            history: Vec::new(),
            checkpoints: checkpoint_device,
            crashed: None,
            mvcc: std::iter::repeat_with(MvccStore::new).take(shards).collect(),
            dirty: BTreeSet::new(),
            base_lsn: 0,
            last_cp_lsn: 0,
            last_full_lsn: 0,
            prev_full_lsn: 0,
            checkpoints_taken: 0,
        };
        let service = Self::assemble(core, schema, config, wal_devices);
        service.checkpoint_now()?;
        Ok(service)
    }

    fn assemble(
        core: Core,
        schema: Arc<GraphSchema>,
        config: ServiceConfig,
        wal_devices: Vec<Box<dyn LogDevice>>,
    ) -> Self {
        let shard_metrics = Arc::new(ShardRegistry::new(config.shards));
        let trace_hub = Arc::new(TraceHub::new(config.trace_capacity));
        SessionService {
            shared: Arc::new(Shared {
                core: Mutex::new(core),
                lanes: wal_devices.into_iter().map(Lane::over).collect(),
                schema,
                config,
                shard_metrics,
                trace_hub,
                open_sessions: AtomicU64::new(0),
                pins: Mutex::new(PinSet::new()),
                next_session: AtomicU64::new(0),
                next_txn: AtomicU64::new(0),
                registry: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// Rebuilds a single-sharded service from the durable image a crash
    /// left behind. See [`SessionService::recover_sharded`].
    pub fn recover(
        schema: Arc<GraphSchema>,
        image: &DurableImage,
        views: Vec<ViewSpec>,
        config: ServiceConfig,
        wal_device: Box<dyn LogDevice>,
        checkpoint_device: Box<dyn LogDevice>,
    ) -> Result<(Self, RecoveryReport), ServerError> {
        Self::recover_sharded(
            schema,
            image,
            views,
            config,
            vec![wal_device],
            checkpoint_device,
        )
    }

    /// Rebuilds a service from the durable image a crash left behind:
    /// decode the latest complete checkpoint, merge every shard log's
    /// clean prefix by LSN (deduplicating cross-shard frames, which are
    /// journaled on every shard they touch), fold the deltas over the
    /// checkpoint, re-materialize every view, and resume. Gaps in the
    /// merged LSN sequence are tolerated — they can only separate
    /// independent transactions (dependent ones share a shard, where
    /// prefix order is strict).
    pub fn recover_sharded(
        schema: Arc<GraphSchema>,
        image: &DurableImage,
        views: Vec<ViewSpec>,
        config: ServiceConfig,
        wal_devices: Vec<Box<dyn LogDevice>>,
        checkpoint_device: Box<dyn LogDevice>,
    ) -> Result<(Self, RecoveryReport), ServerError> {
        config.validate()?;
        if wal_devices.len() != config.shards {
            return Err(ServerError::InvalidConfig(format!(
                "{} WAL devices for {} shards",
                wal_devices.len(),
                config.shards
            )));
        }
        let obs = config.obs.clone();
        let _span = obs.span("server/recover");
        let recovery_timer = obs.time(Metric::RecoveryLatency);
        // Scan the checkpoint stream record by record, resynchronizing
        // past corrupt frames (a clean tail is the common case, but log
        // truncation means an older *readable* record past a corrupt one
        // may still anchor a usable chain).
        let mut cp_records = Vec::new();
        let mut checkpoint_tail = None;
        let mut at = 0;
        while at < image.checkpoint.len() {
            match wal::decode_frame(&image.checkpoint, at) {
                Ok((record, frame)) => {
                    cp_records.push(record);
                    at += frame;
                }
                Err(e) => {
                    if checkpoint_tail.is_none() {
                        checkpoint_tail = Some(e);
                    }
                    at += 1;
                }
            }
        }
        // Resolve the newest checkpoint *chain* that decodes end to
        // end: a full image, or an incremental image whose prev-LSN
        // links walk back to one. Any break (missing link, corrupt
        // payload, failed fold) falls back to the next-older candidate
        // — degrading to an older checkpoint and a longer replay, never
        // to wrong state.
        let mut resolved: Option<(GraphState, u64, usize)> = None;
        'candidates: for end in (0..cp_records.len()).rev() {
            let mut chain = vec![end];
            let mut cur = end;
            loop {
                match codec::decode_checkpoint(&cp_records[cur].payload) {
                    Ok(codec::CheckpointImage::Full { .. }) => break,
                    Ok(codec::CheckpointImage::Incremental { prev_lsn, .. }) => {
                        // Nearest earlier record carrying the linked
                        // LSN (checkpoints of an idle service may share
                        // LSNs; the nearest one is the chain parent).
                        let Some(j) = (0..cur).rev().find(|&j| cp_records[j].lsn == prev_lsn)
                        else {
                            continue 'candidates;
                        };
                        chain.push(j);
                        cur = j;
                    }
                    Err(_) => continue 'candidates,
                }
            }
            chain.reverse();
            let mut folded: Option<GraphState> = None;
            for &i in &chain {
                match codec::decode_checkpoint(&cp_records[i].payload) {
                    Ok(codec::CheckpointImage::Full { delta }) => {
                        match codec::decode_state(Arc::clone(&schema), delta) {
                            Ok(s) => folded = Some(s),
                            Err(_) => continue 'candidates,
                        }
                    }
                    Ok(codec::CheckpointImage::Incremental { delta, .. }) => {
                        let Some(s) = folded.take() else {
                            continue 'candidates;
                        };
                        match codec::apply_delta_lenient(&s, delta) {
                            Ok(next) => folded = Some(next),
                            Err(_) => continue 'candidates,
                        }
                    }
                    Err(_) => continue 'candidates,
                }
            }
            if let Some(state) = folded {
                resolved = Some((state, cp_records[end].lsn, chain.len() - 1));
                break;
            }
        }
        let Some((mut state, cp_lsn, chained_checkpoints)) = resolved else {
            return Err(ServerError::Recovery(
                "no complete checkpoint in the durable image".into(),
            ));
        };
        // Merge the shard logs: collect each clean prefix, sort by LSN,
        // drop duplicates (cross-shard frames) and anything the
        // checkpoint already covers.
        let mut records = Vec::new();
        let mut wal_tail = None;
        for bytes in image.wals() {
            let (rs, tail) = wal::replay_tolerant(bytes);
            if wal_tail.is_none() {
                wal_tail = tail;
            }
            records.extend(rs);
        }
        records.sort_by_key(|r| r.lsn);
        records.dedup_by_key(|r| r.lsn);
        let mut replayed = 0;
        let mut replayed_bytes = 0u64;
        let mut next_lsn = cp_lsn + 1;
        for r in &records {
            if r.lsn <= cp_lsn {
                next_lsn = next_lsn.max(r.lsn + 1);
                continue;
            }
            let timer = obs.time(Metric::ReplayLatency);
            codec::apply_delta_in_place(&mut state, &r.payload)?;
            drop(timer);
            replayed += 1;
            replayed_bytes += r.payload.len() as u64;
            next_lsn = r.lsn + 1;
            obs.add(Counter::WalRecordsReplayed, 1);
            obs.add(Counter::ReplayBytes, r.payload.len() as u64);
            if let Some(t) = r.trace {
                obs.trace_event("server/replay", TraceId(t), || format!("lsn {}", r.lsn));
            }
        }
        let report = RecoveryReport {
            checkpoint_lsn: cp_lsn,
            replayed,
            chained_checkpoints,
            replayed_bytes,
            wal_tail,
            checkpoint_tail,
        };
        let version = replayed as u64;
        let mut materialized = BTreeMap::new();
        for spec in views {
            let view = ExternalView::materialize(&spec.name, spec.schema, &state, spec.mode)?;
            materialized.insert(spec.name, Arc::new(view));
        }
        let shards = config.shards;
        let conceptual = Arc::new(state);
        let base_lsn = next_lsn - 1;
        let core = Core {
            base: Arc::clone(&conceptual),
            conceptual,
            views: materialized,
            version,
            next_lsn,
            commits_since_checkpoint: 0,
            history: Vec::new(),
            checkpoints: checkpoint_device,
            crashed: None,
            mvcc: std::iter::repeat_with(MvccStore::new).take(shards).collect(),
            dirty: BTreeSet::new(),
            base_lsn,
            last_cp_lsn: 0,
            last_full_lsn: 0,
            prev_full_lsn: 0,
            checkpoints_taken: 0,
        };
        let service = Self::assemble(core, schema, config, wal_devices);
        // Re-anchor durability: the recovered state becomes the new
        // checkpoint (always a *full* image — `checkpoints_taken` was
        // reset — so the possibly-torn old devices are no longer
        // load-bearing).
        service.checkpoint_now()?;
        drop(recovery_timer);
        Ok((service, report))
    }

    /// Opens a session. Graph sessions speak conceptual operations;
    /// relational sessions are bound to one external view and get a
    /// snapshot handle over it.
    pub fn open_session(&self, kind: SessionKind) -> Result<Session, ServerError> {
        let obs = &self.shared.config.obs;
        let _span = obs.span("server/admit");
        let _timer = obs.time(Metric::AdmitLatency);
        let snapshot = {
            let core = self.shared.core.lock().unwrap();
            if let Some(why) = &core.crashed {
                return Err(ServerError::Crashed(why.clone()));
            }
            match &kind {
                SessionKind::Graph => None,
                SessionKind::Relational { view } => {
                    let v = core
                        .views
                        .get(view)
                        .ok_or_else(|| ServerError::UnknownView(view.clone()))?;
                    // O(1) snapshot: two Arc bumps plus an LSN pin —
                    // never a state clone. The pin holds the MVCC GC
                    // horizon at this snapshot's LSN until the session
                    // drops or rebases.
                    let pin_lsn = core.next_lsn - 1;
                    self.shared.pins.lock().unwrap().pin(pin_lsn);
                    obs.add(Counter::SnapshotOpens, 1);
                    Some((
                        dme_ansi::ViewSession::over(Arc::clone(v), Arc::clone(&core.conceptual)),
                        core.version,
                        pin_lsn,
                    ))
                }
            }
        };
        let id = self.shared.next_session.fetch_add(1, Ordering::Relaxed);
        self.shared.open_sessions.fetch_add(1, Ordering::Relaxed);
        obs.add(Counter::SessionsOpened, 1);
        Ok(Session::new(self.clone(), id, kind, snapshot))
    }

    /// Number of currently open sessions.
    pub fn open_sessions(&self) -> u64 {
        self.shared.open_sessions.load(Ordering::Relaxed)
    }

    /// Number of commit lanes (shards).
    pub fn shards(&self) -> usize {
        self.shared.lanes.len()
    }

    /// The configuration the service was booted with.
    pub fn config(&self) -> &ServiceConfig {
        &self.shared.config
    }

    /// The conceptual schema the service runs over.
    pub fn schema(&self) -> &Arc<GraphSchema> {
        &self.shared.schema
    }

    /// The current database version (one bump per commit).
    pub fn version(&self) -> u64 {
        self.shared.core.lock().unwrap().version
    }

    /// A shared snapshot of the conceptual state (an `Arc` bump, not a
    /// clone — the commit path copies on write if someone holds it).
    pub fn conceptual(&self) -> Arc<GraphState> {
        Arc::clone(&self.shared.core.lock().unwrap().conceptual)
    }

    /// A snapshot of one external view's relational state.
    pub fn view_state(&self, name: &str) -> Option<RelationState> {
        self.shared
            .core
            .lock()
            .unwrap()
            .views
            .get(name)
            .map(|v| v.state().clone())
    }

    /// Names of the views the service serves.
    pub fn view_names(&self) -> Vec<String> {
        self.shared
            .core
            .lock()
            .unwrap()
            .views
            .keys()
            .cloned()
            .collect()
    }

    /// A fresh snapshot triple (handle, version, pin LSN) for a
    /// relational session rebasing after a conflict. The returned pin
    /// is already registered; the caller owns releasing it.
    pub(crate) fn snapshot_for(
        &self,
        view: &str,
    ) -> Result<(dme_ansi::ViewSession, u64, u64), ServerError> {
        let core = self.shared.core.lock().unwrap();
        let v = core
            .views
            .get(view)
            .ok_or_else(|| ServerError::UnknownView(view.to_string()))?;
        let pin_lsn = core.next_lsn - 1;
        self.shared.pins.lock().unwrap().pin(pin_lsn);
        self.shared.config.obs.add(Counter::SnapshotOpens, 1);
        Ok((
            dme_ansi::ViewSession::over(Arc::clone(v), Arc::clone(&core.conceptual)),
            core.version,
            pin_lsn,
        ))
    }

    /// Releases a snapshot pin taken by [`SessionService::open_session`]
    /// or [`SessionService::snapshot_for`], letting MVCC garbage
    /// collection advance past it.
    pub(crate) fn unpin(&self, lsn: u64) {
        self.shared.pins.lock().unwrap().unpin(lsn);
    }

    /// The committed conceptual state as of `lsn`, reconstructed by
    /// folding the MVCC version chains over the recovery/boot base
    /// state. Valid for any LSN at or above the garbage-collection
    /// horizon (the oldest live snapshot pin, or the latest full
    /// checkpoint when nothing is pinned).
    pub fn state_at(&self, lsn: u64) -> Result<GraphState, ServerError> {
        let core = self.shared.core.lock().unwrap();
        if let Some(why) = &core.crashed {
            return Err(ServerError::Crashed(why.clone()));
        }
        let mut records: Vec<(u8, Vec<u8>, Vec<u8>)> = Vec::new();
        for store in &core.mvcc {
            for (key, v) in store.latest_upto(lsn) {
                if v.lsn <= core.base_lsn {
                    // Already reflected in the base state.
                    continue;
                }
                let bytes = v.value.expect("service versions carry record bytes");
                records.push((codec::record_class(bytes[0]), key, bytes.to_vec()));
            }
        }
        // Class-then-key order matches the delta codec's canonical
        // order (deletes before inserts), so one lenient fold applies.
        records.sort();
        let mut delta = Vec::new();
        for (_, _, bytes) in &records {
            delta.extend_from_slice(bytes);
        }
        codec::apply_delta_lenient(&core.base, &delta)
    }

    /// The committed schedule so far, in commit (LSN) order — what the
    /// conformance oracle replays sequentially.
    pub fn committed_history(&self) -> Vec<CommittedTxn> {
        self.shared.core.lock().unwrap().history.clone()
    }

    /// The durable bytes so far (what a crash at this instant would
    /// leave, assuming the tails survived).
    pub fn durable_image(&self) -> DurableImage {
        // Lock order: core, then WAL locks ascending — the same total
        // order the commit path uses.
        let core = self.shared.core.lock().unwrap();
        let mut wals: Vec<Vec<u8>> = self
            .shared
            .lanes
            .iter()
            .map(|l| l.wal.lock().unwrap().device.contents())
            .collect();
        let wal = wals.remove(0);
        DurableImage {
            wal,
            checkpoint: core.checkpoints.contents(),
            shard_wals: wals,
        }
    }

    /// Syncs performed across all WAL devices (the group-commit economy
    /// measure).
    pub fn wal_syncs(&self) -> u64 {
        self.shared
            .lanes
            .iter()
            .map(|l| l.wal.lock().unwrap().device.syncs())
            .sum()
    }

    /// Takes a checkpoint now: appends a full conceptual image to the
    /// checkpoint device and syncs it.
    pub fn checkpoint_now(&self) -> Result<(), ServerError> {
        let mut core = self.shared.core.lock().unwrap();
        if let Some(why) = &core.crashed {
            return Err(ServerError::Crashed(why.clone()));
        }
        self.take_checkpoint(&mut core, None)
    }

    /// Derives the next transaction's deterministic trace id. Sessions
    /// call this before translation so the whole admit → replay path
    /// shares one id.
    pub(crate) fn next_trace(&self) -> TraceId {
        TraceId::derive(self.shared.next_txn.fetch_add(1, Ordering::Relaxed))
    }

    /// The per-shard metric registries (one per commit lane): shed
    /// counts, lane depths and latency histograms attributed to the
    /// lane that produced them.
    pub fn shard_metrics(&self) -> &ShardRegistry {
        &self.shared.shard_metrics
    }

    /// The service's trace hub: every transaction's cross-shard span
    /// tree, kept for the most recent [`ServiceConfig::trace_capacity`]
    /// traces.
    pub fn trace_hub(&self) -> &TraceHub {
        &self.shared.trace_hub
    }

    /// A point-in-time copy of the service's full telemetry: global
    /// counters and histograms plus every shard lane's own registry.
    /// This is what the exporters render and what `WatchMetrics`
    /// streams deltas of.
    pub fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot::capture_with_shards(&self.shared.config.obs, &self.shared.shard_metrics)
    }

    /// Looks a transaction's trace up in the hub and renders its
    /// stitched causal tree as JSON; unknown traces get a JSON error
    /// object (a miss is an answer, not a protocol failure).
    pub fn lookup_trace(&self, trace: TraceId) -> String {
        match self.shared.trace_hub.assemble(trace) {
            Some(asm) => asm.to_json(trace),
            None => format!("{{\"error\":\"unknown trace\",\"trace\":\"{trace}\"}}"),
        }
    }

    /// Renders the service's telemetry (counters + latency histograms,
    /// globally and per shard lane) outside the transactional data
    /// path. Works even after a crash — the black box must stay
    /// readable.
    pub(crate) fn render_metrics(&self, json: bool) -> String {
        let snap = self.telemetry_snapshot();
        if json {
            snap.to_json()
        } else {
            snap.to_prometheus_text()
        }
    }

    /// Serves a legacy admin request.
    #[deprecated(
        note = "speak the typed wire API: SessionService::handle with wire::Request::Metrics"
    )]
    pub fn admin(&self, request: codec::AdminRequest) -> String {
        self.render_metrics(matches!(request, codec::AdminRequest::MetricsJson))
    }

    /// Serves a legacy admin request from its wire encoding.
    #[deprecated(
        note = "speak the typed wire API: SessionService::handle_frame with a wire::Request frame"
    )]
    pub fn admin_bytes(&self, bytes: &[u8]) -> Result<String, ServerError> {
        let request = codec::AdminRequest::decode(bytes)?;
        Ok(self.render_metrics(matches!(request, codec::AdminRequest::MetricsJson)))
    }

    /// Appends a checkpoint image to the checkpoint device and syncs
    /// it. Every `full_checkpoint_every`-th image (and always the
    /// first) is a full conceptual state; the ones in between are
    /// incremental — the records the dirty fact keys currently carry,
    /// chained by LSN to the previous image. A durable full image also
    /// drives the storage economy: MVCC versions behind the oldest
    /// snapshot pin are collected, the `state_at` base advances when
    /// nothing pins history, and each shard's WAL is truncated up to
    /// the *previous* full image (keeping one spare chain so a corrupt
    /// newest record still leaves a recoverable image).
    fn take_checkpoint(&self, core: &mut Core, trace: Option<TraceId>) -> Result<(), ServerError> {
        let config = &self.shared.config;
        let obs = &config.obs;
        let _timer = obs.time(Metric::CheckpointLatency);
        let lsn = core.next_lsn - 1;
        let full = core
            .checkpoints_taken
            .is_multiple_of(config.full_checkpoint_every);
        let payload = if full {
            codec::encode_full_checkpoint(&core.conceptual)
        } else {
            let mut records: Vec<(u8, &[u8], Vec<u8>)> = Vec::new();
            let partitions = core.mvcc.len();
            for key in &core.dirty {
                let store = &core.mvcc[codec::mvcc_shard(key, partitions)];
                if let Some(v) = store.version_at(key, lsn) {
                    let bytes = v.value.expect("service versions carry record bytes");
                    records.push((codec::record_class(bytes[0]), key, bytes.to_vec()));
                }
            }
            // Canonical delta order: deletes before inserts, keys
            // sorted within each class.
            records.sort();
            let mut delta = Vec::new();
            for (_, _, bytes) in &records {
                delta.extend_from_slice(bytes);
            }
            codec::encode_incremental_checkpoint(core.last_cp_lsn, &delta)
        };
        let mut buf = Vec::new();
        wal::append_record_traced(&mut buf, lsn, trace.map(TraceId::as_u64), &payload);
        let result = core
            .checkpoints
            .append(&buf)
            .and_then(|_| core.checkpoints.sync());
        match result {
            Ok(()) => {
                core.commits_since_checkpoint = 0;
                core.checkpoints_taken += 1;
                core.last_cp_lsn = lsn;
                core.dirty.clear();
                obs.add(Counter::CheckpointsTaken, 1);
                obs.add(Counter::CheckpointBytes, payload.len() as u64);
                if let Some(t) = trace {
                    obs.trace_event("server/checkpoint", t, || format!("lsn {lsn}"));
                }
                // MVCC garbage collection: versions behind the oldest
                // live snapshot pin (or this checkpoint, whichever is
                // older) can no longer be observed.
                let oldest_pin = self.shared.pins.lock().unwrap().oldest();
                let horizon = oldest_pin.unwrap_or(lsn).min(lsn);
                let mut dropped = 0u64;
                for store in &mut core.mvcc {
                    dropped += store.gc(horizon).versions_dropped;
                }
                if full {
                    core.prev_full_lsn = core.last_full_lsn;
                    core.last_full_lsn = lsn;
                    if horizon == lsn {
                        // Nothing pins history: the current state
                        // becomes the new `state_at` base, after which
                        // single-version delete chains are dead weight
                        // (folding them over the new base is a no-op).
                        core.base = Arc::clone(&core.conceptual);
                        core.base_lsn = lsn;
                        for store in &mut core.mvcc {
                            dropped += store
                                .purge_if(horizon, |v| {
                                    v.value.is_none_or(codec::record_is_delete)
                                })
                                .versions_dropped;
                        }
                    }
                    // Shard WALs are covered up to the *previous* full
                    // image: truncate their fully-covered front batches.
                    if core.prev_full_lsn > 0 {
                        for lane in &self.shared.lanes {
                            lane.wal.lock().unwrap().truncate_upto(core.prev_full_lsn);
                        }
                    }
                }
                if dropped > 0 {
                    obs.add(Counter::VersionsGcd, dropped);
                }
                Ok(())
            }
            Err(e) => {
                core.crashed = Some(e.to_string());
                Err(ServerError::Crashed(e.to_string()))
            }
        }
    }

    /// Routes a transaction to its home commit lane and drives the
    /// protocol until its outcome is known. The calling thread may end
    /// up acting as the lane's batch leader for its own and other
    /// sessions' transactions. A full lane sheds immediately, and the
    /// shed is attributed to the refusing shard's own registry.
    pub(crate) fn submit(
        &self,
        gops: Vec<GraphOp>,
        base_version: Option<u64>,
        trace: TraceId,
        span: u64,
    ) -> Outcome {
        let config = &self.shared.config;
        let shard = shard::home_shard(&self.shared.schema, &gops, config.shards);
        let lane = &self.shared.lanes[shard];
        let metrics = self.shared.shard_metrics.shard(shard);
        let id = {
            let mut q = lane.queue.lock().unwrap();
            if q.pending.len() >= config.queue_depth {
                let depth = q.pending.len();
                drop(q);
                config.obs.add(Counter::RequestsShed, 1);
                metrics.add(Counter::RequestsShed, 1);
                metrics.set_lane_depth(depth as u64);
                let shed_span = self.shared.trace_hub.record(
                    trace,
                    "server/shed",
                    span,
                    Some(shard as u32),
                    || format!("shard {shard} depth {depth}"),
                );
                config
                    .obs
                    .trace_event_linked("server/shed", trace, shed_span, span, || {
                        format!("shard {shard} depth {depth}")
                    });
                return Outcome::Shed { shard, depth };
            }
            let id = q.next_id;
            q.next_id += 1;
            q.pending.push_back(Request {
                id,
                trace,
                span,
                enqueued: std::time::Instant::now(),
                gops,
                base_version,
            });
            metrics.set_lane_depth(q.pending.len() as u64);
            lane.cv.notify_all();
            id
        };
        loop {
            let mut q = lane.queue.lock().unwrap();
            if let Some(out) = q.results.remove(&id) {
                return out;
            }
            if !q.leader && !q.pending.is_empty() {
                q.leader = true;
                let take = match config.commit_mode {
                    CommitMode::Group => config.max_batch.min(q.pending.len()),
                    CommitMode::PerOp => 1,
                };
                let batch: Vec<Request> = q.pending.drain(..take).collect();
                metrics.set_lane_depth(q.pending.len() as u64);
                drop(q);
                let outcomes = self.commit_batch(batch);
                let mut q = lane.queue.lock().unwrap();
                q.leader = false;
                for (rid, out) in outcomes {
                    q.results.insert(rid, out);
                }
                lane.cv.notify_all();
            } else {
                drop(lane.cv.wait(q).unwrap());
            }
        }
    }

    /// Validates, applies and logs a batch: conflicts and aborts are
    /// decided per transaction against the evolving state under the
    /// core lock; survivors share one WAL append + sync per involved
    /// shard, performed with the core lock released so other lanes'
    /// syncs overlap.
    fn commit_batch(&self, batch: Vec<Request>) -> Vec<(u64, Outcome)> {
        let config = &self.shared.config;
        let obs = &config.obs;
        let _span = obs.span("server/commit");
        let mut core = self.shared.core.lock().unwrap();
        let mut outcomes = Vec::with_capacity(batch.len());
        if let Some(why) = core.crashed.clone() {
            for req in batch {
                outcomes.push((req.id, Outcome::Crashed(why.clone())));
            }
            return outcomes;
        }
        let mut staged: Vec<StagedTxn> = Vec::new();
        for req in batch {
            if let Some(bv) = req.base_version {
                if bv != core.version {
                    obs.add(Counter::TxnConflicts, 1);
                    obs.mark("server/conflict", core.version);
                    outcomes.push((req.id, Outcome::Conflict));
                    continue;
                }
            }
            // Advance the views against the pre-state first — operation
            // translation only needs the state the ops depart from — so
            // the conceptual apply can then run in place, O(delta),
            // without cloning the whole state per transaction.
            let verify_timer = obs.time(Metric::VerifyLatency);
            let mut advanced = Vec::with_capacity(core.views.len());
            let mut failure: Option<Outcome> = None;
            for (name, view) in &core.views {
                let mut v = ExternalView::clone(view);
                if let Err(e) = v.apply_conceptual(&req.gops, &core.conceptual) {
                    failure = Some(Outcome::Aborted(format!("view {name}: {e}")));
                    break;
                }
                advanced.push((name.clone(), v));
            }
            if let Some(out) = failure {
                drop(verify_timer);
                obs.add(Counter::TxnsAborted, 1);
                outcomes.push((req.id, out));
                continue;
            }
            // Copy-on-write: the clone inside `make_mut` is paid only
            // when a snapshot still shares this generation — and then
            // once per generation, not once per open session.
            let txn = match GraphOp::apply_all_delta(&req.gops, Arc::make_mut(&mut core.conceptual))
            {
                Ok(txn) => txn,
                Err(e) => {
                    drop(verify_timer);
                    obs.add(Counter::TxnsAborted, 1);
                    outcomes.push((req.id, Outcome::Aborted(e.to_string())));
                    continue;
                }
            };
            if config.lockstep_verify {
                for (name, v) in &advanced {
                    if !v.consistent_with(&core.conceptual) {
                        failure = Some(Outcome::Lockstep(name.clone()));
                        break;
                    }
                }
            }
            drop(verify_timer);
            if let Some(out) = failure {
                GraphOp::undo_txn(Arc::make_mut(&mut core.conceptual), txn);
                obs.add(Counter::TxnsAborted, 1);
                outcomes.push((req.id, out));
                continue;
            }
            // Which equivalence tier vouched for this translation: with
            // lockstep on, every view was checked state equivalent to
            // the advanced conceptual state (Definition 2 within the
            // view's vocabulary); otherwise we rely on the verified
            // operation translation (Definition 1).
            let tier = if config.lockstep_verify {
                "def2-state-equivalence"
            } else {
                "def1-translation"
            };
            let views = core.views.len();
            let verify_span = self
                .shared
                .trace_hub
                .record(req.trace, "server/verify", req.span, None, || {
                    format!("tier={tier} views={views}")
                });
            obs.trace_event_linked("server/verify", req.trace, verify_span, req.span, || {
                format!("tier={tier} views={views}")
            });
            let shards = shard::shard_set(&self.shared.schema, &req.gops, config.shards);
            let lsn = core.next_lsn;
            core.next_lsn += 1;
            core.version += 1;
            let payload = codec::encode_changes(txn.changes());
            // Record every committed change as an LSN-keyed version in
            // its MVCC partition and mark its fact key dirty for the
            // next incremental checkpoint. A storage failure here is a
            // crash (same contract as a device failure: the in-memory
            // state is tainted, only the durable image matters).
            let partitions = core.mvcc.len();
            let mut mvcc_failure: Option<String> = None;
            for change in txn.changes() {
                let key = codec::mvcc_fact_key(change);
                let record = codec::mvcc_fact_record(change);
                let partition = codec::mvcc_shard(&key, partitions);
                if let Err(e) = core.mvcc[partition].put(&key, lsn, &record) {
                    mvcc_failure = Some(format!("mvcc put: {e}"));
                    break;
                }
                core.dirty.insert(key);
            }
            if let Some(why) = mvcc_failure {
                core.crashed = Some(why.clone());
                outcomes.push((req.id, Outcome::Crashed(why.clone())));
                for req in staged.drain(..) {
                    outcomes.push((req.id, Outcome::Crashed(why.clone())));
                }
                return outcomes;
            }
            for (name, v) in advanced {
                core.views.insert(name, Arc::new(v));
            }
            staged.push(StagedTxn {
                id: req.id,
                lsn,
                version: core.version,
                trace: req.trace,
                span: req.span,
                gc_span: 0,
                wal_spans: Vec::new(),
                enqueued: req.enqueued,
                payload,
                ops: req.gops,
                shards,
            });
        }
        if staged.is_empty() {
            return outcomes;
        }
        // Build each involved shard's journal bytes in LSN order; a
        // cross-shard transaction's frame goes to every shard it
        // touches (recovery dedupes by LSN).
        let involved: BTreeSet<usize> = staged
            .iter()
            .flat_map(|s| s.shards.iter().copied())
            .collect();
        let cross = staged.iter().filter(|s| s.shards.len() > 1).count() as u64;
        let mut bufs: BTreeMap<usize, Vec<u8>> =
            involved.iter().map(|&s| (s, Vec::new())).collect();
        // Highest LSN each shard's batch buffer carries (staged is in
        // LSN order, so the last write wins) — the WAL frame map needs
        // it for checkpoint-covered truncation.
        let mut max_lsns: BTreeMap<usize, u64> = BTreeMap::new();
        let mut frames = 0u64;
        let batch_size = staged.len();
        let hub = &self.shared.trace_hub;
        for st in &mut staged {
            // Allocate the journal spans *before* the frames are built,
            // so each shard's frame is stamped with its own WAL span
            // (child of the group-commit span, child of admit). A
            // disabled hub yields span 0, which the WAL codec
            // normalizes back to a plain traced frame.
            st.gc_span = hub.record(st.trace, "server/group_commit", st.span, None, || {
                format!("batch={batch_size}")
            });
            let (lsn, gc_span) = (st.lsn, st.gc_span);
            for &s in &st.shards {
                let wal_span = hub.record(
                    st.trace,
                    "server/wal_append",
                    gc_span,
                    Some(s as u32),
                    || format!("lsn {lsn} shard {s}"),
                );
                st.wal_spans.push((s, wal_span));
                let mut frame = Vec::new();
                wal::append_record_spanned(
                    &mut frame,
                    st.lsn,
                    Some(st.trace.as_u64()),
                    Some((wal_span, gc_span)),
                    &st.payload,
                );
                bufs.get_mut(&s)
                    .expect("buffer per involved shard")
                    .extend_from_slice(&frame);
                max_lsns.insert(s, st.lsn);
                frames += 1;
            }
        }
        let group_timer = obs.time(Metric::GroupCommitLatency);
        // Acquire involved WAL locks in ascending shard order while the
        // core lock is still held (serializing acquisition keeps every
        // shard's log in LSN order), then release the core so other
        // lanes validate and sync concurrently.
        let mut guards: Vec<_> = involved
            .iter()
            .map(|&s| (s, self.shared.lanes[s].wal.lock().unwrap()))
            .collect();
        drop(core);
        let sync_timer = obs.time(Metric::WalSyncLatency);
        let mut failure: Option<DeviceError> = None;
        // Sync in ascending shard order, releasing each shard's WAL
        // lock as soon as its bytes are durable: a cross-shard batch
        // must not keep shard k's log locked while shard j < k is
        // still syncing, or disjoint batches on other lanes serialize
        // behind it.
        for (s, mut shard_wal) in guards.drain(..) {
            let result = shard_wal
                .device
                .append(&bufs[&s])
                .and_then(|_| shard_wal.device.sync());
            if result.is_ok() {
                shard_wal.note_batch(max_lsns[&s], bufs[&s].len() as u64);
            }
            drop(shard_wal);
            if let Err(e) = result {
                failure = Some(e);
                break;
            }
        }
        drop(sync_timer);
        drop(group_timer);
        // Release every WAL lock *before* re-acquiring the core lock:
        // a thread holding WAL locks must never wait on the core, or
        // the lock order above would inverse into a deadlock.
        drop(guards);
        let mut core = self.shared.core.lock().unwrap();
        match failure {
            None => {
                obs.add(Counter::GroupCommits, 1);
                obs.add(Counter::WalRecordsAppended, frames);
                obs.add(Counter::TxnsCommitted, staged.len() as u64);
                if cross > 0 {
                    obs.add(Counter::CrossShardCommits, cross);
                }
                core.commits_since_checkpoint += staged.len() as u64;
                let last_trace = staged.last().map(|s| s.trace);
                // The batch's LSN range is contiguous and disjoint from
                // every other batch's, so one splice keeps the history
                // sorted even when lanes finish out of LSN order.
                let first_lsn = staged[0].lsn;
                let at = core.history.partition_point(|t| t.lsn < first_lsn);
                let mut committed = Vec::with_capacity(batch_size);
                for st in staged {
                    obs.trace_event_linked(
                        "server/group_commit",
                        st.trace,
                        st.gc_span,
                        st.span,
                        || format!("batch={batch_size}"),
                    );
                    let wal_span = st.wal_spans.first().map(|&(_, sp)| sp).unwrap_or(0);
                    obs.trace_event_linked(
                        "server/wal_append",
                        st.trace,
                        wal_span,
                        st.gc_span,
                        || format!("lsn {}", st.lsn),
                    );
                    let latency = st.enqueued.elapsed().as_micros() as u64;
                    obs.record(Metric::CommitLatency, latency);
                    // Attribute the commit to its home lane, the frames
                    // to every shard that journaled one.
                    let home = *st.shards.iter().next().expect("staged txn has a shard");
                    let home_metrics = self.shared.shard_metrics.shard(home);
                    home_metrics.add(Counter::TxnsCommitted, 1);
                    home_metrics.record(Metric::CommitLatency, latency);
                    if st.shards.len() > 1 {
                        home_metrics.add(Counter::CrossShardCommits, 1);
                    }
                    for &(s, _) in &st.wal_spans {
                        self.shared
                            .shard_metrics
                            .shard(s)
                            .add(Counter::WalRecordsAppended, 1);
                    }
                    committed.push(CommittedTxn {
                        lsn: st.lsn,
                        ops: st.ops,
                    });
                    outcomes.push((
                        st.id,
                        Outcome::Committed {
                            lsn: st.lsn,
                            version: st.version,
                        },
                    ));
                }
                core.history.splice(at..at, committed);
                if config.checkpoint_every > 0
                    && core.commits_since_checkpoint >= config.checkpoint_every
                {
                    // A failed checkpoint marks the service crashed; the
                    // commits above are already durable in the WALs.
                    let _ = self.take_checkpoint(&mut core, last_trace);
                }
            }
            Some(e) => {
                // Log-before-acknowledge: a WAL write failed, so none of
                // these commits is acknowledged and the service stops.
                // The in-memory state is tainted; only the image
                // matters. (Shards that synced before the failure keep
                // their frames — recovery may resurrect those
                // unacknowledged transactions, never lose acked ones.)
                core.crashed = Some(e.to_string());
                for st in staged {
                    outcomes.push((st.id, Outcome::Crashed(e.to_string())));
                }
            }
        }
        outcomes
    }
}
