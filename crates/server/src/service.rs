//! The concurrent session service.
//!
//! One conceptual database, many concurrent sessions speaking different
//! application models. All updates funnel through a single commit queue:
//! a submitting thread enqueues its translated conceptual transaction
//! and the first free thread becomes the *leader*, draining the queue
//! and committing the whole batch with **one** WAL append + sync (group
//! commit). Durability follows the classic log-before-acknowledge rule:
//! a commit is reported to its session only after its record is on the
//! log device.
//!
//! Conflict control is optimistic. Relational sessions translate against
//! a snapshot; if another transaction committed first, the snapshot's
//! base version no longer matches and the commit is refused with a
//! conflict — the session rebases and retries with backoff. Graph
//! sessions submit conceptual operations directly, which are
//! position-independent, so they carry no base version and never
//! conflict (they can still *abort* if an operation no longer applies).
//!
//! Aborted transactions never reach the log, so recovery cannot
//! resurrect them: the durable image is exactly a checkpoint plus the
//! clean prefix of committed deltas.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use dme_ansi::ExternalView;
use dme_core::translate::CompletionMode;
use dme_graph::{GraphOp, GraphSchema, GraphState};
use dme_obs::{Counter, Metric, Observer, TraceId};
use dme_relation::{RelationState, RelationalSchema};
use dme_storage::wal;
use dme_storage::WalError;

use crate::codec;
use crate::device::LogDevice;
use crate::error::ServerError;
use crate::session::{Session, SessionKind};

/// A transaction validated and journaled but not yet acknowledged:
/// (request id, lsn, version after, trace, enqueue time, WAL payload,
/// conceptual ops).
type Staged = (
    u64,
    u64,
    u64,
    TraceId,
    std::time::Instant,
    Vec<u8>,
    Vec<GraphOp>,
);

/// How commits are batched through the journal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommitMode {
    /// The leader drains the whole queue and syncs once per batch.
    Group,
    /// One transaction per append + sync (the baseline group commit is
    /// measured against).
    PerOp,
}

/// An external view the service serves to relational sessions.
#[derive(Clone, Debug)]
pub struct ViewSpec {
    /// The view's name (what sessions ask for).
    pub name: String,
    /// Its relational application-model schema.
    pub schema: RelationalSchema,
    /// The completion mode translations into the view use.
    pub mode: CompletionMode,
}

/// Service tuning knobs.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Commit batching mode.
    pub commit_mode: CommitMode,
    /// Take a checkpoint after this many commits (0 = only on demand).
    pub checkpoint_every: u64,
    /// Verify every committed transaction's views against the
    /// conceptual state (Definition 2 within each view's vocabulary).
    /// Defaults to the `lockstep-verify` compile feature.
    pub lockstep_verify: bool,
    /// Commit attempts a relational session makes before giving up on a
    /// conflicted snapshot.
    pub max_attempts: u32,
    /// Base backoff between conflict retries, in microseconds (doubles
    /// each attempt).
    pub backoff_micros: u64,
    /// Observation session for spans and counters.
    pub obs: Observer,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            commit_mode: CommitMode::Group,
            checkpoint_every: 0,
            lockstep_verify: cfg!(feature = "lockstep-verify"),
            max_attempts: 8,
            backoff_micros: 20,
            obs: Observer::disabled(),
        }
    }
}

/// The durable bytes a crash leaves behind: prefixes of the two
/// append-only devices.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DurableImage {
    /// The write-ahead log of committed conceptual deltas.
    pub wal: Vec<u8>,
    /// The appended-checkpoint stream.
    pub checkpoint: Vec<u8>,
}

/// What recovery found and did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoveryReport {
    /// LSN of the checkpoint recovery started from.
    pub checkpoint_lsn: u64,
    /// Committed transactions replayed on top of the checkpoint.
    pub replayed: usize,
    /// The torn/corrupt WAL tail that was truncated, if any.
    pub wal_tail: Option<WalError>,
    /// The torn checkpoint tail that was skipped, if any.
    pub checkpoint_tail: Option<WalError>,
}

/// One committed transaction, as the conformance oracle wants it: its
/// log position and the conceptual operations that were applied.
#[derive(Clone, Debug)]
pub struct CommittedTxn {
    /// Log sequence number.
    pub lsn: u64,
    /// The conceptual operations, in application order.
    pub ops: Vec<GraphOp>,
}

/// What a successful commit tells the session.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommitInfo {
    /// The transaction's log sequence number.
    pub lsn: u64,
    /// The database version after the commit.
    pub version: u64,
    /// Commit attempts used (1 = no conflict).
    pub attempts: u32,
    /// The transaction's trace id — greppable from the observability
    /// transcript and stamped into the transaction's WAL frame.
    pub trace: TraceId,
}

pub(crate) struct Request {
    id: u64,
    trace: TraceId,
    enqueued: std::time::Instant,
    gops: Vec<GraphOp>,
    base_version: Option<u64>,
}

#[derive(Clone, Debug)]
pub(crate) enum Outcome {
    Committed { lsn: u64, version: u64 },
    Conflict,
    Aborted(String),
    Lockstep(String),
    Crashed(String),
}

struct Core {
    conceptual: GraphState,
    views: BTreeMap<String, ExternalView>,
    version: u64,
    next_lsn: u64,
    commits_since_checkpoint: u64,
    history: Vec<CommittedTxn>,
    wal: Box<dyn LogDevice>,
    checkpoints: Box<dyn LogDevice>,
    crashed: Option<String>,
}

struct QueueInner {
    pending: VecDeque<Request>,
    results: BTreeMap<u64, Outcome>,
    leader: bool,
    next_id: u64,
}

pub(crate) struct Shared {
    core: Mutex<Core>,
    queue: Mutex<QueueInner>,
    cv: Condvar,
    pub(crate) config: ServiceConfig,
    pub(crate) open_sessions: AtomicU64,
    next_session: AtomicU64,
    next_txn: AtomicU64,
}

/// The concurrent multi-model session service. Cheap to clone; clones
/// share the database.
#[derive(Clone)]
pub struct SessionService {
    pub(crate) shared: Arc<Shared>,
}

impl std::fmt::Debug for SessionService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let core = self.shared.core.lock().unwrap();
        write!(
            f,
            "SessionService(version {}, {} views, {} committed)",
            core.version,
            core.views.len(),
            core.history.len()
        )
    }
}

impl SessionService {
    /// Boots a fresh service over `initial`, serving `views`, logging to
    /// the given devices. Writes an initial checkpoint so the durable
    /// image is self-contained from the first commit on.
    pub fn new(
        initial: GraphState,
        views: Vec<ViewSpec>,
        config: ServiceConfig,
        wal_device: Box<dyn LogDevice>,
        checkpoint_device: Box<dyn LogDevice>,
    ) -> Result<Self, ServerError> {
        let mut materialized = BTreeMap::new();
        for spec in views {
            let view = ExternalView::materialize(&spec.name, spec.schema, &initial, spec.mode)?;
            materialized.insert(spec.name, view);
        }
        let core = Core {
            conceptual: initial,
            views: materialized,
            version: 0,
            next_lsn: 1,
            commits_since_checkpoint: 0,
            history: Vec::new(),
            wal: wal_device,
            checkpoints: checkpoint_device,
            crashed: None,
        };
        let service = SessionService {
            shared: Arc::new(Shared {
                core: Mutex::new(core),
                queue: Mutex::new(QueueInner {
                    pending: VecDeque::new(),
                    results: BTreeMap::new(),
                    leader: false,
                    next_id: 0,
                }),
                cv: Condvar::new(),
                config,
                open_sessions: AtomicU64::new(0),
                next_session: AtomicU64::new(0),
                next_txn: AtomicU64::new(0),
            }),
        };
        service.checkpoint_now()?;
        Ok(service)
    }

    /// Rebuilds a service from the durable image a crash left behind:
    /// decode the latest complete checkpoint, fold the clean prefix of
    /// logged deltas over it (truncating any torn tail), re-materialize
    /// every view, and resume accepting sessions.
    pub fn recover(
        schema: Arc<GraphSchema>,
        image: &DurableImage,
        views: Vec<ViewSpec>,
        config: ServiceConfig,
        wal_device: Box<dyn LogDevice>,
        checkpoint_device: Box<dyn LogDevice>,
    ) -> Result<(Self, RecoveryReport), ServerError> {
        let obs = config.obs.clone();
        let _span = obs.span("server/recover");
        let (cp, checkpoint_tail) = wal::latest_checkpoint(&image.checkpoint);
        let cp = cp.ok_or_else(|| {
            ServerError::Recovery("no complete checkpoint in the durable image".into())
        })?;
        let mut state = codec::decode_state(schema, &cp.payload)?;
        let (records, wal_tail) = wal::replay_tolerant(&image.wal);
        let mut replayed = 0;
        let mut next_lsn = cp.lsn + 1;
        for r in &records {
            if r.lsn <= cp.lsn {
                next_lsn = next_lsn.max(r.lsn + 1);
                continue;
            }
            let timer = obs.time(Metric::ReplayLatency);
            state = codec::apply_delta(&state, &r.payload)?;
            drop(timer);
            replayed += 1;
            next_lsn = r.lsn + 1;
            obs.add(Counter::WalRecordsReplayed, 1);
            if let Some(t) = r.trace {
                obs.trace_event("server/replay", TraceId(t), || format!("lsn {}", r.lsn));
            }
        }
        let report = RecoveryReport {
            checkpoint_lsn: cp.lsn,
            replayed,
            wal_tail,
            checkpoint_tail,
        };
        let version = replayed as u64;
        let mut materialized = BTreeMap::new();
        for spec in views {
            let view = ExternalView::materialize(&spec.name, spec.schema, &state, spec.mode)?;
            materialized.insert(spec.name, view);
        }
        let core = Core {
            conceptual: state,
            views: materialized,
            version,
            next_lsn,
            commits_since_checkpoint: 0,
            history: Vec::new(),
            wal: wal_device,
            checkpoints: checkpoint_device,
            crashed: None,
        };
        let service = SessionService {
            shared: Arc::new(Shared {
                core: Mutex::new(core),
                queue: Mutex::new(QueueInner {
                    pending: VecDeque::new(),
                    results: BTreeMap::new(),
                    leader: false,
                    next_id: 0,
                }),
                cv: Condvar::new(),
                config,
                open_sessions: AtomicU64::new(0),
                next_session: AtomicU64::new(0),
                next_txn: AtomicU64::new(0),
            }),
        };
        // Re-anchor durability: the recovered state becomes the new
        // checkpoint, so the (possibly torn) old devices are no longer
        // load-bearing.
        service.checkpoint_now()?;
        Ok((service, report))
    }

    /// Opens a session. Graph sessions speak conceptual operations;
    /// relational sessions are bound to one external view and get a
    /// snapshot handle over it.
    pub fn open_session(&self, kind: SessionKind) -> Result<Session, ServerError> {
        let obs = &self.shared.config.obs;
        let _span = obs.span("server/admit");
        let _timer = obs.time(Metric::AdmitLatency);
        let snapshot = {
            let core = self.shared.core.lock().unwrap();
            if let Some(why) = &core.crashed {
                return Err(ServerError::Crashed(why.clone()));
            }
            match &kind {
                SessionKind::Graph => None,
                SessionKind::Relational { view } => {
                    let v = core
                        .views
                        .get(view)
                        .ok_or_else(|| ServerError::UnknownView(view.clone()))?;
                    Some((
                        dme_ansi::ViewSession::over(v, core.conceptual.clone()),
                        core.version,
                    ))
                }
            }
        };
        let id = self.shared.next_session.fetch_add(1, Ordering::Relaxed);
        self.shared.open_sessions.fetch_add(1, Ordering::Relaxed);
        obs.add(Counter::SessionsOpened, 1);
        Ok(Session::new(self.clone(), id, kind, snapshot))
    }

    /// Number of currently open sessions.
    pub fn open_sessions(&self) -> u64 {
        self.shared.open_sessions.load(Ordering::Relaxed)
    }

    /// The current database version (one bump per commit).
    pub fn version(&self) -> u64 {
        self.shared.core.lock().unwrap().version
    }

    /// A snapshot of the conceptual state.
    pub fn conceptual(&self) -> GraphState {
        self.shared.core.lock().unwrap().conceptual.clone()
    }

    /// A snapshot of one external view's relational state.
    pub fn view_state(&self, name: &str) -> Option<RelationState> {
        self.shared
            .core
            .lock()
            .unwrap()
            .views
            .get(name)
            .map(|v| v.state().clone())
    }

    /// Names of the views the service serves.
    pub fn view_names(&self) -> Vec<String> {
        self.shared.core.lock().unwrap().views.keys().cloned().collect()
    }

    /// A fresh snapshot pair for a relational session rebasing after a
    /// conflict.
    pub(crate) fn snapshot_for(
        &self,
        view: &str,
    ) -> Result<(dme_ansi::ViewSession, u64), ServerError> {
        let core = self.shared.core.lock().unwrap();
        let v = core
            .views
            .get(view)
            .ok_or_else(|| ServerError::UnknownView(view.to_string()))?;
        Ok((
            dme_ansi::ViewSession::over(v, core.conceptual.clone()),
            core.version,
        ))
    }

    /// The committed schedule so far, in commit order — what the
    /// conformance oracle replays sequentially.
    pub fn committed_history(&self) -> Vec<CommittedTxn> {
        self.shared.core.lock().unwrap().history.clone()
    }

    /// The durable bytes so far (what a crash at this instant would
    /// leave, assuming the tail survived).
    pub fn durable_image(&self) -> DurableImage {
        let core = self.shared.core.lock().unwrap();
        DurableImage {
            wal: core.wal.contents(),
            checkpoint: core.checkpoints.contents(),
        }
    }

    /// Syncs performed by the WAL device (the group-commit economy
    /// measure).
    pub fn wal_syncs(&self) -> u64 {
        self.shared.core.lock().unwrap().wal.syncs()
    }

    /// Takes a checkpoint now: appends a full conceptual image to the
    /// checkpoint device and syncs it.
    pub fn checkpoint_now(&self) -> Result<(), ServerError> {
        let mut core = self.shared.core.lock().unwrap();
        if let Some(why) = &core.crashed {
            return Err(ServerError::Crashed(why.clone()));
        }
        Self::take_checkpoint(&self.shared.config, &mut core, None)
    }

    /// Derives the next transaction's deterministic trace id. Sessions
    /// call this before translation so the whole admit → replay path
    /// shares one id.
    pub(crate) fn next_trace(&self) -> TraceId {
        TraceId::derive(self.shared.next_txn.fetch_add(1, Ordering::Relaxed))
    }

    /// Serves an admin request: a rendering of the service's telemetry
    /// (counters + latency histograms) outside the transactional data
    /// path. Works even after a crash — the black box must stay
    /// readable.
    pub fn admin(&self, request: codec::AdminRequest) -> String {
        let obs = &self.shared.config.obs;
        match request {
            codec::AdminRequest::MetricsText => dme_obs::prometheus_text(obs),
            codec::AdminRequest::MetricsJson => dme_obs::json_snapshot(obs),
        }
    }

    /// Serves an admin request from its wire encoding (the byte form
    /// clients put on the control channel).
    pub fn admin_bytes(&self, bytes: &[u8]) -> Result<String, ServerError> {
        Ok(self.admin(codec::AdminRequest::decode(bytes)?))
    }

    fn take_checkpoint(
        config: &ServiceConfig,
        core: &mut Core,
        trace: Option<TraceId>,
    ) -> Result<(), ServerError> {
        let obs = &config.obs;
        let _timer = obs.time(Metric::CheckpointLatency);
        let lsn = core.next_lsn - 1;
        let payload = codec::encode_state(&core.conceptual);
        let mut buf = Vec::new();
        wal::append_record_traced(&mut buf, lsn, trace.map(TraceId::as_u64), &payload);
        let result = core.checkpoints.append(&buf).and_then(|_| core.checkpoints.sync());
        match result {
            Ok(()) => {
                core.commits_since_checkpoint = 0;
                obs.add(Counter::CheckpointsTaken, 1);
                if let Some(t) = trace {
                    obs.trace_event("server/checkpoint", t, || format!("lsn {lsn}"));
                }
                Ok(())
            }
            Err(e) => {
                core.crashed = Some(e.to_string());
                Err(ServerError::Crashed(e.to_string()))
            }
        }
    }

    /// Enqueues a transaction and drives the commit protocol until its
    /// outcome is known. The calling thread may end up acting as the
    /// batch leader for its own and other sessions' transactions.
    pub(crate) fn submit(
        &self,
        gops: Vec<GraphOp>,
        base_version: Option<u64>,
        trace: TraceId,
    ) -> Outcome {
        let id = {
            let mut q = self.shared.queue.lock().unwrap();
            let id = q.next_id;
            q.next_id += 1;
            q.pending.push_back(Request {
                id,
                trace,
                enqueued: std::time::Instant::now(),
                gops,
                base_version,
            });
            self.shared.cv.notify_all();
            id
        };
        loop {
            let mut q = self.shared.queue.lock().unwrap();
            if let Some(out) = q.results.remove(&id) {
                return out;
            }
            if !q.leader && !q.pending.is_empty() {
                q.leader = true;
                let batch: Vec<Request> = match self.shared.config.commit_mode {
                    CommitMode::Group => q.pending.drain(..).collect(),
                    CommitMode::PerOp => {
                        vec![q.pending.pop_front().expect("queue is nonempty")]
                    }
                };
                drop(q);
                let outcomes = self.commit_batch(batch);
                let mut q = self.shared.queue.lock().unwrap();
                q.leader = false;
                for (rid, out) in outcomes {
                    q.results.insert(rid, out);
                }
                self.shared.cv.notify_all();
            } else {
                drop(self.shared.cv.wait(q).unwrap());
            }
        }
    }

    /// Validates, applies and logs a batch: conflicts and aborts are
    /// decided per transaction against the evolving state; survivors
    /// share one WAL append + sync.
    fn commit_batch(&self, batch: Vec<Request>) -> Vec<(u64, Outcome)> {
        let config = &self.shared.config;
        let obs = &config.obs;
        let _span = obs.span("server/commit");
        let mut core = self.shared.core.lock().unwrap();
        let mut outcomes = Vec::with_capacity(batch.len());
        if let Some(why) = core.crashed.clone() {
            for req in batch {
                outcomes.push((req.id, Outcome::Crashed(why.clone())));
            }
            return outcomes;
        }
        let mut staged: Vec<Staged> = Vec::new();
        for req in batch {
            if let Some(bv) = req.base_version {
                if bv != core.version {
                    obs.add(Counter::TxnConflicts, 1);
                    obs.mark("server/conflict", core.version);
                    outcomes.push((req.id, Outcome::Conflict));
                    continue;
                }
            }
            let before = core.conceptual.clone();
            let after = match GraphOp::apply_all(&req.gops, &before) {
                Ok(after) => after,
                Err(e) => {
                    obs.add(Counter::TxnsAborted, 1);
                    outcomes.push((req.id, Outcome::Aborted(e.to_string())));
                    continue;
                }
            };
            let verify_timer = obs.time(Metric::VerifyLatency);
            let mut advanced = Vec::with_capacity(core.views.len());
            let mut failure: Option<Outcome> = None;
            for (name, view) in &core.views {
                let mut v = view.clone();
                if let Err(e) = v.apply_conceptual(&req.gops, &before) {
                    failure = Some(Outcome::Aborted(format!("view {name}: {e}")));
                    break;
                }
                if config.lockstep_verify && !v.consistent_with(&after) {
                    failure = Some(Outcome::Lockstep(name.clone()));
                    break;
                }
                advanced.push((name.clone(), v));
            }
            drop(verify_timer);
            if let Some(out) = failure {
                obs.add(Counter::TxnsAborted, 1);
                outcomes.push((req.id, out));
                continue;
            }
            // Which equivalence tier vouched for this translation: with
            // lockstep on, every view was checked state equivalent to
            // the advanced conceptual state (Definition 2 within the
            // view's vocabulary); otherwise we rely on the verified
            // operation translation (Definition 1).
            obs.trace_event("server/verify", req.trace, || {
                format!(
                    "tier={} views={}",
                    if config.lockstep_verify {
                        "def2-state-equivalence"
                    } else {
                        "def1-translation"
                    },
                    core.views.len()
                )
            });
            let lsn = core.next_lsn;
            core.next_lsn += 1;
            core.version += 1;
            let payload = codec::encode_delta(&before, &after);
            core.conceptual = after;
            for (name, v) in advanced {
                core.views.insert(name, v);
            }
            staged.push((
                req.id,
                lsn,
                core.version,
                req.trace,
                req.enqueued,
                payload,
                req.gops,
            ));
        }
        if staged.is_empty() {
            return outcomes;
        }
        let group_timer = obs.time(Metric::GroupCommitLatency);
        let mut buf = Vec::new();
        for (_, lsn, _, trace, _, payload, _) in &staged {
            wal::append_record_traced(&mut buf, *lsn, Some(trace.as_u64()), payload);
        }
        let sync_timer = obs.time(Metric::WalSyncLatency);
        let result = core.wal.append(&buf).and_then(|_| core.wal.sync());
        drop(sync_timer);
        drop(group_timer);
        match result {
            Ok(()) => {
                obs.add(Counter::GroupCommits, 1);
                obs.add(Counter::WalRecordsAppended, staged.len() as u64);
                obs.add(Counter::TxnsCommitted, staged.len() as u64);
                core.commits_since_checkpoint += staged.len() as u64;
                let batch_size = staged.len();
                let last_trace = staged.last().map(|s| s.3);
                for (rid, lsn, version, trace, enqueued, _, ops) in staged {
                    obs.trace_event("server/group_commit", trace, || {
                        format!("batch={batch_size}")
                    });
                    obs.trace_event("server/wal_append", trace, || format!("lsn {lsn}"));
                    obs.record(
                        Metric::CommitLatency,
                        enqueued.elapsed().as_micros() as u64,
                    );
                    core.history.push(CommittedTxn { lsn, ops });
                    outcomes.push((rid, Outcome::Committed { lsn, version }));
                }
                if config.checkpoint_every > 0
                    && core.commits_since_checkpoint >= config.checkpoint_every
                {
                    // A failed checkpoint marks the service crashed; the
                    // commits above are already durable in the WAL.
                    let _ = Self::take_checkpoint(config, &mut core, last_trace);
                }
            }
            Err(e) => {
                // Log-before-acknowledge: the WAL write failed, so no
                // commit is acknowledged and the service stops. The
                // in-memory state is tainted; only the image matters.
                core.crashed = Some(e.to_string());
                for (rid, ..) in staged {
                    outcomes.push((rid, Outcome::Crashed(e.to_string())));
                }
            }
        }
        outcomes
    }
}
