//! The internal level: conceptual state mapped onto the storage engine.
//!
//! Entities are stored one record per entity in a per-type table
//! (`entity:<type>`, columns: characteristics in name order);
//! associations one record per association in a per-predicate table
//! (`assoc:<predicate>`, columns: role keys in role order). Updates are
//! deltas applied inside a single storage transaction, so a conceptual
//! operation that touches many objects (a semantic unit) is atomic at
//! the internal level too.
//!
//! [`InternalLevel::reconstruct`] maps the stored bytes back to a
//! conceptual state — used by consistency audits to show that the
//! internal→conceptual mapping, unlike the external ones, forgets
//! implementation detail (record pointers, page layout) rather than
//! preserving a 1-1 correspondence.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use dme_storage::{RecordStore, StoreError};
use dme_value::{Tuple, Value};

use dme_graph::{Association, Entity, EntityRef, GraphSchema, GraphState};

/// Errors raised by the internal level.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InternalError {
    /// A storage failure.
    Store(String),
    /// Stored bytes did not decode to a valid conceptual object.
    Corrupt(String),
}

impl fmt::Display for InternalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InternalError::Store(s) => write!(f, "storage error: {s}"),
            InternalError::Corrupt(s) => write!(f, "corrupt internal state: {s}"),
        }
    }
}

impl std::error::Error for InternalError {}

impl From<StoreError> for InternalError {
    fn from(e: StoreError) -> Self {
        InternalError::Store(e.to_string())
    }
}

fn entity_table(entity_type: &str) -> String {
    format!("entity:{entity_type}")
}

fn assoc_table(predicate: &str) -> String {
    format!("assoc:{predicate}")
}

fn entity_tuple(schema: &GraphSchema, e: &Entity) -> Tuple {
    // Characteristics in name order (BTreeMap iteration order).
    let _ = schema;
    Tuple::new(e.characteristics.values().map(|a| Value::Atom(a.clone())))
}

fn assoc_tuple(a: &Association) -> Tuple {
    Tuple::new(a.roles.values().map(|e| Value::Atom(e.key.clone())))
}

/// The internal level of the ANSI architecture.
pub struct InternalLevel {
    store: RecordStore,
}

impl fmt::Debug for InternalLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "InternalLevel({:?})", self.store)
    }
}

impl InternalLevel {
    /// Creates the storage layout for a conceptual schema and loads the
    /// given initial state.
    pub fn new(state: &GraphState) -> Result<Self, InternalError> {
        let schema = state.schema();
        let mut store = RecordStore::new();
        for et in schema.universe().entity_types() {
            store.create_table(entity_table(et.name().as_str()))?;
        }
        for pred in schema.universe().predicates() {
            store.create_table(assoc_table(pred.name().as_str()))?;
        }
        let mut level = InternalLevel { store };
        let empty = GraphState::empty(Arc::clone(schema));
        level.apply_delta(&empty, state)?;
        Ok(level)
    }

    /// Applies the difference between two conceptual states atomically.
    pub fn apply_delta(
        &mut self,
        before: &GraphState,
        after: &GraphState,
    ) -> Result<(), InternalError> {
        let schema = Arc::clone(before.schema());
        let before_entities: BTreeSet<&Entity> = before.entities().collect();
        let after_entities: BTreeSet<&Entity> = after.entities().collect();
        let before_assocs: BTreeSet<&Association> = before.associations().collect();
        let after_assocs: BTreeSet<&Association> = after.associations().collect();

        let mut txn = self.store.begin();
        for e in before_entities.difference(&after_entities) {
            txn.delete(
                &entity_table(e.entity_type.as_str()),
                &entity_tuple(&schema, e),
            )?;
        }
        for e in after_entities.difference(&before_entities) {
            txn.insert(
                &entity_table(e.entity_type.as_str()),
                entity_tuple(&schema, e),
            )?;
        }
        for a in before_assocs.difference(&after_assocs) {
            txn.delete(&assoc_table(a.predicate.as_str()), &assoc_tuple(a))?;
        }
        for a in after_assocs.difference(&before_assocs) {
            txn.insert(&assoc_table(a.predicate.as_str()), assoc_tuple(a))?;
        }
        txn.commit();
        Ok(())
    }

    /// Rebuilds the conceptual state from storage.
    pub fn reconstruct(&self, schema: Arc<GraphSchema>) -> Result<GraphState, InternalError> {
        let mut state = GraphState::empty(Arc::clone(&schema));
        for et in schema.universe().entity_types() {
            let chars: Vec<_> = et.characteristics().map(|(c, _)| c.clone()).collect();
            for tuple in self.store.scan(&entity_table(et.name().as_str()))? {
                if tuple.arity() != chars.len() {
                    return Err(InternalError::Corrupt(format!(
                        "entity record arity {} != {} characteristics",
                        tuple.arity(),
                        chars.len()
                    )));
                }
                let entity = Entity::new(
                    et.name().clone(),
                    chars.iter().cloned().zip(
                        tuple
                            .values()
                            .map(|v| v.as_atom().cloned().expect("entity records hold atoms")),
                    ),
                );
                state
                    .insert_entity_raw(entity)
                    .map_err(|e| InternalError::Corrupt(e.to_string()))?;
            }
        }
        for pred in schema.universe().predicates() {
            let cases: Vec<_> = pred.cases().map(|(c, t)| (c.clone(), t.clone())).collect();
            for tuple in self.store.scan(&assoc_table(pred.name().as_str()))? {
                if tuple.arity() != cases.len() {
                    return Err(InternalError::Corrupt("association record arity".into()));
                }
                let assoc = Association::new(
                    pred.name().clone(),
                    cases.iter().zip(tuple.values()).map(|((case, et), v)| {
                        (
                            case.clone(),
                            EntityRef::new(
                                et.clone(),
                                v.as_atom()
                                    .cloned()
                                    .expect("association records hold atoms"),
                            ),
                        )
                    }),
                );
                state
                    .insert_association_raw(assoc)
                    .map_err(|e| InternalError::Corrupt(e.to_string()))?;
            }
        }
        Ok(state)
    }

    /// Storage-level statistics: (tables, total records).
    pub fn stats(&self) -> (usize, usize) {
        let tables: Vec<_> = self.store.tables().cloned().collect();
        let records = tables
            .iter()
            .map(|t| self.store.len(t.as_str()).unwrap_or(0))
            .sum();
        (tables.len(), records)
    }

    /// Compacts the underlying heaps.
    pub fn vacuum(&mut self) {
        self.store.vacuum();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dme_graph::fixtures as gfix;
    use dme_graph::GraphOp;
    use dme_value::Atom;

    #[test]
    fn round_trip_figure4() {
        let g = gfix::figure4_state();
        let level = InternalLevel::new(&g).unwrap();
        let rebuilt = level.reconstruct(Arc::clone(g.schema())).unwrap();
        assert_eq!(rebuilt, g);
        let (tables, records) = level.stats();
        assert_eq!(tables, 4); // 2 entity types + 2 predicates
        assert_eq!(records, 5 + 3);
    }

    #[test]
    fn deltas_track_operations() {
        let g = gfix::figure4_state();
        let mut level = InternalLevel::new(&g).unwrap();
        let op = GraphOp::InsertAssociation(Association::new(
            "supervise",
            [
                ("agent", EntityRef::new("employee", Atom::str("G.Wayshum"))),
                ("object", EntityRef::new("employee", Atom::str("T.Manhart"))),
            ],
        ));
        let g2 = op.apply(&g).unwrap();
        level.apply_delta(&g, &g2).unwrap();
        let rebuilt = level.reconstruct(Arc::clone(g.schema())).unwrap();
        assert_eq!(rebuilt, g2);
    }

    #[test]
    fn unit_deletion_is_atomic_in_storage() {
        let g = gfix::figure4_state();
        let mut level = InternalLevel::new(&g).unwrap();
        let premise = gfix::figure8_premise_state();
        level.apply_delta(&g, &premise).unwrap();
        let rebuilt = level.reconstruct(Arc::clone(g.schema())).unwrap();
        assert_eq!(rebuilt, premise);
        let (_, records) = level.stats();
        assert_eq!(records, 4 + 2);
    }

    #[test]
    fn vacuum_preserves_state() {
        let g = gfix::figure4_state();
        let mut level = InternalLevel::new(&g).unwrap();
        let premise = gfix::figure8_premise_state();
        level.apply_delta(&g, &premise).unwrap();
        level.vacuum();
        assert_eq!(level.reconstruct(Arc::clone(g.schema())).unwrap(), premise);
    }
}
