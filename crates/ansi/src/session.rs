//! Session handles over external views.
//!
//! The conclusion's payoff claim — operation equivalence "would actually
//! allow the implementation of a database system which provides users of
//! two different data models with access to the same data" — needs a
//! per-user object: each user session holds a *snapshot* of its external
//! view paired with the conceptual state it was materialized against,
//! translates its own relational operations up to conceptual operations,
//! and advances by translating committed conceptual operations back
//! down. The concurrent session service (`dme-server`) hands one of
//! these to every relational session; graph sessions speak the
//! conceptual model directly and need no handle.

use dme_core::translate::{relational_op_to_graph, CompletionMode, TranslateError};
use dme_graph::{GraphOp, GraphState};
use dme_relation::{RelOp, RelationState, RelationalSchema};
use std::sync::Arc;

use crate::view::ExternalView;

/// A session's private, snapshot-isolated handle over one external view.
///
/// The handle *shares* the view state and the conceptual state it was
/// snapshotted against (`Arc` copy-on-write): opening a session is two
/// reference bumps, not a state clone, and the shared owner pays a copy
/// only when it mutates a state some snapshot still pins. Translation
/// therefore never races the shared database: re-snapshotting after a
/// commit conflict is [`ViewSession::rebase`].
#[derive(Clone)]
pub struct ViewSession {
    view: Arc<ExternalView>,
    conceptual: Arc<GraphState>,
}

impl std::fmt::Debug for ViewSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ViewSession({:?})", self.view)
    }
}

impl ViewSession {
    /// Snapshots a session handle over `view`, paired with the
    /// conceptual state it is currently consistent with. O(1): both
    /// states are shared, not cloned.
    pub fn over(view: Arc<ExternalView>, conceptual: Arc<GraphState>) -> Self {
        ViewSession { view, conceptual }
    }

    /// The view's name.
    pub fn name(&self) -> &str {
        self.view.name()
    }

    /// The view's application-model schema.
    pub fn schema(&self) -> &Arc<RelationalSchema> {
        self.view.schema()
    }

    /// The snapshot's relational state (the session's reads).
    pub fn state(&self) -> &RelationState {
        self.view.state()
    }

    /// The completion mode translations into this view use.
    pub fn mode(&self) -> CompletionMode {
        self.view.mode()
    }

    /// The conceptual state this snapshot is paired with.
    pub fn conceptual(&self) -> &GraphState {
        &self.conceptual
    }

    /// A shared handle on the snapshot's conceptual state (no clone).
    pub fn conceptual_shared(&self) -> Arc<GraphState> {
        Arc::clone(&self.conceptual)
    }

    /// Translates one of the session's relational operations up to the
    /// conceptual operations it is equivalent to, against this snapshot.
    pub fn translate_up(&self, op: &RelOp) -> Result<Vec<GraphOp>, TranslateError> {
        relational_op_to_graph(op, self.view.state(), &self.conceptual)
    }

    /// Advances the snapshot over committed conceptual operations,
    /// returning the relational-side schedule that was applied. This is
    /// where the copy-on-write copy happens (if the underlying states
    /// are still shared with other snapshots).
    pub fn advance(&mut self, gops: &[GraphOp]) -> Result<Vec<RelOp>, TranslateError> {
        let before = Arc::clone(&self.conceptual);
        let applied = Arc::make_mut(&mut self.view).apply_conceptual(gops, &before)?;
        self.conceptual = Arc::new(
            GraphOp::apply_all(gops, &before)
                .map_err(|e| TranslateError::SourceOpFailed(e.to_string()))?,
        );
        Ok(applied)
    }

    /// Re-snapshots against fresh authoritative states (after a commit
    /// conflict invalidated this snapshot).
    pub fn rebase(&mut self, view: Arc<ExternalView>, conceptual: Arc<GraphState>) {
        self.view = view;
        self.conceptual = conceptual;
    }

    /// Definition 2 within the view's vocabulary: the snapshot pair is
    /// state equivalent.
    pub fn consistent(&self) -> bool {
        self.view.consistent_with(&self.conceptual)
    }

    /// Consumes the handle, yielding the snapshot view (unshared).
    pub fn into_view(self) -> ExternalView {
        Arc::try_unwrap(self.view).unwrap_or_else(|shared| (*shared).clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dme_graph::fixtures as gfix;
    use dme_graph::{Association, EntityRef};
    use dme_relation::fixtures as rfix;
    use dme_value::{tuple, Atom, Value};

    fn machine_shop_session() -> ViewSession {
        let conceptual = gfix::figure4_state();
        let view = ExternalView::materialize(
            "shop",
            rfix::machine_shop_schema(),
            &conceptual,
            CompletionMode::StateCompleted,
        )
        .unwrap();
        ViewSession::over(Arc::new(view), Arc::new(conceptual))
    }

    #[test]
    fn snapshot_reads_and_metadata() {
        let s = machine_shop_session();
        assert_eq!(s.name(), "shop");
        assert_eq!(s.state(), &rfix::figure3_state());
        assert_eq!(s.mode(), CompletionMode::StateCompleted);
        assert!(s.consistent());
        assert!(format!("{s:?}").contains("ViewSession"));
    }

    #[test]
    fn translate_up_then_advance_round_trips() {
        let mut s = machine_shop_session();
        let rop = RelOp::insert("Jobs", [tuple!["G.Wayshum", "T.Manhart", Value::Null]]);
        let gops = s.translate_up(&rop).unwrap();
        assert_eq!(gops.len(), 1);
        let rops = s.advance(&gops).unwrap();
        assert_eq!(rops.len(), 1);
        assert_eq!(s.conceptual(), &gfix::figure6_state());
        assert_eq!(s.state(), &rfix::figure7_state());
        assert!(s.consistent());
    }

    #[test]
    fn advance_does_not_disturb_sibling_snapshots() {
        // Two sessions share one snapshot pair; advancing one must
        // copy-on-write, never mutate through the shared Arc.
        let s0 = machine_shop_session();
        let mut s1 = s0.clone();
        let rop = RelOp::insert("Jobs", [tuple!["G.Wayshum", "T.Manhart", Value::Null]]);
        let gops = s1.translate_up(&rop).unwrap();
        s1.advance(&gops).unwrap();
        assert_eq!(s0.conceptual(), &gfix::figure4_state(), "s0 unmoved");
        assert_eq!(s0.state(), &rfix::figure3_state());
        assert_eq!(s1.conceptual(), &gfix::figure6_state());
        assert!(s0.consistent() && s1.consistent());
    }

    #[test]
    fn subset_view_sessions_skip_invisible_commits() {
        let conceptual = gfix::figure4_state();
        let view = ExternalView::materialize(
            "personnel",
            rfix::personnel_schema(),
            &conceptual,
            CompletionMode::Minimal,
        )
        .unwrap();
        let mut s = ViewSession::over(Arc::new(view), Arc::new(conceptual.clone()));
        // A machine-unit deletion is invisible to the personnel view.
        let unit = dme_graph::unit::deletion_unit(
            &conceptual,
            [EntityRef::new("machine", Atom::str("NZ745"))],
            [],
        );
        let rops = s.advance(&[GraphOp::DeleteUnit(unit)]).unwrap();
        assert!(rops.is_empty());
        assert!(s.consistent());
    }

    #[test]
    fn rebase_replaces_the_snapshot() {
        let mut s = machine_shop_session();
        let op = GraphOp::InsertAssociation(Association::new(
            "supervise",
            [
                ("agent", EntityRef::new("employee", Atom::str("G.Wayshum"))),
                ("object", EntityRef::new("employee", Atom::str("T.Manhart"))),
            ],
        ));
        let moved = op.apply(s.conceptual()).unwrap();
        let fresh = ExternalView::materialize(
            "shop",
            rfix::machine_shop_schema(),
            &moved,
            CompletionMode::StateCompleted,
        )
        .unwrap();
        s.rebase(Arc::new(fresh), Arc::new(moved.clone()));
        assert_eq!(s.conceptual(), &moved);
        assert!(s.consistent());
        assert_eq!(s.into_view().state(), &rfix::figure7_state());
    }
}
