#![deny(missing_docs)]

//! # dme-ansi — the ANSI/SPARC three-schema multi-model architecture
//!
//! §1.2 of the paper describes the architecture that motivates the whole
//! equivalence framework: an **internal schema** (physical storage), a
//! **conceptual schema** (the application model proper) and multiple
//! **external schemas** (per-user views), with mapping functions between
//! the levels. The conclusion sketches the payoff: "the ability to
//! support equivalent relational and graph application models accessing
//! a shared database would allow the best of both worlds — a simple
//! relational view for retrieval and a graph model for updating."
//!
//! [`MultiModelDatabase`] is that system:
//!
//! * the **conceptual level** is a semantic graph application model
//!   (`dme-graph`), per the paper's recommendation of semantic models for
//!   the conceptual schema;
//! * the **internal level** is a `dme-storage` record store holding an
//!   encoded representation of the conceptual state, updated atomically
//!   (journaled transactions) by a conceptual→internal mapping that is
//!   deliberately many-to-one (page layouts and record pointers have "no
//!   equivalent at the conceptual level", §3.2.3);
//! * each **external level** is a semantic relation application model
//!   (`dme-relation`) kept in lockstep through the verified operation
//!   translators of `dme-core` — several relational views of the same
//!   graph conceptual model, exactly Figure 9's "many different
//!   relational views";
//! * updates may enter at *any* level's interface: an external update is
//!   translated to the conceptual model and re-broadcast to every other
//!   external view and to storage.
//!
//! Concurrency: the database is shared via `Arc` and guarded by a
//! `parking_lot` read-write lock; readers snapshot, writers serialize.

pub mod database;
pub mod internal;
pub mod session;
pub mod view;

pub use database::{AnsiError, MultiModelDatabase};
pub use internal::InternalLevel;
pub use session::ViewSession;
pub use view::ExternalView;
