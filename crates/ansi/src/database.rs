//! The multi-model database: all three schema levels wired together.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;

use dme_core::translate::{relational_op_to_graph, CompletionMode, TranslateError};
use dme_core::{FactInterner, InternerStats};
use dme_graph::{GraphOp, GraphOpError, GraphState};
use dme_relation::{RelOp, RelationState, RelationalSchema};

use crate::internal::{InternalError, InternalLevel};
use crate::view::ExternalView;

/// Errors raised by the multi-model database.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AnsiError {
    /// The conceptual operation failed (the error state).
    Conceptual(String),
    /// An inter-level translation failed.
    Translate(String),
    /// The internal level failed.
    Internal(String),
    /// No view with this name.
    NoSuchView(String),
    /// A view with this name already exists.
    ViewExists(String),
    /// A consistency audit found diverged levels.
    Inconsistent(String),
}

impl fmt::Display for AnsiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnsiError::Conceptual(s) => write!(f, "conceptual operation failed: {s}"),
            AnsiError::Translate(s) => write!(f, "translation failed: {s}"),
            AnsiError::Internal(s) => write!(f, "internal level failed: {s}"),
            AnsiError::NoSuchView(s) => write!(f, "no external view `{s}`"),
            AnsiError::ViewExists(s) => write!(f, "external view `{s}` already exists"),
            AnsiError::Inconsistent(s) => write!(f, "levels diverged: {s}"),
        }
    }
}

impl std::error::Error for AnsiError {}

impl From<TranslateError> for AnsiError {
    fn from(e: TranslateError) -> Self {
        AnsiError::Translate(e.to_string())
    }
}

impl From<GraphOpError> for AnsiError {
    fn from(e: GraphOpError) -> Self {
        AnsiError::Conceptual(e.to_string())
    }
}

impl From<InternalError> for AnsiError {
    fn from(e: InternalError) -> Self {
        AnsiError::Internal(e.to_string())
    }
}

struct Levels {
    conceptual: GraphState,
    internal: InternalLevel,
    externals: BTreeMap<String, ExternalView>,
}

/// A shared database presenting one conceptual (graph) application model
/// through any number of external (relational) application models, over
/// a storage-backed internal level.
///
/// ```
/// use dme_ansi::MultiModelDatabase;
/// use dme_core::translate::CompletionMode;
/// use dme_graph::fixtures as gfix;
/// use dme_relation::fixtures as rfix;
/// use dme_relation::RelOp;
/// use dme_value::{tuple, Value};
///
/// let db = MultiModelDatabase::new(gfix::figure4_state()).unwrap();
/// db.add_view("jobs", rfix::machine_shop_schema(), CompletionMode::StateCompleted)
///     .unwrap();
/// // The view materializes to the paper's Figure 3 state…
/// assert_eq!(db.view_state("jobs").unwrap(), rfix::figure3_state());
/// // …and a relational update propagates through the conceptual model.
/// let op = RelOp::insert("Jobs", [tuple!["G.Wayshum", "T.Manhart", Value::Null]]);
/// db.update_view("jobs", &op).unwrap();
/// assert_eq!(db.conceptual(), gfix::figure6_state());
/// db.verify_consistency().unwrap();
/// ```
pub struct MultiModelDatabase {
    levels: RwLock<Levels>,
    /// Hash-consed compilation of conceptual states for the audit:
    /// auditing n views (or re-auditing an unchanged database) compiles
    /// the conceptual state once, not n times.
    audit_cache: FactInterner<GraphState>,
}

impl fmt::Debug for MultiModelDatabase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let levels = self.levels.read();
        write!(
            f,
            "MultiModelDatabase({:?}, {} views)",
            levels.conceptual.sizes(),
            levels.externals.len()
        )
    }
}

impl MultiModelDatabase {
    /// Creates a database with the given initial conceptual state.
    pub fn new(conceptual: GraphState) -> Result<Arc<Self>, AnsiError> {
        let internal = InternalLevel::new(&conceptual)?;
        Ok(Arc::new(MultiModelDatabase {
            levels: RwLock::new(Levels {
                conceptual,
                internal,
                externals: BTreeMap::new(),
            }),
            audit_cache: FactInterner::new(),
        }))
    }

    /// Registers an external relational view, materialized from the
    /// current conceptual state.
    pub fn add_view(
        &self,
        name: impl Into<String>,
        schema: RelationalSchema,
        mode: CompletionMode,
    ) -> Result<(), AnsiError> {
        let name = name.into();
        let mut levels = self.levels.write();
        if levels.externals.contains_key(&name) {
            return Err(AnsiError::ViewExists(name));
        }
        let view = ExternalView::materialize(name.clone(), schema, &levels.conceptual, mode)?;
        levels.externals.insert(name, view);
        Ok(())
    }

    /// Removes an external view.
    pub fn drop_view(&self, name: &str) -> Result<(), AnsiError> {
        let mut levels = self.levels.write();
        levels
            .externals
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| AnsiError::NoSuchView(name.to_owned()))
    }

    /// The names of the registered views.
    pub fn view_names(&self) -> Vec<String> {
        self.levels.read().externals.keys().cloned().collect()
    }

    /// A snapshot of the conceptual state.
    pub fn conceptual(&self) -> GraphState {
        self.levels.read().conceptual.clone()
    }

    /// A snapshot of one view's relational state.
    pub fn view_state(&self, name: &str) -> Result<RelationState, AnsiError> {
        self.levels
            .read()
            .externals
            .get(name)
            .map(|v| v.state().clone())
            .ok_or_else(|| AnsiError::NoSuchView(name.to_owned()))
    }

    /// Retrieval through a view: wraps one of its relations for the
    /// semantic algebra ("a simple relational view for retrieval", §4).
    pub fn query_view(
        &self,
        view: &str,
        relation: &str,
    ) -> Result<dme_relation::algebra::DerivedRelation, AnsiError> {
        let levels = self.levels.read();
        let v = levels
            .externals
            .get(view)
            .ok_or_else(|| AnsiError::NoSuchView(view.to_owned()))?;
        dme_relation::algebra::DerivedRelation::base(v.state(), relation)
            .ok_or_else(|| AnsiError::Translate(format!("no relation `{relation}` in `{view}`")))
    }

    /// Applies a conceptual (graph) operation: translate to every view,
    /// apply everywhere, update storage. All levels move or none do.
    pub fn update_conceptual(&self, op: &GraphOp) -> Result<(), AnsiError> {
        let mut levels = self.levels.write();
        let before = levels.conceptual.clone();
        let after = op.apply(&before)?;
        // Plan every view translation against the *current* states before
        // mutating anything.
        let mut plans: Vec<(String, Vec<RelOp>)> = Vec::new();
        for (name, view) in &levels.externals {
            let ops = view.plan(op, &before)?;
            plans.push((name.clone(), ops));
        }
        for (name, ops) in plans {
            levels
                .externals
                .get_mut(&name)
                .expect("planned views exist")
                .apply(&ops)?;
        }
        levels.internal.apply_delta(&before, &after)?;
        levels.conceptual = after;
        Ok(())
    }

    /// Applies a relational operation through the named view: translate
    /// up to the conceptual model, then broadcast like
    /// [`MultiModelDatabase::update_conceptual`].
    pub fn update_view(&self, name: &str, op: &RelOp) -> Result<(), AnsiError> {
        let mut levels = self.levels.write();
        let before = levels.conceptual.clone();
        let view = levels
            .externals
            .get(name)
            .ok_or_else(|| AnsiError::NoSuchView(name.to_owned()))?;
        let gops = relational_op_to_graph(op, view.state(), &before)?;

        // Apply to the conceptual model.
        let after =
            GraphOp::apply_all(&gops, &before).map_err(|e| AnsiError::Conceptual(e.to_string()))?;

        // Dry-run every *other* view's advance on a clone, so nothing
        // mutates until the whole broadcast is known to succeed; the
        // source view applies the user's own operation. Each advance
        // translates one conceptual op at a time against a paired
        // (conceptual, view) state — see `ExternalView::apply_conceptual`.
        let mut advanced: Vec<(String, ExternalView)> = Vec::new();
        for (other_name, other_view) in &levels.externals {
            if other_name == name {
                continue;
            }
            let mut next = other_view.clone();
            next.apply_conceptual(&gops, &before)?;
            advanced.push((other_name.clone(), next));
        }

        levels
            .externals
            .get_mut(name)
            .expect("source view exists")
            .apply(std::slice::from_ref(op))?;
        for (view_name, next) in advanced {
            *levels
                .externals
                .get_mut(&view_name)
                .expect("advanced views exist") = next;
        }
        levels.internal.apply_delta(&before, &after)?;
        levels.conceptual = after;
        Ok(())
    }

    /// Audits all levels: every view and the reconstructed internal state
    /// must be equivalent to the conceptual state.
    pub fn verify_consistency(&self) -> Result<(), AnsiError> {
        self.verify_consistency_observed(&dme_obs::Observer::disabled())
    }

    /// [`AnsiDatabase::verify_consistency`], with the audit timed under
    /// an `ansi/audit` span: one
    /// [`Counter::AuditsRun`](dme_obs::Counter::AuditsRun) per call, the
    /// conceptual compilation charged to the interner-hit/miss counters,
    /// and one `Mark` event carrying the number of views audited.
    pub fn verify_consistency_observed(&self, obs: &dme_obs::Observer) -> Result<(), AnsiError> {
        let _span = obs.span("ansi/audit");
        obs.add(dme_obs::Counter::AuditsRun, 1);
        let levels = self.levels.read();
        obs.mark("ansi/views_audited", levels.externals.len() as u64);
        let conceptual_facts = self.audit_cache.compile_observed(&levels.conceptual, obs);
        for (name, view) in &levels.externals {
            if !view.consistent_with_facts(&conceptual_facts) {
                return Err(AnsiError::Inconsistent(format!("view `{name}` diverged")));
            }
        }
        let rebuilt = levels
            .internal
            .reconstruct(Arc::clone(levels.conceptual.schema()))?;
        if rebuilt != levels.conceptual {
            return Err(AnsiError::Inconsistent("internal level diverged".into()));
        }
        Ok(())
    }

    /// Compacts the internal level and drops audit-cache entries for
    /// conceptual states no longer current.
    pub fn vacuum(&self) {
        self.levels.write().internal.vacuum();
        self.audit_cache.clear();
    }

    /// Counters of the consistency audit's compilation cache.
    pub fn audit_cache_stats(&self) -> InternerStats {
        self.audit_cache.stats()
    }

    /// View-integration audit (the §3.1 concern of "developing a single
    /// model of the application consistent with each user's view"):
    /// returns the part of the conceptual vocabulary visible through *no*
    /// registered view — information every user is blind to. An empty
    /// filter means the views jointly cover the conceptual model.
    pub fn uncovered_vocabulary(&self) -> dme_logic::vocab::FactFilter {
        let levels = self.levels.read();
        let conceptual = levels.conceptual.schema().vocabulary();
        let mut covered = dme_logic::vocab::FactFilter::new();
        for view in levels.externals.values() {
            let v = view.schema().vocabulary();
            covered.entity_types.extend(v.entity_types);
            covered.characteristics.extend(v.characteristics);
            covered.predicates.extend(v.predicates);
        }
        dme_logic::vocab::FactFilter {
            entity_types: conceptual
                .entity_types
                .difference(&covered.entity_types)
                .cloned()
                .collect(),
            characteristics: conceptual
                .characteristics
                .difference(&covered.characteristics)
                .cloned()
                .collect(),
            predicates: conceptual
                .predicates
                .difference(&covered.predicates)
                .cloned()
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dme_graph::fixtures as gfix;
    use dme_graph::{Association, EntityRef};
    use dme_relation::fixtures as rfix;
    use dme_value::{tuple, Atom, Value};

    fn emp(name: &str) -> EntityRef {
        EntityRef::new("employee", Atom::str(name))
    }

    fn db() -> Arc<MultiModelDatabase> {
        let db = MultiModelDatabase::new(gfix::figure4_state()).unwrap();
        db.add_view(
            "three-relations",
            rfix::machine_shop_schema(),
            CompletionMode::StateCompleted,
        )
        .unwrap();
        db.add_view(
            "single-relation",
            rfix::figure9_schema(),
            CompletionMode::Minimal,
        )
        .unwrap();
        db
    }

    #[test]
    fn views_materialize_to_the_figures() {
        let db = db();
        assert_eq!(
            db.view_state("three-relations").unwrap(),
            rfix::figure3_state()
        );
        assert_eq!(
            db.view_state("single-relation").unwrap(),
            rfix::figure9_state()
        );
        db.verify_consistency().unwrap();
        assert_eq!(db.view_names().len(), 2);
    }

    #[test]
    fn conceptual_update_propagates_everywhere() {
        let db = db();
        let op = GraphOp::InsertAssociation(Association::new(
            "supervise",
            [("agent", emp("G.Wayshum")), ("object", emp("T.Manhart"))],
        ));
        db.update_conceptual(&op).unwrap();
        assert_eq!(db.conceptual(), gfix::figure6_state());
        assert_eq!(
            db.view_state("three-relations").unwrap(),
            rfix::figure7_state()
        );
        db.verify_consistency().unwrap();
    }

    #[test]
    fn view_update_propagates_to_other_views_and_storage() {
        let db = db();
        // "A simple relational view for retrieval and a graph model for
        // updating" — and here even relational updating works.
        let op = RelOp::insert("Jobs", [tuple!["G.Wayshum", "T.Manhart", "NZ745"]]);
        db.update_view("three-relations", &op).unwrap();
        assert_eq!(db.conceptual(), gfix::figure6_state());
        db.verify_consistency().unwrap();
        // The other view saw the same update in its own terms.
        let single = db.view_state("single-relation").unwrap();
        assert!(single
            .tuples("Jobs")
            .any(|t| t[0] == Value::str("G.Wayshum") && t[1] == Value::str("T.Manhart")));
    }

    #[test]
    fn failing_conceptual_update_changes_nothing() {
        let db = db();
        let bad = GraphOp::DeleteEntity(emp("G.Wayshum")); // still supervises
        assert!(db.update_conceptual(&bad).is_err());
        assert_eq!(db.conceptual(), gfix::figure4_state());
        db.verify_consistency().unwrap();
    }

    #[test]
    fn failing_view_update_changes_nothing() {
        let db = db();
        let bad = RelOp::insert("Operate", [tuple!["G.Wayshum", "JCL181", "press"]]);
        assert!(db.update_view("three-relations", &bad).is_err());
        db.verify_consistency().unwrap();
        assert_eq!(
            db.view_state("three-relations").unwrap(),
            rfix::figure3_state()
        );
    }

    #[test]
    fn view_management() {
        let db = db();
        assert!(matches!(
            db.add_view(
                "three-relations",
                rfix::machine_shop_schema(),
                CompletionMode::Minimal
            ),
            Err(AnsiError::ViewExists(_))
        ));
        assert!(matches!(
            db.view_state("ghost"),
            Err(AnsiError::NoSuchView(_))
        ));
        db.drop_view("single-relation").unwrap();
        assert!(matches!(
            db.drop_view("single-relation"),
            Err(AnsiError::NoSuchView(_))
        ));
        assert_eq!(db.view_names(), vec!["three-relations".to_owned()]);
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let db = db();
        let op = GraphOp::InsertAssociation(Association::new(
            "supervise",
            [("agent", emp("G.Wayshum")), ("object", emp("T.Manhart"))],
        ));
        crossbeam::scope(|scope| {
            for _ in 0..4 {
                let db = Arc::clone(&db);
                scope.spawn(move |_| {
                    for _ in 0..50 {
                        let snapshot = db.conceptual();
                        assert!(snapshot.sizes().0 >= 4);
                        let _ = db.view_state("three-relations");
                    }
                });
            }
            let writer_db = Arc::clone(&db);
            let op = op.clone();
            scope.spawn(move |_| {
                // First application succeeds, the second errors (already
                // present), both leave the database consistent.
                let _ = writer_db.update_conceptual(&op);
                let _ = writer_db.update_conceptual(&op);
            });
        })
        .unwrap();
        db.verify_consistency().unwrap();
        assert_eq!(db.conceptual(), gfix::figure6_state());
    }

    #[test]
    fn query_view_supports_the_semantic_algebra() {
        let db = db();
        let employees = db.query_view("three-relations", "Employees").unwrap();
        let operate = db.query_view("three-relations", "Operate").unwrap();
        // "There is an employee named X aged Y operating machine Z":
        let joined = dme_relation::algebra::conjunction(&employees, &operate, 0, 0).unwrap();
        assert_eq!(joined.len(), 2);
        assert!(matches!(
            db.query_view("three-relations", "Ghost"),
            Err(AnsiError::Translate(_))
        ));
        assert!(matches!(
            db.query_view("ghost", "Employees"),
            Err(AnsiError::NoSuchView(_))
        ));
    }

    #[test]
    fn coverage_audit_reports_blind_spots() {
        let db = MultiModelDatabase::new(gfix::figure4_state()).unwrap();
        // No views: everything is uncovered.
        let uncovered = db.uncovered_vocabulary();
        assert_eq!(uncovered.entity_types.len(), 2);
        assert_eq!(uncovered.predicates.len(), 2);

        // The personnel subset view covers employees/supervise only.
        db.add_view(
            "personnel",
            rfix::personnel_schema(),
            CompletionMode::Minimal,
        )
        .unwrap();
        let uncovered = db.uncovered_vocabulary();
        assert!(uncovered.entity_types.contains("machine"));
        assert!(!uncovered.entity_types.contains("employee"));
        assert!(uncovered.predicates.contains("operate"));
        assert!(!uncovered.predicates.contains("supervise"));

        // Adding the full view closes every blind spot.
        db.add_view("full", rfix::machine_shop_schema(), CompletionMode::Minimal)
            .unwrap();
        let uncovered = db.uncovered_vocabulary();
        assert!(uncovered.entity_types.is_empty());
        assert!(uncovered.characteristics.is_empty());
        assert!(uncovered.predicates.is_empty());
    }

    #[test]
    fn repeated_audits_hit_the_compilation_cache() {
        let db = db();
        db.verify_consistency().unwrap();
        db.verify_consistency().unwrap();
        db.verify_consistency().unwrap();
        let stats = db.audit_cache_stats();
        assert_eq!(stats.misses, 1, "one conceptual state, compiled once");
        assert_eq!(stats.hits, 2, "later audits reuse the compilation");
    }

    #[test]
    fn observed_audit_records_spans_and_counters() {
        use dme_obs::{Counter, Observer, RingSink};
        let db = db();
        let ring = RingSink::with_capacity(64);
        let obs = Observer::new(ring.clone());
        db.verify_consistency_observed(&obs).unwrap();
        db.verify_consistency_observed(&obs).unwrap();
        assert_eq!(obs.counter(Counter::AuditsRun), 2);
        assert_eq!(obs.counter(Counter::InternerMisses), 1);
        assert_eq!(obs.counter(Counter::InternerHits), 1);
        let report = dme_obs::Report::from_events(&ring.events());
        assert_eq!(report.phase("ansi/audit").unwrap().calls, 2);
    }

    #[test]
    fn vacuum_keeps_consistency() {
        let db = db();
        let unit = dme_graph::unit::deletion_unit(
            &db.conceptual(),
            [EntityRef::new("machine", Atom::str("NZ745"))],
            [],
        );
        db.update_conceptual(&GraphOp::DeleteUnit(unit)).unwrap();
        db.vacuum();
        db.verify_consistency().unwrap();
    }
}
