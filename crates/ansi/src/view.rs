//! External views: relational application models kept in lockstep.

use std::fmt;
use std::sync::Arc;

use dme_core::translate::{
    graph_op_to_relational, materialize_relational_state, CompletionMode, TranslateError,
};
use dme_graph::{GraphOp, GraphState};
use dme_logic::{state_equivalent, FactBase, ToFacts};
use dme_relation::{RelOp, RelationState, RelationalSchema};

/// One external schema of the architecture: a semantic relation
/// application model materialized over the conceptual state.
///
/// Cloning a view snapshots it: the clone shares the schema (`Arc`) but
/// owns its state, which is what a session needs to translate against a
/// stable picture while the original keeps moving.
#[derive(Clone)]
pub struct ExternalView {
    name: String,
    schema: Arc<RelationalSchema>,
    state: RelationState,
    mode: CompletionMode,
}

impl fmt::Debug for ExternalView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ExternalView({}, {} relations, {} statements)",
            self.name,
            self.schema.len(),
            self.state.len()
        )
    }
}

impl ExternalView {
    /// Materializes a view over the current conceptual state.
    pub fn materialize(
        name: impl Into<String>,
        schema: RelationalSchema,
        conceptual: &GraphState,
        mode: CompletionMode,
    ) -> Result<Self, TranslateError> {
        let schema = Arc::new(schema);
        let state = materialize_relational_state(&schema, &conceptual.to_facts())?;
        Ok(ExternalView {
            name: name.into(),
            schema,
            state,
            mode,
        })
    }

    /// The view's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The view's application-model schema.
    pub fn schema(&self) -> &Arc<RelationalSchema> {
        &self.schema
    }

    /// A snapshot of the view's current state.
    pub fn state(&self) -> &RelationState {
        &self.state
    }

    /// The completion mode used when translating updates into this view.
    pub fn mode(&self) -> CompletionMode {
        self.mode
    }

    /// Translates a conceptual operation into this view's terms (without
    /// applying it).
    pub fn plan(
        &self,
        op: &GraphOp,
        conceptual: &GraphState,
    ) -> Result<Vec<RelOp>, TranslateError> {
        graph_op_to_relational(op, conceptual, &self.state, self.mode)
    }

    /// Applies pre-translated operations to the replica.
    pub fn apply(&mut self, ops: &[RelOp]) -> Result<(), TranslateError> {
        let next = RelOp::apply_all(ops, &self.state)
            .map_err(|e| TranslateError::VerificationFailed(e.to_string()))?;
        self.state = next;
        Ok(())
    }

    /// Applies committed conceptual operations to the replica:
    /// translates one operation at a time against the evolving
    /// `(conceptual, view)` state pair — each translation must see a
    /// paired snapshot — applies the translations, and returns them so
    /// callers can journal or audit the relational-side schedule.
    ///
    /// `before` is the conceptual state the first operation applies to.
    pub fn apply_conceptual(
        &mut self,
        gops: &[GraphOp],
        before: &GraphState,
    ) -> Result<Vec<RelOp>, TranslateError> {
        let mut applied = Vec::new();
        let mut cursor = before.clone();
        for gop in gops {
            let step = graph_op_to_relational(gop, &cursor, &self.state, self.mode)?;
            self.apply(&step)?;
            cursor = gop
                .apply(&cursor)
                .map_err(|e| TranslateError::SourceOpFailed(e.to_string()))?;
            applied.extend(step);
        }
        Ok(applied)
    }

    /// Checks this view against the conceptual state: equivalence within
    /// the view's vocabulary (for a subset view, facts the view cannot
    /// express are out of scope).
    pub fn consistent_with(&self, conceptual: &GraphState) -> bool {
        self.consistent_with_facts(&conceptual.to_facts())
    }

    /// [`ExternalView::consistent_with`] on a pre-compiled conceptual
    /// fact base, so a caller auditing many views can compile the
    /// conceptual state once (e.g. through a `dme_core::FactInterner`).
    pub fn consistent_with_facts(&self, conceptual_facts: &FactBase) -> bool {
        let vocab = self.schema.vocabulary();
        state_equivalent(&self.state, &vocab.filter(conceptual_facts)).is_equivalent()
    }
}
