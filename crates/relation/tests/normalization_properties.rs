//! Property tests for statement normalization (the §3.3.1 subsumption
//! semantics plus statement merging).
//!
//! Invariants:
//! * normalization never changes the asserted fact set;
//! * normalization is idempotent;
//! * normalization is confluent over insertion order — the canonical
//!   state does not depend on the order statements arrived, which is
//!   what makes the state ↔ fact-base correspondence 1-1 (§3.3.1's
//!   uniqueness requirement);
//! * `insert-statements` is idempotent and monotone in the fact set.

use std::sync::Arc;

use dme_logic::ToFacts;
use dme_relation::fixtures;
use dme_relation::{RelOp, RelationState};
use dme_value::{Tuple, Value};
use proptest::prelude::*;

/// Candidate Jobs statements over the machine-shop domains (some null
/// patterns, all well-formed or rejected by insert_raw).
fn arb_jobs_tuple() -> impl Strategy<Value = Tuple> {
    let name = prop_oneof![
        Just(Value::Null),
        Just(Value::str("T.Manhart")),
        Just(Value::str("C.Gershag")),
        Just(Value::str("G.Wayshum")),
    ];
    let supervisee = prop_oneof![
        Just(Value::str("T.Manhart")),
        Just(Value::str("C.Gershag")),
        Just(Value::str("G.Wayshum")),
    ];
    let machine = prop_oneof![
        Just(Value::Null),
        Just(Value::str("NZ745")),
        Just(Value::str("JCL181")),
    ];
    (name, supervisee, machine).prop_map(|(a, b, c)| Tuple::new([a, b, c]))
}

fn state_with(tuples: &[Tuple]) -> RelationState {
    let schema = Arc::new(fixtures::machine_shop_schema());
    let mut s = RelationState::empty(schema);
    for t in tuples {
        // Ill-formed candidates (vacuous) are simply skipped.
        let _ = s.insert_raw("Jobs", t.clone());
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn normalization_preserves_facts(tuples in prop::collection::vec(arb_jobs_tuple(), 0..8)) {
        let mut s = state_with(&tuples);
        let before = s.to_facts();
        s.normalize();
        prop_assert_eq!(s.to_facts(), before);
        prop_assert!(s.is_normalized());
    }

    #[test]
    fn normalization_is_idempotent(tuples in prop::collection::vec(arb_jobs_tuple(), 0..8)) {
        let mut s = state_with(&tuples);
        s.normalize();
        let once = s.clone();
        s.normalize();
        prop_assert_eq!(s, once);
    }

    #[test]
    fn normalization_is_confluent_over_insertion_order(
        tuples in prop::collection::vec(arb_jobs_tuple(), 0..8),
        permutation_seed in 0usize..720,
    ) {
        let mut s1 = state_with(&tuples);
        // A deterministic permutation of the same statements.
        let mut shuffled = tuples.clone();
        let n = shuffled.len().max(1);
        shuffled.rotate_left(permutation_seed % n);
        if permutation_seed % 2 == 1 {
            shuffled.reverse();
        }
        let mut s2 = state_with(&shuffled);
        s1.normalize();
        s2.normalize();
        prop_assert_eq!(s1, s2);
    }

    /// Two normalized states are equal iff their fact bases are equal
    /// (injectivity of the compilation on canonical states).
    #[test]
    fn normalized_states_are_determined_by_their_facts(
        a in prop::collection::vec(arb_jobs_tuple(), 0..6),
        b in prop::collection::vec(arb_jobs_tuple(), 0..6),
    ) {
        let mut sa = state_with(&a);
        let mut sb = state_with(&b);
        sa.normalize();
        sb.normalize();
        prop_assert_eq!(sa.to_facts() == sb.to_facts(), sa == sb);
    }

    /// Delta application is observationally identical to clone-apply
    /// over generated op scripts, and undoing in LIFO order walks back
    /// through the exact intermediate states (with coherent
    /// fingerprints throughout).
    #[test]
    fn delta_apply_matches_clone_apply(
        base in prop::collection::vec(arb_jobs_tuple(), 0..5),
        script in prop::collection::vec((any::<bool>(), arb_jobs_tuple()), 1..6),
    ) {
        use dme_logic::DeltaState;
        let mut cur = state_with(&base);
        cur.normalize();
        let mut trail: Vec<(RelationState, RelationState)> = Vec::new();
        for (insert, tuple) in script {
            let op = if insert {
                RelOp::insert("Jobs", [tuple])
            } else {
                RelOp::delete("Jobs", [tuple])
            };
            let cloned = op.apply(&cur);
            let before = cur.clone();
            match cur.apply_delta(&op) {
                Some(undo) => {
                    let applied = cloned.expect("delta succeeded, clone-apply must too");
                    prop_assert_eq!(&cur, &applied);
                    prop_assert_eq!(cur.fingerprint(), applied.fingerprint());
                    trail.push((undo, before));
                }
                None => {
                    prop_assert!(cloned.is_err(), "clone-apply succeeded where delta failed");
                    prop_assert_eq!(&cur, &before, "failed delta must leave the state untouched");
                    prop_assert_eq!(cur.fingerprint(), before.fingerprint());
                }
            }
        }
        for (undo, before) in trail.into_iter().rev() {
            cur.undo(undo);
            prop_assert_eq!(&cur, &before, "undo must restore the exact prior state");
            prop_assert_eq!(cur.fingerprint(), before.fingerprint());
        }
    }

    /// Fingerprints are coherent with equality: equal states carry
    /// equal fingerprints regardless of how they were built.
    #[test]
    fn fingerprints_agree_on_equal_states(
        a in prop::collection::vec(arb_jobs_tuple(), 0..6),
        b in prop::collection::vec(arb_jobs_tuple(), 0..6),
    ) {
        let mut sa = state_with(&a);
        let mut sb = state_with(&b);
        sa.normalize();
        sb.normalize();
        if sa == sb {
            prop_assert_eq!(sa.fingerprint(), sb.fingerprint());
        }
    }

    /// insert-statements (ignoring constraint failures) is idempotent
    /// and only grows the fact set.
    #[test]
    fn insert_statements_monotone_and_idempotent(
        base in prop::collection::vec(arb_jobs_tuple(), 0..5),
        extra in arb_jobs_tuple(),
    ) {
        let mut s = state_with(&base);
        s.normalize();
        let op = RelOp::insert("Jobs", [extra]);
        if let Ok(next) = op.apply(&s) {
            prop_assert!(next.to_facts().entails(&s.to_facts()), "facts only grow");
            let again = op.apply(&next).expect("idempotent re-apply");
            prop_assert_eq!(again, next);
        }
    }
}
