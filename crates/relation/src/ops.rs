//! The operation types of the semantic relation model.
//!
//! §3.2.1: "The operations allowed in the semantic relation data model are
//! the insertion and deletion of sets of statements. In addition, the
//! database state resulting from every successful application of one of
//! these operations is guaranteed to satisfy a set of constraints
//! specified as part of the schema."
//!
//! An operation type, per §2.1, is a function
//! `(schema × arguments × database state) → database state`; here the
//! schema travels inside [`RelationState`], the argument is a
//! [`StatementSet`] (statements may span several relations — one
//! operation can atomically touch Operate *and* Jobs, which the
//! inter-relation agreement constraints require), and the paper's *error
//! state* is modelled as `Err(OpError)` — all error states of all
//! application models are equivalent (§3.3.1), which the equivalence
//! checkers in `dme-core` rely on.
//!
//! ## `insert-statements`
//!
//! 1. well-formedness checks on every inserted statement;
//! 2. set union with the target relations;
//! 3. **normalization** — in particular the automatic deletion of all
//!    statements "less than those inserted" (§3.3.1, Figure 7);
//! 4. constraint checking; any violation yields the error state and the
//!    original state is unchanged.
//!
//! ## `delete-statements`
//!
//! Deletion is *semantic*: deleting a statement denies the facts it
//! asserts. The operation computes the asserted facts of the deleted
//! statements and **weakens** every stored statement (in every relation)
//! that asserts any of them: each affected tuple is replaced by its
//! maximal *remainders* — versions with nullable columns nulled — that
//! avoid the denied facts and still state something.
//!
//! Deleting `(G.Wayshum, T.Manhart, ----)` ("G.Wayshum supervises
//! T.Manhart") from the Figure 7 state therefore weakens
//! `(G.Wayshum, T.Manhart, NZ745)` to `(----, T.Manhart, NZ745)`,
//! restoring Figure 3 exactly — the inverse of the paper's insertion
//! example. Facts asserted only together with denied facts disappear with
//! them (deleting "T.Manhart operates NZ745" removes the machine, whose
//! existence statement lives in the non-nullable Operate row — the
//! relational mirror of the graph model's *semantic unit* deletion).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use dme_value::{Symbol, Tuple, Value};

use crate::constraints::{check_all, ConstraintViolation};
use crate::facts::tuple_facts;
use crate::schema::RelationSchema;
use crate::state::{RelationState, StateError};

/// Errors turning an operation application into the paper's error state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OpError {
    /// A statement was not well-formed for the schema.
    State(StateError),
    /// The resulting state would violate a constraint.
    Constraint(ConstraintViolation),
}

impl fmt::Display for OpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpError::State(e) => write!(f, "malformed statement: {e}"),
            OpError::Constraint(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for OpError {}

impl From<StateError> for OpError {
    fn from(e: StateError) -> Self {
        OpError::State(e)
    }
}

impl From<ConstraintViolation> for OpError {
    fn from(e: ConstraintViolation) -> Self {
        OpError::Constraint(e)
    }
}

/// A set of statements, possibly spanning several relations — the
/// argument of both operation types.
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StatementSet {
    by_relation: BTreeMap<Symbol, BTreeSet<Tuple>>,
}

impl StatementSet {
    /// The empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Statements of a single relation.
    pub fn single(relation: impl Into<Symbol>, tuples: impl IntoIterator<Item = Tuple>) -> Self {
        let mut s = Self::new();
        let relation = relation.into();
        for t in tuples {
            s.add(relation.clone(), t);
        }
        s
    }

    /// Adds one statement.
    pub fn add(&mut self, relation: impl Into<Symbol>, tuple: Tuple) {
        self.by_relation
            .entry(relation.into())
            .or_default()
            .insert(tuple);
    }

    /// Builder-style [`StatementSet::add`].
    pub fn with(mut self, relation: impl Into<Symbol>, tuple: Tuple) -> Self {
        self.add(relation, tuple);
        self
    }

    /// Iterates over `(relation, tuple)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Symbol, &Tuple)> {
        self.by_relation
            .iter()
            .flat_map(|(r, ts)| ts.iter().map(move |t| (r, t)))
    }

    /// Statements of one relation.
    pub fn tuples(&self, relation: &str) -> impl Iterator<Item = &Tuple> {
        self.by_relation.get(relation).into_iter().flatten()
    }

    /// Number of statements.
    pub fn len(&self) -> usize {
        self.by_relation.values().map(BTreeSet::len).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.by_relation.values().all(BTreeSet::is_empty)
    }
}

impl fmt::Display for StatementSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (r, t)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r}{t}")?;
        }
        write!(f, "}}")
    }
}

/// An operation of the semantic relation model: one application of an
/// operation type to concrete arguments.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RelOp {
    /// `insert-statements`.
    Insert(StatementSet),
    /// `delete-statements` (semantic deletion; see module docs).
    Delete(StatementSet),
}

impl RelOp {
    /// Builds an `insert-statements` operation over one relation.
    pub fn insert(relation: impl Into<Symbol>, tuples: impl IntoIterator<Item = Tuple>) -> Self {
        RelOp::Insert(StatementSet::single(relation, tuples))
    }

    /// Builds an `insert-statements` operation from a full statement set.
    pub fn insert_set(set: StatementSet) -> Self {
        RelOp::Insert(set)
    }

    /// Builds a `delete-statements` operation over one relation.
    pub fn delete(relation: impl Into<Symbol>, tuples: impl IntoIterator<Item = Tuple>) -> Self {
        RelOp::Delete(StatementSet::single(relation, tuples))
    }

    /// Builds a `delete-statements` operation from a full statement set.
    pub fn delete_set(set: StatementSet) -> Self {
        RelOp::Delete(set)
    }

    /// The operation's statement set.
    pub fn statements(&self) -> &StatementSet {
        match self {
            RelOp::Insert(s) | RelOp::Delete(s) => s,
        }
    }

    /// Applies the operation, yielding the new state or the error state.
    /// The input state is never modified (operations are functions
    /// `database state → database state`).
    ///
    /// The paper's Figure 6 → Figure 7 insertion, with the automatic
    /// subsumption deletion:
    ///
    /// ```
    /// use dme_relation::{fixtures, RelOp};
    /// use dme_value::{tuple, Value};
    ///
    /// let op = RelOp::insert("Jobs", [tuple!["G.Wayshum", "T.Manhart", "NZ745"]]);
    /// let after = op.apply(&fixtures::figure3_state()).unwrap();
    /// assert_eq!(after, fixtures::figure7_state());
    /// // The dominated (----, T.Manhart, NZ745) statement is gone:
    /// assert!(!after
    ///     .relation("Jobs")
    ///     .unwrap()
    ///     .contains(&tuple![Value::Null, "T.Manhart", "NZ745"]));
    /// ```
    pub fn apply(&self, state: &RelationState) -> Result<RelationState, OpError> {
        let next = self.apply_candidate(state)?;
        check_all(next.schema(), &next)?;
        Ok(next)
    }

    /// Applies the operation *without* the final constraint check: the
    /// well-formedness checks, the set algebra and normalization all
    /// run, but the resulting candidate state may violate schema
    /// constraints.
    ///
    /// [`RelOp::apply`] is exactly `apply_candidate` followed by
    /// [`check_all`]. The split exists for the equivalence kernel's
    /// closure enumerator: constraint checking is a pure function of
    /// the candidate state, so a candidate that hash-conses to an
    /// already-interned (hence already-validated) state needs no second
    /// check — only genuinely new states pay for `check_all`.
    pub fn apply_candidate(&self, state: &RelationState) -> Result<RelationState, OpError> {
        let mut next = state.clone();
        match self {
            RelOp::Insert(set) => {
                for (relation, t) in set.iter() {
                    next.insert_raw(relation.as_str(), t.clone())?;
                }
                next.normalize();
            }
            RelOp::Delete(set) => {
                // Validate deleted statements and collect denied facts.
                let schema = std::sync::Arc::clone(state.schema());
                let mut denied = dme_logic::FactBase::new();
                for (relation, t) in set.iter() {
                    let rel = schema
                        .relation(relation.as_str())
                        .ok_or_else(|| StateError::UnknownRelation(relation.clone()))?;
                    RelationState::check_tuple(&schema, rel, t)?;
                    denied.extend(tuple_facts(rel, t).iter().cloned());
                }
                // A statement can only be affected if one of its facts is
                // denied, and every statement fact is in the state's fact
                // index — so when no denied fact is held at all, the
                // per-tuple scans below would all come up empty.
                if !denied.iter().any(|f| next.holds_fact(f)) {
                    next.normalize();
                    return Ok(next);
                }
                // Weaken every statement asserting a denied fact.
                for rel in schema.relations() {
                    let affected: Vec<Tuple> = next
                        .tuples(rel.name().as_str())
                        .filter(|u| tuple_facts(rel, u).iter().any(|f| denied.holds(f)))
                        .cloned()
                        .collect();
                    for u in affected {
                        next.delete_raw(rel.name().as_str(), &u)
                            .expect("relation exists");
                        for r in remainders(rel, &u, &denied) {
                            next.insert_raw(rel.name().as_str(), r)
                                .expect("remainders are well-formed by construction");
                        }
                    }
                }
                next.normalize();
            }
        }
        Ok(next)
    }

    /// Applies a sequence of operations (a *composed* operation, the
    /// `M-ops*` of Definition 3), stopping at the first error.
    pub fn apply_all<'a>(
        ops: impl IntoIterator<Item = &'a RelOp>,
        state: &RelationState,
    ) -> Result<RelationState, OpError> {
        let mut cur = state.clone();
        for op in ops {
            cur = op.apply(&cur)?;
        }
        Ok(cur)
    }
}

/// Undoable relational operation application for the equivalence
/// kernel.
///
/// Unlike the graph model, `delete-statements` may weaken tuples in
/// *every* relation (semantic deletion) and normalization's saturation
/// pass reads the global fact set — so no sub-state undo log is bounded
/// by the operation's footprint. The undo token is therefore the full
/// previous state (swap-in, swap-out), which costs exactly what the
/// clone-based `apply` already paid; the kernel's win on this model
/// comes from fingerprint probing and transition memoization instead.
impl dme_logic::DeltaState for RelationState {
    type Op = RelOp;
    type Undo = RelationState;

    fn fingerprint(&self) -> u64 {
        RelationState::fingerprint(self)
    }

    fn apply_delta(&mut self, op: &RelOp) -> Option<RelationState> {
        let next = op.apply(self).ok()?;
        Some(std::mem::replace(self, next))
    }

    fn undo(&mut self, token: RelationState) {
        *self = token;
    }
}

/// The maximal remainders of `u` avoiding the denied facts: versions of
/// `u` with nullable columns nulled that are well-formed, assert at least
/// one fact, assert no denied fact, and are maximal with those
/// properties.
///
/// This is the weakening step of `delete-statements` (see module docs);
/// it is public because the cross-model translators use the same
/// computation to synthesize delete-then-reinsert plans for views whose
/// headings cannot express a fact's denial in isolation.
pub fn remainders(rel: &RelationSchema, u: &Tuple, denied: &dme_logic::FactBase) -> Vec<Tuple> {
    // Columns we may null: currently non-null and schema-nullable.
    let mut maskable = Vec::new();
    for (pi, p) in rel.participants().iter().enumerate() {
        let base = rel.participant_offset(pi);
        for (ci, col) in p.columns.iter().enumerate() {
            if col.nullable && !u[base + ci].is_null() {
                maskable.push(base + ci);
            }
        }
    }
    assert!(
        maskable.len() <= 16,
        "remainder enumeration supports at most 16 nullable columns"
    );
    let mut candidates: Vec<Tuple> = Vec::new();
    // Skip the empty mask: `u` itself asserts a denied fact.
    for mask in 1u32..(1 << maskable.len()) {
        let values: Vec<Value> = u
            .values()
            .enumerate()
            .map(|(i, v)| {
                let nulled = maskable
                    .iter()
                    .enumerate()
                    .any(|(bit, &col)| col == i && mask & (1 << bit) != 0);
                if nulled {
                    Value::Null
                } else {
                    v.clone()
                }
            })
            .collect();
        let candidate = Tuple::new(values);
        let facts = tuple_facts(rel, &candidate);
        if facts.is_empty() || facts.iter().any(|f| denied.holds(f)) {
            continue;
        }
        // Coherence: nulling an identifying column while keeping other
        // characteristics would be incoherent.
        let coherent = rel.participants().iter().enumerate().all(|(pi, p)| {
            let base = rel.participant_offset(pi);
            !candidate[rel.id_column(pi)].is_null()
                || (1..p.columns.len()).all(|ci| candidate[base + ci].is_null())
        });
        if coherent {
            candidates.push(candidate);
        }
    }
    // Keep only maximal candidates.
    let maximal: Vec<Tuple> = candidates
        .iter()
        .filter(|c| !candidates.iter().any(|d| c.sem_lt(d)))
        .cloned()
        .collect();
    maximal
}

impl fmt::Display for RelOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelOp::Insert(s) => write!(f, "insert-statements {s}"),
            RelOp::Delete(s) => write!(f, "delete-statements {s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use dme_logic::{state_equivalent, ToFacts};
    use dme_value::tuple;

    #[test]
    fn figure6_to_figure7_insertion_with_subsumption() {
        // §3.3.1: inserting the second tuple of Figure 7 into the Figure 3
        // state automatically deletes (----, T.Manhart, NZ745).
        let f3 = fixtures::figure3_state();
        let op = RelOp::insert("Jobs", [tuple!["G.Wayshum", "T.Manhart", "NZ745"]]);
        let out = op.apply(&f3).unwrap();
        assert_eq!(out, fixtures::figure7_state());
        assert!(!out.relation("Jobs").unwrap().contains(&tuple![
            Value::Null,
            "T.Manhart",
            "NZ745"
        ]));
    }

    #[test]
    fn figure8_insertion_with_null_machine() {
        let premise = fixtures::figure8_premise_state();
        let op = RelOp::insert("Jobs", [tuple!["G.Wayshum", "T.Manhart", Value::Null]]);
        let out = op.apply(&premise).unwrap();
        assert_eq!(out, fixtures::figure8_state());
    }

    #[test]
    fn constraint_violation_yields_error_state_and_leaves_input_alone() {
        let f3 = fixtures::figure3_state();
        // Second operator for JCL181 violates uniqueness (constraint 3).
        let op = RelOp::insert("Operate", [tuple!["G.Wayshum", "JCL181", "press"]]);
        let err = op.apply(&f3).unwrap_err();
        assert!(matches!(err, OpError::Constraint(_)));
        // The input state is untouched (operations are pure functions).
        assert_eq!(f3, fixtures::figure3_state());
    }

    #[test]
    fn malformed_statement_yields_error_state() {
        let f3 = fixtures::figure3_state();
        let op = RelOp::insert("Employees", [tuple!["Nobody", 32]]);
        assert!(matches!(op.apply(&f3), Err(OpError::State(_))));
        let op = RelOp::insert("Ghost", [tuple!["x"]]);
        assert!(matches!(op.apply(&f3), Err(OpError::State(_))));
        let op = RelOp::delete("Ghost", [tuple!["x"]]);
        assert!(matches!(op.apply(&f3), Err(OpError::State(_))));
    }

    #[test]
    fn deleting_the_supervision_restores_figure3() {
        // The inverse of the Figure 6→7 insertion: deny exactly the
        // supervise(G.Wayshum, T.Manhart) statement. The combined Jobs row
        // is weakened back to (----, T.Manhart, NZ745).
        let f7 = fixtures::figure7_state();
        let op = RelOp::delete("Jobs", [tuple!["G.Wayshum", "T.Manhart", Value::Null]]);
        let out = op.apply(&f7).unwrap();
        assert_eq!(out, fixtures::figure3_state());
    }

    #[test]
    fn deleting_the_operate_statement_cascades_to_the_machine() {
        // Denying "T.Manhart operates NZ745" removes the machine: its
        // existence statement lives in the non-nullable Operate row (the
        // relational mirror of deleting a graph semantic unit).
        let f3 = fixtures::figure3_state();
        let op = RelOp::delete("Jobs", [tuple![Value::Null, "T.Manhart", "NZ745"]]);
        let out = op.apply(&f3).unwrap();
        assert_eq!(out, fixtures::figure8_premise_state());
        let facts = out.to_facts();
        assert!(!facts
            .iter()
            .any(|f| f.get("number").is_some_and(|a| a.as_str() == Some("NZ745"))));
    }

    #[test]
    fn deleting_combined_statement_denies_all_its_facts() {
        let f7 = fixtures::figure7_state();
        let op = RelOp::delete("Jobs", [tuple!["G.Wayshum", "T.Manhart", "NZ745"]]);
        let out = op.apply(&f7).unwrap();
        // Both the supervision and the operate pair (and hence machine
        // NZ745) are gone.
        assert_eq!(out, fixtures::figure8_premise_state());
    }

    #[test]
    fn deleting_an_employee_requires_removing_their_statements_first() {
        let f3 = fixtures::figure3_state();
        // G.Wayshum supervises C.Gershag, so the existence delete leaves a
        // dangling supervisor only if the supervision survives — it does
        // not: weakening nulls the supervisor column. Deleting the
        // employee existence statement weakens Jobs rows mentioning
        // G.Wayshum as supervisor? No: the existence fact lives in
        // Employees; Jobs asserts only the supervise fact. The subset
        // constraint then rejects the dangling name.
        let op = RelOp::delete("Employees", [tuple!["G.Wayshum", 50]]);
        assert!(matches!(op.apply(&f3), Err(OpError::Constraint(_))));
        // Denying the supervision in the same operation succeeds.
        let op = RelOp::delete_set(
            StatementSet::new()
                .with("Employees", tuple!["G.Wayshum", 50])
                .with("Jobs", tuple!["G.Wayshum", "C.Gershag", Value::Null]),
        );
        let out = op.apply(&f3).unwrap();
        assert!(!out
            .to_facts()
            .iter()
            .any(|f| f.args().any(|(_, a)| a.as_str() == Some("G.Wayshum"))));
    }

    #[test]
    fn multi_relation_insert_is_atomic() {
        // Inserting a new operate pair requires touching Operate and Jobs
        // together; either alone violates agreement.
        let premise = fixtures::figure8_premise_state();
        let only_operate = RelOp::insert("Operate", [tuple!["T.Manhart", "NZ745", "lathe"]]);
        assert!(matches!(
            only_operate.apply(&premise),
            Err(OpError::Constraint(_))
        ));

        let both = RelOp::insert_set(
            StatementSet::new()
                .with("Operate", tuple!["T.Manhart", "NZ745", "lathe"])
                .with("Jobs", tuple![Value::Null, "T.Manhart", "NZ745"]),
        );
        let out = both.apply(&premise).unwrap();
        assert_eq!(out, fixtures::figure3_state());
    }

    #[test]
    fn apply_all_composes_and_stops_at_first_error() {
        let f3 = fixtures::figure3_state();
        let ops = vec![
            RelOp::insert("Jobs", [tuple!["G.Wayshum", "T.Manhart", "NZ745"]]),
            RelOp::delete("Jobs", [tuple!["G.Wayshum", "T.Manhart", Value::Null]]),
        ];
        let out = RelOp::apply_all(&ops, &f3).unwrap();
        assert_eq!(out, f3);

        let bad = vec![RelOp::insert("Ghost", [tuple!["x"]])];
        assert!(RelOp::apply_all(&bad, &f3).is_err());
    }

    #[test]
    fn inserting_existing_statement_is_identity() {
        let f3 = fixtures::figure3_state();
        let op = RelOp::insert("Jobs", [tuple![Value::Null, "T.Manhart", "NZ745"]]);
        let out = op.apply(&f3).unwrap();
        assert_eq!(out, f3);
        assert_eq!(out.to_facts(), f3.to_facts());
    }

    #[test]
    fn deleting_absent_statement_is_identity() {
        let f3 = fixtures::figure3_state();
        let op = RelOp::delete("Jobs", [tuple!["G.Wayshum", "T.Manhart", Value::Null]]);
        let out = op.apply(&f3).unwrap();
        assert_eq!(out, f3);
    }

    #[test]
    fn delete_equals_fact_difference() {
        // The fact base after a delete is exactly the old fact base minus
        // the denied facts and their cascade.
        let f7 = fixtures::figure7_state();
        let op = RelOp::delete("Jobs", [tuple!["G.Wayshum", "T.Manhart", Value::Null]]);
        let out = op.apply(&f7).unwrap();
        let denied: Vec<_> = f7
            .to_facts()
            .difference(&out.to_facts())
            .iter()
            .cloned()
            .collect();
        assert_eq!(denied.len(), 1);
        assert_eq!(denied[0].predicate(), "supervise");
        assert!(state_equivalent(&out, &fixtures::figure3_state()).is_equivalent());
    }

    #[test]
    fn statement_set_accessors() {
        let set = StatementSet::new()
            .with("A", tuple!["x"])
            .with("B", tuple!["y"]);
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
        assert_eq!(set.tuples("A").count(), 1);
        assert_eq!(set.tuples("C").count(), 0);
        assert!(StatementSet::new().is_empty());
    }

    #[test]
    fn display() {
        let op = RelOp::insert("Jobs", [tuple!["a", "b", "c"]]);
        assert_eq!(op.to_string(), "insert-statements {Jobs(a, b, c)}");
        let del = RelOp::delete("Jobs", [tuple!["a", "b", "c"]]);
        assert!(del.to_string().starts_with("delete-statements"));
    }
}
