//! Semantic relation database states.
//!
//! A [`RelationState`] maps each relation name of its schema to a set of
//! tuples (statements). It enforces *well-formedness* (the state is a
//! syntactically meaningful collection of statements) as distinct from
//! the schema's *constraints* (checked by operations in [`crate::ops`]):
//!
//! * arity and domain membership per column;
//! * nullability per column;
//! * **participant coherence**: if a participant's identifying column is
//!   null, its other characteristic columns must be null too (a
//!   characteristic of an absent participant is meaningless);
//! * **no vacuous statements**: every tuple must assert at least one fact
//!   (see [`crate::facts`]).
//!
//! Valid states — those reachable through the operations — are
//! additionally **normalized**: no statement is dominated by another
//! (subsumption, §3.3.1) and no two statements are mergeable into one
//! that asserts exactly their combined facts. Normalization is what makes
//! the state → fact-base compilation injective, giving the paper its
//! required 1-1 state-equivalence correspondence.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

use dme_logic::Fact;
use dme_value::{Symbol, Tuple, Value};

use crate::facts::tuple_facts;
use crate::schema::{RelationSchema, RelationalSchema};

/// Read-only view over a state's incrementally-maintained fact index,
/// exposing exactly the [`dme_logic::FactBase`] queries normalization
/// needs. Keys iterate in the same canonical `Fact` order as a
/// `FactBase`, so pass outcomes (e.g. which saturation candidate is
/// found first) are identical to the rebuild-from-scratch path.
pub(crate) struct FactView<'a>(&'a BTreeMap<Fact, u32>);

impl FactView<'_> {
    /// Membership — mirrors [`dme_logic::FactBase::holds`].
    pub(crate) fn holds(&self, fact: &Fact) -> bool {
        self.0.contains_key(fact)
    }

    /// Facts matching a pattern, in canonical order — mirrors
    /// [`dme_logic::FactBase::matching`].
    pub(crate) fn matching<'b>(
        &'b self,
        pattern: &'b dme_logic::Pattern,
    ) -> impl Iterator<Item = &'b Fact> {
        self.0.keys().filter(move |f| pattern.matches(f))
    }
}

/// Errors raised by state well-formedness checks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StateError {
    /// A referenced relation is not in the schema.
    UnknownRelation(Symbol),
    /// Tuple arity differs from the heading's.
    ArityMismatch {
        /// The relation at fault.
        relation: Symbol,
        /// The heading's arity.
        expected: usize,
        /// The tuple's arity.
        found: usize,
    },
    /// A value is outside its column's domain.
    DomainViolation {
        /// The relation at fault.
        relation: Symbol,
        /// The flat column index.
        column: usize,
        /// The offending value.
        value: Value,
    },
    /// Null in a non-nullable column.
    NullNotAllowed {
        /// The relation at fault.
        relation: Symbol,
        /// The flat column index.
        column: usize,
    },
    /// Non-null characteristic of a participant whose identifying column
    /// is null.
    ParticipantIncoherent {
        /// The relation at fault.
        relation: Symbol,
        /// The incoherent participant's index.
        participant: usize,
    },
    /// The tuple asserts no facts.
    VacuousTuple {
        /// The relation at fault.
        relation: Symbol,
        /// The vacuous tuple.
        tuple: Tuple,
    },
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateError::UnknownRelation(r) => write!(f, "unknown relation `{r}`"),
            StateError::ArityMismatch { relation, expected, found } => write!(
                f,
                "relation `{relation}`: tuple arity {found}, heading arity {expected}"
            ),
            StateError::DomainViolation { relation, column, value } => write!(
                f,
                "relation `{relation}`: value `{value}` outside domain of column {column}"
            ),
            StateError::NullNotAllowed { relation, column } => {
                write!(f, "relation `{relation}`: null in non-nullable column {column}")
            }
            StateError::ParticipantIncoherent { relation, participant } => write!(
                f,
                "relation `{relation}`: participant {participant} has characteristics but a null identifying value"
            ),
            StateError::VacuousTuple { relation, tuple } => {
                write!(f, "relation `{relation}`: tuple {tuple} asserts no statement")
            }
        }
    }
}

impl std::error::Error for StateError {}

/// A database state of the semantic relation model.
#[derive(Clone)]
pub struct RelationState {
    schema: Arc<RelationalSchema>,
    relations: BTreeMap<Symbol, BTreeSet<Tuple>>,
    /// Incrementally-maintained content fingerprint: the XOR of
    /// per-(relation, tuple) hashes. Derived data — equality and
    /// ordering work on `relations` alone.
    fp: u64,
    /// Incrementally-maintained fact index: for every fact asserted by
    /// the state, how many statements assert it. The key set equals
    /// [`crate::facts::state_facts`], so normalization and constraint
    /// checking read it instead of recompiling every tuple on each
    /// operation. Derived data, like `fp`: ignored by `Eq`/`Ord`/`Hash`.
    facts: BTreeMap<Fact, u32>,
}

/// Element hash of one statement: the (relation, tuple) pair.
fn statement_fp(relation: &str, tuple: &Tuple) -> u64 {
    dme_logic::content_fingerprint(&(relation, tuple))
}

impl PartialEq for RelationState {
    fn eq(&self, other: &Self) -> bool {
        // States are compared by contents; callers only ever compare
        // states of the same application model.
        self.fp == other.fp && self.relations == other.relations
    }
}

impl Eq for RelationState {}

impl PartialOrd for RelationState {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for RelationState {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.relations.cmp(&other.relations)
    }
}

impl std::hash::Hash for RelationState {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Must agree with `Eq`: contents only, never the schema. The
        // fingerprint is a function of exactly the contents, so hashing
        // it keeps `Hash` consistent with `Eq` at O(1).
        state.write_u64(self.fp);
    }
}

impl fmt::Debug for RelationState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "RelationState {{")?;
        for (name, tuples) in &self.relations {
            writeln!(f, "  {name}:")?;
            for t in tuples {
                writeln!(f, "    {t}")?;
            }
        }
        write!(f, "}}")
    }
}

impl RelationState {
    /// The empty state of a schema — the paper's initial state, from
    /// which the valid states are generated as the closure of the
    /// allowable operations.
    pub fn empty(schema: Arc<RelationalSchema>) -> Self {
        let relations = schema
            .relations()
            .map(|r| (r.name().clone(), BTreeSet::new()))
            .collect();
        RelationState {
            schema,
            relations,
            fp: 0,
            facts: BTreeMap::new(),
        }
    }

    /// The state's incrementally-maintained 64-bit content fingerprint
    /// (see [`dme_logic::DeltaState::fingerprint`]). Equal states always
    /// carry equal fingerprints; distinct states may collide.
    pub fn fingerprint(&self) -> u64 {
        self.fp
    }

    /// The application-model schema this state belongs to.
    pub fn schema(&self) -> &Arc<RelationalSchema> {
        &self.schema
    }

    /// The tuples of a relation, if the relation exists.
    pub fn relation(&self, name: &str) -> Option<&BTreeSet<Tuple>> {
        self.relations.get(name)
    }

    /// Iterates over a relation's tuples (empty for unknown relations).
    pub fn tuples(&self, name: &str) -> impl Iterator<Item = &Tuple> {
        self.relations.get(name).into_iter().flatten()
    }

    /// Total number of tuples across relations.
    pub fn len(&self) -> usize {
        self.relations.values().map(BTreeSet::len).sum()
    }

    /// Whether every relation is empty.
    pub fn is_empty(&self) -> bool {
        self.relations.values().all(BTreeSet::is_empty)
    }

    /// Checks one tuple's well-formedness against a heading.
    pub fn check_tuple(
        schema: &RelationalSchema,
        rel: &RelationSchema,
        tuple: &Tuple,
    ) -> Result<(), StateError> {
        Self::checked_tuple_facts(schema, rel, tuple).map(|_| ())
    }

    /// Well-formedness check that also returns the tuple's compiled
    /// facts (the vacuity check needs them anyway; `insert_raw` reuses
    /// them to maintain the fact index without a second compilation).
    fn checked_tuple_facts(
        schema: &RelationalSchema,
        rel: &RelationSchema,
        tuple: &Tuple,
    ) -> Result<dme_logic::FactBase, StateError> {
        let name = rel.name();
        if tuple.arity() != rel.arity() {
            return Err(StateError::ArityMismatch {
                relation: name.clone(),
                expected: rel.arity(),
                found: tuple.arity(),
            });
        }
        let domains = schema.universe().domains();
        for (pi, p) in rel.participants().iter().enumerate() {
            let base = rel.participant_offset(pi);
            for (ci, col) in p.columns.iter().enumerate() {
                let v = &tuple[base + ci];
                if v.is_null() {
                    if !col.nullable {
                        return Err(StateError::NullNotAllowed {
                            relation: name.clone(),
                            column: base + ci,
                        });
                    }
                } else {
                    domains
                        .check(&col.domain, v)
                        .map_err(|_| StateError::DomainViolation {
                            relation: name.clone(),
                            column: base + ci,
                            value: v.clone(),
                        })?;
                }
            }
            // Coherence: null identifying value forces all characteristics
            // of the participant to be null.
            if tuple[rel.id_column(pi)].is_null()
                && (1..p.columns.len()).any(|ci| !tuple[base + ci].is_null())
            {
                return Err(StateError::ParticipantIncoherent {
                    relation: name.clone(),
                    participant: pi,
                });
            }
        }
        let facts = tuple_facts(rel, tuple);
        if facts.is_empty() {
            return Err(StateError::VacuousTuple {
                relation: name.clone(),
                tuple: tuple.clone(),
            });
        }
        Ok(facts)
    }

    /// Inserts a tuple after well-formedness checks, but **without**
    /// normalization or constraint checking. This is the low-level
    /// building block used by fixtures and by `insert-statements`
    /// (which normalizes and checks constraints afterwards).
    pub fn insert_raw(&mut self, relation: &str, tuple: Tuple) -> Result<(), StateError> {
        let schema = Arc::clone(&self.schema);
        let rel = schema
            .relation(relation)
            .ok_or_else(|| StateError::UnknownRelation(Symbol::new(relation)))?;
        let tf = Self::checked_tuple_facts(&schema, rel, &tuple)?;
        let h = statement_fp(relation, &tuple);
        let inserted = self
            .relations
            .get_mut(relation)
            .expect("schema relations are pre-populated")
            .insert(tuple);
        if inserted {
            self.fp ^= h;
            for f in tf.iter() {
                *self.facts.entry(f.clone()).or_insert(0) += 1;
            }
        }
        Ok(())
    }

    /// Removes an exact tuple; returns whether it was present.
    pub fn delete_raw(&mut self, relation: &str, tuple: &Tuple) -> Result<bool, StateError> {
        let schema = Arc::clone(&self.schema);
        let rel = schema
            .relation(relation)
            .ok_or_else(|| StateError::UnknownRelation(Symbol::new(relation)))?;
        let set = self
            .relations
            .get_mut(relation)
            .expect("schema relations are pre-populated");
        let removed = set.remove(tuple);
        if removed {
            self.fp ^= statement_fp(relation, tuple);
            self.unindex_facts(rel, tuple);
        }
        Ok(removed)
    }

    /// Decrements the fact-index refcounts for one removed statement.
    fn unindex_facts(&mut self, rel: &RelationSchema, tuple: &Tuple) {
        for f in tuple_facts(rel, tuple).iter() {
            match self.facts.get_mut(f) {
                Some(1) => {
                    self.facts.remove(f);
                }
                Some(n) => *n -= 1,
                None => unreachable!("fact index out of sync with statements"),
            }
        }
    }

    /// Whether the state asserts `fact` (O(log n) on the fact index).
    pub fn holds_fact(&self, fact: &Fact) -> bool {
        self.facts.contains_key(fact)
    }

    /// The state's fact index: every asserted fact with the number of
    /// statements asserting it. The key set is exactly
    /// [`crate::facts::state_facts`].
    pub(crate) fn fact_counts(&self) -> &BTreeMap<Fact, u32> {
        &self.facts
    }

    /// Checks every tuple's well-formedness.
    pub fn well_formed(&self) -> Result<(), StateError> {
        for rel in self.schema.relations() {
            for t in self.tuples(rel.name().as_str()) {
                Self::check_tuple(&self.schema, rel, t)?;
            }
        }
        Ok(())
    }

    /// Whether every relation is normalized: no dominated statements, no
    /// mergeable pairs, and no statement extendable from facts already
    /// true in the state (saturation — see [`RelationState::normalize`]).
    pub fn is_normalized(&self) -> bool {
        let facts = FactView(&self.facts);
        self.schema.relations().all(|rel| {
            let tuples = &self.relations[rel.name()];
            for a in tuples {
                for b in tuples {
                    if a < b {
                        if a.sem_cmp(b).is_some() {
                            return false; // comparable distinct pair
                        }
                        if let Some(j) = a.sem_join(b) {
                            let union = tuple_facts(rel, a).union(&tuple_facts(rel, b));
                            if tuple_facts(rel, &j) == union {
                                return false; // mergeable pair
                            }
                        }
                    }
                }
                if !saturation_extensions(rel, a, &facts)
                    .into_iter()
                    .all(|t| tuples.iter().any(|b| t.sem_le(b)))
                {
                    return false; // extendable statement not yet covered
                }
            }
            true
        })
    }

    /// Normalizes every relation in place:
    ///
    /// 1. **subsumption** — remove any statement strictly below another
    ///    (§3.3.1's automatic deletion);
    /// 2. **merging** — replace two statements by their join whenever the
    ///    join asserts exactly their combined facts;
    /// 3. **saturation** — extend any statement with a null column whose
    ///    value is already attested by the state's facts (the paper's
    ///    reading that a relation "contains the set of all true
    ///    statements fitting a certain form": canonical states keep the
    ///    *maximal* true statements).
    ///
    /// Iterates to a fixpoint. Normalization never changes the asserted
    /// fact set, and it makes the state → fact-base compilation injective
    /// on canonical states — the paper's requirement that "some specific
    /// application state is represented by a unique state" (§3.3.1).
    /// Both properties are enforced by property tests.
    pub fn normalize(&mut self) {
        // The fact *set* is a normalization invariant, and the fact
        // index maintains it incrementally, so the passes read the
        // index directly instead of recompiling every tuple. Each
        // relation's set is normalized on a scratch copy; the diff is
        // then replayed through the index- and fingerprint-maintaining
        // helpers (per-statement refcounts do change even though the
        // fact set does not — a subsumed statement's facts stay
        // asserted by its dominator).
        let schema = Arc::clone(&self.schema);
        for rel in schema.relations() {
            let before = self
                .relations
                .get(rel.name())
                .expect("schema relations are pre-populated");
            let mut after = before.clone();
            normalize_relation(rel, &mut after, &FactView(&self.facts));
            let removed: Vec<Tuple> = before.difference(&after).cloned().collect();
            let added: Vec<Tuple> = after.difference(before).cloned().collect();
            for t in &removed {
                let set = self
                    .relations
                    .get_mut(rel.name())
                    .expect("schema relations are pre-populated");
                set.remove(t);
                self.fp ^= statement_fp(rel.name().as_str(), t);
                self.unindex_facts(rel, t);
            }
            for t in added {
                let tf = tuple_facts(rel, &t);
                self.fp ^= statement_fp(rel.name().as_str(), &t);
                self.relations
                    .get_mut(rel.name())
                    .expect("schema relations are pre-populated")
                    .insert(t);
                for f in tf.iter() {
                    *self.facts.entry(f.clone()).or_insert(0) += 1;
                }
            }
        }
    }
}

/// Single-column extensions of `t` justified by already-true facts.
fn saturation_extensions(rel: &RelationSchema, t: &Tuple, facts: &FactView<'_>) -> Vec<Tuple> {
    use dme_logic::Pattern;
    let mut out = Vec::new();
    let mut push_candidate = |column: usize, atom: dme_value::Atom| {
        let values: Vec<Value> = t
            .values()
            .enumerate()
            .map(|(i, v)| {
                if i == column {
                    Value::Atom(atom.clone())
                } else {
                    v.clone()
                }
            })
            .collect();
        let candidate = Tuple::new(values);
        if tuple_facts(rel, &candidate).iter().all(|f| facts.holds(f)) {
            out.push(candidate);
        }
    };

    for (pi, p) in rel.participants().iter().enumerate() {
        let base = rel.participant_offset(pi);
        let id = t[base].as_atom();
        match id {
            Some(key) => {
                // Characteristic columns attested by characteristic facts.
                for (ci, _col) in p.columns.iter().enumerate().skip(1) {
                    if !t[base + ci].is_null() {
                        continue;
                    }
                    let pred = rel.characteristic_predicate_of(pi, ci).clone();
                    let pattern = Pattern::predicate(pred)
                        .with(p.columns[0].characteristic.clone(), key.clone());
                    for fact in facts.matching(&pattern) {
                        if let Some(v) = fact.get(dme_logic::vocab::VALUE_CASE) {
                            push_candidate(base + ci, v.clone());
                        }
                    }
                }
            }
            None => {
                // Absent participant: derivable through association facts
                // whose other cases are already bound in `t`.
                for (pred, case) in p.case_pairs() {
                    let bindings = rel
                        .bindings_of(pred.as_str())
                        .expect("mentioned predicates are bound");
                    let mut pattern = Pattern::predicate(pred.clone());
                    let mut complete = true;
                    for (other_case, opi) in bindings {
                        if other_case == case {
                            continue;
                        }
                        match t[rel.id_column(*opi)].as_atom() {
                            Some(a) => pattern = pattern.with(other_case.clone(), a.clone()),
                            None => {
                                complete = false;
                                break;
                            }
                        }
                    }
                    if !complete {
                        continue;
                    }
                    for fact in facts.matching(&pattern) {
                        if let Some(v) = fact.get(case.as_str()) {
                            push_candidate(base, v.clone());
                        }
                    }
                }
            }
        }
    }
    out
}

fn normalize_relation(rel: &RelationSchema, tuples: &mut BTreeSet<Tuple>, facts: &FactView<'_>) {
    loop {
        // Subsumption pass: drop statements strictly below another.
        let dominated: Vec<Tuple> = tuples
            .iter()
            .filter(|a| tuples.iter().any(|b| a.sem_lt(b)))
            .cloned()
            .collect();
        for t in &dominated {
            tuples.remove(t);
        }

        // Merge pass: find one mergeable pair, apply, restart.
        let mut merge: Option<(Tuple, Tuple, Tuple)> = None;
        'outer: for a in tuples.iter() {
            for b in tuples.iter() {
                if a >= b {
                    continue;
                }
                if let Some(j) = a.sem_join(b) {
                    if j == *a || j == *b {
                        continue; // comparable pair, handled by subsumption
                    }
                    let union = tuple_facts(rel, a).union(&tuple_facts(rel, b));
                    if tuple_facts(rel, &j) == union {
                        merge = Some((a.clone(), b.clone(), j));
                        break 'outer;
                    }
                }
            }
        }
        if let Some((a, b, j)) = merge {
            tuples.remove(&a);
            tuples.remove(&b);
            tuples.insert(j);
            continue;
        }

        // Saturation pass: add one uncovered extension, restart.
        let mut extension: Option<Tuple> = None;
        'sat: for t in tuples.iter() {
            for candidate in saturation_extensions(rel, t, facts) {
                if !tuples.iter().any(|b| candidate.sem_le(b)) {
                    extension = Some(candidate);
                    break 'sat;
                }
            }
        }
        if let Some(candidate) = extension {
            tuples.insert(candidate);
            continue;
        }

        if dominated.is_empty() {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use dme_logic::ToFacts;
    use dme_value::tuple;

    #[test]
    fn empty_state_is_well_formed_and_normalized() {
        let schema = Arc::new(fixtures::machine_shop_schema());
        let s = RelationState::empty(Arc::clone(&schema));
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        s.well_formed().unwrap();
        assert!(s.is_normalized());
    }

    #[test]
    fn figure3_state_is_well_formed_and_normalized() {
        let s = fixtures::figure3_state();
        s.well_formed().unwrap();
        assert!(s.is_normalized());
        assert_eq!(s.len(), 3 + 2 + 2);
    }

    #[test]
    fn unknown_relation_rejected() {
        let mut s = fixtures::figure3_state();
        assert_eq!(
            s.insert_raw("Ghost", tuple!["x"]),
            Err(StateError::UnknownRelation(Symbol::new("Ghost")))
        );
        assert!(s.delete_raw("Ghost", &tuple!["x"]).is_err());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut s = fixtures::figure3_state();
        assert!(matches!(
            s.insert_raw("Employees", tuple!["X"]),
            Err(StateError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn domain_violation_rejected() {
        let mut s = fixtures::figure3_state();
        assert!(matches!(
            s.insert_raw("Employees", tuple!["Nobody", 32]),
            Err(StateError::DomainViolation { .. })
        ));
        assert!(matches!(
            s.insert_raw("Employees", tuple!["T.Manhart", "not-a-year"]),
            Err(StateError::DomainViolation { .. })
        ));
    }

    #[test]
    fn null_in_required_column_rejected() {
        let mut s = fixtures::figure3_state();
        assert!(matches!(
            s.insert_raw("Employees", tuple![Value::Null, 32]),
            Err(StateError::NullNotAllowed { .. })
        ));
    }

    #[test]
    fn incoherent_participant_rejected() {
        let schema = Arc::new(fixtures::figure9_schema());
        let mut s = RelationState::empty(schema);
        // Machine number null but machine type present.
        assert!(matches!(
            s.insert_raw(
                "Jobs",
                tuple![Value::Null, "T.Manhart", 32, Value::Null, "lathe"]
            ),
            Err(StateError::ParticipantIncoherent { .. })
        ));
    }

    #[test]
    fn vacuous_tuple_rejected() {
        let mut s = fixtures::figure3_state();
        assert!(matches!(
            s.insert_raw("Jobs", tuple![Value::Null, "G.Wayshum", Value::Null]),
            Err(StateError::VacuousTuple { .. })
        ));
    }

    #[test]
    fn delete_raw_returns_presence() {
        let mut s = fixtures::figure3_state();
        let t = tuple!["T.Manhart", 32];
        assert_eq!(s.delete_raw("Employees", &t), Ok(true));
        assert_eq!(s.delete_raw("Employees", &t), Ok(false));
    }

    #[test]
    fn normalization_removes_dominated_statement() {
        let mut s = fixtures::figure3_state();
        s.insert_raw("Jobs", tuple!["G.Wayshum", "T.Manhart", "NZ745"])
            .unwrap();
        assert!(!s.is_normalized());
        let before = s.to_facts();
        s.normalize();
        assert!(s.is_normalized());
        // The dominated (----, T.Manhart, NZ745) is gone.
        assert!(!s
            .relation("Jobs")
            .unwrap()
            .contains(&tuple![Value::Null, "T.Manhart", "NZ745"]));
        // Fact set only grew by the new supervise fact.
        let after = s.to_facts();
        assert!(after.entails(&before));
    }

    #[test]
    fn normalization_merges_consistent_statements() {
        let schema = Arc::new(fixtures::machine_shop_schema());
        let mut s = RelationState::empty(Arc::clone(&schema));
        // Two halves of one statement about C.Gershag.
        s.insert_raw("Jobs", tuple!["G.Wayshum", "C.Gershag", Value::Null])
            .unwrap();
        s.insert_raw("Jobs", tuple![Value::Null, "C.Gershag", "JCL181"])
            .unwrap();
        let facts_before = s.to_facts();
        s.normalize();
        assert!(s.is_normalized());
        let jobs = s.relation("Jobs").unwrap();
        assert_eq!(jobs.len(), 1);
        assert!(jobs.contains(&tuple!["G.Wayshum", "C.Gershag", "JCL181"]));
        assert_eq!(s.to_facts(), facts_before, "normalization preserves facts");
    }

    #[test]
    fn normalization_does_not_merge_conflicting_statements() {
        let schema = Arc::new(fixtures::machine_shop_schema());
        let mut s = RelationState::empty(Arc::clone(&schema));
        s.insert_raw("Jobs", tuple!["G.Wayshum", "C.Gershag", "JCL181"])
            .unwrap();
        s.insert_raw("Jobs", tuple![Value::Null, "T.Manhart", "NZ745"])
            .unwrap();
        s.normalize();
        assert_eq!(s.relation("Jobs").unwrap().len(), 2);
    }

    #[test]
    fn states_compare_by_contents() {
        let a = fixtures::figure3_state();
        let b = fixtures::figure3_state();
        assert_eq!(a, b);
        let mut c = fixtures::figure3_state();
        c.delete_raw("Employees", &tuple!["T.Manhart", 32]).unwrap();
        assert_ne!(a, c);
    }
}
