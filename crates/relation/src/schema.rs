//! Relation headings and the relational application-model schema.
//!
//! Figure 3's four heading rows map onto this module's types as follows:
//!
//! | paper heading row | here |
//! |---|---|
//! | 1: sets of predicate:case pairs | [`Participant::pairs`] ([`Pair`]) |
//! | 2: case types | [`Participant::entity_type`] |
//! | 3: characteristics | [`CharacteristicCol::characteristic`] |
//! | 4: domains | [`CharacteristicCol::domain`] |
//!
//! A heading is a sequence of **participants** — one per noun phrase of
//! the underlying statement form. Each participant fills a set of
//! predicate:case pairs and is described by one or more characteristic
//! columns, the first of which must be the entity type's *identifying*
//! characteristic (that is how the participant is referenced by
//! association facts).
//!
//! A [`RelationalSchema`] — the declarative half of a semantic-relation
//! application model — is a set of relation headings plus constraints,
//! validated against a shared [`Universe`].

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use dme_logic::Universe;
use dme_value::Symbol;

use crate::constraints::Constraint;

/// One predicate:case pair from the first heading row.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Pair {
    /// `be <entity-type>:object` — the participant's existence is asserted
    /// by statements of this relation. The entity type is the
    /// participant's own.
    Existence,
    /// `<predicate>:<case>` — the participant fills `case` of `predicate`.
    Case {
        /// The association predicate, e.g. `operate`.
        predicate: Symbol,
        /// The case filled, e.g. `agent`.
        case: Symbol,
    },
}

impl Pair {
    /// Convenience constructor for a case pair.
    pub fn case(predicate: impl Into<Symbol>, case: impl Into<Symbol>) -> Self {
        Pair::Case {
            predicate: predicate.into(),
            case: case.into(),
        }
    }
}

impl fmt::Display for Pair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pair::Existence => write!(f, "be _:object"),
            Pair::Case { predicate, case } => write!(f, "{predicate}:{case}"),
        }
    }
}

/// One characteristic column of a participant (heading rows 3–4).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CharacteristicCol {
    /// The characteristic (row 3), e.g. `name`, `age`.
    pub characteristic: Symbol,
    /// The domain (row 4), e.g. `names`, `years`.
    pub domain: Symbol,
    /// Whether the column may hold null.
    pub nullable: bool,
}

impl CharacteristicCol {
    /// A non-nullable characteristic column.
    pub fn required(characteristic: impl Into<Symbol>, domain: impl Into<Symbol>) -> Self {
        CharacteristicCol {
            characteristic: characteristic.into(),
            domain: domain.into(),
            nullable: false,
        }
    }

    /// A nullable characteristic column.
    pub fn optional(characteristic: impl Into<Symbol>, domain: impl Into<Symbol>) -> Self {
        CharacteristicCol {
            characteristic: characteristic.into(),
            domain: domain.into(),
            nullable: true,
        }
    }
}

/// A participant of a relation heading: a noun phrase of the statement
/// form, with the predicate:case pairs it fills and its characteristic
/// columns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Participant {
    /// Predicate:case pairs filled by this participant (heading row 1).
    pub pairs: BTreeSet<Pair>,
    /// The participant's case type (heading row 2): an entity type.
    pub entity_type: Symbol,
    /// Characteristic columns; the first must be the entity type's
    /// identifying characteristic.
    pub columns: Vec<CharacteristicCol>,
}

impl Participant {
    /// Creates a participant.
    pub fn new(
        entity_type: impl Into<Symbol>,
        pairs: impl IntoIterator<Item = Pair>,
        columns: impl IntoIterator<Item = CharacteristicCol>,
    ) -> Self {
        Participant {
            pairs: pairs.into_iter().collect(),
            entity_type: entity_type.into(),
            columns: columns.into_iter().collect(),
        }
    }

    /// Whether this participant's existence is asserted here.
    pub fn asserts_existence(&self) -> bool {
        self.pairs.contains(&Pair::Existence)
    }

    /// The case pairs (excluding existence).
    pub fn case_pairs(&self) -> impl Iterator<Item = (&Symbol, &Symbol)> {
        self.pairs.iter().filter_map(|p| match p {
            Pair::Existence => None,
            Pair::Case { predicate, case } => Some((predicate, case)),
        })
    }

    /// Whether this participant fills the given predicate:case pair.
    pub fn fills(&self, predicate: &str, case: &str) -> bool {
        self.case_pairs()
            .any(|(p, c)| p.as_str() == predicate && c.as_str() == case)
    }

    /// Number of characteristic columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Index (within the participant) of the column carrying the given
    /// characteristic.
    pub fn column_of(&self, characteristic: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.characteristic.as_str() == characteristic)
    }
}

/// Errors found while validating relation headings against a universe.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SchemaError {
    /// The relation name is empty or duplicated.
    BadRelationName(Symbol),
    /// A participant's entity type is not declared in the universe.
    UnknownEntityType {
        /// The relation at fault.
        relation: Symbol,
        /// The undeclared entity type.
        entity_type: Symbol,
    },
    /// A participant has no characteristic columns.
    NoColumns {
        /// The relation at fault.
        relation: Symbol,
        /// The empty participant's index.
        participant: usize,
    },
    /// The first characteristic column is not the identifying one.
    FirstColumnNotIdentifying {
        /// The relation at fault.
        relation: Symbol,
        /// The participant's index.
        participant: usize,
        /// The entity type's identifying characteristic.
        expected: Symbol,
        /// The characteristic actually found first.
        found: Symbol,
    },
    /// A characteristic is not declared for the entity type, or its
    /// domain disagrees with the universe.
    BadCharacteristic {
        /// The relation at fault.
        relation: Symbol,
        /// The participant's index.
        participant: usize,
        /// The offending characteristic.
        characteristic: Symbol,
    },
    /// A duplicate characteristic column within one participant.
    DuplicateCharacteristic {
        /// The relation at fault.
        relation: Symbol,
        /// The participant's index.
        participant: usize,
        /// The repeated characteristic.
        characteristic: Symbol,
    },
    /// A case pair references an undeclared predicate or case, or the
    /// case's entity type disagrees with the participant's.
    BadCasePair {
        /// The relation at fault.
        relation: Symbol,
        /// The participant's index.
        participant: usize,
        /// The pair's predicate.
        predicate: Symbol,
        /// The pair's case.
        case: Symbol,
    },
    /// The same predicate:case pair is filled by two participants.
    DuplicateCasePair {
        /// The relation at fault.
        relation: Symbol,
        /// The pair's predicate.
        predicate: Symbol,
        /// The pair's case.
        case: Symbol,
    },
    /// A predicate is mentioned but not all of its cases are covered, so
    /// statements could not be compiled into complete association facts.
    IncompletePredicate {
        /// The relation at fault.
        relation: Symbol,
        /// The incompletely covered predicate.
        predicate: Symbol,
        /// A case no participant fills.
        missing: Symbol,
    },
    /// A constraint references a relation or column that does not exist.
    BadConstraint {
        /// The constraint's description.
        constraint: String,
        /// Why it was rejected.
        reason: String,
    },
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::BadRelationName(n) => write!(f, "bad relation name `{n}`"),
            SchemaError::UnknownEntityType { relation, entity_type } => {
                write!(f, "relation `{relation}`: unknown entity type `{entity_type}`")
            }
            SchemaError::NoColumns { relation, participant } => {
                write!(f, "relation `{relation}`: participant {participant} has no columns")
            }
            SchemaError::FirstColumnNotIdentifying { relation, participant, expected, found } => write!(
                f,
                "relation `{relation}`: participant {participant} must lead with identifying characteristic `{expected}`, found `{found}`"
            ),
            SchemaError::BadCharacteristic { relation, participant, characteristic } => write!(
                f,
                "relation `{relation}`: participant {participant} has invalid characteristic `{characteristic}`"
            ),
            SchemaError::DuplicateCharacteristic { relation, participant, characteristic } => write!(
                f,
                "relation `{relation}`: participant {participant} repeats characteristic `{characteristic}`"
            ),
            SchemaError::BadCasePair { relation, participant, predicate, case } => write!(
                f,
                "relation `{relation}`: participant {participant} fills invalid pair `{predicate}:{case}`"
            ),
            SchemaError::DuplicateCasePair { relation, predicate, case } => write!(
                f,
                "relation `{relation}`: pair `{predicate}:{case}` filled by two participants"
            ),
            SchemaError::IncompletePredicate { relation, predicate, missing } => write!(
                f,
                "relation `{relation}`: predicate `{predicate}` mentioned but case `{missing}` is not covered"
            ),
            SchemaError::BadConstraint { constraint, reason } => {
                write!(f, "constraint `{constraint}`: {reason}")
            }
        }
    }
}

impl std::error::Error for SchemaError {}

/// Heading-derived data precomputed at construction so the per-tuple
/// fact compiler ([`crate::facts::tuple_facts`]) and normalization's
/// saturation pass never rebuild predicate symbols or binding maps in
/// their inner loops. A pure function of the heading, so it never
/// affects `Eq`.
#[derive(Clone, Debug, PartialEq, Eq)]
struct CompiledHeading {
    /// Flat column offset per participant.
    offsets: Vec<usize>,
    /// `be <entity-type>` per participant.
    existence_preds: Vec<Symbol>,
    /// `<entity-type>.<characteristic>` per participant per column.
    char_preds: Vec<Vec<Symbol>>,
    /// The interned [`vocab::VALUE_CASE`] symbol.
    value_case: Symbol,
    /// All predicates mentioned by the heading.
    predicates: BTreeSet<Symbol>,
    /// Per mentioned predicate: its case → participant-index map.
    bindings: BTreeMap<Symbol, BTreeMap<Symbol, usize>>,
}

impl CompiledHeading {
    fn new(participants: &[Participant]) -> Self {
        use dme_logic::vocab;
        let mut offsets = Vec::with_capacity(participants.len());
        let mut acc = 0usize;
        for p in participants {
            offsets.push(acc);
            acc += p.width();
        }
        let existence_preds = participants
            .iter()
            .map(|p| vocab::existence_predicate(&p.entity_type))
            .collect();
        let char_preds = participants
            .iter()
            .map(|p| {
                p.columns
                    .iter()
                    .map(|c| vocab::characteristic_predicate(&p.entity_type, &c.characteristic))
                    .collect()
            })
            .collect();
        let predicates: BTreeSet<Symbol> = participants
            .iter()
            .flat_map(|p| p.case_pairs().map(|(pred, _)| pred.clone()))
            .collect();
        let bindings = predicates
            .iter()
            .map(|pred| {
                let mut out = BTreeMap::new();
                for (i, p) in participants.iter().enumerate() {
                    for (q, case) in p.case_pairs() {
                        if q == pred {
                            out.insert(case.clone(), i);
                        }
                    }
                }
                (pred.clone(), out)
            })
            .collect();
        CompiledHeading {
            offsets,
            existence_preds,
            char_preds,
            value_case: Symbol::new(vocab::VALUE_CASE),
            predicates,
            bindings,
        }
    }
}

/// One relation's heading: a name and its participants.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RelationSchema {
    name: Symbol,
    participants: Vec<Participant>,
    compiled: CompiledHeading,
}

impl RelationSchema {
    /// Creates a heading (validated later against a universe by
    /// [`RelationalSchema::new`], or directly with
    /// [`RelationSchema::validate`]).
    pub fn new(
        name: impl Into<Symbol>,
        participants: impl IntoIterator<Item = Participant>,
    ) -> Self {
        let participants: Vec<Participant> = participants.into_iter().collect();
        let compiled = CompiledHeading::new(&participants);
        RelationSchema {
            name: name.into(),
            participants,
            compiled,
        }
    }

    /// The precomputed `be <entity-type>` predicate of a participant.
    pub fn existence_predicate_of(&self, participant: usize) -> &Symbol {
        &self.compiled.existence_preds[participant]
    }

    /// The precomputed `<entity-type>.<characteristic>` predicate of a
    /// participant column.
    pub fn characteristic_predicate_of(&self, participant: usize, column: usize) -> &Symbol {
        &self.compiled.char_preds[participant][column]
    }

    /// The interned `value` case symbol.
    pub fn value_case(&self) -> &Symbol {
        &self.compiled.value_case
    }

    /// The predicates mentioned by this heading, precomputed.
    pub fn mentioned(&self) -> &BTreeSet<Symbol> {
        &self.compiled.predicates
    }

    /// Precomputed case → participant-index map of a mentioned
    /// predicate (`None` for unmentioned predicates).
    pub fn bindings_of(&self, predicate: &str) -> Option<&BTreeMap<Symbol, usize>> {
        self.compiled.bindings.get(predicate)
    }

    /// The relation's name.
    pub fn name(&self) -> &Symbol {
        &self.name
    }

    /// The participants in heading order.
    pub fn participants(&self) -> &[Participant] {
        &self.participants
    }

    /// Total number of (flat) columns.
    pub fn arity(&self) -> usize {
        self.participants.iter().map(Participant::width).sum()
    }

    /// The flat column offset where `participant`'s columns begin.
    pub fn participant_offset(&self, participant: usize) -> usize {
        self.compiled.offsets[participant]
    }

    /// Flat column index of a participant's identifying column (always
    /// its first column).
    pub fn id_column(&self, participant: usize) -> usize {
        self.participant_offset(participant)
    }

    /// Flat column index of `characteristic` within `participant`.
    pub fn column(&self, participant: usize, characteristic: &str) -> Option<usize> {
        self.participants
            .get(participant)?
            .column_of(characteristic)
            .map(|i| self.participant_offset(participant) + i)
    }

    /// Finds the participant (by index) that fills `predicate:case`.
    pub fn participant_filling(&self, predicate: &str, case: &str) -> Option<usize> {
        self.participants
            .iter()
            .position(|p| p.fills(predicate, case))
    }

    /// All predicates mentioned by this heading (across participants).
    pub fn mentioned_predicates(&self) -> BTreeSet<Symbol> {
        self.compiled.predicates.clone()
    }

    /// For a mentioned predicate, the case → participant-index map.
    pub fn predicate_bindings(&self, predicate: &str) -> BTreeMap<Symbol, usize> {
        self.compiled
            .bindings
            .get(predicate)
            .cloned()
            .unwrap_or_default()
    }

    /// Validates the heading against the universe (see [`SchemaError`]).
    pub fn validate(&self, universe: &Universe) -> Result<(), SchemaError> {
        if self.name.is_empty() {
            return Err(SchemaError::BadRelationName(self.name.clone()));
        }
        let mut seen_pairs: BTreeSet<(Symbol, Symbol)> = BTreeSet::new();
        for (pi, p) in self.participants.iter().enumerate() {
            let et = universe
                .entity_type(p.entity_type.as_str())
                .ok_or_else(|| SchemaError::UnknownEntityType {
                    relation: self.name.clone(),
                    entity_type: p.entity_type.clone(),
                })?;
            if p.columns.is_empty() {
                return Err(SchemaError::NoColumns {
                    relation: self.name.clone(),
                    participant: pi,
                });
            }
            if &p.columns[0].characteristic != et.id_characteristic() {
                return Err(SchemaError::FirstColumnNotIdentifying {
                    relation: self.name.clone(),
                    participant: pi,
                    expected: et.id_characteristic().clone(),
                    found: p.columns[0].characteristic.clone(),
                });
            }
            let mut seen_chars = BTreeSet::new();
            for col in &p.columns {
                if !seen_chars.insert(col.characteristic.clone()) {
                    return Err(SchemaError::DuplicateCharacteristic {
                        relation: self.name.clone(),
                        participant: pi,
                        characteristic: col.characteristic.clone(),
                    });
                }
                match et.domain_of(col.characteristic.as_str()) {
                    Some(d) if *d == col.domain => {}
                    _ => {
                        return Err(SchemaError::BadCharacteristic {
                            relation: self.name.clone(),
                            participant: pi,
                            characteristic: col.characteristic.clone(),
                        })
                    }
                }
            }
            for (pred, case) in p.case_pairs() {
                let ok = universe
                    .predicate(pred.as_str())
                    .and_then(|pd| pd.case_type(case.as_str()))
                    .is_some_and(|ct| *ct == p.entity_type);
                if !ok {
                    return Err(SchemaError::BadCasePair {
                        relation: self.name.clone(),
                        participant: pi,
                        predicate: pred.clone(),
                        case: case.clone(),
                    });
                }
                if !seen_pairs.insert((pred.clone(), case.clone())) {
                    return Err(SchemaError::DuplicateCasePair {
                        relation: self.name.clone(),
                        predicate: pred.clone(),
                        case: case.clone(),
                    });
                }
            }
        }
        // Completeness: every mentioned predicate must have all cases
        // covered so statements compile into complete association facts.
        for pred in self.mentioned_predicates() {
            let decl = universe
                .predicate(pred.as_str())
                .expect("checked above: mentioned predicates are declared");
            let bound = self.predicate_bindings(pred.as_str());
            for (case, _) in decl.cases() {
                if !bound.contains_key(case) {
                    return Err(SchemaError::IncompletePredicate {
                        relation: self.name.clone(),
                        predicate: pred.clone(),
                        missing: case.clone(),
                    });
                }
            }
        }
        Ok(())
    }
}

/// The declarative half of a semantic-relation application model: the
/// universe agreement, the relation headings, and the constraints.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RelationalSchema {
    universe: Universe,
    relations: BTreeMap<Symbol, RelationSchema>,
    constraints: Vec<Constraint>,
}

impl RelationalSchema {
    /// Builds and validates a relational schema.
    pub fn new(
        universe: Universe,
        relations: impl IntoIterator<Item = RelationSchema>,
        constraints: impl IntoIterator<Item = Constraint>,
    ) -> Result<Self, SchemaError> {
        let mut rels = BTreeMap::new();
        for r in relations {
            r.validate(&universe)?;
            if rels.contains_key(r.name()) {
                return Err(SchemaError::BadRelationName(r.name().clone()));
            }
            rels.insert(r.name().clone(), r);
        }
        let schema = RelationalSchema {
            universe,
            relations: rels,
            constraints: Vec::new(),
        };
        let mut schema = schema;
        for c in constraints {
            c.validate(&schema)
                .map_err(|reason| SchemaError::BadConstraint {
                    constraint: c.describe(),
                    reason,
                })?;
            schema.constraints.push(c);
        }
        Ok(schema)
    }

    /// The shared universe.
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// Looks up a relation heading.
    pub fn relation(&self, name: &str) -> Option<&RelationSchema> {
        self.relations.get(name)
    }

    /// All relation headings in name order.
    pub fn relations(&self) -> impl Iterator<Item = &RelationSchema> {
        self.relations.values()
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Whether the schema declares no relations.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// The constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// The fact vocabulary this schema can express: entity types with an
    /// existence participant somewhere, the characteristic columns
    /// present, and the predicates mentioned. For a *full* view over its
    /// universe this is the whole vocabulary; for a subset external
    /// schema (§1.2) it is the sub-language that state equivalence and
    /// operation translation are relativized to.
    pub fn vocabulary(&self) -> dme_logic::vocab::FactFilter {
        let mut filter = dme_logic::vocab::FactFilter::new();
        for rel in self.relations.values() {
            for p in rel.participants() {
                if p.asserts_existence() {
                    filter.entity_types.insert(p.entity_type.clone());
                }
                for col in p.columns.iter().skip(1) {
                    filter
                        .characteristics
                        .insert((p.entity_type.clone(), col.characteristic.clone()));
                }
                for (pred, _) in p.case_pairs() {
                    filter.predicates.insert(pred.clone());
                }
            }
        }
        filter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dme_value::sym;

    fn universe() -> Universe {
        Universe::machine_shop()
    }

    fn employees() -> RelationSchema {
        RelationSchema::new(
            "Employees",
            [Participant::new(
                "employee",
                [Pair::Existence],
                [
                    CharacteristicCol::required("name", "names"),
                    CharacteristicCol::required("age", "years"),
                ],
            )],
        )
    }

    fn operate() -> RelationSchema {
        RelationSchema::new(
            "Operate",
            [
                Participant::new(
                    "employee",
                    [Pair::case("operate", "agent")],
                    [CharacteristicCol::required("name", "names")],
                ),
                Participant::new(
                    "machine",
                    [Pair::Existence, Pair::case("operate", "object")],
                    [
                        CharacteristicCol::required("number", "serial-numbers"),
                        CharacteristicCol::required("type", "machine-types"),
                    ],
                ),
            ],
        )
    }

    #[test]
    fn valid_headings_pass() {
        let u = universe();
        employees().validate(&u).unwrap();
        operate().validate(&u).unwrap();
    }

    #[test]
    fn offsets_and_columns() {
        let op = operate();
        assert_eq!(op.arity(), 3);
        assert_eq!(op.participant_offset(0), 0);
        assert_eq!(op.participant_offset(1), 1);
        assert_eq!(op.id_column(1), 1);
        assert_eq!(op.column(1, "type"), Some(2));
        assert_eq!(op.column(1, "name"), None);
        assert_eq!(op.participant_filling("operate", "object"), Some(1));
        assert_eq!(op.participant_filling("operate", "instrument"), None);
    }

    #[test]
    fn mentioned_predicates_and_bindings() {
        let op = operate();
        let preds = op.mentioned_predicates();
        assert!(preds.contains("operate"));
        assert_eq!(preds.len(), 1);
        let b = op.predicate_bindings("operate");
        assert_eq!(b.get("agent"), Some(&0));
        assert_eq!(b.get("object"), Some(&1));
    }

    #[test]
    fn rejects_unknown_entity_type() {
        let r = RelationSchema::new(
            "R",
            [Participant::new(
                "robot",
                [],
                [CharacteristicCol::required("name", "names")],
            )],
        );
        assert!(matches!(
            r.validate(&universe()),
            Err(SchemaError::UnknownEntityType { .. })
        ));
    }

    #[test]
    fn rejects_wrong_first_column() {
        let r = RelationSchema::new(
            "R",
            [Participant::new(
                "employee",
                [],
                [CharacteristicCol::required("age", "years")],
            )],
        );
        assert!(matches!(
            r.validate(&universe()),
            Err(SchemaError::FirstColumnNotIdentifying { .. })
        ));
    }

    #[test]
    fn rejects_bad_domain_for_characteristic() {
        let r = RelationSchema::new(
            "R",
            [Participant::new(
                "employee",
                [],
                [CharacteristicCol::required("name", "years")],
            )],
        );
        assert!(matches!(
            r.validate(&universe()),
            Err(SchemaError::BadCharacteristic { .. })
        ));
    }

    #[test]
    fn rejects_duplicate_characteristic() {
        let r = RelationSchema::new(
            "R",
            [Participant::new(
                "employee",
                [],
                [
                    CharacteristicCol::required("name", "names"),
                    CharacteristicCol::required("name", "names"),
                ],
            )],
        );
        assert!(matches!(
            r.validate(&universe()),
            Err(SchemaError::DuplicateCharacteristic { .. })
        ));
    }

    #[test]
    fn rejects_bad_case_pair() {
        // `operate:object` accepts machines, not employees.
        let r = RelationSchema::new(
            "R",
            [Participant::new(
                "employee",
                [Pair::case("operate", "object")],
                [CharacteristicCol::required("name", "names")],
            )],
        );
        assert!(matches!(
            r.validate(&universe()),
            Err(SchemaError::BadCasePair { .. })
        ));
    }

    #[test]
    fn rejects_incomplete_predicate() {
        // Mentions operate:agent but nothing fills operate:object.
        let r = RelationSchema::new(
            "R",
            [Participant::new(
                "employee",
                [Pair::case("operate", "agent")],
                [CharacteristicCol::required("name", "names")],
            )],
        );
        assert!(matches!(
            r.validate(&universe()),
            Err(SchemaError::IncompletePredicate { .. })
        ));
    }

    #[test]
    fn rejects_duplicate_case_pair() {
        let r = RelationSchema::new(
            "R",
            [
                Participant::new(
                    "employee",
                    [
                        Pair::case("supervise", "agent"),
                        Pair::case("supervise", "object"),
                    ],
                    [CharacteristicCol::required("name", "names")],
                ),
                Participant::new(
                    "employee",
                    [Pair::case("supervise", "agent")],
                    [CharacteristicCol::required("name", "names")],
                ),
            ],
        );
        assert!(matches!(
            r.validate(&universe()),
            Err(SchemaError::DuplicateCasePair { .. })
        ));
    }

    #[test]
    fn relational_schema_rejects_duplicate_relation_names() {
        let u = universe();
        let err = RelationalSchema::new(u, [employees(), employees()], []).unwrap_err();
        assert_eq!(err, SchemaError::BadRelationName(sym!("Employees")));
    }

    #[test]
    fn relational_schema_accessors() {
        let s = RelationalSchema::new(universe(), [employees(), operate()], []).unwrap();
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert!(s.relation("Employees").is_some());
        assert!(s.relation("Nope").is_none());
        assert_eq!(s.constraints().len(), 0);
    }

    #[test]
    fn pair_display() {
        assert_eq!(Pair::case("operate", "agent").to_string(), "operate:agent");
        assert_eq!(Pair::Existence.to_string(), "be _:object");
    }
}
