//! Compilation of relational statements into logic facts (§3.2.3).
//!
//! Each tuple of a relation is one natural-language statement; this module
//! translates it into the set of ground facts it asserts, using the
//! canonical vocabulary of `dme-logic`:
//!
//! * a participant whose pairs include `be <type>:object` asserts an
//!   **existence** fact for its (non-null) identifying value;
//! * every non-null, non-identifying characteristic column asserts a
//!   **characteristic** fact;
//! * for every predicate mentioned by the heading, if *all* of its cases
//!   are filled by participants with non-null identifying values, the
//!   tuple asserts one **association** fact; if any case participant is
//!   null, the statement simply does not speak about that predicate
//!   (Figure 3's `(----, T.Manhart, NZ745)` asserts only the `operate`
//!   fact, not a `supervise` fact).
//!
//! A tuple that asserts *no* facts is **vacuous** and rejected by state
//! well-formedness: this is why Figure 3's Jobs relation has no
//! `(----, G.Wayshum, ----)` row, while Figure 9's single relation *does*
//! contain `(----, G.Wayshum, 50, ----, ----)` — there the second
//! participant carries `be employee:object`, so the row asserts
//! existence and age facts.

use dme_logic::{vocab, Fact, FactBase, ToFacts};
use dme_value::{Atom, Tuple};

use crate::schema::RelationSchema;
use crate::state::RelationState;

/// The facts asserted by one tuple under the given heading.
///
/// The tuple must be well-formed for the heading (arity checked by
/// callers; a wrong arity yields an empty fact set).
pub fn tuple_facts(rel: &RelationSchema, tuple: &Tuple) -> FactBase {
    let mut out = FactBase::new();
    if tuple.arity() != rel.arity() {
        return out;
    }

    // Identifying atom per participant (None when null / absent).
    let keys: Vec<Option<&Atom>> = (0..rel.participants().len())
        .map(|pi| tuple[rel.id_column(pi)].as_atom())
        .collect();

    // Fact shapes are exactly the `vocab` constructors'; the predicate
    // symbols come from the heading's compiled cache instead of being
    // re-interned per call (this is the closure enumerator's innermost
    // loop).
    for (pi, p) in rel.participants().iter().enumerate() {
        let Some(key) = keys[pi] else { continue };
        // We need the identifying characteristic name; by validation it is
        // the participant's first column.
        let id_char = &p.columns[0].characteristic;
        if p.asserts_existence() {
            out.insert(Fact::new(
                rel.existence_predicate_of(pi).clone(),
                [(id_char.clone(), key.clone())],
            ));
        }
        let base = rel.participant_offset(pi);
        for (ci, _col) in p.columns.iter().enumerate().skip(1) {
            if let Some(v) = tuple[base + ci].as_atom() {
                out.insert(Fact::new(
                    rel.characteristic_predicate_of(pi, ci).clone(),
                    [
                        (id_char.clone(), key.clone()),
                        (rel.value_case().clone(), v.clone()),
                    ],
                ));
            }
        }
    }

    for pred in rel.mentioned() {
        let bindings = rel
            .bindings_of(pred.as_str())
            .expect("mentioned predicates are bound");
        let mut cases = Vec::with_capacity(bindings.len());
        let mut complete = true;
        for (case, pi) in bindings {
            match keys[*pi] {
                Some(key) => cases.push((case.clone(), key.clone())),
                None => {
                    complete = false;
                    break;
                }
            }
        }
        if complete {
            out.insert(vocab::association(pred, cases));
        }
    }

    out
}

/// The facts asserted by an entire state: the union over all relations
/// and tuples. This realises the paper's reading of a relation as "the
/// set of all true statements fitting a certain form".
pub fn state_facts(state: &RelationState) -> FactBase {
    // The state maintains its fact index incrementally (see
    // [`RelationState`]); its key set is exactly this union, so read it
    // instead of recompiling every tuple.
    FactBase::from_facts(state.fact_counts().keys().cloned())
}

impl ToFacts for RelationState {
    fn to_facts(&self) -> FactBase {
        state_facts(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use dme_logic::Fact;
    use dme_value::{tuple, Value};

    #[test]
    fn figure3_jobs_row1_asserts_two_association_facts() {
        let schema = fixtures::machine_shop_schema();
        let jobs = schema.relation("Jobs").unwrap();
        let facts = tuple_facts(jobs, &tuple!["G.Wayshum", "C.Gershag", "JCL181"]);
        assert!(facts.holds(&Fact::new(
            "supervise",
            [
                ("agent", Atom::str("G.Wayshum")),
                ("object", Atom::str("C.Gershag"))
            ],
        )));
        assert!(facts.holds(&Fact::new(
            "operate",
            [
                ("agent", Atom::str("C.Gershag")),
                ("object", Atom::str("JCL181"))
            ],
        )));
        assert_eq!(facts.len(), 2);
    }

    #[test]
    fn null_supervisor_suppresses_supervise_fact() {
        let schema = fixtures::machine_shop_schema();
        let jobs = schema.relation("Jobs").unwrap();
        let facts = tuple_facts(jobs, &tuple![Value::Null, "T.Manhart", "NZ745"]);
        assert_eq!(facts.len(), 1);
        assert!(facts.holds(&Fact::new(
            "operate",
            [
                ("agent", Atom::str("T.Manhart")),
                ("object", Atom::str("NZ745"))
            ],
        )));
    }

    #[test]
    fn employees_row_asserts_existence_and_age() {
        let schema = fixtures::machine_shop_schema();
        let employees = schema.relation("Employees").unwrap();
        let facts = tuple_facts(employees, &tuple!["T.Manhart", 32]);
        assert_eq!(facts.len(), 2);
        assert!(facts.holds(&Fact::new(
            "be employee",
            [("name", Atom::str("T.Manhart"))]
        )));
        assert!(facts.holds(&Fact::new(
            "employee.age",
            [("name", Atom::str("T.Manhart")), ("value", Atom::int(32))],
        )));
    }

    #[test]
    fn operate_row_asserts_machine_existence_type_and_operate() {
        let schema = fixtures::machine_shop_schema();
        let operate = schema.relation("Operate").unwrap();
        let facts = tuple_facts(operate, &tuple!["T.Manhart", "NZ745", "lathe"]);
        assert_eq!(facts.len(), 3);
        assert!(facts.holds(&Fact::new("be machine", [("number", Atom::str("NZ745"))])));
        assert!(facts.holds(&Fact::new(
            "machine.type",
            [
                ("number", Atom::str("NZ745")),
                ("value", Atom::str("lathe"))
            ],
        )));
        assert!(facts.holds(&Fact::new(
            "operate",
            [
                ("agent", Atom::str("T.Manhart")),
                ("object", Atom::str("NZ745"))
            ],
        )));
    }

    #[test]
    fn vacuous_tuple_asserts_nothing() {
        let schema = fixtures::machine_shop_schema();
        let jobs = schema.relation("Jobs").unwrap();
        let facts = tuple_facts(jobs, &tuple![Value::Null, "G.Wayshum", Value::Null]);
        assert!(facts.is_empty());
    }

    #[test]
    fn arity_mismatch_yields_empty() {
        let schema = fixtures::machine_shop_schema();
        let jobs = schema.relation("Jobs").unwrap();
        assert!(tuple_facts(jobs, &tuple!["x"]).is_empty());
    }

    #[test]
    fn figure3_state_full_fact_base() {
        let state = fixtures::figure3_state();
        let facts = state.to_facts();
        // 3 employees × (existence + age) + 2 machines × (existence + type)
        // + 2 operate + 1 supervise = 6 + 4 + 2 + 1 = 13.
        assert_eq!(facts.len(), 13);
    }
}
