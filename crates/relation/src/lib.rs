#![deny(missing_docs)]

//! # dme-relation — the semantic relation data model
//!
//! An executable implementation of the semantic relation data model of
//! Borkin's *Data Model Equivalence* (§3.2.1). The model is a "semantic
//! version" of Codd's relational model, influenced by case grammars:
//!
//! * a relation is a set of **statements** (tuples), each the filled-in
//!   form of a natural-language sentence ("There is a machine of type __
//!   with number __ and this machine is operated by an employee named __");
//! * a relation's heading carries four rows of metadata: **predicate:case
//!   pairs**, **case types**, **characteristics**, and **domains**
//!   (Figure 3);
//! * the operations are the insertion and deletion of sets of statements,
//!   where insertion "is defined to automatically delete all tuples in a
//!   relation less than those inserted" under the null-based partial order
//!   (§3.3.1, Figures 6–8);
//! * every successful operation leaves the state satisfying the schema's
//!   **constraints** — semantic counterparts of functional dependencies,
//!   subset constraints and agreement constraints (§3.2.1);
//! * three semantic joins — **case-join**, **predicate-join** and
//!   **conjunction** — replace the syntactic join (§3.2.1).
//!
//! The crate is organised as:
//!
//! * [`schema`] — headings ([`Participant`], [`RelationSchema`]) and the
//!   application-model schema [`RelationalSchema`];
//! * [`state`] — [`RelationState`]: relation name → set of tuples, with
//!   well-formedness and normalization;
//! * [`ops`] — [`RelOp`]: `insert-statements` / `delete-statements`;
//! * [`constraints`] — the constraint language and checker;
//! * [`facts`] — compilation of states into `dme-logic` fact bases
//!   (the §3.2.3 interpretation);
//! * [`fixtures`] — the paper's Figures 3, 7, 8 and 9 as ready-made
//!   schemas and states, shared by tests, examples and benches.

pub mod algebra;
pub mod constraints;
pub mod display;
pub mod facts;
pub mod fixtures;
pub mod ops;
pub mod schema;
pub mod state;

pub use constraints::{ColsRef, Constraint, ConstraintViolation};
pub use ops::{OpError, RelOp};
pub use schema::{
    CharacteristicCol, Pair, Participant, RelationSchema, RelationalSchema, SchemaError,
};
pub use state::{RelationState, StateError};
