//! The semantic algebra: case-join, predicate-join and conjunction.
//!
//! §3.2.1: "to reflect the semantics of the relations, three distinct
//! operations, *case-join*, *predicate-join* and *conjunction*, replace
//! the syntactic *join*":
//!
//! * [`case_join`] "combines two relations describing different
//!   characteristics of the same predicate-case pair into a single
//!   relation" (also [`existence_join`] for the `be <type>:object` pair);
//! * [`predicate_join`] "combines two relations describing different
//!   cases of the same predicate into a single relation";
//! * [`conjunction`] "combines two relations containing different
//!   predicates into a single relation".
//!
//! All three are *retrieval* operations: they produce a
//! [`DerivedRelation`] — a heading plus tuples — for querying and for
//! expressing constraints, not a new base relation. Mechanically each is
//! a participant-merging equi-join on identifying characteristics; the
//! semantic preconditions (which pairs/predicates/entity types the
//! operands must share) are what distinguish them, exactly as the paper
//! distinguishes them by what the operands *describe*.

use std::collections::BTreeSet;
use std::fmt;

use dme_value::{Symbol, Tuple, Value};

use crate::schema::{Participant, RelationSchema};
use crate::state::RelationState;

/// A query result: a heading plus a set of tuples.
///
/// Derived headings are not registered in any schema; they exist to give
/// results their semantic interpretation (which participant fills which
/// predicate:case pairs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DerivedRelation {
    schema: RelationSchema,
    tuples: BTreeSet<Tuple>,
}

impl DerivedRelation {
    /// Wraps a base relation of a state as a derived relation.
    pub fn base(state: &RelationState, name: &str) -> Option<DerivedRelation> {
        let schema = state.schema().relation(name)?.clone();
        let tuples = state.relation(name)?.clone();
        Some(DerivedRelation { schema, tuples })
    }

    /// Builds a derived relation from parts (used internally and by
    /// tests).
    pub fn from_parts(schema: RelationSchema, tuples: impl IntoIterator<Item = Tuple>) -> Self {
        DerivedRelation {
            schema,
            tuples: tuples.into_iter().collect(),
        }
    }

    /// The heading.
    pub fn schema(&self) -> &RelationSchema {
        &self.schema
    }

    /// The tuples.
    pub fn tuples(&self) -> &BTreeSet<Tuple> {
        &self.tuples
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the result is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Selection: keep tuples satisfying the predicate.
    pub fn select(&self, keep: impl Fn(&Tuple) -> bool) -> DerivedRelation {
        DerivedRelation {
            schema: self.schema.clone(),
            tuples: self.tuples.iter().filter(|t| keep(t)).cloned().collect(),
        }
    }

    /// Semantic projection onto a subset of participants (whole
    /// participants, never single characteristic columns — projecting
    /// away half a participant would leave dangling characteristics).
    pub fn project(&self, participants: &[usize]) -> Result<DerivedRelation, AlgebraError> {
        let mut cols = Vec::new();
        let mut parts = Vec::new();
        for &pi in participants {
            let p = self
                .schema
                .participants()
                .get(pi)
                .ok_or(AlgebraError::UnknownParticipant(pi))?;
            parts.push(p.clone());
            let base = self.schema.participant_offset(pi);
            cols.extend(base..base + p.width());
        }
        let name = Symbol::new(format!("π({})", self.schema.name()));
        let schema = RelationSchema::new(name, parts);
        let tuples = self
            .tuples
            .iter()
            .filter_map(|t| t.project(&cols))
            .collect();
        Ok(DerivedRelation { schema, tuples })
    }
}

impl fmt::Display for DerivedRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} ({} tuples):", self.schema.name(), self.tuples.len())?;
        for t in &self.tuples {
            writeln!(f, "  {t}")?;
        }
        Ok(())
    }
}

/// Errors raised by the semantic algebra.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AlgebraError {
    /// A participant index is out of range.
    UnknownParticipant(usize),
    /// The operands do not both fill the given predicate:case pair.
    PairNotShared {
        /// The pair's predicate.
        predicate: Symbol,
        /// The pair's case.
        case: Symbol,
    },
    /// The operands do not both assert existence of the entity type.
    ExistenceNotShared(Symbol),
    /// The operands share no case of the predicate.
    NoSharedCase(Symbol),
    /// The operands' merged participants have different entity types.
    EntityTypeMismatch {
        /// The left participant's entity type.
        left: Symbol,
        /// The right participant's entity type.
        right: Symbol,
    },
    /// Conjunction requires the operands to describe different predicates.
    PredicatesNotDisjoint(Symbol),
}

impl fmt::Display for AlgebraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgebraError::UnknownParticipant(i) => write!(f, "no participant {i}"),
            AlgebraError::PairNotShared { predicate, case } => {
                write!(f, "pair `{predicate}:{case}` not filled by both operands")
            }
            AlgebraError::ExistenceNotShared(t) => {
                write!(f, "existence of `{t}` not asserted by both operands")
            }
            AlgebraError::NoSharedCase(p) => {
                write!(f, "operands share no case of predicate `{p}`")
            }
            AlgebraError::EntityTypeMismatch { left, right } => {
                write!(
                    f,
                    "cannot merge participants of types `{left}` and `{right}`"
                )
            }
            AlgebraError::PredicatesNotDisjoint(p) => {
                write!(f, "conjunction operands both describe predicate `{p}`")
            }
        }
    }
}

impl std::error::Error for AlgebraError {}

/// The engine shared by all three joins: merge the participant pairs in
/// `merges` (left index, right index), equi-joining on identifying
/// characteristics and on any shared characteristic columns.
fn join_on(
    left: &DerivedRelation,
    right: &DerivedRelation,
    merges: &[(usize, usize)],
) -> Result<DerivedRelation, AlgebraError> {
    // Validate indices and entity types.
    for &(lp, rp) in merges {
        let l = left
            .schema
            .participants()
            .get(lp)
            .ok_or(AlgebraError::UnknownParticipant(lp))?;
        let r = right
            .schema
            .participants()
            .get(rp)
            .ok_or(AlgebraError::UnknownParticipant(rp))?;
        if l.entity_type != r.entity_type {
            return Err(AlgebraError::EntityTypeMismatch {
                left: l.entity_type.clone(),
                right: r.entity_type.clone(),
            });
        }
    }

    let merged_right: BTreeSet<usize> = merges.iter().map(|&(_, rp)| rp).collect();

    // Build result participants and, per participant, the recipe for
    // constructing result columns from (left tuple, right tuple).
    enum Src {
        Left(usize),
        Right(usize),
    }
    let mut parts: Vec<Participant> = Vec::new();
    let mut recipe: Vec<Src> = Vec::new();
    // Identifying columns that must be equal *and non-null* — the join
    // condition proper: (left col, right col).
    let mut id_agreements: Vec<(usize, usize)> = Vec::new();
    // Shared non-identifying characteristics that must simply be equal
    // (null == null allowed): both statements speak about the same
    // participant, so where both carry the same characteristic they must
    // say the same thing.
    let mut shared_agreements: Vec<(usize, usize)> = Vec::new();

    for (lpi, lp) in left.schema.participants().iter().enumerate() {
        let lbase = left.schema.participant_offset(lpi);
        let merge = merges.iter().find(|&&(l, _)| l == lpi).map(|&(_, r)| r);
        match merge {
            None => {
                parts.push(lp.clone());
                recipe.extend((0..lp.width()).map(|c| Src::Left(lbase + c)));
            }
            Some(rpi) => {
                let rp = &right.schema.participants()[rpi];
                let rbase = right.schema.participant_offset(rpi);
                id_agreements.push((lbase, rbase));
                let mut columns = lp.columns.clone();
                recipe.extend((0..lp.width()).map(|c| Src::Left(lbase + c)));
                for (ci, col) in rp.columns.iter().enumerate() {
                    match lp.column_of(col.characteristic.as_str()) {
                        Some(lci) => {
                            if ci != 0 {
                                shared_agreements.push((lbase + lci, rbase + ci));
                            }
                        }
                        None => {
                            columns.push(col.clone());
                            recipe.push(Src::Right(rbase + ci));
                        }
                    }
                }
                parts.push(Participant {
                    pairs: lp.pairs.union(&rp.pairs).cloned().collect(),
                    entity_type: lp.entity_type.clone(),
                    columns,
                });
            }
        }
    }
    for (rpi, rp) in right.schema.participants().iter().enumerate() {
        if merged_right.contains(&rpi) {
            continue;
        }
        let rbase = right.schema.participant_offset(rpi);
        parts.push(rp.clone());
        recipe.extend((0..rp.width()).map(|c| Src::Right(rbase + c)));
    }

    let name = Symbol::new(format!("({}⋈{})", left.schema.name(), right.schema.name()));
    let schema = RelationSchema::new(name, parts);

    let mut tuples = BTreeSet::new();
    for lt in &left.tuples {
        for rt in &right.tuples {
            let id_ok = id_agreements
                .iter()
                .all(|&(lc, rc)| !lt[lc].is_null() && lt[lc] == rt[rc]);
            let shared_ok = shared_agreements.iter().all(|&(lc, rc)| lt[lc] == rt[rc]);
            if !id_ok || !shared_ok {
                continue;
            }
            let values: Vec<Value> = recipe
                .iter()
                .map(|s| match s {
                    Src::Left(c) => lt[*c].clone(),
                    Src::Right(c) => rt[*c].clone(),
                })
                .collect();
            tuples.insert(Tuple::new(values));
        }
    }

    Ok(DerivedRelation { schema, tuples })
}

/// Case-join: both operands describe the same predicate:case pair; the
/// result combines their characteristics of that participant.
pub fn case_join(
    left: &DerivedRelation,
    right: &DerivedRelation,
    predicate: &str,
    case: &str,
) -> Result<DerivedRelation, AlgebraError> {
    let lp = left
        .schema
        .participant_filling(predicate, case)
        .ok_or_else(|| AlgebraError::PairNotShared {
            predicate: Symbol::new(predicate),
            case: Symbol::new(case),
        })?;
    let rp = right
        .schema
        .participant_filling(predicate, case)
        .ok_or_else(|| AlgebraError::PairNotShared {
            predicate: Symbol::new(predicate),
            case: Symbol::new(case),
        })?;
    join_on(left, right, &[(lp, rp)])
}

/// Case-join on the existence pair `be <entity_type>:object`.
pub fn existence_join(
    left: &DerivedRelation,
    right: &DerivedRelation,
    entity_type: &str,
) -> Result<DerivedRelation, AlgebraError> {
    let find = |rel: &DerivedRelation| {
        rel.schema
            .participants()
            .iter()
            .position(|p| p.asserts_existence() && p.entity_type.as_str() == entity_type)
    };
    let lp =
        find(left).ok_or_else(|| AlgebraError::ExistenceNotShared(Symbol::new(entity_type)))?;
    let rp =
        find(right).ok_or_else(|| AlgebraError::ExistenceNotShared(Symbol::new(entity_type)))?;
    join_on(left, right, &[(lp, rp)])
}

/// Predicate-join: both operands describe cases of `predicate`; the
/// result joins on all shared cases and covers the union of the cases.
pub fn predicate_join(
    left: &DerivedRelation,
    right: &DerivedRelation,
    predicate: &str,
) -> Result<DerivedRelation, AlgebraError> {
    let lb = left.schema.predicate_bindings(predicate);
    let rb = right.schema.predicate_bindings(predicate);
    let merges: Vec<(usize, usize)> = lb
        .iter()
        .filter_map(|(case, &lp)| rb.get(case).map(|&rp| (lp, rp)))
        .collect();
    if merges.is_empty() {
        return Err(AlgebraError::NoSharedCase(Symbol::new(predicate)));
    }
    join_on(left, right, &merges)
}

/// Conjunction: the operands describe *different* predicates and are
/// combined through a shared participant (given by index on each side).
///
/// ```
/// use dme_relation::algebra::{conjunction, DerivedRelation};
/// use dme_relation::fixtures;
///
/// // "There is an employee named X aged Y who operates machine Z":
/// let state = fixtures::figure3_state();
/// let employees = DerivedRelation::base(&state, "Employees").unwrap();
/// let operate = DerivedRelation::base(&state, "Operate").unwrap();
/// let combined = conjunction(&employees, &operate, 0, 0).unwrap();
/// assert_eq!(combined.len(), 2);
/// ```
pub fn conjunction(
    left: &DerivedRelation,
    right: &DerivedRelation,
    left_participant: usize,
    right_participant: usize,
) -> Result<DerivedRelation, AlgebraError> {
    if let Some(shared) = left
        .schema
        .mentioned_predicates()
        .intersection(&right.schema.mentioned_predicates())
        .next()
    {
        return Err(AlgebraError::PredicatesNotDisjoint(shared.clone()));
    }
    join_on(left, right, &[(left_participant, right_participant)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use dme_value::tuple;

    fn f3() -> RelationState {
        fixtures::figure3_state()
    }

    #[test]
    fn base_wraps_relations() {
        let s = f3();
        let emp = DerivedRelation::base(&s, "Employees").unwrap();
        assert_eq!(emp.len(), 3);
        assert!(!emp.is_empty());
        assert!(DerivedRelation::base(&s, "Ghost").is_none());
    }

    #[test]
    fn conjunction_of_employees_and_operate() {
        // "There is an employee named X aged Y who operates machine Z of
        // type W" — different predicates (existence vs operate), combined
        // through the employee participant.
        let s = f3();
        let emp = DerivedRelation::base(&s, "Employees").unwrap();
        let op = DerivedRelation::base(&s, "Operate").unwrap();
        let j = conjunction(&emp, &op, 0, 0).unwrap();
        assert_eq!(j.len(), 2);
        assert!(j
            .tuples()
            .contains(&tuple!["T.Manhart", 32, "NZ745", "lathe"]));
        assert!(j
            .tuples()
            .contains(&tuple!["C.Gershag", 40, "JCL181", "press"]));
        // The merged participant carries both existence and operate:agent.
        let p0 = &j.schema().participants()[0];
        assert!(p0.asserts_existence());
        assert!(p0.fills("operate", "agent"));
    }

    #[test]
    fn conjunction_rejects_shared_predicates() {
        let s = f3();
        let jobs = DerivedRelation::base(&s, "Jobs").unwrap();
        let op = DerivedRelation::base(&s, "Operate").unwrap();
        assert_eq!(
            conjunction(&jobs, &op, 2, 1).unwrap_err(),
            AlgebraError::PredicatesNotDisjoint(Symbol::new("operate"))
        );
    }

    #[test]
    fn case_join_on_operate_object() {
        // Jobs and Operate both describe operate:object — join machines.
        let s = f3();
        let jobs = DerivedRelation::base(&s, "Jobs").unwrap();
        let op = DerivedRelation::base(&s, "Operate").unwrap();
        let j = case_join(&jobs, &op, "operate", "object").unwrap();
        // Each Jobs row joins its machine's Operate row.
        assert_eq!(j.len(), 2);
        assert!(j.tuples().contains(&tuple![
            "G.Wayshum",
            "C.Gershag",
            "JCL181",
            "press",
            "C.Gershag"
        ]));
        assert!(j.tuples().contains(&tuple![
            dme_value::Value::Null,
            "T.Manhart",
            "NZ745",
            "lathe",
            "T.Manhart"
        ]));
    }

    #[test]
    fn case_join_requires_shared_pair() {
        let s = f3();
        let emp = DerivedRelation::base(&s, "Employees").unwrap();
        let op = DerivedRelation::base(&s, "Operate").unwrap();
        assert!(matches!(
            case_join(&emp, &op, "operate", "object"),
            Err(AlgebraError::PairNotShared { .. })
        ));
    }

    #[test]
    fn predicate_join_operate() {
        let s = f3();
        let op = DerivedRelation::base(&s, "Operate").unwrap();
        let jobs = DerivedRelation::base(&s, "Jobs").unwrap();
        let j = predicate_join(&op, &jobs, "operate").unwrap();
        // Shared cases: agent and object → join on both; supervisor comes
        // along from Jobs.
        assert_eq!(j.len(), 2);
        assert!(j
            .tuples()
            .contains(&tuple!["C.Gershag", "JCL181", "press", "G.Wayshum"]));
        assert!(j.tuples().contains(&tuple![
            "T.Manhart",
            "NZ745",
            "lathe",
            dme_value::Value::Null
        ]));
    }

    #[test]
    fn predicate_join_requires_shared_case() {
        let s = f3();
        let emp = DerivedRelation::base(&s, "Employees").unwrap();
        let op = DerivedRelation::base(&s, "Operate").unwrap();
        assert_eq!(
            predicate_join(&emp, &op, "operate").unwrap_err(),
            AlgebraError::NoSharedCase(Symbol::new("operate"))
        );
    }

    #[test]
    fn existence_join_machines() {
        // Two views of machines: Operate asserts machine existence. Join a
        // projected copy with itself through existence.
        let s = f3();
        let op = DerivedRelation::base(&s, "Operate").unwrap();
        let machines = op.project(&[1]).unwrap();
        assert_eq!(machines.len(), 2);
        let j = existence_join(&machines, &machines.clone(), "machine").unwrap();
        assert_eq!(j.len(), 2); // self-join on key: same two machines
        assert!(matches!(
            existence_join(
                &machines,
                &DerivedRelation::base(&s, "Jobs").unwrap(),
                "machine"
            ),
            Err(AlgebraError::ExistenceNotShared(_))
        ));
    }

    #[test]
    fn entity_type_mismatch_detected() {
        let s = f3();
        let op = DerivedRelation::base(&s, "Operate").unwrap();
        // Merge employee participant with machine participant directly.
        let err = join_on(&op, &op.clone(), &[(0, 1)]).unwrap_err();
        assert!(matches!(err, AlgebraError::EntityTypeMismatch { .. }));
    }

    #[test]
    fn select_filters() {
        let s = f3();
        let emp = DerivedRelation::base(&s, "Employees").unwrap();
        let over35 = emp.select(|t| t[1].as_atom().and_then(|a| a.as_int()).unwrap_or(0) > 35);
        assert_eq!(over35.len(), 2);
    }

    #[test]
    fn project_validates_indices() {
        let s = f3();
        let emp = DerivedRelation::base(&s, "Employees").unwrap();
        assert!(matches!(
            emp.project(&[7]),
            Err(AlgebraError::UnknownParticipant(7))
        ));
        let p = emp.project(&[0]).unwrap();
        assert_eq!(p.schema().arity(), 2);
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn join_null_keys_never_match() {
        let s = f3();
        let jobs = DerivedRelation::base(&s, "Jobs").unwrap();
        // Join Jobs with itself on the supervisor participant: the row
        // with a null supervisor must not join anything.
        let j = join_on(&jobs, &jobs.clone(), &[(0, 0)]).unwrap();
        for t in j.tuples() {
            assert!(!t[0].is_null());
        }
    }

    #[test]
    fn error_display() {
        assert_eq!(
            AlgebraError::NoSharedCase(Symbol::new("operate")).to_string(),
            "operands share no case of predicate `operate`"
        );
    }
}
