//! Paper-style rendering of relations.
//!
//! Figure 3 prints each relation with a four-row heading — predicate:case
//! pairs, case types, characteristics, domains — above the statements.
//! [`render_relation`] reproduces that layout for any relation of a
//! state, so example output can be compared with the paper directly.

use std::fmt::Write as _;

use crate::schema::{Pair, RelationSchema};
use crate::state::RelationState;

/// Renders one relation of a state in the paper's table layout. Returns
/// `None` when the relation is not in the state's schema.
pub fn render_relation(state: &RelationState, name: &str) -> Option<String> {
    let rel = state.schema().relation(name)?;
    let tuples: Vec<Vec<String>> = state
        .tuples(name)
        .map(|t| t.values().map(|v| v.to_string()).collect())
        .collect();

    // Build the four heading rows, one cell per flat column.
    let mut pairs_row = Vec::with_capacity(rel.arity());
    let mut types_row = Vec::with_capacity(rel.arity());
    let mut chars_row = Vec::with_capacity(rel.arity());
    let mut domains_row = Vec::with_capacity(rel.arity());
    for p in rel.participants() {
        let pair_text = p
            .pairs
            .iter()
            .map(|pair| match pair {
                Pair::Existence => format!("be {}:object", p.entity_type),
                Pair::Case { predicate, case } => format!("{predicate}:{case}"),
            })
            .collect::<Vec<_>>()
            .join(" ");
        for (ci, col) in p.columns.iter().enumerate() {
            pairs_row.push(if ci == 0 {
                pair_text.clone()
            } else {
                String::new()
            });
            types_row.push(if ci == 0 {
                p.entity_type.as_str().to_owned()
            } else {
                String::new()
            });
            chars_row.push(col.characteristic.as_str().to_owned());
            domains_row.push(col.domain.as_str().to_owned());
        }
    }

    // Column widths.
    let mut widths: Vec<usize> = (0..rel.arity())
        .map(|c| {
            [&pairs_row, &types_row, &chars_row, &domains_row]
                .iter()
                .map(|row| row[c].len())
                .chain(tuples.iter().map(|t| t[c].len()))
                .max()
                .unwrap_or(0)
        })
        .collect();
    for w in &mut widths {
        *w = (*w).max(4);
    }

    let mut out = String::new();
    let rule = |out: &mut String| {
        let _ = write!(out, "+");
        for w in &widths {
            let _ = write!(out, "{}+", "-".repeat(w + 2));
        }
        let _ = writeln!(out);
    };
    let row = |out: &mut String, cells: &[String]| {
        let _ = write!(out, "|");
        for (cell, w) in cells.iter().zip(&widths) {
            let _ = write!(out, " {cell:w$} |");
        }
        let _ = writeln!(out);
    };

    let _ = writeln!(out, "{name}");
    rule(&mut out);
    row(&mut out, &pairs_row);
    row(&mut out, &types_row);
    row(&mut out, &chars_row);
    row(&mut out, &domains_row);
    rule(&mut out);
    for t in &tuples {
        row(&mut out, t);
    }
    rule(&mut out);
    Some(out)
}

/// Renders every relation of a state in schema order.
pub fn render_state(state: &RelationState) -> String {
    let mut out = String::new();
    for rel in state.schema().relations() {
        if let Some(table) = render_relation(state, rel.name().as_str()) {
            out.push_str(&table);
            out.push('\n');
        }
    }
    out
}

/// Helper so callers can re-derive the heading rows without rendering.
pub fn heading_rows(rel: &RelationSchema) -> [Vec<String>; 4] {
    let mut pairs_row = Vec::new();
    let mut types_row = Vec::new();
    let mut chars_row = Vec::new();
    let mut domains_row = Vec::new();
    for p in rel.participants() {
        for (ci, col) in p.columns.iter().enumerate() {
            if ci == 0 {
                pairs_row.push(
                    p.pairs
                        .iter()
                        .map(|pair| match pair {
                            Pair::Existence => format!("be {}:object", p.entity_type),
                            Pair::Case { predicate, case } => format!("{predicate}:{case}"),
                        })
                        .collect::<Vec<_>>()
                        .join(" "),
                );
                types_row.push(p.entity_type.as_str().to_owned());
            } else {
                pairs_row.push(String::new());
                types_row.push(String::new());
            }
            chars_row.push(col.characteristic.as_str().to_owned());
            domains_row.push(col.domain.as_str().to_owned());
        }
    }
    [pairs_row, types_row, chars_row, domains_row]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    #[test]
    fn renders_figure3_jobs_like_the_paper() {
        let s = fixtures::figure3_state();
        let table = render_relation(&s, "Jobs").unwrap();
        assert!(table.contains("supervise:agent"));
        assert!(table.contains("operate:agent supervise:object"));
        assert!(table.contains("serial-numbers"));
        assert!(table.contains("G.Wayshum"));
        assert!(table.contains("----"), "null shown in the paper's notation");
        // Four heading rows plus two statements.
        assert_eq!(table.lines().filter(|l| l.starts_with('|')).count(), 6);
    }

    #[test]
    fn render_state_covers_all_relations() {
        let s = fixtures::figure3_state();
        let text = render_state(&s);
        assert!(text.contains("Employees"));
        assert!(text.contains("Operate"));
        assert!(text.contains("Jobs"));
    }

    #[test]
    fn unknown_relation_is_none() {
        let s = fixtures::figure3_state();
        assert!(render_relation(&s, "Ghost").is_none());
    }

    #[test]
    fn heading_rows_shapes() {
        let s = fixtures::machine_shop_schema();
        let [pairs, types, chars, domains] = heading_rows(s.relation("Operate").unwrap());
        assert_eq!(pairs.len(), 3);
        assert_eq!(types, vec!["employee", "machine", ""]);
        assert_eq!(chars, vec!["name", "number", "type"]);
        assert_eq!(domains, vec!["names", "serial-numbers", "machine-types"]);
        assert!(pairs[1].contains("be machine:object"));
        assert!(pairs[1].contains("operate:object"));
    }
}
