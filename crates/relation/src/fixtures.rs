//! The paper's worked examples as ready-made schemas and states.
//!
//! * [`machine_shop_schema`] — the three-relation schema of Figure 3
//!   (Employees, Operate, Jobs) with the four §3.2.1 constraints plus the
//!   companion constraints needed for faithfulness to the Figure 5 graph
//!   schema;
//! * [`figure3_state`] — Figure 3's state;
//! * [`figure7_state`] — Figure 7 (after inserting the supervision of
//!   T.Manhart by G.Wayshum, with the old Jobs row auto-deleted);
//! * [`figure8_premise_state`] / [`figure8_state`] — the §3.3.1 thought
//!   experiment: the same insertion from a state where T.Manhart operates
//!   no machine (Figure 8's null-bearing tuple);
//! * [`figure9_schema`] / [`figure9_state`] — the single-relation
//!   application model of Figure 9, state-equivalent to Figure 3.

use std::sync::Arc;

use dme_logic::Universe;
use dme_value::{tuple, Value};

use crate::constraints::{ColsRef, Constraint};
use crate::schema::{CharacteristicCol, Pair, Participant, RelationSchema, RelationalSchema};
use crate::state::RelationState;

/// The Figure 3 application-model schema: Employees, Operate, Jobs over
/// the machine-shop universe.
///
/// Constraints (numbers 1–4 are quoted in §3.2.1):
///
/// 1. operators are employees (`Operate[0] ⊆ Employees[0]`);
/// 2. every machine has an operator (`Operate[0]` not null);
/// 3. at most one operator per machine (`Operate[1]` unique);
/// 4. operator/machine matching agrees between Operate and Jobs;
///
/// plus: employee names identify Employees rows; Jobs only mentions
/// employees known to Employees.
pub fn machine_shop_schema() -> RelationalSchema {
    let universe = Universe::machine_shop();
    let employees = RelationSchema::new(
        "Employees",
        [Participant::new(
            "employee",
            [Pair::Existence],
            [
                CharacteristicCol::required("name", "names"),
                CharacteristicCol::required("age", "years"),
            ],
        )],
    );
    let operate = RelationSchema::new(
        "Operate",
        [
            Participant::new(
                "employee",
                [Pair::case("operate", "agent")],
                [CharacteristicCol::required("name", "names")],
            ),
            Participant::new(
                "machine",
                [Pair::Existence, Pair::case("operate", "object")],
                [
                    CharacteristicCol::required("number", "serial-numbers"),
                    CharacteristicCol::required("type", "machine-types"),
                ],
            ),
        ],
    );
    let jobs = RelationSchema::new(
        "Jobs",
        [
            Participant::new(
                "employee",
                [Pair::case("supervise", "agent")],
                [CharacteristicCol::optional("name", "names")],
            ),
            Participant::new(
                "employee",
                [
                    Pair::case("supervise", "object"),
                    Pair::case("operate", "agent"),
                ],
                [CharacteristicCol::required("name", "names")],
            ),
            Participant::new(
                "machine",
                [Pair::case("operate", "object")],
                [CharacteristicCol::optional("number", "serial-numbers")],
            ),
        ],
    );
    RelationalSchema::new(
        universe,
        [employees, operate, jobs],
        [
            // (1) subset: operators are employees.
            Constraint::Subset {
                from: ColsRef::new("Operate", [0]),
                to: ColsRef::new("Employees", [0]),
            },
            // (2) every machine has an operator.
            Constraint::NotNull {
                relation: "Operate".into(),
                column: 0,
            },
            // (3) one operator per machine.
            Constraint::Unique {
                relation: "Operate".into(),
                columns: vec![1],
            },
            // (4) operator/machine matching agrees between Operate & Jobs.
            Constraint::Agreement {
                left: ColsRef::new("Operate", [0, 1]),
                right: ColsRef::new("Jobs", [1, 2]),
            },
            // Employee names identify Employees statements.
            Constraint::Unique {
                relation: "Employees".into(),
                columns: vec![0],
            },
            // Jobs mentions only known employees.
            Constraint::Subset {
                from: ColsRef::new("Jobs", [0]),
                to: ColsRef::new("Employees", [0]),
            },
            Constraint::Subset {
                from: ColsRef::new("Jobs", [1]),
                to: ColsRef::new("Employees", [0]),
            },
        ],
    )
    .expect("machine-shop schema is well-formed")
}

fn base_state(schema: Arc<RelationalSchema>) -> RelationState {
    let mut s = RelationState::empty(schema);
    for t in [
        tuple!["T.Manhart", 32],
        tuple!["C.Gershag", 40],
        tuple!["G.Wayshum", 50],
    ] {
        s.insert_raw("Employees", t).expect("fixture employees");
    }
    s
}

/// The Figure 3 database state.
pub fn figure3_state() -> RelationState {
    let schema = Arc::new(machine_shop_schema());
    let mut s = base_state(schema);
    s.insert_raw("Operate", tuple!["T.Manhart", "NZ745", "lathe"])
        .expect("fixture operate");
    s.insert_raw("Operate", tuple!["C.Gershag", "JCL181", "press"])
        .expect("fixture operate");
    s.insert_raw("Jobs", tuple!["G.Wayshum", "C.Gershag", "JCL181"])
        .expect("fixture jobs");
    s.insert_raw("Jobs", tuple![Value::Null, "T.Manhart", "NZ745"])
        .expect("fixture jobs");
    s
}

/// The Figure 7 database state: Figure 3 after inserting the statement
/// "G.Wayshum supervises T.Manhart, who operates NZ745". The old
/// `(----, T.Manhart, NZ745)` row has been auto-deleted by subsumption.
pub fn figure7_state() -> RelationState {
    let schema = Arc::new(machine_shop_schema());
    let mut s = base_state(schema);
    s.insert_raw("Operate", tuple!["T.Manhart", "NZ745", "lathe"])
        .expect("fixture operate");
    s.insert_raw("Operate", tuple!["C.Gershag", "JCL181", "press"])
        .expect("fixture operate");
    s.insert_raw("Jobs", tuple!["G.Wayshum", "C.Gershag", "JCL181"])
        .expect("fixture jobs");
    s.insert_raw("Jobs", tuple!["G.Wayshum", "T.Manhart", "NZ745"])
        .expect("fixture jobs");
    s
}

/// The premise of the Figure 8 thought experiment: the Figure 3 state
/// *without* any operation association involving T.Manhart (and hence
/// without machine NZ745, which would otherwise lack an operator).
pub fn figure8_premise_state() -> RelationState {
    let schema = Arc::new(machine_shop_schema());
    let mut s = base_state(schema);
    s.insert_raw("Operate", tuple!["C.Gershag", "JCL181", "press"])
        .expect("fixture operate");
    s.insert_raw("Jobs", tuple!["G.Wayshum", "C.Gershag", "JCL181"])
        .expect("fixture jobs");
    s
}

/// The Figure 8 database state: the premise state after inserting the
/// supervision of T.Manhart by G.Wayshum. Because T.Manhart operates no
/// machine, the equivalent relational insertion carries a **null** in the
/// `operate:object` column — the paper's demonstration that equivalent
/// operations can be state dependent.
pub fn figure8_state() -> RelationState {
    let mut s = figure8_premise_state();
    s.insert_raw("Jobs", tuple!["G.Wayshum", "T.Manhart", Value::Null])
        .expect("fixture jobs");
    s
}

/// The Figure 9 application-model schema: a single relation carrying the
/// same information as Figure 3's three relations. "There may be several
/// relational application models state dependent equivalent to each graph
/// model" — this is the second one used throughout the workspace.
pub fn figure9_schema() -> RelationalSchema {
    let universe = Universe::machine_shop();
    let jobs = RelationSchema::new(
        "Jobs",
        [
            Participant::new(
                "employee",
                [Pair::case("supervise", "agent")],
                [CharacteristicCol::optional("name", "names")],
            ),
            Participant::new(
                "employee",
                [
                    Pair::Existence,
                    Pair::case("supervise", "object"),
                    Pair::case("operate", "agent"),
                ],
                [
                    CharacteristicCol::required("name", "names"),
                    CharacteristicCol::required("age", "years"),
                ],
            ),
            Participant::new(
                "machine",
                [Pair::Existence, Pair::case("operate", "object")],
                [
                    CharacteristicCol::optional("number", "serial-numbers"),
                    CharacteristicCol::optional("type", "machine-types"),
                ],
            ),
        ],
    );
    RelationalSchema::new(
        universe,
        [jobs],
        [
            // Each employee has one age.
            Constraint::Functional {
                relation: "Jobs".into(),
                determinant: vec![1],
                dependent: vec![2],
            },
            // Each machine has one type…
            Constraint::Functional {
                relation: "Jobs".into(),
                determinant: vec![3],
                dependent: vec![4],
            },
            // …and one operator.
            Constraint::Functional {
                relation: "Jobs".into(),
                determinant: vec![3],
                dependent: vec![1],
            },
            // A machine row must carry its type.
            Constraint::Implies {
                relation: "Jobs".into(),
                if_nonnull: 3,
                then_nonnull: 4,
            },
            // Supervisors are employees described by the relation.
            Constraint::Subset {
                from: ColsRef::new("Jobs", [0]),
                to: ColsRef::new("Jobs", [1]),
            },
        ],
    )
    .expect("figure 9 schema is well-formed")
}

/// A **subset** external schema (§1.2): the personnel department's view
/// of the machine shop — employees and supervisions only; machines and
/// operate associations are invisible. Its vocabulary (see
/// [`RelationalSchema::vocabulary`]) relativizes state equivalence and
/// update translation to the facts it can express.
pub fn personnel_schema() -> RelationalSchema {
    let universe = Universe::machine_shop();
    RelationalSchema::new(
        universe,
        [
            RelationSchema::new(
                "Employees",
                [Participant::new(
                    "employee",
                    [Pair::Existence],
                    [
                        CharacteristicCol::required("name", "names"),
                        CharacteristicCol::required("age", "years"),
                    ],
                )],
            ),
            RelationSchema::new(
                "Supervisions",
                [
                    Participant::new(
                        "employee",
                        [Pair::case("supervise", "agent")],
                        [CharacteristicCol::required("name", "names")],
                    ),
                    Participant::new(
                        "employee",
                        [Pair::case("supervise", "object")],
                        [CharacteristicCol::required("name", "names")],
                    ),
                ],
            ),
        ],
        [
            Constraint::Unique {
                relation: "Employees".into(),
                columns: vec![0],
            },
            Constraint::Subset {
                from: ColsRef::new("Supervisions", [0]),
                to: ColsRef::new("Employees", [0]),
            },
            Constraint::Subset {
                from: ColsRef::new("Supervisions", [1]),
                to: ColsRef::new("Employees", [0]),
            },
        ],
    )
    .expect("personnel schema is well-formed")
}

/// The Figure 9 database state, state-equivalent to [`figure3_state`].
pub fn figure9_state() -> RelationState {
    let schema = Arc::new(figure9_schema());
    let mut s = RelationState::empty(schema);
    s.insert_raw(
        "Jobs",
        tuple!["G.Wayshum", "C.Gershag", 40, "JCL181", "press"],
    )
    .expect("fixture jobs9");
    s.insert_raw(
        "Jobs",
        tuple![Value::Null, "T.Manhart", 32, "NZ745", "lathe"],
    )
    .expect("fixture jobs9");
    s.insert_raw(
        "Jobs",
        tuple![Value::Null, "G.Wayshum", 50, Value::Null, Value::Null],
    )
    .expect("fixture jobs9");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::check_all;
    use dme_logic::{state_equivalent, ToFacts};

    #[test]
    fn all_fixture_states_are_well_formed() {
        for s in [
            figure3_state(),
            figure7_state(),
            figure8_premise_state(),
            figure8_state(),
            figure9_state(),
        ] {
            s.well_formed().unwrap();
            assert!(s.is_normalized());
        }
    }

    #[test]
    fn all_fixture_states_satisfy_their_constraints() {
        let ms = machine_shop_schema();
        for s in [
            figure3_state(),
            figure7_state(),
            figure8_premise_state(),
            figure8_state(),
        ] {
            check_all(&ms, &s).unwrap();
        }
        check_all(&figure9_schema(), &figure9_state()).unwrap();
    }

    #[test]
    fn figure9_is_state_equivalent_to_figure3() {
        let report = state_equivalent(&figure3_state(), &figure9_state());
        assert!(report.is_equivalent(), "{report}");
    }

    #[test]
    fn figure7_differs_from_figure3_by_one_fact() {
        let f3 = figure3_state().to_facts();
        let f7 = figure7_state().to_facts();
        let delta = f3.delta_to(&f7);
        assert!(delta.removed.is_empty());
        assert_eq!(delta.added.len(), 1);
        let added = delta.added.iter().next().unwrap();
        assert_eq!(added.predicate(), "supervise");
    }

    #[test]
    fn figure8_premise_lacks_manhart_operation() {
        let facts = figure8_premise_state().to_facts();
        assert!(!facts.iter().any(|f| f.predicate() == "be machine"
            && f.get("number").is_some_and(|a| a.as_str() == Some("NZ745"))));
        assert_eq!(facts.with_predicate("operate").count(), 1);
    }

    #[test]
    fn figure8_insertion_has_null_machine() {
        let s = figure8_state();
        let jobs = s.relation("Jobs").unwrap();
        assert!(jobs.contains(&tuple!["G.Wayshum", "T.Manhart", Value::Null]));
    }
}
