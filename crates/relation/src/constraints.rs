//! The constraint language of the semantic relation model.
//!
//! §3.2.1 lists the constraints of the machine-shop example:
//!
//! 1. *"The names in the first column of Operate must be a subset of the
//!    names in the first column of Employees"* — [`Constraint::Subset`];
//! 2. *"The first column of Operate may have no null values since every
//!    machine must have an operator"* — [`Constraint::NotNull`];
//! 3. *"A specific serial number may occur only once in the second column
//!    of Operate since each machine may have no more than one operator"*
//!    — [`Constraint::Unique`];
//! 4. *"The matching of operators and machines occurring in Operate must
//!    be the same as that in Jobs"* — [`Constraint::Agreement`].
//!
//! The paper adds that the full set (in Borkin's thesis) contains
//! "semantic counterparts of functional dependencies, subset constraints
//! and other such constraints" — [`Constraint::Functional`] and
//! [`Constraint::Implies`] round out what the workspace's examples and
//! equivalence proofs need.
//!
//! Null handling: a projection used by `Subset`, `Unique`, `Functional`
//! and `Agreement` only considers rows whose projected columns are all
//! non-null; a null means "no statement", so a partially-null row simply
//! contributes no evidence.

use std::fmt;

use dme_value::{Symbol, Tuple};

use crate::schema::RelationalSchema;
use crate::state::RelationState;

/// A reference to a projection of one relation: `(relation, columns)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColsRef {
    /// The relation name.
    pub relation: Symbol,
    /// Flat column indices.
    pub columns: Vec<usize>,
}

impl ColsRef {
    /// Creates a reference.
    pub fn new(relation: impl Into<Symbol>, columns: impl IntoIterator<Item = usize>) -> Self {
        ColsRef {
            relation: relation.into(),
            columns: columns.into_iter().collect(),
        }
    }

    fn validate(&self, schema: &RelationalSchema) -> Result<(), String> {
        let rel = schema
            .relation(self.relation.as_str())
            .ok_or_else(|| format!("unknown relation `{}`", self.relation))?;
        for &c in &self.columns {
            if c >= rel.arity() {
                return Err(format!(
                    "column {c} out of range for `{}` (arity {})",
                    self.relation,
                    rel.arity()
                ));
            }
        }
        Ok(())
    }

    /// The projection of `state` on these columns, dropping rows with a
    /// null in any projected column.
    pub fn project(&self, state: &RelationState) -> Vec<Tuple> {
        let Some(tuples) = state.relation(self.relation.as_str()) else {
            return Vec::new();
        };
        let mut out: Vec<Tuple> = tuples
            .iter()
            .filter_map(|t| t.project(&self.columns))
            .filter(|t| !t.has_null())
            .collect();
        out.sort();
        out.dedup();
        out
    }
}

impl fmt::Display for ColsRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{:?}]", self.relation, self.columns)
    }
}

/// A violated constraint, with a human-readable account of the witness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConstraintViolation {
    /// Description of the violated constraint.
    pub constraint: String,
    /// What went wrong.
    pub detail: String,
}

impl fmt::Display for ConstraintViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "constraint violated: {} — {}",
            self.constraint, self.detail
        )
    }
}

impl std::error::Error for ConstraintViolation {}

/// One integrity constraint of a relational application model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Constraint {
    /// Projection containment: `from ⊆ to`.
    Subset {
        /// The contained projection.
        from: ColsRef,
        /// The containing projection.
        to: ColsRef,
    },
    /// A column may not hold null.
    NotNull {
        /// The relation.
        relation: Symbol,
        /// The flat column index.
        column: usize,
    },
    /// The projected (non-null) values identify rows: no two distinct
    /// tuples may agree on all of `columns`.
    Unique {
        /// The relation.
        relation: Symbol,
        /// The flat column indices forming the key.
        columns: Vec<usize>,
    },
    /// A functional dependency: tuples agreeing (non-null) on
    /// `determinant` must agree on `dependent`.
    Functional {
        /// The relation.
        relation: Symbol,
        /// Determinant columns.
        determinant: Vec<usize>,
        /// Dependent columns.
        dependent: Vec<usize>,
    },
    /// Two projections must be equal as sets — the paper's constraint 4
    /// ("the matching of operators and machines occurring in Operate must
    /// be the same as that in Jobs").
    Agreement {
        /// The left projection.
        left: ColsRef,
        /// The right projection.
        right: ColsRef,
    },
    /// Within a tuple, a non-null `if_nonnull` column forces `then_nonnull`
    /// to be non-null (e.g. "a machine mentioned in Jobs must have its
    /// operator filled in").
    Implies {
        /// The relation.
        relation: Symbol,
        /// Guard column.
        if_nonnull: usize,
        /// Required column.
        then_nonnull: usize,
    },
}

impl Constraint {
    /// A one-line description for error messages and reports.
    pub fn describe(&self) -> String {
        match self {
            Constraint::Subset { from, to } => format!("subset {from} ⊆ {to}"),
            Constraint::NotNull { relation, column } => {
                format!("not-null {relation}[{column}]")
            }
            Constraint::Unique { relation, columns } => {
                format!("unique {relation}[{columns:?}]")
            }
            Constraint::Functional {
                relation,
                determinant,
                dependent,
            } => {
                format!("fd {relation}[{determinant:?}] -> [{dependent:?}]")
            }
            Constraint::Agreement { left, right } => format!("agreement {left} = {right}"),
            Constraint::Implies {
                relation,
                if_nonnull,
                then_nonnull,
            } => {
                format!("implies {relation}[{if_nonnull}] nonnull => [{then_nonnull}] nonnull")
            }
        }
    }

    /// Checks that every referenced relation/column exists.
    pub fn validate(&self, schema: &RelationalSchema) -> Result<(), String> {
        let check_col = |relation: &Symbol, column: usize| -> Result<(), String> {
            ColsRef::new(relation.clone(), [column]).validate(schema)
        };
        match self {
            Constraint::Subset { from, to } => {
                from.validate(schema)?;
                to.validate(schema)?;
                if from.columns.len() != to.columns.len() {
                    return Err("subset sides have different widths".into());
                }
                Ok(())
            }
            Constraint::NotNull { relation, column } => check_col(relation, *column),
            Constraint::Unique { relation, columns } => {
                ColsRef::new(relation.clone(), columns.iter().copied()).validate(schema)
            }
            Constraint::Functional {
                relation,
                determinant,
                dependent,
            } => {
                ColsRef::new(relation.clone(), determinant.iter().copied()).validate(schema)?;
                ColsRef::new(relation.clone(), dependent.iter().copied()).validate(schema)
            }
            Constraint::Agreement { left, right } => {
                left.validate(schema)?;
                right.validate(schema)?;
                if left.columns.len() != right.columns.len() {
                    return Err("agreement sides have different widths".into());
                }
                Ok(())
            }
            Constraint::Implies {
                relation,
                if_nonnull,
                then_nonnull,
            } => {
                check_col(relation, *if_nonnull)?;
                check_col(relation, *then_nonnull)
            }
        }
    }

    /// Checks the constraint against a state.
    pub fn check(&self, state: &RelationState) -> Result<(), ConstraintViolation> {
        let fail = |detail: String| {
            Err(ConstraintViolation {
                constraint: self.describe(),
                detail,
            })
        };
        match self {
            Constraint::Subset { from, to } => {
                let sup: std::collections::BTreeSet<_> = to.project(state).into_iter().collect();
                for row in from.project(state) {
                    if !sup.contains(&row) {
                        return fail(format!("{row} present in {from} but not in {to}"));
                    }
                }
                Ok(())
            }
            Constraint::NotNull { relation, column } => {
                for t in state.tuples(relation.as_str()) {
                    if t.get(*column).is_some_and(|v| v.is_null()) {
                        return fail(format!("tuple {t} has null in column {column}"));
                    }
                }
                Ok(())
            }
            Constraint::Unique { relation, columns } => {
                let mut seen = std::collections::BTreeMap::new();
                for t in state.tuples(relation.as_str()) {
                    let Some(key) = t.project(columns) else {
                        continue;
                    };
                    if key.has_null() {
                        continue;
                    }
                    if let Some(prev) = seen.insert(key.clone(), t.clone()) {
                        return fail(format!("tuples {prev} and {t} share key {key}"));
                    }
                }
                Ok(())
            }
            Constraint::Functional {
                relation,
                determinant,
                dependent,
            } => {
                let mut seen: std::collections::BTreeMap<Tuple, (Tuple, Tuple)> =
                    std::collections::BTreeMap::new();
                for t in state.tuples(relation.as_str()) {
                    let Some(det) = t.project(determinant) else {
                        continue;
                    };
                    if det.has_null() {
                        continue;
                    }
                    let Some(dep) = t.project(dependent) else {
                        continue;
                    };
                    if let Some((prev_dep, prev_t)) = seen.get(&det) {
                        if *prev_dep != dep {
                            return fail(format!(
                                "tuples {prev_t} and {t} agree on {det} but disagree on dependents"
                            ));
                        }
                    } else {
                        seen.insert(det, (dep, t.clone()));
                    }
                }
                Ok(())
            }
            Constraint::Agreement { left, right } => {
                let l = left.project(state);
                let r = right.project(state);
                if l != r {
                    return fail(format!(
                        "projections differ: {} rows vs {} rows",
                        l.len(),
                        r.len()
                    ));
                }
                Ok(())
            }
            Constraint::Implies {
                relation,
                if_nonnull,
                then_nonnull,
            } => {
                for t in state.tuples(relation.as_str()) {
                    let guard = t.get(*if_nonnull).is_some_and(|v| !v.is_null());
                    let needed = t.get(*then_nonnull).is_some_and(|v| !v.is_null());
                    if guard && !needed {
                        return fail(format!(
                            "tuple {t} has non-null column {if_nonnull} but null column {then_nonnull}"
                        ));
                    }
                }
                Ok(())
            }
        }
    }
}

/// Checks all of a schema's constraints, returning the first violation.
pub fn check_all(
    schema: &RelationalSchema,
    state: &RelationState,
) -> Result<(), ConstraintViolation> {
    for c in schema.constraints() {
        c.check(state)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use dme_value::tuple;

    #[test]
    fn figure3_satisfies_all_paper_constraints() {
        let schema = fixtures::machine_shop_schema();
        let state = fixtures::figure3_state();
        check_all(&schema, &state).unwrap();
    }

    #[test]
    fn subset_violation_detected() {
        let schema = fixtures::machine_shop_schema();
        let mut state = fixtures::figure3_state();
        // Remove T.Manhart from Employees; Operate still mentions them.
        state
            .delete_raw("Employees", &tuple!["T.Manhart", 32])
            .unwrap();
        let c = Constraint::Subset {
            from: ColsRef::new("Operate", [0]),
            to: ColsRef::new("Employees", [0]),
        };
        let err = c.check(&state).unwrap_err();
        assert!(err.detail.contains("T.Manhart"));
        assert!(check_all(&schema, &state).is_err());
    }

    #[test]
    fn notnull_violation_detected() {
        // Jobs column 0 is nullable at the schema level; a NotNull
        // constraint over it is violated by Figure 3's second Jobs row.
        let state = fixtures::figure3_state();
        let c = Constraint::NotNull {
            relation: "Jobs".into(),
            column: 0,
        };
        let err = c.check(&state).unwrap_err();
        assert!(err.detail.contains("null"));
        // And satisfied where no null occurs.
        let c_ok = Constraint::NotNull {
            relation: "Operate".into(),
            column: 0,
        };
        c_ok.check(&state).unwrap();
    }

    #[test]
    fn unique_violation_detected() {
        let mut state = fixtures::figure3_state();
        // NZ745 operated by a second employee.
        state
            .insert_raw("Operate", tuple!["C.Gershag", "NZ745", "lathe"])
            .unwrap();
        let c = Constraint::Unique {
            relation: "Operate".into(),
            columns: vec![1],
        };
        let err = c.check(&state).unwrap_err();
        assert!(err.detail.contains("NZ745"));
    }

    #[test]
    fn functional_violation_detected() {
        let mut state = fixtures::figure3_state();
        // Same machine, contradictory type.
        state
            .insert_raw("Operate", tuple!["T.Manhart", "NZ745", "press"])
            .unwrap();
        let c = Constraint::Functional {
            relation: "Operate".into(),
            determinant: vec![1],
            dependent: vec![2],
        };
        assert!(c.check(&state).is_err());
    }

    #[test]
    fn functional_skips_null_determinants() {
        let mut state = fixtures::figure3_state();
        state
            .insert_raw(
                "Jobs",
                tuple!["G.Wayshum", "G.Wayshum", dme_value::Value::Null],
            )
            .unwrap();
        let c = Constraint::Functional {
            relation: "Jobs".into(),
            determinant: vec![2],
            dependent: vec![1],
        };
        c.check(&state).unwrap();
    }

    #[test]
    fn agreement_violation_detected() {
        let mut state = fixtures::figure3_state();
        // Jobs gains an operate pair Operate doesn't have.
        state
            .insert_raw("Jobs", tuple![dme_value::Value::Null, "G.Wayshum", "NZ745"])
            .unwrap();
        let c = Constraint::Agreement {
            left: ColsRef::new("Operate", [0, 1]),
            right: ColsRef::new("Jobs", [1, 2]),
        };
        assert!(c.check(&state).is_err());
    }

    #[test]
    fn implies_violation_detected() {
        let mut state = fixtures::figure3_state();
        state
            .insert_raw(
                "Jobs",
                tuple![dme_value::Value::Null, dme_value::Value::Null, "NZ745"],
            )
            .unwrap_err(); // participant coherence already rejects this
                           // Build a standalone check on a crafted relation instead.
        let c = Constraint::Implies {
            relation: "Jobs".into(),
            if_nonnull: 2,
            then_nonnull: 1,
        };
        c.check(&state).unwrap();
    }

    #[test]
    fn validate_rejects_bad_references() {
        let schema = fixtures::machine_shop_schema();
        assert!(Constraint::NotNull {
            relation: "Nope".into(),
            column: 0
        }
        .validate(&schema)
        .is_err());
        assert!(Constraint::NotNull {
            relation: "Operate".into(),
            column: 99
        }
        .validate(&schema)
        .is_err());
        assert!(Constraint::Subset {
            from: ColsRef::new("Operate", [0, 1]),
            to: ColsRef::new("Employees", [0]),
        }
        .validate(&schema)
        .is_err());
        assert!(Constraint::Agreement {
            left: ColsRef::new("Operate", [0]),
            right: ColsRef::new("Jobs", [1, 2]),
        }
        .validate(&schema)
        .is_err());
    }

    #[test]
    fn violation_display() {
        let v = ConstraintViolation {
            constraint: "not-null Operate[0]".into(),
            detail: "tuple (----) has null".into(),
        };
        assert!(v.to_string().contains("not-null Operate[0]"));
    }
}
