//! Delta transitions: undoable in-place operation application plus
//! incrementally-maintained 64-bit state fingerprints.
//!
//! The equivalence kernel enumerates closures by repeatedly applying
//! operations to frontier states. Constructing every successor as a full
//! clone — only to discover it was already visited — dominates the hot
//! loop. [`DeltaState`] lets a state apply an operation **in place**,
//! returning an undo token that restores the previous state exactly, and
//! exposes a content fingerprint that the mutators maintain
//! incrementally. The kernel then probes its state arena by fingerprint
//! and only clones the scratch state when the successor is genuinely new.
//!
//! Fingerprints are the XOR of per-element [`content_fingerprint`]
//! hashes, so they are order- and path-independent: two equal states
//! always carry equal fingerprints, no matter which operation sequence
//! produced them. Distinct states may collide — the kernel always
//! confirms a fingerprint match with a full equality comparison.

use std::hash::{DefaultHasher, Hash, Hasher};

/// The stand-alone 64-bit content hash of one value, computed with the
/// standard library's [`DefaultHasher`] from a fixed initial state.
///
/// Deterministic within one build of the program (which is all the
/// kernel needs — fingerprints never cross process boundaries), and
/// consistent with `Eq`: equal values hash equally.
pub fn content_fingerprint<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut hasher = DefaultHasher::new();
    value.hash(&mut hasher);
    hasher.finish()
}

/// A state that can apply an operation as an undoable in-place diff and
/// report an incrementally-maintained content fingerprint.
///
/// Laws (property-tested in the implementing crates):
///
/// * **delta ≡ clone-apply** — `apply_delta(op)` succeeds exactly when
///   the model's pure `apply` does, and leaves `self` equal to the state
///   `apply` would have returned;
/// * **undo restores** — `undo(token)` returns `self` (and its
///   fingerprint) to exactly the pre-`apply_delta` value;
/// * **fingerprint coherence** — equal states have equal
///   [`DeltaState::fingerprint`] values.
pub trait DeltaState: Sized {
    /// The operation type the state applies.
    type Op;
    /// The token that undoes one successful [`DeltaState::apply_delta`].
    type Undo;

    /// The state's current content fingerprint.
    fn fingerprint(&self) -> u64;

    /// Applies `op` in place. On success returns the undo token; on the
    /// error state returns `None` **with `self` unchanged**.
    fn apply_delta(&mut self, op: &Self::Op) -> Option<Self::Undo>;

    /// Reverts the most recent successful [`DeltaState::apply_delta`]
    /// that produced `token`. Tokens must be undone in LIFO order.
    fn undo(&mut self, token: Self::Undo);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_fingerprint_is_deterministic_and_content_based() {
        let a = content_fingerprint(&(1u32, "x"));
        let b = content_fingerprint(&(1u32, "x"));
        assert_eq!(a, b);
        assert_ne!(a, content_fingerprint(&(2u32, "x")));
    }
}
