//! Delta transitions: undoable in-place operation application plus
//! incrementally-maintained 64-bit state fingerprints.
//!
//! The equivalence kernel enumerates closures by repeatedly applying
//! operations to frontier states. Constructing every successor as a full
//! clone — only to discover it was already visited — dominates the hot
//! loop. [`DeltaState`] lets a state apply an operation **in place**,
//! returning an undo token that restores the previous state exactly, and
//! exposes a content fingerprint that the mutators maintain
//! incrementally. The kernel then probes its state arena by fingerprint
//! and only clones the scratch state when the successor is genuinely new.
//!
//! Fingerprints are the XOR of per-element [`content_fingerprint`]
//! hashes, so they are order- and path-independent: two equal states
//! always carry equal fingerprints, no matter which operation sequence
//! produced them. Distinct states may collide — the kernel always
//! confirms a fingerprint match with a full equality comparison.

use std::hash::{DefaultHasher, Hash, Hasher};

/// The stand-alone 64-bit content hash of one value, computed with the
/// standard library's [`DefaultHasher`] from a fixed initial state.
///
/// Deterministic within one build of the program (which is all the
/// kernel needs — fingerprints never cross process boundaries), and
/// consistent with `Eq`: equal values hash equally.
pub fn content_fingerprint<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut hasher = DefaultHasher::new();
    value.hash(&mut hasher);
    hasher.finish()
}

/// A seeded variant of [`content_fingerprint`]: the hash of
/// `(seed, value)` from the same fixed initial state. Different seeds
/// give independent hash families over the same value, which is what
/// wide (multi-word) keys are built from.
pub fn content_fingerprint_seeded<T: Hash + ?Sized>(seed: u64, value: &T) -> u64 {
    let mut hasher = DefaultHasher::new();
    seed.hash(&mut hasher);
    value.hash(&mut hasher);
    hasher.finish()
}

/// A 128-bit content fingerprint: two independently-seeded 64-bit
/// hashes of the same value packed into one word. Used as a cache key
/// where 64-bit collisions are no longer negligible (e.g. the verdict
/// cache keys of `dme-core`'s incremental session, which index whole
/// model descriptions rather than single states).
///
/// Like [`content_fingerprint`], deterministic within one build only —
/// a persisted image keyed by wide fingerprints must treat a key miss
/// as a cold start, never as an error.
pub fn content_fingerprint_wide<T: Hash + ?Sized>(value: &T) -> u128 {
    let lo = content_fingerprint_seeded(0x9e37_79b9_7f4a_7c15, value);
    let hi = content_fingerprint_seeded(0xc2b2_ae3d_27d4_eb4f, value);
    ((hi as u128) << 64) | lo as u128
}

/// A state that can apply an operation as an undoable in-place diff and
/// report an incrementally-maintained content fingerprint.
///
/// Laws (property-tested in the implementing crates):
///
/// * **delta ≡ clone-apply** — `apply_delta(op)` succeeds exactly when
///   the model's pure `apply` does, and leaves `self` equal to the state
///   `apply` would have returned;
/// * **undo restores** — `undo(token)` returns `self` (and its
///   fingerprint) to exactly the pre-`apply_delta` value;
/// * **fingerprint coherence** — equal states have equal
///   [`DeltaState::fingerprint`] values.
pub trait DeltaState: Sized {
    /// The operation type the state applies.
    type Op;
    /// The token that undoes one successful [`DeltaState::apply_delta`].
    type Undo;

    /// The state's current content fingerprint.
    fn fingerprint(&self) -> u64;

    /// Applies `op` in place. On success returns the undo token; on the
    /// error state returns `None` **with `self` unchanged**.
    fn apply_delta(&mut self, op: &Self::Op) -> Option<Self::Undo>;

    /// Reverts the most recent successful [`DeltaState::apply_delta`]
    /// that produced `token`. Tokens must be undone in LIFO order.
    fn undo(&mut self, token: Self::Undo);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_fingerprint_is_deterministic_and_content_based() {
        let a = content_fingerprint(&(1u32, "x"));
        let b = content_fingerprint(&(1u32, "x"));
        assert_eq!(a, b);
        assert_ne!(a, content_fingerprint(&(2u32, "x")));
    }

    #[test]
    fn wide_fingerprint_is_deterministic_and_splits_collisions() {
        let a = content_fingerprint_wide(&"scenario");
        assert_eq!(a, content_fingerprint_wide(&"scenario"));
        assert_ne!(a, content_fingerprint_wide(&"scenari0"));
        // The two halves come from different seeds, so they differ.
        assert_ne!((a >> 64) as u64, a as u64);
        // Seeded hashes form distinct families.
        assert_ne!(
            content_fingerprint_seeded(1, &"x"),
            content_fingerprint_seeded(2, &"x")
        );
    }
}
