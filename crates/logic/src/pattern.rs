//! Fact patterns: predicate + partial case bindings.
//!
//! Patterns are the query primitive used by the operation translators: to
//! translate "insert a supervision between G.Wayshum and T.Manhart" into a
//! relational operation, the translator must ask the current state "which
//! machine does T.Manhart operate?" — i.e. find facts matching
//! `operate{agent: T.Manhart, object: ?}` (the Figure 7 vs Figure 8
//! state-dependence of §3.3.1).

use std::collections::BTreeMap;
use std::fmt;

use dme_value::{Atom, Symbol};

use crate::Fact;

/// A pattern over facts: matches facts with the given predicate whose
/// arguments include all the required bindings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pattern {
    predicate: Symbol,
    required: BTreeMap<Symbol, Atom>,
}

impl Pattern {
    /// Matches any fact with the given predicate.
    pub fn predicate(predicate: impl Into<Symbol>) -> Self {
        Pattern {
            predicate: predicate.into(),
            required: BTreeMap::new(),
        }
    }

    /// Adds a required case binding (builder style).
    ///
    /// ```
    /// use dme_logic::{Fact, Pattern};
    /// use dme_value::Atom;
    ///
    /// let p = Pattern::predicate("operate").with("agent", Atom::str("T.Manhart"));
    /// let f = Fact::new(
    ///     "operate",
    ///     [("agent", Atom::str("T.Manhart")), ("object", Atom::str("NZ745"))],
    /// );
    /// assert!(p.matches(&f));
    /// ```
    pub fn with(mut self, case: impl Into<Symbol>, atom: impl Into<Atom>) -> Self {
        self.required.insert(case.into(), atom.into());
        self
    }

    /// Whether `fact` matches: same predicate, and every required binding
    /// present with the same atom.
    pub fn matches(&self, fact: &Fact) -> bool {
        fact.predicate() == &self.predicate
            && self
                .required
                .iter()
                .all(|(case, atom)| fact.get(case.as_str()) == Some(atom))
    }

    /// The pattern's predicate symbol.
    pub fn predicate_name(&self) -> &Symbol {
        &self.predicate
    }

    /// The required bindings.
    pub fn bindings(&self) -> impl Iterator<Item = (&Symbol, &Atom)> {
        self.required.iter()
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{{", self.predicate)?;
        for (i, (case, atom)) in self.required.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{case}: {atom}")?;
        }
        write!(f, ", ..}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FactBase;

    fn operate(agent: &str, object: &str) -> Fact {
        Fact::new(
            "operate",
            [("agent", Atom::str(agent)), ("object", Atom::str(object))],
        )
    }

    #[test]
    fn predicate_only_pattern() {
        let p = Pattern::predicate("operate");
        assert!(p.matches(&operate("a", "m")));
        assert!(!p.matches(&Fact::new("supervise", [("agent", Atom::str("a"))])));
    }

    #[test]
    fn bindings_must_all_match() {
        let p = Pattern::predicate("operate")
            .with("agent", Atom::str("a"))
            .with("object", Atom::str("m"));
        assert!(p.matches(&operate("a", "m")));
        assert!(!p.matches(&operate("a", "other")));
        assert!(!p.matches(&operate("b", "m")));
    }

    #[test]
    fn missing_case_fails() {
        let p = Pattern::predicate("operate").with("instrument", Atom::str("z"));
        assert!(!p.matches(&operate("a", "m")));
    }

    #[test]
    fn factbase_lookup() {
        let fb = FactBase::from_facts([operate("a", "m1"), operate("b", "m2")]);
        let p = Pattern::predicate("operate").with("agent", Atom::str("b"));
        let hits: Vec<_> = fb.matching(&p).collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].get("object"), Some(&Atom::str("m2")));
        assert_eq!(fb.find(&Pattern::predicate("nope")), None);
    }

    #[test]
    fn display() {
        let p = Pattern::predicate("operate").with("agent", Atom::str("x"));
        assert_eq!(p.to_string(), "operate{agent: x, ..}");
    }
}
