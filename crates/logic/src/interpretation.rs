//! State equivalence via logical interpretation.
//!
//! [`ToFacts`] is implemented by every database-state type in the
//! workspace (semantic relation states, semantic graph states, ANSI
//! internal states). [`state_equivalent`] then realises §3.2.3's
//! definition: two states are equivalent iff they induce the same set of
//! true statements. [`EquivalenceReport`] explains a failed check — which
//! statements are true in one state but not the other.

use std::fmt;

use crate::{FactBase, FactDelta};

/// Compilation of a database state into the statements true of the
/// application state it represents.
pub trait ToFacts {
    /// The set of true statements of this state.
    fn to_facts(&self) -> FactBase;
}

impl ToFacts for FactBase {
    fn to_facts(&self) -> FactBase {
        self.clone()
    }
}

/// The result of a state-equivalence check, with diagnostics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EquivalenceReport {
    /// Facts holding only in the left state.
    pub only_left: FactBase,
    /// Facts holding only in the right state.
    pub only_right: FactBase,
}

impl EquivalenceReport {
    /// Whether the two states were equivalent.
    pub fn is_equivalent(&self) -> bool {
        self.only_left.is_empty() && self.only_right.is_empty()
    }

    /// The delta from left to right, for callers that want to repair.
    pub fn delta(&self) -> FactDelta {
        FactDelta {
            added: self.only_right.clone(),
            removed: self.only_left.clone(),
        }
    }
}

impl fmt::Display for EquivalenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_equivalent() {
            return write!(f, "states are equivalent");
        }
        writeln!(f, "states are NOT equivalent:")?;
        for fact in self.only_left.iter() {
            writeln!(f, "  left only:  {fact}")?;
        }
        for fact in self.only_right.iter() {
            writeln!(f, "  right only: {fact}")?;
        }
        Ok(())
    }
}

/// Checks state equivalence of two (possibly heterogeneous) states by
/// compiling both to facts and comparing.
///
/// ```
/// use dme_logic::{state_equivalent, Fact, FactBase};
/// use dme_value::Atom;
///
/// let a = FactBase::from_facts([Fact::new("p", [("x", Atom::int(1))])]);
/// let b = a.clone();
/// assert!(state_equivalent(&a, &b).is_equivalent());
///
/// let c = FactBase::new();
/// let report = state_equivalent(&a, &c);
/// assert!(!report.is_equivalent());
/// assert_eq!(report.only_left.len(), 1);
/// ```
pub fn state_equivalent<L: ToFacts, R: ToFacts>(left: &L, right: &R) -> EquivalenceReport {
    let lf = left.to_facts();
    let rf = right.to_facts();
    EquivalenceReport {
        only_left: lf.difference(&rf),
        only_right: rf.difference(&lf),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Fact;
    use dme_value::Atom;

    fn f(n: i64) -> Fact {
        Fact::new("p", [("x", Atom::int(n))])
    }

    #[test]
    fn equal_states_equivalent() {
        let a = FactBase::from_facts([f(1), f(2)]);
        let r = state_equivalent(&a, &a.clone());
        assert!(r.is_equivalent());
        assert_eq!(r.to_string(), "states are equivalent");
        assert!(r.delta().is_empty());
    }

    #[test]
    fn report_splits_differences() {
        let a = FactBase::from_facts([f(1), f(2)]);
        let b = FactBase::from_facts([f(2), f(3)]);
        let r = state_equivalent(&a, &b);
        assert!(!r.is_equivalent());
        assert_eq!(r.only_left, FactBase::from_facts([f(1)]));
        assert_eq!(r.only_right, FactBase::from_facts([f(3)]));
        let text = r.to_string();
        assert!(text.contains("left only:  p{x: 1}"));
        assert!(text.contains("right only: p{x: 3}"));
    }

    #[test]
    fn delta_repairs_left_to_right() {
        let a = FactBase::from_facts([f(1)]);
        let b = FactBase::from_facts([f(2)]);
        let r = state_equivalent(&a, &b);
        assert_eq!(a.apply(&r.delta()), b);
    }
}
