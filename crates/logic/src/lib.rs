#![deny(missing_docs)]

//! # dme-logic — first-order ground-fact substrate
//!
//! §3.2.3 of Borkin's paper defines database state equivalence between the
//! semantic relation and semantic graph models like this:
//!
//! > "We could show this by translating each relational statement into a
//! > formal logic statement and then showing that the semantic graph state
//! > is a model, in the formal logic sense, for the set of logical
//! > statements."
//!
//! This crate is that formal-logic middle layer. Both data models compile
//! their states into a [`FactBase`] — a set of ground [`Fact`]s over a
//! shared *case-grammar vocabulary* (predicates with named cases). Two
//! heterogeneous states are **state equivalent** exactly when they compile
//! to the same fact base; because the compilation is canonical and
//! injective on valid states, the induced correspondence is 1-1 and onto,
//! as Definition 1's preamble requires.
//!
//! The canonical vocabulary (see [`vocab`]) has three fact shapes:
//!
//! * **existence** — `be employee{name: T.Manhart}`: an entity of a type
//!   exists, identified by its identifying characteristic;
//! * **characteristic** — `employee.age{name: T.Manhart, age: 32}`: a
//!   non-identifying characteristic of an entity;
//! * **association** — `operate{agent: T.Manhart, object: NZ745}`: an
//!   event described by a predicate, with each case (role) bound to the
//!   identifying value of its participant.

pub mod delta;
pub mod fact;
pub mod factbase;
pub mod interpretation;
pub mod pattern;
pub mod universe;
pub mod vocab;

pub use delta::{
    content_fingerprint, content_fingerprint_seeded, content_fingerprint_wide, DeltaState,
};
pub use fact::Fact;
pub use factbase::{FactBase, FactDelta};
pub use interpretation::{state_equivalent, EquivalenceReport, ToFacts};
pub use pattern::Pattern;
pub use universe::{EntityTypeDecl, PredicateDecl, Universe, UniverseError};
