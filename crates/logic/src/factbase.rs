//! Fact bases (Herbrand interpretations) and deltas between them.
//!
//! A [`FactBase`] is the set of all statements true of one application
//! state. The paper's notion that a relation "contains the set of all true
//! statements fitting a certain form" makes the fact base the natural
//! common denominator: the *union over all relations* (resp. the reading
//! of all entities and associations) of their statements.

use std::cmp::Ordering;
use std::collections::BTreeSet;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::{Fact, Pattern};

/// An immutable-ish set of ground facts with set-algebra helpers.
///
/// Carries an incrementally-maintained 64-bit content fingerprint (the
/// XOR of per-fact [`content_fingerprint`] hashes), so the equivalence
/// kernel can probe hash-consing tables without re-hashing the whole
/// set. All comparisons and hashing remain functions of the fact set
/// alone; the fingerprint is derived state.
#[derive(Clone, Default)]
pub struct FactBase {
    facts: BTreeSet<Fact>,
    /// XOR of `content_fingerprint` over `facts` (0 when empty).
    fp: u64,
}

impl PartialEq for FactBase {
    fn eq(&self, other: &Self) -> bool {
        self.fp == other.fp && self.facts == other.facts
    }
}

impl Eq for FactBase {}

impl PartialOrd for FactBase {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for FactBase {
    fn cmp(&self, other: &Self) -> Ordering {
        self.facts.cmp(&other.facts)
    }
}

impl Hash for FactBase {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // The fingerprint is a function of the fact set, so hashing it
        // keeps `Hash` consistent with `Eq` while making whole-state
        // hashing O(1).
        state.write_u64(self.fp);
    }
}

impl FactBase {
    /// The empty fact base (the paper's "empty state").
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a fact base from any iterable of facts.
    pub fn from_facts(facts: impl IntoIterator<Item = Fact>) -> Self {
        let facts: BTreeSet<Fact> = facts.into_iter().collect();
        let fp = facts.iter().map(Fact::fingerprint).fold(0, |a, h| a ^ h);
        FactBase { facts, fp }
    }

    /// The incrementally-maintained 64-bit content fingerprint: the XOR
    /// of per-fact hashes. Equal fact bases always have equal
    /// fingerprints; distinct ones may collide, so callers must confirm
    /// a match with `==`.
    pub fn fingerprint(&self) -> u64 {
        self.fp
    }

    /// Inserts a fact; returns whether it was new.
    pub fn insert(&mut self, fact: Fact) -> bool {
        let h = fact.fingerprint();
        let inserted = self.facts.insert(fact);
        if inserted {
            self.fp ^= h;
        }
        inserted
    }

    /// Removes a fact; returns whether it was present.
    pub fn remove(&mut self, fact: &Fact) -> bool {
        let removed = self.facts.remove(fact);
        if removed {
            self.fp ^= fact.fingerprint();
        }
        removed
    }

    /// Membership ("is this statement true in the state?").
    pub fn holds(&self, fact: &Fact) -> bool {
        self.facts.contains(fact)
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Whether no facts hold.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// Iterates over facts in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = &Fact> {
        self.facts.iter()
    }

    /// All facts whose predicate equals `predicate`.
    pub fn with_predicate<'a>(&'a self, predicate: &'a str) -> impl Iterator<Item = &'a Fact> {
        self.facts
            .iter()
            .filter(move |f| f.predicate().as_str() == predicate)
    }

    /// All facts matching a [`Pattern`] (predicate plus required bindings).
    pub fn matching<'a>(&'a self, pattern: &'a Pattern) -> impl Iterator<Item = &'a Fact> {
        self.facts.iter().filter(move |f| pattern.matches(f))
    }

    /// The first fact matching `pattern`, if any.
    pub fn find(&self, pattern: &Pattern) -> Option<&Fact> {
        self.facts.iter().find(|f| pattern.matches(f))
    }

    /// Whether every fact of `other` also holds here.
    pub fn entails(&self, other: &FactBase) -> bool {
        other.facts.is_subset(&self.facts)
    }

    /// Set union.
    pub fn union(&self, other: &FactBase) -> FactBase {
        FactBase::from_facts(self.facts.union(&other.facts).cloned())
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &FactBase) -> FactBase {
        FactBase::from_facts(self.facts.difference(&other.facts).cloned())
    }

    /// The delta that transforms `self` into `target`.
    pub fn delta_to(&self, target: &FactBase) -> FactDelta {
        FactDelta {
            added: target.difference(self),
            removed: self.difference(target),
        }
    }

    /// Applies a delta, producing the new fact base.
    pub fn apply(&self, delta: &FactDelta) -> FactBase {
        self.difference(&delta.removed).union(&delta.added)
    }
}

impl FromIterator<Fact> for FactBase {
    fn from_iter<I: IntoIterator<Item = Fact>>(iter: I) -> Self {
        FactBase::from_facts(iter)
    }
}

impl Extend<Fact> for FactBase {
    fn extend<I: IntoIterator<Item = Fact>>(&mut self, iter: I) {
        for fact in iter {
            self.insert(fact);
        }
    }
}

impl fmt::Debug for FactBase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "FactBase ({} facts) {{", self.facts.len())?;
        for fact in &self.facts {
            writeln!(f, "  {fact}")?;
        }
        write!(f, "}}")
    }
}

/// The difference between two fact bases: what an operation added and
/// removed at the logic level. Operation equivalence (Definition 1) is
/// checked by comparing the deltas both models' operations induce.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FactDelta {
    /// Facts true after but not before.
    pub added: FactBase,
    /// Facts true before but not after.
    pub removed: FactBase,
}

impl FactDelta {
    /// The identity delta.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Whether the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

impl fmt::Display for FactDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for fact in self.removed.iter() {
            writeln!(f, "- {fact}")?;
        }
        for fact in self.added.iter() {
            writeln!(f, "+ {fact}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dme_value::Atom;

    fn f(p: &str, n: i64) -> Fact {
        Fact::new(p, [("x", Atom::int(n))])
    }

    #[test]
    fn insert_remove_holds() {
        let mut fb = FactBase::new();
        assert!(fb.is_empty());
        assert!(fb.insert(f("p", 1)));
        assert!(!fb.insert(f("p", 1)), "duplicate insert is a no-op");
        assert!(fb.holds(&f("p", 1)));
        assert_eq!(fb.len(), 1);
        assert!(fb.remove(&f("p", 1)));
        assert!(!fb.remove(&f("p", 1)));
        assert!(fb.is_empty());
    }

    #[test]
    fn predicate_filter() {
        let fb = FactBase::from_facts([f("p", 1), f("p", 2), f("q", 1)]);
        assert_eq!(fb.with_predicate("p").count(), 2);
        assert_eq!(fb.with_predicate("q").count(), 1);
        assert_eq!(fb.with_predicate("r").count(), 0);
    }

    #[test]
    fn set_algebra() {
        let a = FactBase::from_facts([f("p", 1), f("p", 2)]);
        let b = FactBase::from_facts([f("p", 2), f("p", 3)]);
        assert_eq!(a.union(&b).len(), 3);
        assert_eq!(a.difference(&b), FactBase::from_facts([f("p", 1)]));
        assert!(a.entails(&FactBase::from_facts([f("p", 1)])));
        assert!(!a.entails(&b));
        assert!(a.entails(&FactBase::new()));
    }

    #[test]
    fn delta_round_trip() {
        let a = FactBase::from_facts([f("p", 1), f("p", 2)]);
        let b = FactBase::from_facts([f("p", 2), f("p", 3), f("q", 9)]);
        let d = a.delta_to(&b);
        assert_eq!(d.added, FactBase::from_facts([f("p", 3), f("q", 9)]));
        assert_eq!(d.removed, FactBase::from_facts([f("p", 1)]));
        assert_eq!(a.apply(&d), b);
        assert!(a.delta_to(&a).is_empty());
        assert_eq!(a.apply(&FactDelta::empty()), a);
    }

    #[test]
    fn fingerprint_is_path_independent_and_maintained() {
        let mut a = FactBase::new();
        a.insert(f("p", 1));
        a.insert(f("p", 2));
        let mut b = FactBase::new();
        b.insert(f("p", 2));
        b.insert(f("p", 3));
        b.insert(f("p", 1));
        b.remove(&f("p", 3));
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(
            a.fingerprint(),
            FactBase::from_facts([f("p", 2), f("p", 1)]).fingerprint()
        );
        assert_ne!(a.fingerprint(), FactBase::new().fingerprint());
        // No-op mutations leave the fingerprint alone.
        let before = a.fingerprint();
        a.insert(f("p", 1));
        a.remove(&f("p", 9));
        assert_eq!(a.fingerprint(), before);
        // Set algebra recomputes coherently.
        assert_eq!(a.union(&FactBase::new()).fingerprint(), a.fingerprint());
    }

    #[test]
    fn delta_display_shows_signs() {
        let a = FactBase::from_facts([f("p", 1)]);
        let b = FactBase::from_facts([f("p", 2)]);
        let text = a.delta_to(&b).to_string();
        assert!(text.contains("- p{x: 1}"));
        assert!(text.contains("+ p{x: 2}"));
    }
}
