//! The application universe: the shared case grammar.
//!
//! §3.2.3 requires, as a *prerequisite* to defining state equivalence,
//! an "agreement between the semantics of the two data models … a
//! translation between the natural language case grammars on which the two
//! data models are based". A [`Universe`] is that agreement, made
//! explicit: the entity types (with their characteristics and identifying
//! characteristic), the association predicates (with their named cases and
//! the entity type each case accepts), and the value domains.
//!
//! Both a semantic-relation schema and a semantic-graph schema are
//! validated *against the same universe*; the logic-level fact vocabulary
//! (see [`crate::vocab`]) is derived from it. Equivalence between
//! application models over different universes is meaningless — exactly as
//! the paper says natural-language agreement must come first.

use std::collections::BTreeMap;
use std::fmt;

use dme_value::{Domain, DomainCatalog, Symbol};

/// Declaration of an entity type: its characteristics (each with a value
/// domain) and which characteristic identifies entities of this type.
///
/// The paper's Figure 5 arrowheads "state that employees are uniquely
/// identified by their name"; here that is `id_characteristic == "name"`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EntityTypeDecl {
    name: Symbol,
    id_characteristic: Symbol,
    /// characteristic → domain name; includes the identifying one.
    characteristics: BTreeMap<Symbol, Symbol>,
}

impl EntityTypeDecl {
    /// Creates an entity-type declaration.
    pub fn new(
        name: impl Into<Symbol>,
        id_characteristic: impl Into<Symbol>,
        characteristics: impl IntoIterator<Item = (Symbol, Symbol)>,
    ) -> Self {
        EntityTypeDecl {
            name: name.into(),
            id_characteristic: id_characteristic.into(),
            characteristics: characteristics.into_iter().collect(),
        }
    }

    /// The entity type's name.
    pub fn name(&self) -> &Symbol {
        &self.name
    }

    /// The identifying characteristic.
    pub fn id_characteristic(&self) -> &Symbol {
        &self.id_characteristic
    }

    /// Domain of a characteristic, if declared.
    pub fn domain_of(&self, characteristic: &str) -> Option<&Symbol> {
        self.characteristics.get(characteristic)
    }

    /// All characteristics (including the identifying one), with domains.
    pub fn characteristics(&self) -> impl Iterator<Item = (&Symbol, &Symbol)> {
        self.characteristics.iter()
    }

    /// Characteristics other than the identifying one.
    pub fn non_id_characteristics(&self) -> impl Iterator<Item = (&Symbol, &Symbol)> {
        self.characteristics
            .iter()
            .filter(|(c, _)| **c != self.id_characteristic)
    }
}

/// Declaration of an association predicate: its cases and the entity type
/// each case accepts (case grammar: "a verb phrase plus several noun
/// phrases — one for each case required by the predicate").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PredicateDecl {
    name: Symbol,
    /// case → entity type of the participant filling it.
    cases: BTreeMap<Symbol, Symbol>,
}

impl PredicateDecl {
    /// Creates a predicate declaration.
    pub fn new(name: impl Into<Symbol>, cases: impl IntoIterator<Item = (Symbol, Symbol)>) -> Self {
        PredicateDecl {
            name: name.into(),
            cases: cases.into_iter().collect(),
        }
    }

    /// The predicate's name.
    pub fn name(&self) -> &Symbol {
        &self.name
    }

    /// The entity type a case accepts, if the case exists.
    pub fn case_type(&self, case: &str) -> Option<&Symbol> {
        self.cases.get(case)
    }

    /// All cases with their entity types, in case order.
    pub fn cases(&self) -> impl Iterator<Item = (&Symbol, &Symbol)> {
        self.cases.iter()
    }

    /// Number of cases.
    pub fn arity(&self) -> usize {
        self.cases.len()
    }
}

/// Errors found while validating a universe.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UniverseError {
    /// An entity type's identifying characteristic is not among its
    /// characteristics.
    MissingIdCharacteristic {
        /// The offending entity type.
        entity_type: Symbol,
        /// Its declared (missing) identifying characteristic.
        id: Symbol,
    },
    /// A characteristic references an undeclared domain.
    UnknownDomain {
        /// The offending entity type.
        entity_type: Symbol,
        /// The characteristic with the bad domain.
        characteristic: Symbol,
        /// The undeclared domain name.
        domain: Symbol,
    },
    /// A predicate case references an undeclared entity type.
    UnknownCaseType {
        /// The offending predicate.
        predicate: Symbol,
        /// The case with the bad participant type.
        case: Symbol,
        /// The undeclared entity type.
        entity_type: Symbol,
    },
    /// A predicate has no cases.
    EmptyPredicate {
        /// The offending predicate.
        predicate: Symbol,
    },
    /// Duplicate entity-type name.
    DuplicateEntityType(Symbol),
    /// Duplicate predicate name.
    DuplicatePredicate(Symbol),
    /// A predicate is named like an existence predicate (`be <type>`),
    /// which is reserved for the canonical vocabulary.
    ReservedPredicateName(Symbol),
}

impl fmt::Display for UniverseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UniverseError::MissingIdCharacteristic { entity_type, id } => write!(
                f,
                "entity type `{entity_type}`: identifying characteristic `{id}` is not declared"
            ),
            UniverseError::UnknownDomain { entity_type, characteristic, domain } => write!(
                f,
                "entity type `{entity_type}`: characteristic `{characteristic}` references unknown domain `{domain}`"
            ),
            UniverseError::UnknownCaseType { predicate, case, entity_type } => write!(
                f,
                "predicate `{predicate}`: case `{case}` references unknown entity type `{entity_type}`"
            ),
            UniverseError::EmptyPredicate { predicate } => {
                write!(f, "predicate `{predicate}` has no cases")
            }
            UniverseError::DuplicateEntityType(n) => write!(f, "duplicate entity type `{n}`"),
            UniverseError::DuplicatePredicate(n) => write!(f, "duplicate predicate `{n}`"),
            UniverseError::ReservedPredicateName(n) => {
                write!(f, "predicate name `{n}` is reserved for existence facts")
            }
        }
    }
}

impl std::error::Error for UniverseError {}

/// The shared case-grammar agreement: domains + entity types + predicates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Universe {
    domains: DomainCatalog,
    entity_types: BTreeMap<Symbol, EntityTypeDecl>,
    predicates: BTreeMap<Symbol, PredicateDecl>,
}

impl Universe {
    /// Builds and validates a universe.
    pub fn new(
        domains: DomainCatalog,
        entity_types: impl IntoIterator<Item = EntityTypeDecl>,
        predicates: impl IntoIterator<Item = PredicateDecl>,
    ) -> Result<Self, UniverseError> {
        let mut ets = BTreeMap::new();
        for et in entity_types {
            if ets.contains_key(et.name()) {
                return Err(UniverseError::DuplicateEntityType(et.name().clone()));
            }
            ets.insert(et.name().clone(), et);
        }
        let mut preds = BTreeMap::new();
        for p in predicates {
            if preds.contains_key(p.name()) {
                return Err(UniverseError::DuplicatePredicate(p.name().clone()));
            }
            preds.insert(p.name().clone(), p);
        }
        let u = Universe {
            domains,
            entity_types: ets,
            predicates: preds,
        };
        u.validate()?;
        Ok(u)
    }

    fn validate(&self) -> Result<(), UniverseError> {
        for et in self.entity_types.values() {
            if et.domain_of(et.id_characteristic().as_str()).is_none() {
                return Err(UniverseError::MissingIdCharacteristic {
                    entity_type: et.name().clone(),
                    id: et.id_characteristic().clone(),
                });
            }
            for (c, d) in et.characteristics() {
                if self.domains.get(d.as_str()).is_none() {
                    return Err(UniverseError::UnknownDomain {
                        entity_type: et.name().clone(),
                        characteristic: c.clone(),
                        domain: d.clone(),
                    });
                }
            }
        }
        for p in self.predicates.values() {
            if p.arity() == 0 {
                return Err(UniverseError::EmptyPredicate {
                    predicate: p.name().clone(),
                });
            }
            if p.name().as_str().starts_with("be ") {
                return Err(UniverseError::ReservedPredicateName(p.name().clone()));
            }
            for (case, et) in p.cases() {
                if !self.entity_types.contains_key(et) {
                    return Err(UniverseError::UnknownCaseType {
                        predicate: p.name().clone(),
                        case: case.clone(),
                        entity_type: et.clone(),
                    });
                }
            }
        }
        Ok(())
    }

    /// The domain catalog.
    pub fn domains(&self) -> &DomainCatalog {
        &self.domains
    }

    /// Looks up an entity type.
    pub fn entity_type(&self, name: &str) -> Option<&EntityTypeDecl> {
        self.entity_types.get(name)
    }

    /// Looks up a predicate.
    pub fn predicate(&self, name: &str) -> Option<&PredicateDecl> {
        self.predicates.get(name)
    }

    /// All entity types in name order.
    pub fn entity_types(&self) -> impl Iterator<Item = &EntityTypeDecl> {
        self.entity_types.values()
    }

    /// All predicates in name order.
    pub fn predicates(&self) -> impl Iterator<Item = &PredicateDecl> {
        self.predicates.values()
    }

    /// The machine-shop universe of the paper's Figures 3–9: employees
    /// (name, age) and machines (number, type); predicates `operate`
    /// (agent: employee, object: machine) and `supervise` (agent, object:
    /// employee). Domains are enumerated so equivalence checkers can
    /// enumerate states.
    ///
    /// This is the workspace's canonical running example; tests, examples
    /// and benches all build on it.
    pub fn machine_shop() -> Universe {
        let domains = DomainCatalog::new()
            .with(Domain::of_strs(
                "names",
                ["T.Manhart", "C.Gershag", "G.Wayshum"],
            ))
            .with(Domain::of_ints("years", [32, 40, 50]))
            .with(Domain::of_strs("serial-numbers", ["NZ745", "JCL181"]))
            .with(Domain::of_strs("machine-types", ["lathe", "press"]));
        Universe::new(
            domains,
            [
                EntityTypeDecl::new(
                    "employee",
                    "name",
                    [
                        (Symbol::new("name"), Symbol::new("names")),
                        (Symbol::new("age"), Symbol::new("years")),
                    ],
                ),
                EntityTypeDecl::new(
                    "machine",
                    "number",
                    [
                        (Symbol::new("number"), Symbol::new("serial-numbers")),
                        (Symbol::new("type"), Symbol::new("machine-types")),
                    ],
                ),
            ],
            [
                PredicateDecl::new(
                    "operate",
                    [
                        (Symbol::new("agent"), Symbol::new("employee")),
                        (Symbol::new("object"), Symbol::new("machine")),
                    ],
                ),
                PredicateDecl::new(
                    "supervise",
                    [
                        (Symbol::new("agent"), Symbol::new("employee")),
                        (Symbol::new("object"), Symbol::new("employee")),
                    ],
                ),
            ],
        )
        .expect("machine-shop universe is well-formed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dme_value::sym;

    #[test]
    fn machine_shop_is_valid() {
        let u = Universe::machine_shop();
        assert_eq!(u.entity_types().count(), 2);
        assert_eq!(u.predicates().count(), 2);
        let emp = u.entity_type("employee").unwrap();
        assert_eq!(emp.id_characteristic(), "name");
        assert_eq!(emp.domain_of("age"), Some(&sym!("years")));
        assert_eq!(emp.non_id_characteristics().count(), 1);
        let op = u.predicate("operate").unwrap();
        assert_eq!(op.case_type("agent"), Some(&sym!("employee")));
        assert_eq!(op.arity(), 2);
    }

    #[test]
    fn rejects_missing_id_characteristic() {
        let err = Universe::new(
            DomainCatalog::new().with(Domain::of_strs("d", ["x"])),
            [EntityTypeDecl::new("e", "id", [(sym!("other"), sym!("d"))])],
            [],
        )
        .unwrap_err();
        assert!(matches!(err, UniverseError::MissingIdCharacteristic { .. }));
    }

    #[test]
    fn rejects_unknown_domain() {
        let err = Universe::new(
            DomainCatalog::new(),
            [EntityTypeDecl::new("e", "id", [(sym!("id"), sym!("nope"))])],
            [],
        )
        .unwrap_err();
        assert!(matches!(err, UniverseError::UnknownDomain { .. }));
    }

    #[test]
    fn rejects_unknown_case_type() {
        let err = Universe::new(
            DomainCatalog::new().with(Domain::of_strs("d", ["x"])),
            [EntityTypeDecl::new("e", "id", [(sym!("id"), sym!("d"))])],
            [PredicateDecl::new("p", [(sym!("agent"), sym!("ghost"))])],
        )
        .unwrap_err();
        assert!(matches!(err, UniverseError::UnknownCaseType { .. }));
    }

    #[test]
    fn rejects_empty_predicate() {
        let err = Universe::new(
            DomainCatalog::new().with(Domain::of_strs("d", ["x"])),
            [EntityTypeDecl::new("e", "id", [(sym!("id"), sym!("d"))])],
            [PredicateDecl::new("p", [])],
        )
        .unwrap_err();
        assert!(matches!(err, UniverseError::EmptyPredicate { .. }));
    }

    #[test]
    fn rejects_reserved_predicate_name() {
        let err = Universe::new(
            DomainCatalog::new().with(Domain::of_strs("d", ["x"])),
            [EntityTypeDecl::new("e", "id", [(sym!("id"), sym!("d"))])],
            [PredicateDecl::new("be e", [(sym!("object"), sym!("e"))])],
        )
        .unwrap_err();
        assert_eq!(err, UniverseError::ReservedPredicateName(sym!("be e")));
    }

    #[test]
    fn rejects_duplicates() {
        let d = DomainCatalog::new().with(Domain::of_strs("d", ["x"]));
        let et = EntityTypeDecl::new("e", "id", [(sym!("id"), sym!("d"))]);
        let err = Universe::new(d.clone(), [et.clone(), et.clone()], []).unwrap_err();
        assert_eq!(err, UniverseError::DuplicateEntityType(sym!("e")));

        let p = PredicateDecl::new("p", [(sym!("agent"), sym!("e"))]);
        let err = Universe::new(d, [et], [p.clone(), p]).unwrap_err();
        assert_eq!(err, UniverseError::DuplicatePredicate(sym!("p")));
    }

    #[test]
    fn error_display_is_informative() {
        let e = UniverseError::UnknownCaseType {
            predicate: sym!("operate"),
            case: sym!("agent"),
            entity_type: sym!("droid"),
        };
        assert_eq!(
            e.to_string(),
            "predicate `operate`: case `agent` references unknown entity type `droid`"
        );
    }
}
