//! The canonical case-grammar vocabulary.
//!
//! §3.2.3: *"a mapping between association types and the predicate used to
//! express information concerning each association type would be required
//! ('supervision' and 'supervise', 'operation' and 'operate'). That is,
//! there must be a translation between the natural language case grammars
//! on which the two data models are based."*
//!
//! Both data models compile into facts built by these constructors; the
//! correspondence in `dme-core` renames model-local names into this shared
//! vocabulary first. Using one canonical shape per concept is what makes
//! fact-base equality a 1-1 onto state-equivalence correspondence.

use std::collections::BTreeSet;

use dme_value::{Atom, Symbol};

use crate::{Fact, FactBase};

/// The case name used to attribute a characteristic value in
/// characteristic facts.
pub const VALUE_CASE: &str = "value";

/// Predicate symbol for existence facts: `be <entity-type>`.
pub fn existence_predicate(entity_type: &Symbol) -> Symbol {
    Symbol::new(format!("be {entity_type}"))
}

/// Predicate symbol for characteristic facts: `<entity-type>.<characteristic>`.
pub fn characteristic_predicate(entity_type: &Symbol, characteristic: &Symbol) -> Symbol {
    Symbol::new(format!("{entity_type}.{characteristic}"))
}

/// An **existence fact**: an entity of `entity_type`, identified by its
/// identifying characteristic (`id_characteristic = key`), exists in the
/// application state.
///
/// ```
/// use dme_logic::vocab;
/// use dme_value::{sym, Atom};
/// let f = vocab::existence(&sym!("employee"), &sym!("name"), Atom::str("T.Manhart"));
/// assert_eq!(f.to_string(), "be employee{name: T.Manhart}");
/// ```
pub fn existence(entity_type: &Symbol, id_characteristic: &Symbol, key: Atom) -> Fact {
    Fact::new(
        existence_predicate(entity_type),
        [(id_characteristic.clone(), key)],
    )
}

/// A **characteristic fact**: the entity identified by `key` has
/// `characteristic = value`.
///
/// ```
/// use dme_logic::vocab;
/// use dme_value::{sym, Atom};
/// let f = vocab::characteristic(
///     &sym!("employee"), &sym!("name"), Atom::str("T.Manhart"),
///     &sym!("age"), Atom::int(32),
/// );
/// assert_eq!(f.to_string(), "employee.age{name: T.Manhart, value: 32}");
/// ```
pub fn characteristic(
    entity_type: &Symbol,
    id_characteristic: &Symbol,
    key: Atom,
    characteristic: &Symbol,
    value: Atom,
) -> Fact {
    Fact::new(
        characteristic_predicate(entity_type, characteristic),
        [
            (id_characteristic.clone(), key),
            (Symbol::new(VALUE_CASE), value),
        ],
    )
}

/// An **association fact**: an event described by `predicate` holds, with
/// each case bound to the identifying value of its participant.
///
/// ```
/// use dme_logic::vocab;
/// use dme_value::{sym, Atom};
/// let f = vocab::association(
///     &sym!("supervise"),
///     [(sym!("agent"), Atom::str("G.Wayshum")), (sym!("object"), Atom::str("C.Gershag"))],
/// );
/// assert_eq!(f.to_string(), "supervise{agent: G.Wayshum, object: C.Gershag}");
/// ```
pub fn association(predicate: &Symbol, cases: impl IntoIterator<Item = (Symbol, Atom)>) -> Fact {
    Fact::new(predicate.clone(), cases)
}

/// A sub-vocabulary of the canonical fact language: which existence,
/// characteristic and association facts a (possibly partial) schema can
/// express.
///
/// §1.2 of the paper: "The external schema may present to the user just
/// a subset of the information described in the conceptual schema. …
/// the definitions to be presented can be extended to handle the case
/// where the external schema describes a subset of the conceptual
/// schema." A [`FactFilter`] is that extension's core: state equivalence
/// between a subset view and the conceptual state is equality of the
/// *filtered* fact bases, and operation translation works on filtered
/// deltas.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FactFilter {
    /// Entity types whose existence facts are expressible.
    pub entity_types: BTreeSet<Symbol>,
    /// (entity type, characteristic) pairs whose characteristic facts are
    /// expressible.
    pub characteristics: BTreeSet<(Symbol, Symbol)>,
    /// Association predicates whose facts are expressible.
    pub predicates: BTreeSet<Symbol>,
}

impl FactFilter {
    /// An empty filter (expresses nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether this filter retains the given fact.
    pub fn retains(&self, fact: &Fact) -> bool {
        let p = fact.predicate().as_str();
        if let Some(entity_type) = p.strip_prefix("be ") {
            return self.entity_types.contains(entity_type);
        }
        if let Some((entity_type, characteristic)) = p.split_once('.') {
            return self
                .characteristics
                .contains(&(Symbol::new(entity_type), Symbol::new(characteristic)));
        }
        self.predicates.contains(p)
    }

    /// The retained subset of a fact base.
    pub fn filter(&self, facts: &FactBase) -> FactBase {
        facts.iter().filter(|f| self.retains(f)).cloned().collect()
    }

    /// Whether this filter retains at least everything `other` does.
    pub fn covers(&self, other: &FactFilter) -> bool {
        other.entity_types.is_subset(&self.entity_types)
            && other.characteristics.is_subset(&self.characteristics)
            && other.predicates.is_subset(&self.predicates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dme_value::sym;

    #[test]
    fn fact_filter_classifies_and_filters() {
        let mut f = FactFilter::new();
        f.entity_types.insert(sym!("employee"));
        f.characteristics.insert((sym!("employee"), sym!("age")));
        f.predicates.insert(sym!("supervise"));

        let be_emp = existence(&sym!("employee"), &sym!("name"), Atom::str("X"));
        let be_machine = existence(&sym!("machine"), &sym!("number"), Atom::str("M"));
        let age = characteristic(
            &sym!("employee"),
            &sym!("name"),
            Atom::str("X"),
            &sym!("age"),
            Atom::int(30),
        );
        let mtype = characteristic(
            &sym!("machine"),
            &sym!("number"),
            Atom::str("M"),
            &sym!("type"),
            Atom::str("lathe"),
        );
        let sup = association(&sym!("supervise"), [(sym!("agent"), Atom::str("X"))]);
        let op = association(&sym!("operate"), [(sym!("agent"), Atom::str("X"))]);

        assert!(f.retains(&be_emp));
        assert!(!f.retains(&be_machine));
        assert!(f.retains(&age));
        assert!(!f.retains(&mtype));
        assert!(f.retains(&sup));
        assert!(!f.retains(&op));

        let base = FactBase::from_facts([be_emp, be_machine, age, mtype, sup, op]);
        assert_eq!(f.filter(&base).len(), 3);
        assert!(FactFilter::new().filter(&base).is_empty());
    }

    #[test]
    fn covers_is_componentwise_subset() {
        let mut big = FactFilter::new();
        big.entity_types.insert(sym!("employee"));
        big.predicates.insert(sym!("supervise"));
        let mut small = FactFilter::new();
        small.entity_types.insert(sym!("employee"));
        assert!(big.covers(&small));
        assert!(!small.covers(&big));
        assert!(big.covers(&FactFilter::new()));
    }

    #[test]
    fn predicates_are_stable() {
        assert_eq!(existence_predicate(&sym!("machine")).as_str(), "be machine");
        assert_eq!(
            characteristic_predicate(&sym!("machine"), &sym!("type")).as_str(),
            "machine.type"
        );
    }

    #[test]
    fn existence_fact_shape() {
        let f = existence(&sym!("machine"), &sym!("number"), Atom::str("NZ745"));
        assert_eq!(f.predicate(), "be machine");
        assert_eq!(f.get("number"), Some(&Atom::str("NZ745")));
        assert_eq!(f.arity(), 1);
    }

    #[test]
    fn characteristic_fact_shape() {
        let f = characteristic(
            &sym!("machine"),
            &sym!("number"),
            Atom::str("NZ745"),
            &sym!("type"),
            Atom::str("lathe"),
        );
        assert_eq!(f.predicate(), "machine.type");
        assert_eq!(f.get("number"), Some(&Atom::str("NZ745")));
        assert_eq!(f.get(VALUE_CASE), Some(&Atom::str("lathe")));
    }

    #[test]
    fn association_fact_shape() {
        let f = association(
            &sym!("operate"),
            [
                (sym!("agent"), Atom::str("T.Manhart")),
                (sym!("object"), Atom::str("NZ745")),
            ],
        );
        assert_eq!(f.predicate(), "operate");
        assert_eq!(f.arity(), 2);
    }

    #[test]
    fn same_inputs_same_fact() {
        // Canonicality: the two models must produce byte-identical facts.
        let a = existence(&sym!("employee"), &sym!("name"), Atom::str("X"));
        let b = existence(&sym!("employee"), &sym!("name"), Atom::str("X"));
        assert_eq!(a, b);
    }
}
