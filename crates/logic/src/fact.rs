//! Ground facts: a predicate with named-case arguments.
//!
//! A [`Fact`] corresponds to one of the paper's natural-language statements
//! with every blank filled in, e.g. *"An employee named C.Gershag is
//! supervised by an employee named G.Wayshum"* becomes
//! `supervise{agent: G.Wayshum, object: C.Gershag}`.
//!
//! Arguments are keyed by case name and are always non-null [`Atom`]s: a
//! null in a database state means *absence of a statement*, so nulls never
//! reach the logic layer.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use dme_value::{Atom, Symbol};

/// A ground atom of the case-grammar logic: predicate + case bindings.
///
/// Facts are immutable after construction (`with_arg`/`with_predicate`
/// return copies), so the case map is shared behind an `Arc` — cloning a
/// fact is two reference bumps — and the structural hash is computed
/// once and cached. Equality, ordering and hashing are over
/// `(predicate, args)` exactly as a field-derived implementation would
/// be; the cache is invisible.
#[derive(Clone)]
pub struct Fact {
    predicate: Symbol,
    args: Arc<BTreeMap<Symbol, Atom>>,
    /// Cached `(predicate, args)` structural hash (see [`Fact::fingerprint`]).
    fp: u64,
}

impl PartialEq for Fact {
    fn eq(&self, other: &Self) -> bool {
        // The fingerprint is a pure function of (predicate, args), so a
        // mismatch proves inequality without walking the maps.
        self.fp == other.fp && self.predicate == other.predicate && self.args == other.args
    }
}

impl Eq for Fact {}

impl PartialOrd for Fact {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Fact {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.predicate
            .cmp(&other.predicate)
            .then_with(|| self.args.cmp(&other.args))
    }
}

impl std::hash::Hash for Fact {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Field order matches the former derived implementation, so hash
        // values (and the fingerprints built from them) are unchanged.
        self.predicate.hash(state);
        self.args.hash(state);
    }
}

impl Fact {
    /// Builds a fact from a predicate name and case bindings.
    ///
    /// ```
    /// use dme_logic::Fact;
    /// use dme_value::Atom;
    /// let f = Fact::new(
    ///     "operate",
    ///     [("agent", Atom::str("T.Manhart")), ("object", Atom::str("NZ745"))],
    /// );
    /// assert_eq!(f.predicate(), "operate");
    /// assert_eq!(f.get("agent"), Some(&Atom::str("T.Manhart")));
    /// ```
    pub fn new<C, A>(predicate: impl Into<Symbol>, args: impl IntoIterator<Item = (C, A)>) -> Self
    where
        C: Into<Symbol>,
        A: Into<Atom>,
    {
        Self::from_parts(
            predicate.into(),
            args.into_iter()
                .map(|(c, a)| (c.into(), a.into()))
                .collect(),
        )
    }

    fn from_parts(predicate: Symbol, args: BTreeMap<Symbol, Atom>) -> Self {
        // Tuple hashing visits fields in order, matching the struct
        // hash above — so this equals `content_fingerprint` of the fact.
        let fp = crate::content_fingerprint(&(&predicate, &args));
        Fact {
            predicate,
            args: Arc::new(args),
            fp,
        }
    }

    /// The cached structural hash of `(predicate, args)` — exactly
    /// [`crate::content_fingerprint`] of this fact, computed once at
    /// construction. Equal facts have equal fingerprints.
    pub fn fingerprint(&self) -> u64 {
        self.fp
    }

    /// The predicate symbol.
    pub fn predicate(&self) -> &Symbol {
        &self.predicate
    }

    /// The binding of a case, if present.
    pub fn get(&self, case: &str) -> Option<&Atom> {
        self.args.get(case)
    }

    /// Iterates over `(case, atom)` bindings in case order.
    pub fn args(&self) -> impl Iterator<Item = (&Symbol, &Atom)> {
        self.args.iter()
    }

    /// Number of bound cases.
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// Whether this fact binds the given case.
    pub fn binds(&self, case: &str) -> bool {
        self.args.contains_key(case)
    }

    /// Returns a copy of this fact with one case rebound. Used by
    /// renaming correspondences between data models.
    pub fn with_arg(&self, case: impl Into<Symbol>, atom: impl Into<Atom>) -> Fact {
        let mut args = (*self.args).clone();
        args.insert(case.into(), atom.into());
        Self::from_parts(self.predicate.clone(), args)
    }

    /// Returns a copy with the predicate renamed (correspondence maps,
    /// e.g. graph "operation" association type → relational "operate"
    /// predicate).
    pub fn with_predicate(&self, predicate: impl Into<Symbol>) -> Fact {
        let predicate = predicate.into();
        let fp = crate::content_fingerprint(&(&predicate, &*self.args));
        Fact {
            predicate,
            args: Arc::clone(&self.args),
            fp,
        }
    }
}

impl fmt::Debug for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{{", self.predicate)?;
        for (i, (case, atom)) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{case}: {atom}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn operate() -> Fact {
        Fact::new(
            "operate",
            [
                ("agent", Atom::str("T.Manhart")),
                ("object", Atom::str("NZ745")),
            ],
        )
    }

    #[test]
    fn construction_and_access() {
        let f = operate();
        assert_eq!(f.predicate(), "operate");
        assert_eq!(f.arity(), 2);
        assert!(f.binds("agent"));
        assert!(!f.binds("instrument"));
        assert_eq!(f.get("object"), Some(&Atom::str("NZ745")));
        assert_eq!(f.get("missing"), None);
    }

    #[test]
    fn args_iterate_in_case_order() {
        let f = Fact::new("p", [("z", Atom::int(1)), ("a", Atom::int(2))]);
        let cases: Vec<_> = f.args().map(|(c, _)| c.as_str().to_owned()).collect();
        assert_eq!(cases, vec!["a", "z"]);
    }

    #[test]
    fn equality_ignores_insertion_order() {
        let a = Fact::new("p", [("x", Atom::int(1)), ("y", Atom::int(2))]);
        let b = Fact::new("p", [("y", Atom::int(2)), ("x", Atom::int(1))]);
        assert_eq!(a, b);
    }

    #[test]
    fn with_arg_and_with_predicate() {
        let f = operate();
        let g = f.with_arg("agent", Atom::str("C.Gershag"));
        assert_eq!(g.get("agent"), Some(&Atom::str("C.Gershag")));
        assert_eq!(f.get("agent"), Some(&Atom::str("T.Manhart"))); // original untouched

        let h = f.with_predicate("operation");
        assert_eq!(h.predicate(), "operation");
        assert_eq!(h.get("agent"), f.get("agent"));
    }

    #[test]
    fn display_form() {
        assert_eq!(
            operate().to_string(),
            "operate{agent: T.Manhart, object: NZ745}"
        );
    }

    #[test]
    fn duplicate_case_last_wins() {
        let f = Fact::new("p", [("x", Atom::int(1)), ("x", Atom::int(2))]);
        assert_eq!(f.arity(), 1);
        assert_eq!(f.get("x"), Some(&Atom::int(2)));
    }
}
