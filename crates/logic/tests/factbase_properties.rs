//! Property tests for fact bases: set-algebra laws and the delta/apply
//! round trip that operation-equivalence checking relies on.

use dme_logic::{Fact, FactBase};
use dme_value::Atom;
use proptest::prelude::*;

fn arb_fact() -> impl Strategy<Value = Fact> {
    (
        prop_oneof![Just("p"), Just("q"), Just("be e"), Just("e.age")],
        -5i64..5,
        prop::option::of(-3i64..3),
    )
        .prop_map(|(pred, x, y)| {
            let mut args = vec![("x".to_owned(), Atom::Int(x))];
            if let Some(y) = y {
                args.push(("y".to_owned(), Atom::Int(y)));
            }
            Fact::new(pred, args)
        })
}

fn arb_base() -> impl Strategy<Value = FactBase> {
    prop::collection::vec(arb_fact(), 0..12).prop_map(FactBase::from_facts)
}

proptest! {
    /// `a.apply(a.delta_to(b)) == b` — the identity the translators'
    /// verification step depends on.
    #[test]
    fn delta_apply_round_trip(a in arb_base(), b in arb_base()) {
        let delta = a.delta_to(&b);
        prop_assert_eq!(a.apply(&delta), b);
    }

    #[test]
    fn delta_to_self_is_empty(a in arb_base()) {
        prop_assert!(a.delta_to(&a).is_empty());
    }

    #[test]
    fn union_and_difference_laws(a in arb_base(), b in arb_base()) {
        let u = a.union(&b);
        prop_assert!(u.entails(&a));
        prop_assert!(u.entails(&b));
        prop_assert_eq!(u.len(), a.len() + b.difference(&a).len());
        // difference ∪ intersection-part reconstructs a.
        let a_only = a.difference(&b);
        let shared = a.difference(&a_only);
        prop_assert_eq!(a_only.union(&shared), a);
    }

    #[test]
    fn entails_is_reflexive_and_transitive(a in arb_base(), b in arb_base(), c in arb_base()) {
        prop_assert!(a.entails(&a));
        let ab = a.union(&b);
        let abc = ab.union(&c);
        prop_assert!(abc.entails(&ab));
        prop_assert!(ab.entails(&a));
        prop_assert!(abc.entails(&a));
    }

    #[test]
    fn insert_remove_round_trip(mut a in arb_base(), f in arb_fact()) {
        let had = a.holds(&f);
        let inserted = a.insert(f.clone());
        prop_assert_eq!(inserted, !had);
        prop_assert!(a.holds(&f));
        prop_assert!(a.remove(&f));
        prop_assert!(!a.holds(&f));
    }

    /// Deltas compose: applying delta(a→b) then delta(b→c) equals c.
    #[test]
    fn deltas_compose(a in arb_base(), b in arb_base(), c in arb_base()) {
        let ab = a.delta_to(&b);
        let bc = b.delta_to(&c);
        prop_assert_eq!(a.apply(&ab).apply(&bc), c);
    }
}
