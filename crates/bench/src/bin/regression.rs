//! The equivalence-engine regression harness.
//!
//! Re-runs the Criterion `parallel_equiv` fixtures under hand-rolled
//! median timing (binaries cannot link the dev-dependency harness), adds
//! the instrumented scaling sweeps (state size × operation count ×
//! thread count) and the observer-overhead comparison, and writes the
//! whole record as `BENCH_equiv.json` at the repository root plus a
//! sample JSON-lines transcript under `target/`.
//!
//! Run with: `cargo run --release -p dme-bench --bin regression`

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use dme_core::enumerate::{enumerate_graph_ops, enumerate_rel_ops};
use dme_core::model::{graph_model, relational_model, FiniteModel};
use dme_core::obs::{Counter, JsonLinesSink, Metric, Observer, Report, RingSink};
use dme_core::witness;
use dme_core::{Checker, EquivKind, ParallelConfig, Tier};
use dme_graph::{Association, EntityRef, GraphOp, GraphState};
use dme_logic::{Fact, FactBase};
use dme_relation::{RelOp, RelationState, RelationalSchema};
use dme_server::{CommitMode, MemDevice, ServiceConfig, SessionKind, SessionService, ViewSpec};
use dme_value::Atom;

const STATE_CAP: usize = 4_000;
// 15 samples: enough that the interpolated p95 sits strictly inside the
// order statistics instead of collapsing onto the max (the old
// 5-sample nearest-rank quantiles reported p95_us == p99_us == max_us
// on every row, which made tail columns pure noise).
const SAMPLES: usize = 15;
/// Samples for the incremental re-check comparison, where every cold
/// sample is a full two-closure enumeration of a 2^14-state scenario.
const INC_SAMPLES: usize = 7;

/// Wall-clock summary of repeated runs, in microseconds. `median_us`
/// is kept alongside the quantile columns so older consumers of
/// `BENCH_equiv.json` keep working.
#[derive(Clone, Copy)]
struct Stats {
    median_us: u64,
    min_us: u64,
    max_us: u64,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
}

impl Stats {
    fn from_samples(mut times: Vec<u64>) -> Stats {
        times.sort_unstable();
        // Linear-interpolated quantiles (R type 7): the quantile sits at
        // position q·(n−1) between order statistics. Unlike nearest-rank
        // at small n — which rounded every q ≥ (n−1)/n up to the max and
        // made the p95/p99 columns duplicates of max_us — the tail
        // quantiles stay strictly inside the sample unless the top
        // samples are genuinely tied.
        let pct = |q: f64| {
            let pos = q * (times.len() - 1) as f64;
            let lo = times[pos.floor() as usize] as f64;
            let hi = times[pos.ceil() as usize] as f64;
            (lo + (hi - lo) * pos.fract()).round() as u64
        };
        Stats {
            median_us: times[times.len() / 2],
            min_us: times[0],
            max_us: times[times.len() - 1],
            p50_us: pct(0.50),
            p95_us: pct(0.95),
            p99_us: pct(0.99),
        }
    }

    /// The shared JSON fragment every timed row carries.
    fn json_fields(&self) -> String {
        format!(
            "\"median_us\":{},\"min_us\":{},\"max_us\":{},\"p50_us\":{},\
             \"p95_us\":{},\"p99_us\":{}",
            self.median_us, self.min_us, self.max_us, self.p50_us, self.p95_us, self.p99_us
        )
    }
}

/// Timing summary of `samples` runs of `f`.
fn time_us(samples: usize, mut f: impl FnMut()) -> Stats {
    Stats::from_samples(
        (0..samples)
            .map(|_| {
                let t = Instant::now();
                f();
                t.elapsed().as_micros() as u64
            })
            .collect(),
    )
}

fn rel_model(
    name: &str,
    schema: RelationalSchema,
    max_statements: usize,
) -> FiniteModel<RelationState, RelOp> {
    let ops = enumerate_rel_ops(&schema, max_statements);
    relational_model(name, RelationState::empty(Arc::new(schema)), ops)
}

/// The E-D6 fixture from `benches/parallel_equiv.rs`: the largest
/// data-model check in the suite.
#[allow(clippy::type_complexity)]
fn d6_fixture() -> (
    Vec<FiniteModel<RelationState, RelOp>>,
    Vec<FiniteModel<GraphState, GraphOp>>,
) {
    let ms = vec![
        rel_model("micro-rel", witness::micro_relational_schema(), 2),
        rel_model(
            "micro-rel-supervisors-supervised",
            witness::micro_relational_schema_supervisors_supervised(),
            2,
        ),
    ];
    let ns: Vec<FiniteModel<GraphState, GraphOp>> = witness::all_micro_graph_schemas()
        .into_iter()
        .enumerate()
        .filter(|(_, schema)| schema.participations().all(|(_, p)| !p.total))
        .map(|(i, schema)| {
            let schema = Arc::new(schema);
            let ops = enumerate_graph_ops(&schema);
            graph_model(format!("graph-{i}"), GraphState::empty(schema), ops)
        })
        .collect();
    (ms, ns)
}

/// A toy model over `facts` independent facts: its closure is the
/// powerset (2^facts states) and it has 2·facts operations — the
/// scaling knob for the sweeps.
fn powerset_model(name: &str, facts: usize) -> FiniteModel<FactBase, String> {
    let universe: BTreeMap<String, (bool, Fact)> = (0..facts as i64)
        .flat_map(|i| {
            let fact = Fact::new("p", [("x", Atom::Int(i))]);
            [
                (format!("+{fact}"), (true, fact.clone())),
                (format!("-{fact}"), (false, fact)),
            ]
        })
        .collect();
    let op_names: Vec<String> = universe.keys().cloned().collect();
    FiniteModel::new(name, FactBase::default(), op_names, move |op, s| {
        let (add, fact) = &universe[op];
        let mut next = s.clone();
        if *add {
            next.insert(fact.clone()).then_some(next)
        } else {
            next.remove(fact).then_some(next)
        }
    })
}

struct Timing {
    name: String,
    stats: Stats,
}

/// Session-service throughput: N concurrent graph sessions toggling
/// disjoint supervisions against a journal whose sync costs a fixed
/// latency, group commit vs per-operation commit. With disjoint work
/// the only contention is the journal itself, so the sync count (and
/// with it wall-clock) is the group-commit economy measure.
fn service_throughput() -> Vec<String> {
    use dme_core::translate::CompletionMode;

    const OPS_EACH: usize = 16;
    const SYNC_DELAY_US: u64 = 150;

    let cfg = dme_workload::ShopConfig {
        employees: 20,
        machines: 2,
        supervisions: 0,
        seed: 7,
    };
    let initial = dme_workload::graph_state(cfg);
    let views = || {
        vec![ViewSpec {
            name: "shop".into(),
            schema: dme_workload::relational_schema(cfg),
            mode: CompletionMode::Minimal,
        }]
    };
    // Session k owns the pair E{2k} -> E{2k+1}; its stream alternates
    // insert/delete so every submission is valid under any interleaving.
    fn toggle(k: usize, insert: bool) -> GraphOp {
        let assoc = Association::new(
            "supervise",
            [
                (
                    "agent",
                    EntityRef::new("employee", Atom::str(format!("E{:05}", 2 * k))),
                ),
                (
                    "object",
                    EntityRef::new("employee", Atom::str(format!("E{:05}", 2 * k + 1))),
                ),
            ],
        );
        if insert {
            GraphOp::InsertAssociation(assoc)
        } else {
            GraphOp::DeleteAssociation(assoc)
        }
    }

    let mut rows = Vec::new();
    for sessions in [1usize, 2, 4, 8] {
        let mut row = BTreeMap::new();
        for mode in [CommitMode::Group, CommitMode::PerOp] {
            let mut syncs = 0u64;
            // Per-transaction latency comes from the service's own
            // commit-latency histogram, accumulated across all sampled
            // runs — wall-clock percentiles of individual commits, not
            // of whole runs.
            let obs = Observer::new(RingSink::with_capacity(64));
            let (stats, commit_hist) = {
                let stats = time_us(SAMPLES, || {
                    let service = SessionService::new(
                        initial.clone(),
                        views(),
                        ServiceConfig {
                            commit_mode: mode,
                            obs: obs.clone(),
                            ..ServiceConfig::default()
                        },
                        Box::new(
                            MemDevice::new()
                                .with_sync_delay(std::time::Duration::from_micros(SYNC_DELAY_US)),
                        ),
                        Box::new(MemDevice::new()),
                    )
                    .expect("service boots");
                    std::thread::scope(|scope| {
                        for k in 0..sessions {
                            let service = service.clone();
                            scope.spawn(move || {
                                let mut sess = service
                                    .open_session(SessionKind::Graph)
                                    .expect("session admits");
                                for i in 0..OPS_EACH {
                                    sess.submit_graph(vec![toggle(k, i % 2 == 0)])
                                        .expect("disjoint toggles commit");
                                }
                                sess.close().expect("graceful teardown");
                            });
                        }
                    });
                    assert_eq!(
                        service.committed_history().len(),
                        sessions * OPS_EACH,
                        "every submission commits"
                    );
                    syncs = service.wal_syncs();
                });
                (stats, obs.histogram(Metric::CommitLatency))
            };
            let label = match mode {
                CommitMode::Group => "group",
                CommitMode::PerOp => "per_op",
            };
            println!(
                "service/sessions={sessions}/{label}: {}µs (commit p50/p95/p99 {}/{}/{}µs, \
                 {syncs} wal syncs, {} txns)",
                stats.median_us,
                commit_hist.p50(),
                commit_hist.p95(),
                commit_hist.p99(),
                sessions * OPS_EACH
            );
            row.insert(
                label,
                format!(
                    "\"{label}\":{{{},\"wal_syncs\":{syncs},{}}}",
                    stats.json_fields(),
                    json_histogram("commit_latency_us", &commit_hist)
                ),
            );
        }
        rows.push(format!(
            "{{\"sessions\":{sessions},\"txns\":{},\"sync_delay_us\":{SYNC_DELAY_US},{},{}}}",
            sessions * OPS_EACH,
            row["group"],
            row["per_op"]
        ));
    }
    rows
}

/// Open-loop scaling of the networked front door: 10⁴ pre-opened
/// sessions fire disjoint single-op transactions on a heavy-tailed
/// (bounded-Pareto) arrival schedule at a rate chosen to saturate one
/// shard, against 1 vs 4 shards. Open-loop means latency is measured
/// from the *scheduled* arrival, not the actual send — queueing delay
/// under overload is part of the number, as it is for real clients.
/// Every request gets a typed response (commit or `Overloaded`); the
/// per-request record is written as a JSON-lines transcript under
/// `target/` for the CI artifact.
fn service_scaling(root: &Path) -> Vec<String> {
    use dme_server::wire::{Request, Response};
    use dme_server::NetServer;
    use rand::{Rng, SeedableRng, StdRng};
    use std::sync::Mutex;
    use std::time::Duration;

    const SESSIONS: usize = 10_000;
    const REQUESTS: usize = 2_400;
    const OPENERS: usize = 16;
    const SYNC_DELAY_US: u64 = 800;
    const QUEUE_DEPTH: usize = 512;
    /// Bounded Pareto α and x_max/x_min ratio for inter-arrival gaps.
    const ALPHA: f64 = 1.5;
    const TAIL_RATIO: f64 = 100.0;
    /// Mean inter-arrival ≈ 250µs → ~4k req/s offered, vs ~1.25k/s
    /// single-shard service capacity (one WAL sync per commit through
    /// one lane).
    const MEAN_GAP_US: f64 = 250.0;

    // Each request inserts one supervision between a disjoint pair of
    // employees, so every non-shed request commits regardless of
    // interleaving. The workload is *partitionable*: pairs are chosen
    // co-resident under the 4-shard layout (and interleaved round-robin
    // across shards), so a transaction's shard set is a singleton in
    // every run — the row measures shard scalability, not the cost of
    // cross-shard journaling — and the op stream is identical across
    // shard counts.
    let cfg = dme_workload::ShopConfig {
        employees: 2 * REQUESTS + 8,
        machines: 2,
        supervisions: 0,
        seed: 7,
    };
    let initial = dme_workload::graph_state(cfg);
    let pairs: Vec<(String, String)> = {
        let mut buckets: Vec<Vec<String>> = vec![Vec::new(); 4];
        for i in 0..cfg.employees {
            let name = format!("E{i:05}");
            let r = EntityRef::new("employee", Atom::str(name.clone()));
            buckets[dme_server::shard::shard_of(&r, 4)].push(name);
        }
        let mut per_bucket: Vec<Vec<(String, String)>> = buckets
            .iter()
            .map(|b| {
                b.chunks_exact(2)
                    .map(|c| (c[0].clone(), c[1].clone()))
                    .collect()
            })
            .collect();
        let mut pairs = Vec::with_capacity(REQUESTS);
        let mut k = 0;
        while pairs.len() < REQUESTS {
            assert!(
                per_bucket.iter().any(|b| !b.is_empty()),
                "enough co-located employee pairs for the request count"
            );
            if let Some(p) = per_bucket[k % 4].pop() {
                pairs.push(p);
            }
            k += 1;
        }
        pairs
    };
    let insert_pair = |i: usize| {
        let (a, b) = &pairs[i];
        GraphOp::InsertAssociation(Association::new(
            "supervise",
            [
                ("agent", EntityRef::new("employee", Atom::str(a.clone()))),
                ("object", EntityRef::new("employee", Atom::str(b.clone()))),
            ],
        ))
    };

    // The arrival schedule, in µs offsets from the run start. Bounded
    // Pareto by inverse CDF, scaled so x_min hits the target mean.
    let x_min = {
        // E[X] for bounded Pareto, as a multiple of x_min.
        let r = TAIL_RATIO.powf(1.0 - ALPHA);
        let mean_over_xmin = ALPHA / (ALPHA - 1.0) * (1.0 - r) / (1.0 - TAIL_RATIO.powf(-ALPHA));
        MEAN_GAP_US / mean_over_xmin
    };
    let mut rng = StdRng::seed_from_u64(2026);
    let mut uniform = move || (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
    let mut at = 0.0f64;
    let schedule: Vec<u64> = (0..REQUESTS)
        .map(|_| {
            let u = uniform();
            let gap = x_min * (1.0 - u * (1.0 - TAIL_RATIO.powf(-ALPHA))).powf(-1.0 / ALPHA);
            at += gap;
            at as u64
        })
        .collect();

    let mut rows = Vec::new();
    let mut throughput = BTreeMap::new();
    let mut p99s = BTreeMap::new();
    for shards in [1usize, 4] {
        let wals: Vec<Box<dyn dme_server::LogDevice>> = (0..shards)
            .map(|_| {
                Box::new(MemDevice::new().with_sync_delay(Duration::from_micros(SYNC_DELAY_US)))
                    as Box<dyn dme_server::LogDevice>
            })
            .collect();
        let service = SessionService::new_sharded(
            initial.clone(),
            Vec::new(),
            ServiceConfig {
                shards,
                queue_depth: QUEUE_DEPTH,
                ..ServiceConfig::default()
            },
            wals,
            Box::new(MemDevice::new()),
        )
        .expect("service boots");
        let server = NetServer::serve(service.clone());
        let clients: Vec<_> = (0..4).map(|_| server.connect().expect("connect")).collect();

        // Pre-open the full session population.
        let session_ids = Mutex::new(Vec::with_capacity(SESSIONS));
        std::thread::scope(|scope| {
            for t in 0..OPENERS {
                let clients = &clients;
                let session_ids = &session_ids;
                scope.spawn(move || {
                    let mut mine = Vec::with_capacity(SESSIONS / OPENERS);
                    for _ in 0..SESSIONS / OPENERS {
                        let sess = clients[t % clients.len()]
                            .open_session(SessionKind::Graph)
                            .expect("session admits");
                        mine.push(sess);
                    }
                    session_ids.lock().unwrap().append(&mut mine);
                });
            }
        });
        let sessions = session_ids.into_inner().unwrap();
        assert_eq!(service.open_sessions(), SESSIONS as u64);

        // Fire the open loop: a pacer thread spawns one async call per
        // scheduled arrival onto the executor; completions are recorded
        // against the *scheduled* time.
        let executor = smol::Executor::new(4);
        // (scheduled µs, latency-from-schedule µs, outcome).
        type LoadRecords = Arc<Mutex<Vec<(u64, u64, &'static str)>>>;
        let records: LoadRecords = Arc::new(Mutex::new(Vec::with_capacity(REQUESTS)));
        let start = Instant::now();
        let mut handles = Vec::with_capacity(REQUESTS);
        for (i, &t_us) in schedule.iter().enumerate() {
            loop {
                let now = start.elapsed().as_micros() as u64;
                if now >= t_us {
                    break;
                }
                let wait = t_us - now;
                if wait > 200 {
                    std::thread::sleep(Duration::from_micros(wait - 150));
                } else {
                    std::hint::spin_loop();
                }
            }
            let client = clients[i % clients.len()].clone();
            let session = sessions[i % SESSIONS].id();
            let records = Arc::clone(&records);
            let op = insert_pair(i);
            handles.push(executor.spawn(async move {
                let request = Request::SubmitGraph {
                    session,
                    ops: vec![op],
                };
                let outcome = match client.call(&request).await {
                    Ok(Response::Committed(_)) => "committed",
                    Ok(Response::Overloaded { .. }) => "shed",
                    _ => "error",
                };
                let latency = start.elapsed().as_micros() as u64 - t_us;
                records.lock().unwrap().push((t_us, latency, outcome));
            }));
        }
        for handle in handles {
            smol::block_on(handle);
        }
        let records = records.lock().unwrap().clone();
        drop(executor);

        // Tear the population down before reading the verdict.
        let mut batches: Vec<Vec<_>> = (0..OPENERS).map(|_| Vec::new()).collect();
        for (i, sess) in sessions.into_iter().enumerate() {
            batches[i % OPENERS].push(sess);
        }
        std::thread::scope(|scope| {
            for batch in batches {
                scope.spawn(move || {
                    for sess in batch {
                        sess.close().expect("graceful teardown");
                    }
                });
            }
        });
        assert_eq!(service.open_sessions(), 0, "clean global teardown");
        let committed = records.iter().filter(|r| r.2 == "committed").count();
        let shed = records.iter().filter(|r| r.2 == "shed").count();
        let errors = records.len() - committed - shed;
        assert_eq!(
            records.len(),
            REQUESTS,
            "every request got a typed response"
        );
        assert_eq!(errors, 0, "no transport or server errors under load");
        assert_eq!(
            service.committed_history().len(),
            committed,
            "wire acks match the committed history"
        );

        let wall_us = records
            .iter()
            .map(|(t, l, _)| t + l)
            .max()
            .unwrap_or(1)
            .max(1);
        let tps = committed as f64 * 1_000_000.0 / wall_us as f64;
        let latencies: Vec<u64> = records
            .iter()
            .filter(|r| r.2 == "committed")
            .map(|r| r.1)
            .collect();
        let stats = Stats::from_samples(latencies);
        println!(
            "service_scaling/shards={shards}: {committed} committed, {shed} shed, \
             {tps:.0} tx/s, latency p50/p95/p99 {}/{}/{}µs",
            stats.p50_us, stats.p95_us, stats.p99_us
        );

        // Per-request transcript for the CI artifact.
        let transcript = root.join(format!("target/loadgen-{shards}shard.jsonl"));
        let mut body = String::with_capacity(REQUESTS * 64);
        for (i, (t_us, latency_us, outcome)) in records.iter().enumerate() {
            body.push_str(&format!(
                "{{\"i\":{i},\"shards\":{shards},\"scheduled_us\":{t_us},\
                 \"latency_us\":{latency_us},\"outcome\":\"{outcome}\"}}\n"
            ));
        }
        std::fs::create_dir_all(transcript.parent().unwrap()).ok();
        std::fs::write(&transcript, body).expect("write loadgen transcript");
        println!("  transcript: {}", transcript.display());

        throughput.insert(shards, tps);
        p99s.insert(shards, stats.p99_us);
        rows.push(format!(
            "{{\"shards\":{shards},\"sessions\":{SESSIONS},\"requests\":{REQUESTS},\
             \"sync_delay_us\":{SYNC_DELAY_US},\"queue_depth\":{QUEUE_DEPTH},\
             \"arrival_mean_us\":{MEAN_GAP_US},\"pareto_alpha\":{ALPHA},\
             \"committed\":{committed},\"shed\":{shed},\"errors\":{errors},\
             \"throughput_tps\":{tps:.1},\"latency_us\":{{{}}}}}",
            stats.json_fields()
        ));

        drop(clients);
        server.shutdown();
    }

    // The scaling gate: 4 shards must at least double saturated
    // single-shard committed throughput, and the scaled service's tail
    // must hold the measured SLO under the same offered load: p99
    // lands at 188-205 ms in release on an idle reference box and
    // 372 ms with a concurrent test suite stealing half the cores, so
    // 750 ms is ~2x the contended worst case (down from the 2 s
    // placeholder the row first shipped with).
    let (t1, t4) = (throughput[&1], throughput[&4]);
    assert!(
        t4 >= 2.0 * t1,
        "4-shard throughput {t4:.0} tx/s < 2x single-shard {t1:.0} tx/s"
    );
    assert!(
        p99s[&4] <= 750_000,
        "4-shard p99 {}µs blows the 750ms SLO",
        p99s[&4]
    );
    println!(
        "service_scaling gate: {t4:.0} >= 2x {t1:.0} tx/s, p99(4 shards) {}µs within SLO",
        p99s[&4]
    );
    rows
}

fn json_timing(t: &Timing) -> String {
    format!("\"{}\":{{{}}}", t.name, t.stats.json_fields())
}

/// MVCC storage-engine guards. Two gated rows:
///
/// - `snapshot_open`: opening a session pins an LSN and shares the
///   committed state — it must NOT clone it. The gate holds the p50 of
///   a 64-open batch flat (≤1.2× + slack) between a 10⁴-fact and a
///   10⁶-fact state; a state-sized copy anywhere on the open path
///   blows it by orders of magnitude. Graph sessions carry the gate:
///   materializing a *relational view over* a 10⁶-fact state is
///   O(facts²) at boot (every fact state-completed against every
///   other), which prices the fixture, not the open, out of CI — the
///   relational open path rides the same pin and is held flat by the
///   conformance suite instead.
/// - `recovery_slo`: recovery cost must scale with WAL bytes since the
///   checkpoint, not with history. The *marginal* cost — cold recovery
///   (boot checkpoint + full replay) minus warm recovery (fresh
///   checkpoint, zero replay) over the replayed megabytes — is gated in
///   ms/MB, which nets out the state-sized fixed costs both pay.
///
/// Returns the `storage_engine` JSON object.
fn storage_engine() -> String {
    const OPENS_PER_SAMPLE: usize = 64;
    /// Marginal replay SLO: measured ~63 ms/MB in release on the
    /// reference box (in-place delta replay); ~3× headroom for slower
    /// CI hosts.
    const SLO_MS_PER_MB: f64 = 200.0;

    // ---- snapshot_open: p50 flat in state size ----------------------
    // ShopConfig::scaled(n) yields ~2.7 facts per scale unit.
    let open_stats = |scale: usize| -> (usize, Stats) {
        let cfg = dme_workload::ShopConfig::scaled(scale);
        let initial = dme_workload::graph_state(cfg);
        let (entities, assocs) = initial.sizes();
        let service = SessionService::new(
            initial,
            Vec::new(),
            ServiceConfig {
                lockstep_verify: false,
                ..ServiceConfig::default()
            },
            Box::new(MemDevice::new()),
            Box::new(MemDevice::new()),
        )
        .expect("service boots");
        let stats = time_us(SAMPLES, || {
            let sessions: Vec<_> = (0..OPENS_PER_SAMPLE)
                .map(|_| {
                    service
                        .open_session(SessionKind::Graph)
                        .expect("session admits")
                })
                .collect();
            drop(sessions);
        });
        (entities + assocs, stats)
    };
    let (facts_small, small) = open_stats(3_800);
    let (facts_large, large) = open_stats(375_000);
    assert!(facts_small >= 10_000 && facts_large >= 1_000_000);
    // 1.2× plus 100µs absolute slack across the 64-open batch (sub-µs
    // per-open timings are quantization-noisy at the small end).
    let bound = (small.p50_us as f64 * 1.2 + 100.0) as u64;
    assert!(
        large.p50_us <= bound,
        "snapshot_open is not flat in state size: p50 {}µs at {} facts vs {}µs at {} facts",
        large.p50_us,
        facts_large,
        small.p50_us,
        facts_small
    );
    println!(
        "snapshot_open: p50 {}µs @ {} facts -> {}µs @ {} facts (bound {}µs, {} opens/sample)",
        small.p50_us, facts_small, large.p50_us, facts_large, bound, OPENS_PER_SAMPLE
    );

    // ---- recovery_slo: marginal replay cost per WAL megabyte --------
    let cfg = dme_workload::ShopConfig::scaled(40_000);
    let initial = dme_workload::graph_state(cfg);
    let (entities, assocs) = initial.sizes();
    let rec_facts = entities + assocs;
    let config = ServiceConfig {
        lockstep_verify: false,
        ..ServiceConfig::default()
    };
    let service = SessionService::new(
        initial.clone(),
        Vec::new(),
        config.clone(),
        Box::new(MemDevice::new()),
        Box::new(MemDevice::new()),
    )
    .expect("service boots");
    let mut session = service
        .open_session(SessionKind::Graph)
        .expect("session admits");
    // Enough WAL (a few MB) that the replay marginal clears timer
    // noise over the ~half-second state-sized fixed cost both
    // recoveries pay (checkpoint decode + MVCC base load).
    let ops = dme_workload::supervision_toggle_ops(cfg, 60_000);
    let mut transactions = 0usize;
    for chunk in ops.chunks(50) {
        session
            .submit_graph(chunk.to_vec())
            .expect("toggle batch commits");
        transactions += 1;
    }
    drop(session);
    // Warm: checkpointed right here, so recovery replays ~nothing.
    service.checkpoint_now().expect("checkpoint");
    let warm_image = service.durable_image();
    // Cold: the same WAL with only the boot checkpoint.
    let (cp_records, _) = dme_storage::wal::replay_tolerant(&warm_image.checkpoint);
    let mut boot_only = Vec::new();
    dme_storage::wal::append_record_traced(
        &mut boot_only,
        cp_records[0].lsn,
        cp_records[0].trace,
        &cp_records[0].payload,
    );
    let cold_image = dme_server::DurableImage {
        checkpoint: boot_only,
        ..warm_image.clone()
    };
    let recover = |image: &dme_server::DurableImage| {
        SessionService::recover(
            Arc::clone(initial.schema()),
            image,
            Vec::new(),
            config.clone(),
            Box::new(MemDevice::new()),
            Box::new(MemDevice::new()),
        )
        .expect("recovery succeeds")
    };
    let replayed_bytes = recover(&cold_image).1.replayed_bytes;
    assert!(recover(&warm_image).1.replayed == 0);
    // Round-robin sampling so slow host drift cannot bias the
    // warm/cold comparison.
    let mut warm_samples = Vec::with_capacity(INC_SAMPLES);
    let mut cold_samples = Vec::with_capacity(INC_SAMPLES);
    for _ in 0..INC_SAMPLES {
        let t = Instant::now();
        let _ = recover(&warm_image);
        warm_samples.push(t.elapsed().as_micros() as u64);
        let t = Instant::now();
        let _ = recover(&cold_image);
        cold_samples.push(t.elapsed().as_micros() as u64);
    }
    let warm = Stats::from_samples(warm_samples);
    let cold = Stats::from_samples(cold_samples);
    let wal_mb = replayed_bytes as f64 / (1024.0 * 1024.0);
    let marginal_ms_per_mb =
        (cold.p50_us.saturating_sub(warm.p50_us)) as f64 / 1_000.0 / wal_mb;
    assert!(
        cold.p50_us > warm.p50_us,
        "a fresh checkpoint must bound recovery: warm p50 {}µs vs cold {}µs",
        warm.p50_us,
        cold.p50_us
    );
    assert!(
        marginal_ms_per_mb <= SLO_MS_PER_MB,
        "recovery SLO blown: {marginal_ms_per_mb:.1} ms/MB of WAL > {SLO_MS_PER_MB} ms/MB"
    );
    println!(
        "recovery_slo: {rec_facts} facts, {wal_mb:.2} MB WAL, warm p50 {}µs, cold p50 {}µs, \
         marginal {marginal_ms_per_mb:.1} ms/MB (SLO {SLO_MS_PER_MB})",
        warm.p50_us, cold.p50_us
    );

    format!(
        "{{\n    \"snapshot_open\":{{\"facts_small\":{facts_small},\
         \"facts_large\":{facts_large},\"opens_per_sample\":{OPENS_PER_SAMPLE},\
         \"small_batch_us\":{{{}}},\"large_batch_us\":{{{}}}}},\
         \n    \"recovery_slo\":{{\"facts\":{rec_facts},\"transactions\":{transactions},\
         \"replayed_bytes\":{replayed_bytes},\"wal_mb\":{wal_mb:.3},\
         \"warm_us\":{{{}}},\"cold_us\":{{{}}},\
         \"marginal_ms_per_mb\":{marginal_ms_per_mb:.2},\"slo_ms_per_mb\":{SLO_MS_PER_MB}}}\n  }}",
        small.json_fields(),
        large.json_fields(),
        warm.json_fields(),
        cold.json_fields()
    )
}

/// Live metric streaming overhead: the same committed workload through
/// the networked front door with and without a `WatchMetrics`
/// subscriber on a 100ms interval. The workload is WAL-sync-bound
/// (per-op commits against a journal with a fixed sync latency), so
/// each sample runs long enough for the pusher to fire several times;
/// the gate asserts the subscribed run's median stays within 5% of the
/// baseline. Returns the `streaming_overhead` JSON object.
fn streaming_overhead() -> String {
    use dme_server::NetServer;
    use std::time::Duration;

    const SESSIONS_N: usize = 4;
    const OPS_EACH: usize = 48;
    const SYNC_DELAY_US: u64 = 400;
    const INTERVAL_MS: u32 = 100;

    let cfg = dme_workload::ShopConfig {
        employees: 2 * SESSIONS_N,
        machines: 0,
        supervisions: 0,
        seed: 11,
    };
    let initial = dme_workload::graph_state(cfg);
    let toggle = |k: usize, insert: bool| {
        let assoc = Association::new(
            "supervise",
            [
                (
                    "agent",
                    EntityRef::new("employee", Atom::str(format!("E{:05}", 2 * k))),
                ),
                (
                    "object",
                    EntityRef::new("employee", Atom::str(format!("E{:05}", 2 * k + 1))),
                ),
            ],
        );
        if insert {
            GraphOp::InsertAssociation(assoc)
        } else {
            GraphOp::DeleteAssociation(assoc)
        }
    };

    // One observer per mode, shared across samples, so the streamed
    // delta count accumulates over the whole subscribed column.
    let run = |watch: bool| {
        let obs = Observer::new(RingSink::with_capacity(64));
        let stats = time_us(SAMPLES, || {
            let service = SessionService::new(
                initial.clone(),
                Vec::new(),
                ServiceConfig {
                    commit_mode: CommitMode::PerOp,
                    obs: obs.clone(),
                    ..ServiceConfig::default()
                },
                Box::new(
                    MemDevice::new().with_sync_delay(Duration::from_micros(SYNC_DELAY_US)),
                ),
                Box::new(MemDevice::new()),
            )
            .expect("service boots");
            let server = NetServer::serve(service.clone());
            let client = server.connect().expect("connect");
            let subscription = if watch {
                Some(client.watch_metrics(INTERVAL_MS).expect("subscription opens"))
            } else {
                None
            };
            std::thread::scope(|scope| {
                for k in 0..SESSIONS_N {
                    let client = &client;
                    scope.spawn(move || {
                        let sess = client
                            .open_session(SessionKind::Graph)
                            .expect("session admits");
                        for i in 0..OPS_EACH {
                            sess.submit_graph(vec![toggle(k, i % 2 == 0)])
                                .expect("disjoint toggles commit");
                        }
                        sess.close().expect("graceful teardown");
                    });
                }
            });
            assert_eq!(
                service.committed_history().len(),
                SESSIONS_N * OPS_EACH,
                "every submission commits"
            );
            drop(subscription);
            drop(client);
            server.shutdown();
        });
        (stats, obs.counter(Counter::MetricsDeltasStreamed))
    };
    let (baseline, baseline_deltas) = run(false);
    let (watching, deltas) = run(true);
    assert_eq!(baseline_deltas, 0, "no pusher without a subscriber");
    assert!(
        deltas >= SAMPLES as u64,
        "subscribed runs streamed only {deltas} deltas across {SAMPLES} samples"
    );
    let overhead_pct =
        (watching.median_us as f64 / baseline.median_us.max(1) as f64 - 1.0) * 100.0;
    println!(
        "streaming/baseline: {}µs  streaming/watch_{INTERVAL_MS}ms: {}µs \
         ({overhead_pct:+.2}%, {deltas} deltas streamed)",
        baseline.median_us, watching.median_us
    );
    assert!(
        watching.median_us as f64 <= baseline.median_us as f64 * 1.05,
        "metric streaming overhead regression: watch {}µs > baseline {}µs (+5%)",
        watching.median_us,
        baseline.median_us
    );
    println!(
        "streaming overhead gate: watch {}µs <= baseline {}µs (+5%) ok",
        watching.median_us, baseline.median_us
    );
    format!(
        "{{\"sessions\":{SESSIONS_N},\"txns\":{},\"sync_delay_us\":{SYNC_DELAY_US},\
         \"interval_ms\":{INTERVAL_MS},\"deltas_streamed\":{deltas},\
         \"overhead_pct\":{overhead_pct:.3},\
         \"baseline\":{{{}}},\"watching\":{{{}}}}}",
        SESSIONS_N * OPS_EACH,
        baseline.json_fields(),
        watching.json_fields()
    )
}

/// Cold-vs-warm single-operation re-check on a 10⁴-state scenario.
/// Returns the `incremental_recheck` JSON object and asserts the ≥10×
/// bar — this is the regression gate for the incremental session.
fn incremental_recheck() -> String {
    use dme_core::IncrementalChecker;
    use dme_workload::scenario::{Mutation, Scenario, ScenarioConfig};

    // 2^14 = 16384 > 10^4 states; the composite operations are the
    // mutation targets — swapping one composite's direction changes its
    // label (one column recomputed) without changing the reachable
    // state set (the single-fact toggles already span the powerset), so
    // the mutant stays pairable against the base.
    let config = ScenarioConfig {
        composite_ops: INC_SAMPLES,
        ..ScenarioConfig::sized(0x1AC5, 10_000)
    };
    let base = Scenario::generate(config);
    let states = 1usize << config.toggles;
    let cap = states + 1;
    let kind = EquivKind::Isomorphic;
    let first_composite = base.ops.len() - config.composite_ops;
    let m = base.model("left");

    let mut session = IncrementalChecker::<FactBase, FactBase>::new();
    session
        .check(&m, &base.model("right"), kind, cap)
        .expect("priming check runs");

    let mut warm_times = Vec::with_capacity(INC_SAMPLES);
    let mut cold_times = Vec::with_capacity(INC_SAMPLES);
    for sample in 0..INC_SAMPLES {
        let mutant = base.mutate(Mutation::SwapOpDirection(first_composite + sample));
        let n = mutant.model("right");
        let t = Instant::now();
        let warm = session
            .check(&m, &n, kind, cap)
            .expect("incremental re-check runs");
        warm_times.push(t.elapsed().as_micros() as u64);
        let t = Instant::now();
        let cold = Checker::new(&m, &n)
            .tier(Tier::from_kind(kind))
            .state_cap(cap)
            .parallel(ParallelConfig::with_threads(1))
            .run()
            .expect("cold full check runs");
        cold_times.push(t.elapsed().as_micros() as u64);
        assert_eq!(
            warm, cold,
            "incremental verdict differs from the cold full check"
        );
    }
    let warm = Stats::from_samples(warm_times);
    let cold = Stats::from_samples(cold_times);
    let speedup = cold.median_us as f64 / warm.median_us.max(1) as f64;
    let cache = session.stats();
    println!(
        "states={states} ops={}: cold {}µs, warm {}µs ({speedup:.1}×; \
         verdict hit rate {:.3}, transition reuse rate {:.3})",
        base.ops.len(),
        cold.median_us,
        warm.median_us,
        cache.verdict_hit_rate(),
        cache.transition_reuse_rate()
    );
    assert!(
        speedup >= 10.0,
        "incremental re-check regression: warm single-op re-check is only \
         {speedup:.1}× faster than a cold full check (bar: 10×; cold {}µs, warm {}µs)",
        cold.median_us,
        warm.median_us
    );
    format!(
        "{{\"states\":{states},\"ops\":{},\"samples\":{INC_SAMPLES},\
         \"cold\":{{{}}},\"warm\":{{{}}},\"speedup\":{speedup:.2},\
         \"verdict_cache_hit_rate\":{:.6},\"transition_reuse_rate\":{:.6},\
         \"verdict_cache_hits\":{},\"verdict_cache_misses\":{},\
         \"cache_invalidations\":{},\"transitions_reused\":{},\
         \"transitions_recomputed\":{},\"pairings_reused\":{}}}",
        base.ops.len(),
        cold.json_fields(),
        warm.json_fields(),
        cache.verdict_hit_rate(),
        cache.transition_reuse_rate(),
        cache.verdict_hits,
        cache.verdict_misses,
        cache.invalidations,
        cache.transitions_reused,
        cache.transitions_recomputed,
        cache.pairings_reused
    )
}

/// Symbolic find mode vs full enumeration on adversarial mutants.
///
/// Each size takes a generated toggle scenario and renames the binding
/// of operation 1 — the delete of the first toggle. The renamed delete
/// toggles a fact nothing can insert, so the mutant operation errors on
/// every state while the closure (and hence the pairing) is untouched:
/// a clean Definition-2 counterexample. The symbolic tier's find mode
/// locates it at bound 2 — the broken delete differs from every
/// opposite operation at the empty state or a depth-1 neighbor, and
/// twin-first probing dismisses each matched twin with one UNSAT query
/// — without ever enumerating the closure. The enumerative side must
/// build both 2^k-state closures before it can compare anything.
///
/// The enumerative leg runs under a node [`CheckBudget`]. A fixture
/// that exhausts the budget records a *skipped* row (null enumerative
/// columns, a `skipped` marker) instead of aborting the sweep, so the
/// largest size shows the symbolic tier answering where enumeration
/// cannot finish. Returns the `symbolic_crossover` JSON rows and
/// asserts the ≥5× bar at the largest size the enumerative side
/// completed.
fn symbolic_crossover() -> Vec<String> {
    use dme_core::symbolic::SymbolicChecker;
    use dme_core::{CheckBudget, Verdict};
    use dme_workload::scenario::{Mutation, Scenario, ScenarioConfig};

    /// Cold full checks of a 2^14-state pair dominate; keep samples low.
    const CROSS_SAMPLES: usize = 5;
    /// Generous enough for the 2^14 fixture's two closures, an order of
    /// magnitude below what the 2^17 fixture needs.
    const NODE_BUDGET: u64 = 5_000_000;

    let mut rows = Vec::new();
    let mut largest_completed: Option<(usize, f64)> = None;
    let mut skipped = 0usize;
    for k in [8usize, 11, 14, 17] {
        let config = ScenarioConfig::sized(0x0C50 + k as u64, 1 << k);
        let base = Scenario::generate(config);
        let mutant = base.mutate(Mutation::RenameBinding(1));
        let states = 1usize << config.toggles;
        let ops = base.ops.len();

        let ms = base.symbolic_spec("left");
        let ns = mutant.symbolic_spec("right");
        let mut label = String::new();
        let sym = time_us(CROSS_SAMPLES, || {
            let found = SymbolicChecker::new(&ms, &ns)
                .bound(2)
                .find_counterexample()
                .expect("toggle scenarios encode")
                .expect("the renamed delete is unmatched");
            label = found.label.clone();
        });

        let m = base.model("left");
        let n = mutant.model("right");
        let cap = states + 1;
        let run_enum = || {
            Checker::new(&m, &n)
                .tier(Tier::Isomorphic)
                .state_cap(cap)
                .parallel(ParallelConfig::with_threads(1).budget(CheckBudget::nodes(NODE_BUDGET)))
                .run()
                .expect("the mutant stays pairable against the base")
        };
        // The first sample decides whether the fixture fits the budget;
        // re-timing a skip would only repeat the exhaustion.
        let t = Instant::now();
        let first = run_enum();
        let first_us = t.elapsed().as_micros() as u64;
        if let Verdict::BudgetExhausted { nodes_explored, .. } = first {
            skipped += 1;
            println!(
                "states={states} ops={ops}: symbolic {}µs, enumerative SKIPPED \
                 (budget exhausted after {nodes_explored} nodes)",
                sym.median_us
            );
            rows.push(format!(
                "{{\"states\":{states},\"ops\":{ops},\"unmatched\":\"{label}\",\
                 \"symbolic\":{{{}}},\"enumerative\":null,\"speedup\":null,\
                 \"skipped\":\"budget exhausted after {nodes_explored} nodes\",\
                 \"node_budget\":{NODE_BUDGET}}}",
                sym.json_fields()
            ));
            continue;
        }
        assert!(
            !first.is_equivalent(),
            "the renamed delete must yield a counterexample, got {first}"
        );
        let mut samples = vec![first_us];
        for _ in 1..CROSS_SAMPLES {
            let t = Instant::now();
            let verdict = run_enum();
            samples.push(t.elapsed().as_micros() as u64);
            assert!(!verdict.is_equivalent());
        }
        let enumerative = Stats::from_samples(samples);
        let speedup = enumerative.median_us as f64 / sym.median_us.max(1) as f64;
        largest_completed = Some((states, speedup));
        println!(
            "states={states} ops={ops}: symbolic {}µs, enumerative {}µs \
             ({speedup:.1}×, unmatched `{label}`)",
            sym.median_us, enumerative.median_us
        );
        rows.push(format!(
            "{{\"states\":{states},\"ops\":{ops},\"unmatched\":\"{label}\",\
             \"symbolic\":{{{}}},\"enumerative\":{{{}}},\"speedup\":{speedup:.2},\
             \"skipped\":null,\"node_budget\":{NODE_BUDGET}}}",
            sym.json_fields(),
            enumerative.json_fields()
        ));
    }

    // The crossover gate: at the largest size the enumerative side
    // finished, symbolic find mode must be at least 5× faster — and the
    // sweep must have reached a size the enumerative side could not.
    let (states, speedup) =
        largest_completed.expect("at least one size completes under the node budget");
    assert!(
        speedup >= 5.0,
        "symbolic crossover regression: find mode is only {speedup:.1}× faster \
         than full enumeration at {states} states (bar: 5×)"
    );
    assert!(
        skipped > 0,
        "the largest fixture was expected to exhaust the enumerative node budget; \
         raise the sweep size or lower NODE_BUDGET"
    );
    println!(
        "symbolic crossover gate: {speedup:.1}× >= 5× at {states} states, \
         {skipped} size(s) beyond enumerative reach"
    );
    rows
}

/// The percentile fragment for one latency histogram, as recorded by
/// the service's observer across all sampled runs.
fn json_histogram(name: &str, snap: &dme_core::obs::HistogramSnapshot) -> String {
    format!(
        "\"{name}\":{{\"count\":{},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{},\
         \"max_us\":{}}}",
        snap.count,
        snap.p50(),
        snap.p95(),
        snap.p99(),
        snap.max
    )
}

fn main() {
    let root = repo_root();
    let kind = EquivKind::StateDependent { max_depth: 3 };
    let mut fixtures: Vec<Timing> = Vec::new();

    // ---- Fixture timings (the Criterion parallel_equiv group) -------
    println!("== fixtures (median of {SAMPLES}) ==");
    let (ms, ns) = d6_fixture();
    let stats = time_us(SAMPLES, || {
        let verdict = Checker::data_models(&ms, &ns)
            .tier(Tier::DataModel { kind })
            .state_cap(STATE_CAP)
            .run()
            .expect("runs");
        assert!(!verdict.is_equivalent());
    });
    println!("data_model/sequential: {}µs", stats.median_us);
    fixtures.push(Timing {
        name: "data_model/sequential".into(),
        stats,
    });
    for threads in [1usize, 2, 4] {
        let config = ParallelConfig::with_threads(threads);
        let stats = time_us(SAMPLES, || {
            let verdict = Checker::data_models(&ms, &ns)
                .tier(Tier::DataModel { kind })
                .state_cap(STATE_CAP)
                .parallel(config)
                .run()
                .expect("runs");
            assert!(!verdict.is_equivalent());
        });
        println!("data_model/parallel/t{threads}: {}µs", stats.median_us);
        fixtures.push(Timing {
            name: format!("data_model/parallel/t{threads}"),
            stats,
        });
    }

    let m = rel_model("mini-rel", witness::mini_relational_schema(), 2);
    let schema = Arc::new(witness::mini_graph_schema());
    let ops = enumerate_graph_ops(&schema);
    let n = graph_model("mini-graph", GraphState::empty(schema), ops);
    // The mini configs are sampled round-robin (seq, t1, t2, t4 per
    // round) rather than config-by-config: the scaling guard below
    // compares these medians, and on a busy shared host a whole-block
    // schedule lets slow drift land on one config and bias the
    // comparison.
    let mini_configs: [(&str, usize); 4] = [
        ("mini_machine_shop/sequential", 0),
        ("mini_machine_shop/parallel/t1", 1),
        ("mini_machine_shop/parallel/t2", 2),
        ("mini_machine_shop/parallel/t4", 4),
    ];
    let mut mini_samples: Vec<Vec<u64>> = vec![Vec::new(); mini_configs.len()];
    for _ in 0..SAMPLES {
        for (i, (_, threads)) in mini_configs.iter().enumerate() {
            let mut checker = Checker::new(&m, &n)
                .tier(Tier::StateDependent { max_depth: 3 })
                .state_cap(STATE_CAP);
            if *threads > 0 {
                checker = checker.parallel(ParallelConfig::with_threads(*threads));
            }
            let t = Instant::now();
            let verdict = checker.run().expect("runs");
            mini_samples[i].push(t.elapsed().as_micros() as u64);
            assert!(verdict.is_equivalent());
        }
    }
    for ((name, _), samples) in mini_configs.iter().zip(mini_samples) {
        let stats = Stats::from_samples(samples);
        println!("{name}: {}µs", stats.median_us);
        fixtures.push(Timing {
            name: (*name).into(),
            stats,
        });
    }

    // ---- Scaling guard: more threads must never cost wall-clock ------
    // The regression this pins down: before the adaptive sequential
    // fallback, a t4 run on the largest fixture was *slower* than t1
    // (thread spawn + merge overhead on sub-threshold work items). A
    // 10% tolerance absorbs timer noise at this sample size.
    let median_of = |name: &str| {
        fixtures
            .iter()
            .find(|t| t.name == name)
            .unwrap_or_else(|| panic!("fixture {name} was timed"))
            .stats
            .median_us
    };
    let mini_t1 = median_of("mini_machine_shop/parallel/t1");
    let mini_t4 = median_of("mini_machine_shop/parallel/t4");
    assert!(
        mini_t4 as f64 <= mini_t1 as f64 * 1.10,
        "parallel scaling regression: mini_machine_shop t4 {mini_t4}µs > t1 {mini_t1}µs (+10%)"
    );
    println!("scaling guard: mini t4 {mini_t4}µs <= t1 {mini_t1}µs (+10%) ok");

    // ---- Observer overhead on the mini machine shop ------------------
    // The acceptance bar: a disabled observer (no sink) must be free —
    // every instrumentation site reduces to one branch on a None.
    println!("== observer overhead ==");
    let run_with = |observer: Observer| {
        let verdict = Checker::new(&m, &n)
            .tier(Tier::StateDependent { max_depth: 3 })
            .state_cap(STATE_CAP)
            .parallel(ParallelConfig::with_threads(2))
            .observer(observer)
            .run()
            .expect("runs");
        assert!(verdict.is_equivalent());
    };
    let ovh_no_sink = time_us(SAMPLES, || run_with(Observer::disabled()));
    let ovh_ring = time_us(SAMPLES, || {
        run_with(Observer::new(RingSink::with_capacity(4096)))
    });
    let transcript_path = root.join("target/equiv_transcript.jsonl");
    let ovh_jsonl = time_us(SAMPLES, || match JsonLinesSink::create(&transcript_path) {
        Ok(sink) => run_with(Observer::new(sink)),
        Err(e) => panic!(
            "cannot create transcript at {}: {e}",
            transcript_path.display()
        ),
    });
    // The acceptance bar in numbers: an enabled observer adds the ring
    // writes plus the latency-histogram atomics; the delta over the
    // disabled run is the per-run instrumentation cost.
    let hist_overhead_us = ovh_ring.median_us.saturating_sub(ovh_no_sink.median_us);
    println!(
        "no_sink: {}µs  ring: {}µs  jsonl: {}µs  (histogram+ring overhead: {hist_overhead_us}µs)",
        ovh_no_sink.median_us, ovh_ring.median_us, ovh_jsonl.median_us
    );
    println!("transcript: {}", transcript_path.display());
    // The gate: a ring sink is in-memory writes plus histogram atomics,
    // so its cost must stay within noise of the disabled observer. 15%
    // absorbs timer jitter at this sample size on a shared host.
    assert!(
        ovh_ring.median_us as f64 <= ovh_no_sink.median_us as f64 * 1.15,
        "observer overhead regression: ring {}µs > no_sink {}µs (+15%)",
        ovh_ring.median_us,
        ovh_no_sink.median_us
    );
    println!(
        "observer overhead gate: ring {}µs <= no_sink {}µs (+15%) ok",
        ovh_ring.median_us, ovh_no_sink.median_us
    );

    // ---- Scaling sweeps: states × ops × threads ----------------------
    println!("== scaling sweeps ==");
    let mut sweeps: Vec<String> = Vec::new();
    for facts in [3usize, 4, 5] {
        let m = powerset_model("sweep-m", facts);
        let n = powerset_model("sweep-n", facts);
        for threads in [1usize, 2, 4] {
            let obs = Observer::new(RingSink::with_capacity(1024));
            let checker = Checker::new(&m, &n)
                .tier(Tier::StateDependent { max_depth: 2 })
                .state_cap(STATE_CAP)
                .parallel(ParallelConfig::with_threads(threads))
                .observer(obs.clone());
            let stats = time_us(SAMPLES, || {
                assert!(checker.run().expect("runs").is_equivalent());
            });
            let states = 1usize << facts;
            let ops = 2 * facts;
            let nodes = obs.counter(Counter::NodesExpanded) / SAMPLES as u64;
            println!(
                "facts={facts} states={states} ops={ops} threads={threads}: \
                 {}µs ({nodes} nodes/run)",
                stats.median_us
            );
            sweeps.push(format!(
                "{{\"facts\":{facts},\"states\":{states},\"ops\":{ops},\
                 \"threads\":{threads},{},\"nodes_expanded\":{nodes}}}",
                stats.json_fields()
            ));
        }
    }

    // ---- Closure scaling: arena hit rate and per-state cost ----------
    // The workload crate's supervision-toggle knob: k disjoint pairs
    // give a 2^k-state powerset closure, so k = 7/10/13 sweeps the
    // closure enumerator from ~10^2 to ~10^4 states. Alongside the
    // medians we record the arena's probe economics (hit rate) and the
    // amortized cost per interned state.
    println!("== closure scaling ==");
    let mut closure_rows: Vec<String> = Vec::new();
    for k in [7usize, 10, 13] {
        let cfg = dme_workload::ShopConfig {
            employees: 2 * k,
            machines: 0,
            supervisions: 0,
            seed: 42,
        };
        let ops = dme_workload::supervision_closure_ops(cfg, k);
        let model = graph_model(
            format!("closure-2^{k}"),
            dme_workload::graph_state(cfg),
            ops,
        );
        let cap = (1usize << k) + 1;
        let mut arena_stats = dme_core::ArenaStats::default();
        let stats = time_us(SAMPLES, || {
            let closure = model.closure(cap).expect("closure fits under its cap");
            assert_eq!(closure.len(), 1 << k, "closure is the full powerset");
            arena_stats = closure.arena.stats();
        });
        let states = 1usize << k;
        let ns_per_state = stats.median_us * 1_000 / states as u64;
        println!(
            "k={k} states={states}: {}µs ({ns_per_state}ns/state, \
             hit rate {:.3}, {} hits / {} misses)",
            stats.median_us,
            arena_stats.hit_rate(),
            arena_stats.hits,
            arena_stats.misses
        );
        closure_rows.push(format!(
            "{{\"k\":{k},\"states\":{states},\"ops\":{},{},\
             \"ns_per_state\":{ns_per_state},\"arena_hits\":{},\"arena_misses\":{},\
             \"arena_hit_rate\":{:.6}}}",
            2 * k,
            stats.json_fields(),
            arena_stats.hits,
            arena_stats.misses,
            arena_stats.hit_rate()
        ));
    }

    // ---- Incremental re-check: warm session vs cold full check -------
    // The tentpole guard: on a 2^14-state generated scenario, mutating
    // one operation and re-checking through a warm IncrementalChecker
    // session must be at least 10× faster than a cold full check of the
    // same mutant — and return the byte-identical verdict. Every sample
    // applies a *fresh* mutation (a different operation each time), so
    // the warm path really pays for the invalidated column instead of
    // replaying a memoized one.
    println!("== incremental re-check ==");
    let incremental_row = incremental_recheck();

    // ---- Symbolic crossover: find mode vs full enumeration -----------
    // The symbolic-tier guard: on adversarial RenameBinding mutants the
    // bounded SAT find mode must locate the counterexample ≥5× faster
    // than full enumeration, and keep answering at closure sizes where
    // the enumerative side exhausts its node budget (skipped rows).
    println!("== symbolic crossover ==");
    let crossover_rows = symbolic_crossover();

    // ---- Session-service throughput: group vs per-op commit ----------
    println!("== service throughput ==");
    let service_rows = service_throughput();

    // ---- Networked front door: open-loop shard scaling ---------------
    println!("== service scaling (networked, open loop) ==");
    let scaling_rows = service_scaling(&root);

    // ---- MVCC storage engine: snapshot opens + recovery SLO ----------
    println!("== storage engine (MVCC) ==");
    let storage_row = storage_engine();

    // ---- Live metric streaming overhead ------------------------------
    // The observability-plane guard: a `WatchMetrics` subscriber on a
    // 100ms interval must cost under 5% of committed throughput.
    println!("== streaming overhead ==");
    let streaming_row = streaming_overhead();

    // ---- One instrumented run's phase report, for the record ---------
    let ring = RingSink::with_capacity(4096);
    let obs = Observer::new(ring.clone());
    Checker::new(&m, &n)
        .tier(Tier::StateDependent { max_depth: 3 })
        .state_cap(STATE_CAP)
        .parallel(ParallelConfig::with_threads(2))
        .observer(obs.clone())
        .run()
        .expect("runs");
    let report = Report::from_events(&ring.events()).with_totals(obs.counters());
    println!("== mini machine shop phase report ==\n{report}");

    // ---- BENCH_equiv.json --------------------------------------------
    let mut out = String::from("{\n  \"suite\": \"parallel_equiv regression\",\n");
    out.push_str(&format!("  \"samples\": {SAMPLES},\n  \"fixtures\": {{"));
    for (i, t) in fixtures.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        out.push_str(&json_timing(t));
    }
    out.push_str("\n  },\n  \"observer_overhead\": {");
    out.push_str(&format!(
        "\n    \"no_sink\": {{{}}},\n    \"ring_sink\": {{{}}},\
         \n    \"jsonl_sink\": {{{}}},\
         \n    \"histogram_overhead_us\": {hist_overhead_us}\n  }},\n  \"sweeps\": [",
        ovh_no_sink.json_fields(),
        ovh_ring.json_fields(),
        ovh_jsonl.json_fields()
    ));
    for (i, s) in sweeps.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        out.push_str(s);
    }
    out.push_str("\n  ],\n  \"closure_scaling\": [");
    for (i, s) in closure_rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        out.push_str(s);
    }
    out.push_str("\n  ],\n  \"incremental_recheck\": ");
    out.push_str(&incremental_row);
    out.push_str(",\n  \"symbolic_crossover\": [");
    for (i, s) in crossover_rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        out.push_str(s);
    }
    out.push_str("\n  ],\n  \"service_throughput\": [");
    for (i, s) in service_rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        out.push_str(s);
    }
    out.push_str("\n  ],\n  \"service_scaling\": [");
    for (i, s) in scaling_rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        out.push_str(s);
    }
    out.push_str("\n  ],\n  \"storage_engine\": ");
    out.push_str(&storage_row);
    out.push_str(",\n  \"streaming_overhead\": ");
    out.push_str(&streaming_row);
    out.push_str(&format!(",\n  \"report\": {}\n}}\n", report.to_json()));
    let bench_path = root.join("BENCH_equiv.json");
    std::fs::write(&bench_path, out).expect("write BENCH_equiv.json");
    println!("wrote {}", bench_path.display());
}

/// The repository root: two levels above this crate's manifest.
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from("."))
}
