//! E-F1: the full ANSI three-schema pipeline — one update entering at
//! the conceptual or an external level, propagated to every other level
//! (translation + verification + storage transaction).
//!
//! Series: number of registered external views (0, 1, 2), and update
//! entry point. The cost of supporting "the best of both worlds" is the
//! per-view translation, each individually verified.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dme_ansi::MultiModelDatabase;
use dme_core::translate::CompletionMode;
use dme_workload::{
    graph_state, relational_schema, supervision_toggle_ops, supervision_toggle_rel_ops, ShopConfig,
};

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("ansi_pipeline");
    group.sample_size(20);
    let cfg = ShopConfig::scaled(50);
    let gop = supervision_toggle_ops(cfg, 1).remove(0);
    let rop = supervision_toggle_rel_ops(cfg, 1).remove(0);

    for views in [0usize, 1, 2] {
        group.bench_with_input(
            BenchmarkId::new("conceptual_update", views),
            &views,
            |b, &views| {
                b.iter_batched(
                    || {
                        let db = MultiModelDatabase::new(graph_state(cfg)).expect("builds");
                        for v in 0..views {
                            db.add_view(
                                format!("view{v}"),
                                relational_schema(cfg),
                                if v == 0 {
                                    CompletionMode::Minimal
                                } else {
                                    CompletionMode::StateCompleted
                                },
                            )
                            .expect("view materializes");
                        }
                        db
                    },
                    |db| db.update_conceptual(&gop).expect("updates"),
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }

    group.bench_function("external_update_2_views", |b| {
        b.iter_batched(
            || {
                let db = MultiModelDatabase::new(graph_state(cfg)).expect("builds");
                db.add_view("a", relational_schema(cfg), CompletionMode::Minimal)
                    .expect("view");
                db.add_view("b", relational_schema(cfg), CompletionMode::StateCompleted)
                    .expect("view");
                db
            },
            |db| db.update_view("a", &rop).expect("updates"),
            criterion::BatchSize::LargeInput,
        )
    });

    group.bench_function("materialize_view_n50", |b| {
        let db = MultiModelDatabase::new(graph_state(cfg)).expect("builds");
        let mut i = 0usize;
        b.iter(|| {
            let name = format!("bench-view-{i}");
            i += 1;
            db.add_view(&name, relational_schema(cfg), CompletionMode::Minimal)
                .expect("view materializes");
            db.drop_view(&name).expect("drops");
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(400)).measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_pipeline
}
criterion_main!(benches);
