//! E-P1: the parallel, memoized engine against the sequential reference
//! on the largest Definition 6 fixture (the E-D6 micro data models) and
//! on the mini machine shop's state-dependent check.
//!
//! The sequential checkers stay in the suite as the reference; this
//! bench quantifies what the work-stealing grid driver plus the shared
//! fact-base interner buy on multi-core hardware.

// These suites deliberately exercise the deprecated pre-facade entry
// points: they are the reference the `Checker` parity tests compare
// against, and must keep compiling until the wrappers are removed.
#![allow(deprecated)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use std::sync::Arc;

use dme_core::enumerate::{enumerate_graph_ops, enumerate_rel_ops};
use dme_core::equiv::{data_model_equivalent, state_dependent_equivalent, EquivKind};
use dme_core::model::{graph_model, relational_model, FiniteModel};
use dme_core::parallel::{
    parallel_application_models_equivalent, parallel_data_model_equivalent, ParallelConfig,
};
use dme_core::witness;
use dme_graph::{GraphOp, GraphState};
use dme_relation::{RelOp, RelationState, RelationalSchema};

const STATE_CAP: usize = 4_000;

fn rel_model(
    name: &str,
    schema: RelationalSchema,
    max_statements: usize,
) -> FiniteModel<RelationState, RelOp> {
    let ops = enumerate_rel_ops(&schema, max_statements);
    relational_model(name, RelationState::empty(Arc::new(schema)), ops)
}

/// The E-D6 fixture: the largest data-model check in the suite.
fn d6_fixture() -> (
    Vec<FiniteModel<RelationState, RelOp>>,
    Vec<FiniteModel<GraphState, GraphOp>>,
) {
    let ms = vec![
        rel_model("micro-rel", witness::micro_relational_schema(), 2),
        rel_model(
            "micro-rel-supervisors-supervised",
            witness::micro_relational_schema_supervisors_supervised(),
            2,
        ),
    ];
    let ns: Vec<FiniteModel<GraphState, GraphOp>> = witness::all_micro_graph_schemas()
        .into_iter()
        .enumerate()
        .filter(|(_, schema)| schema.participations().all(|(_, p)| !p.total))
        .map(|(i, schema)| {
            let schema = Arc::new(schema);
            let ops = enumerate_graph_ops(&schema);
            graph_model(format!("graph-{i}"), GraphState::empty(schema), ops)
        })
        .collect();
    (ms, ns)
}

fn bench_parallel_equiv(c: &mut Criterion) {
    let kind = EquivKind::StateDependent { max_depth: 3 };
    let mut group = c.benchmark_group("parallel_equiv");
    group.sample_size(10);

    let (ms, ns) = d6_fixture();
    group.bench_function("data_model/sequential", |b| {
        b.iter(|| {
            let report = data_model_equivalent(&ms, &ns, kind, STATE_CAP).expect("runs");
            assert!(!report.equivalent);
            report
        })
    });
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("data_model/parallel", threads),
            &threads,
            |b, &threads| {
                let config = ParallelConfig::with_threads(threads);
                b.iter(|| {
                    let verdict = parallel_data_model_equivalent(&ms, &ns, kind, STATE_CAP, &config)
                        .expect("runs");
                    assert!(!verdict.is_equivalent());
                    verdict
                })
            },
        );
    }

    let m = rel_model("mini-rel", witness::mini_relational_schema(), 2);
    let schema = Arc::new(witness::mini_graph_schema());
    let ops = enumerate_graph_ops(&schema);
    let n = graph_model("mini-graph", GraphState::empty(schema), ops);
    group.bench_function("mini_machine_shop/sequential", |b| {
        b.iter(|| {
            let report = state_dependent_equivalent(&m, &n, STATE_CAP, 3).expect("runs");
            assert!(report.equivalent);
            report
        })
    });
    for threads in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("mini_machine_shop/parallel", threads),
            &threads,
            |b, &threads| {
                let config = ParallelConfig::with_threads(threads);
                let kind = EquivKind::StateDependent { max_depth: 3 };
                b.iter(|| {
                    let verdict =
                        parallel_application_models_equivalent(&m, &n, kind, STATE_CAP, &config)
                            .expect("runs");
                    assert!(verdict.is_equivalent());
                    verdict
                })
            },
        );
    }

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(400)).measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_parallel_equiv
}
criterion_main!(benches);
