//! E-P1: the parallel, memoized engine against the sequential reference
//! on the largest Definition 6 fixture (the E-D6 micro data models) and
//! on the mini machine shop's state-dependent check.
//!
//! Both engines run through the [`Checker`] facade — the sequential
//! rows omit `.parallel()` and route to the reference checkers; this
//! bench quantifies what the work-stealing grid driver plus the shared
//! fact-base interner buy on multi-core hardware.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use std::sync::Arc;

use dme_core::enumerate::{enumerate_graph_ops, enumerate_rel_ops};
use dme_core::equiv::EquivKind;
use dme_core::model::{graph_model, relational_model, FiniteModel};
use dme_core::parallel::ParallelConfig;
use dme_core::witness;
use dme_core::{Checker, Tier};
use dme_graph::{GraphOp, GraphState};
use dme_relation::{RelOp, RelationState, RelationalSchema};

const STATE_CAP: usize = 4_000;

fn rel_model(
    name: &str,
    schema: RelationalSchema,
    max_statements: usize,
) -> FiniteModel<RelationState, RelOp> {
    let ops = enumerate_rel_ops(&schema, max_statements);
    relational_model(name, RelationState::empty(Arc::new(schema)), ops)
}

/// The E-D6 fixture: the largest data-model check in the suite.
fn d6_fixture() -> (
    Vec<FiniteModel<RelationState, RelOp>>,
    Vec<FiniteModel<GraphState, GraphOp>>,
) {
    let ms = vec![
        rel_model("micro-rel", witness::micro_relational_schema(), 2),
        rel_model(
            "micro-rel-supervisors-supervised",
            witness::micro_relational_schema_supervisors_supervised(),
            2,
        ),
    ];
    let ns: Vec<FiniteModel<GraphState, GraphOp>> = witness::all_micro_graph_schemas()
        .into_iter()
        .enumerate()
        .filter(|(_, schema)| schema.participations().all(|(_, p)| !p.total))
        .map(|(i, schema)| {
            let schema = Arc::new(schema);
            let ops = enumerate_graph_ops(&schema);
            graph_model(format!("graph-{i}"), GraphState::empty(schema), ops)
        })
        .collect();
    (ms, ns)
}

fn bench_parallel_equiv(c: &mut Criterion) {
    let kind = EquivKind::StateDependent { max_depth: 3 };
    let mut group = c.benchmark_group("parallel_equiv");
    group.sample_size(10);

    let (ms, ns) = d6_fixture();
    group.bench_function("data_model/sequential", |b| {
        b.iter(|| {
            let verdict = Checker::data_models(&ms, &ns)
                .tier(Tier::DataModel { kind })
                .state_cap(STATE_CAP)
                .run()
                .expect("runs");
            assert!(!verdict.is_equivalent());
            verdict
        })
    });
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("data_model/parallel", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let verdict = Checker::data_models(&ms, &ns)
                        .tier(Tier::DataModel { kind })
                        .state_cap(STATE_CAP)
                        .parallel(ParallelConfig::with_threads(threads))
                        .run()
                        .expect("runs");
                    assert!(!verdict.is_equivalent());
                    verdict
                })
            },
        );
    }

    let m = rel_model("mini-rel", witness::mini_relational_schema(), 2);
    let schema = Arc::new(witness::mini_graph_schema());
    let ops = enumerate_graph_ops(&schema);
    let n = graph_model("mini-graph", GraphState::empty(schema), ops);
    group.bench_function("mini_machine_shop/sequential", |b| {
        b.iter(|| {
            let verdict = Checker::new(&m, &n)
                .tier(Tier::StateDependent { max_depth: 3 })
                .state_cap(STATE_CAP)
                .run()
                .expect("runs");
            assert!(verdict.is_equivalent());
            verdict
        })
    });
    for threads in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("mini_machine_shop/parallel", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let verdict = Checker::new(&m, &n)
                        .tier(Tier::StateDependent { max_depth: 3 })
                        .state_cap(STATE_CAP)
                        .parallel(ParallelConfig::with_threads(threads))
                        .run()
                        .expect("runs");
                    assert!(verdict.is_equivalent());
                    verdict
                })
            },
        );
    }

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(400)).measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_parallel_equiv
}
criterion_main!(benches);
