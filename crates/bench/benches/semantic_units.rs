//! E-F5: semantic unit derivation (§3.2.2) and graph state validation
//! (Figure 5's totality/functionality) as the state grows, plus the
//! DESIGN.md ablation of recompute-per-op deletion-unit closure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dme_graph::unit::deletion_unit;
use dme_graph::EntityRef;
use dme_value::Atom;
use dme_workload::{graph_state, ShopConfig};

fn bench_units(c: &mut Criterion) {
    let mut group = c.benchmark_group("semantic_units");
    for n in [10usize, 50, 100, 200] {
        let cfg = ShopConfig::scaled(n);
        let g = graph_state(cfg);
        let machine = EntityRef::new("machine", Atom::str("M00000"));
        let employee = EntityRef::new("employee", Atom::str("E00000"));
        group.bench_with_input(BenchmarkId::new("machine_deletion_unit", n), &n, |b, _| {
            b.iter(|| deletion_unit(black_box(&g), [machine.clone()], []))
        });
        group.bench_with_input(BenchmarkId::new("employee_deletion_unit", n), &n, |b, _| {
            b.iter(|| deletion_unit(black_box(&g), [employee.clone()], []))
        });
        group.bench_with_input(BenchmarkId::new("validate_state", n), &n, |b, _| {
            b.iter(|| black_box(&g).validate().expect("valid"))
        });
        // DESIGN.md ablation: indexed vs scan participation validation.
        group.bench_with_input(BenchmarkId::new("validate_state_scan", n), &n, |b, _| {
            b.iter(|| black_box(&g).validate_scan().expect("valid"))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).warm_up_time(std::time::Duration::from_millis(400)).measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_units
}
criterion_main!(benches);
