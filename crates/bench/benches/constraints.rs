//! E-F3: constraint checking cost (the §3.2.1 constraint families) as
//! the state grows, plus per-family costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dme_relation::constraints::{check_all, ColsRef, Constraint};
use dme_workload::{relational_state, ShopConfig};

fn bench_check_all(c: &mut Criterion) {
    let mut group = c.benchmark_group("constraints");
    for n in [10usize, 50, 100, 200] {
        let cfg = ShopConfig::scaled(n);
        let state = relational_state(cfg);
        let schema = state.schema().clone();
        group.bench_with_input(BenchmarkId::new("check_all", n), &n, |b, _| {
            b.iter(|| check_all(black_box(&schema), black_box(&state)).expect("holds"))
        });
    }
    group.finish();
}

fn bench_families(c: &mut Criterion) {
    let mut group = c.benchmark_group("constraint_families");
    let cfg = ShopConfig::scaled(100);
    let state = relational_state(cfg);
    let families: Vec<(&str, Constraint)> = vec![
        (
            "subset",
            Constraint::Subset {
                from: ColsRef::new("Operate", [0]),
                to: ColsRef::new("Employees", [0]),
            },
        ),
        (
            "not_null",
            Constraint::NotNull {
                relation: "Operate".into(),
                column: 0,
            },
        ),
        (
            "unique",
            Constraint::Unique {
                relation: "Operate".into(),
                columns: vec![1],
            },
        ),
        (
            "functional",
            Constraint::Functional {
                relation: "Operate".into(),
                determinant: vec![1],
                dependent: vec![2],
            },
        ),
        (
            "agreement",
            Constraint::Agreement {
                left: ColsRef::new("Operate", [0, 1]),
                right: ColsRef::new("Jobs", [1, 2]),
            },
        ),
    ];
    for (name, constraint) in &families {
        group.bench_function(*name, |b| {
            b.iter(|| constraint.check(black_box(&state)).expect("holds"))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).warm_up_time(std::time::Duration::from_millis(400)).measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_check_all, bench_families
}
criterion_main!(benches);
