//! E-SYN: the semantic joins (§3.2.1) vs the syntactic natural join —
//! the paper's "semantic relation model presents much simpler structures
//! and operations" claim, quantified on equal-size inputs.
//!
//! Inputs: Employees ⋈ Operate over n employees. The semantic conjunction
//! carries its predicate bookkeeping; the syntactic join is
//! attribute-name matching. Shapes should be similar (both are hash-free
//! nested loops here); the point of the comparison is that semantic
//! bookkeeping does not change the asymptotics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dme_relation::algebra::{conjunction, predicate_join, DerivedRelation};
use dme_syntactic::codd::schema::{Attribute, CoddSchema, SynRelationSchema};
use dme_syntactic::codd::{CoddState, SynRelation};
use dme_value::{Domain, DomainCatalog, Tuple, Value};
use dme_workload::{relational_state, ShopConfig};
use std::sync::Arc;

/// Builds syntactic EMP/OPERATE relations with the same contents as the
/// semantic workload state.
fn syntactic_pair(n: usize) -> (SynRelation, SynRelation) {
    let cfg = ShopConfig::scaled(n);
    let sem = relational_state(cfg);
    let names: Vec<&str> = (0..n).map(|_| "x").collect();
    let _ = names;
    let domains = DomainCatalog::new()
        .with(Domain::new("names", dme_value::DomainSpec::AnyStr))
        .with(Domain::new("years", dme_value::DomainSpec::AnyInt))
        .with(Domain::new("serial-numbers", dme_value::DomainSpec::AnyStr))
        .with(Domain::new("machine-types", dme_value::DomainSpec::AnyStr));
    let schema = CoddSchema::new(
        domains,
        [
            SynRelationSchema::new(
                "EMP",
                [
                    Attribute::new("name", "names"),
                    Attribute::new("age", "years"),
                ],
                [0],
                [],
            ),
            SynRelationSchema::new(
                "OPERATE",
                [
                    Attribute::new("name", "names"),
                    Attribute::new("number", "serial-numbers"),
                    Attribute::new("type", "machine-types"),
                ],
                [1],
                [],
            ),
        ],
    )
    .expect("bench schema");
    let mut state = CoddState::empty(Arc::new(schema));
    for t in sem.tuples("Employees") {
        state.insert_raw("EMP", t.clone()).expect("no nulls");
    }
    for t in sem.tuples("Operate") {
        state.insert_raw("OPERATE", t.clone()).expect("no nulls");
    }
    (
        SynRelation::base(&state, "EMP").expect("exists"),
        SynRelation::base(&state, "OPERATE").expect("exists"),
    )
}

fn bench_joins(c: &mut Criterion) {
    let mut group = c.benchmark_group("joins");
    for n in [10usize, 50, 100, 200] {
        let cfg = ShopConfig::scaled(n);
        let sem = relational_state(cfg);
        let employees = DerivedRelation::base(&sem, "Employees").expect("exists");
        let operate = DerivedRelation::base(&sem, "Operate").expect("exists");
        let jobs = DerivedRelation::base(&sem, "Jobs").expect("exists");
        let (syn_emp, syn_op) = syntactic_pair(n);

        group.bench_with_input(BenchmarkId::new("semantic_conjunction", n), &n, |b, _| {
            b.iter(|| conjunction(black_box(&employees), black_box(&operate), 0, 0).expect("joins"))
        });
        group.bench_with_input(
            BenchmarkId::new("semantic_predicate_join", n),
            &n,
            |b, _| {
                b.iter(|| {
                    predicate_join(black_box(&operate), black_box(&jobs), "operate").expect("joins")
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("syntactic_natural_join", n), &n, |b, _| {
            b.iter(|| black_box(&syn_emp).natural_join(black_box(&syn_op)))
        });
    }
    group.finish();
}

fn bench_selection_projection(c: &mut Criterion) {
    let mut group = c.benchmark_group("select_project");
    let cfg = ShopConfig::scaled(200);
    let sem = relational_state(cfg);
    let employees = DerivedRelation::base(&sem, "Employees").expect("exists");
    group.bench_function("semantic_select", |b| {
        b.iter(|| {
            employees.select(|t: &Tuple| t[1].as_atom().and_then(|a| a.as_int()).unwrap_or(0) > 40)
        })
    });
    group.bench_function("semantic_project", |b| {
        b.iter(|| employees.project(&[0]).expect("projects"))
    });
    let _ = Value::Null;
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).warm_up_time(std::time::Duration::from_millis(400)).measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_joins, bench_selection_projection
}
criterion_main!(benches);
