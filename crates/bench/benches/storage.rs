//! The internal-schema substrate in isolation: codec, slotted pages,
//! heap files and transactional record-store operations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use dme_storage::{decode_tuple, encode_tuple, HeapFile, Page, RecordStore};
use dme_value::{tuple, Tuple};

fn sample_tuple(i: i64) -> Tuple {
    tuple![
        format!("employee-{i:06}"),
        i,
        format!("machine-{:04}", i % 97)
    ]
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    let t = sample_tuple(123456);
    let encoded = encode_tuple(&t);
    group.throughput(Throughput::Bytes(encoded.len() as u64));
    group.bench_function("encode", |b| b.iter(|| encode_tuple(black_box(&t))));
    group.bench_function("decode", |b| {
        b.iter(|| decode_tuple(black_box(&encoded)).expect("decodes"))
    });
    group.finish();
}

fn bench_page(c: &mut Criterion) {
    let mut group = c.benchmark_group("page");
    let record = encode_tuple(&sample_tuple(1));
    group.bench_function("fill_page", |b| {
        b.iter(|| {
            let mut p = Page::new();
            while p.insert(&record).is_ok() {}
            p
        })
    });
    group.bench_function("compact_half_dead", |b| {
        b.iter_batched(
            || {
                let mut p = Page::new();
                let mut slots = Vec::new();
                while let Ok(s) = p.insert(&record) {
                    slots.push(s);
                }
                for s in slots.iter().step_by(2) {
                    p.delete(*s).expect("live");
                }
                p
            },
            |mut p| {
                p.compact();
                p
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_heap_and_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("store");
    for n in [100usize, 1000, 10_000] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("heap_insert", n), &n, |b, &n| {
            b.iter(|| {
                let mut h = HeapFile::new();
                for i in 0..n {
                    h.insert(&encode_tuple(&sample_tuple(i as i64)))
                        .expect("fits");
                }
                h
            })
        });
        group.bench_with_input(BenchmarkId::new("txn_insert_commit", n), &n, |b, &n| {
            b.iter(|| {
                let mut s = RecordStore::new();
                s.create_table("T").expect("fresh");
                let mut txn = s.begin();
                for i in 0..n {
                    txn.insert("T", sample_tuple(i as i64)).expect("inserts");
                }
                txn.commit();
                s
            })
        });
        group.bench_with_input(BenchmarkId::new("txn_insert_rollback", n), &n, |b, &n| {
            b.iter(|| {
                let mut s = RecordStore::new();
                s.create_table("T").expect("fresh");
                {
                    let mut txn = s.begin();
                    for i in 0..n {
                        txn.insert("T", sample_tuple(i as i64)).expect("inserts");
                    }
                    // dropped: rollback
                }
                s
            })
        });
    }
    let mut filled = RecordStore::new();
    filled.create_table("T").expect("fresh");
    let mut txn = filled.begin();
    for i in 0..10_000 {
        txn.insert("T", sample_tuple(i)).expect("inserts");
    }
    txn.commit();
    group.bench_function("scan_10k", |b| b.iter(|| filled.scan("T").expect("scans")));
    group.bench_function("point_lookup_10k", |b| {
        let probe = sample_tuple(5_000);
        b.iter(|| filled.contains("T", black_box(&probe)).expect("reads"))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).warm_up_time(std::time::Duration::from_millis(400)).measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_codec, bench_page, bench_heap_and_store
}
criterion_main!(benches);
