//! E-F6/F7/F8: operation translation between the data models, and the
//! DESIGN.md ablation of completion modes.
//!
//! * `graph_to_rel/minimal` — the state-independent translation (nulls
//!   padded, normalization absorbs the state dependence);
//! * `graph_to_rel/state_completed` — the paper's literal Figures 7/8
//!   tuples, consulting the current state;
//! * `rel_to_graph` — the reverse direction.
//!
//! Each translation includes the verification step (apply + fact
//! compare), i.e. the numbers are for *certified* translations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dme_core::translate::{graph_op_to_relational, relational_op_to_graph, CompletionMode};
use dme_workload::{
    graph_state, relational_state, supervision_toggle_ops, supervision_toggle_rel_ops, ShopConfig,
};

fn bench_translation(c: &mut Criterion) {
    let mut group = c.benchmark_group("op_translate");
    for n in [10usize, 50, 100] {
        let cfg = ShopConfig::scaled(n);
        let g = graph_state(cfg);
        let r = relational_state(cfg);
        let gop = &supervision_toggle_ops(cfg, 1)[0];
        let rop = &supervision_toggle_rel_ops(cfg, 1)[0];

        group.bench_with_input(BenchmarkId::new("graph_to_rel/minimal", n), &n, |b, _| {
            b.iter(|| {
                graph_op_to_relational(
                    black_box(gop),
                    black_box(&g),
                    black_box(&r),
                    CompletionMode::Minimal,
                )
                .expect("translates")
            })
        });
        group.bench_with_input(
            BenchmarkId::new("graph_to_rel/state_completed", n),
            &n,
            |b, _| {
                b.iter(|| {
                    graph_op_to_relational(
                        black_box(gop),
                        black_box(&g),
                        black_box(&r),
                        CompletionMode::StateCompleted,
                    )
                    .expect("translates")
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("rel_to_graph", n), &n, |b, _| {
            b.iter(|| {
                relational_op_to_graph(black_box(rop), black_box(&r), black_box(&g))
                    .expect("translates")
            })
        });
    }
    group.finish();
}

fn bench_translation_stream(c: &mut Criterion) {
    let mut group = c.benchmark_group("op_translate_stream");
    group.sample_size(10);
    let cfg = ShopConfig::scaled(50);
    let ops = supervision_toggle_ops(cfg, 20);
    group.bench_function("20_ops_lockstep", |b| {
        b.iter(|| {
            let mut g = graph_state(cfg);
            let mut r = relational_state(cfg);
            for op in &ops {
                let rops = graph_op_to_relational(op, &g, &r, CompletionMode::Minimal)
                    .expect("translates");
                g = op.apply(&g).expect("applies");
                r = dme_relation::RelOp::apply_all(&rops, &r).expect("applies");
            }
            (g, r)
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).warm_up_time(std::time::Duration::from_millis(400)).measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_translation, bench_translation_stream
}
criterion_main!(benches);
