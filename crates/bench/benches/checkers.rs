//! E-D2…E-D6: the cost of the equivalence decision procedures
//! (Definitions 2, 3, 5 and 6) on the micro witness models.
//!
//! These are the paper's "explicit enumeration of an extremely large
//! number of equivalent pairs" made concrete: closure enumeration, state
//! pairing through fact compilation, and signature search. The
//! translator benches (op_translate.rs) are the "algorithm" alternative
//! the paper prefers; comparing the two quantifies its point. All
//! checks run through the [`Checker`] facade (sequential reference
//! engine: no `.parallel()` configured).

use criterion::{criterion_group, criterion_main, Criterion};

use std::sync::Arc;

use dme_core::enumerate::{enumerate_graph_ops, enumerate_rel_ops};
use dme_core::model::{graph_model, relational_model};
use dme_core::witness;
use dme_core::{Checker, Tier};
use dme_graph::GraphState;
use dme_relation::RelationState;

const STATE_CAP: usize = 10_000;

fn rel_micro(
    max_statements: usize,
) -> dme_core::model::FiniteModel<RelationState, dme_relation::RelOp> {
    let schema = witness::micro_relational_schema();
    let ops = enumerate_rel_ops(&schema, max_statements);
    relational_model("micro", RelationState::empty(Arc::new(schema)), ops)
}

fn rel_micro_renamed() -> dme_core::model::FiniteModel<RelationState, dme_relation::RelOp> {
    let schema = witness::micro_relational_schema_renamed();
    let ops = enumerate_rel_ops(&schema, 2);
    relational_model("micro-renamed", RelationState::empty(Arc::new(schema)), ops)
}

fn graph_micro() -> dme_core::model::FiniteModel<GraphState, dme_graph::GraphOp> {
    let schema = Arc::new(witness::micro_graph_schema());
    let ops = enumerate_graph_ops(&schema);
    graph_model("micro-graph", GraphState::empty(schema), ops)
}

fn bench_checkers(c: &mut Criterion) {
    let mut group = c.benchmark_group("checkers");
    group.sample_size(10);

    group.bench_function("isomorphic/renamed_pair", |b| {
        let m = rel_micro(2);
        let n = rel_micro_renamed();
        b.iter(|| {
            let verdict = Checker::new(&m, &n)
                .tier(Tier::Isomorphic)
                .state_cap(STATE_CAP)
                .run()
                .expect("runs");
            assert!(verdict.is_equivalent());
            verdict
        })
    });

    group.bench_function("composed/singles_vs_pairs", |b| {
        let m = rel_micro(1);
        let n = rel_micro(2);
        b.iter(|| {
            let verdict = Checker::new(&m, &n)
                .tier(Tier::Composed { max_depth: 2 })
                .state_cap(STATE_CAP)
                .run()
                .expect("runs");
            assert!(verdict.is_equivalent());
            verdict
        })
    });

    group.bench_function("state_dependent/rel_vs_graph", |b| {
        let m = rel_micro(2);
        let n = graph_micro();
        b.iter(|| {
            let verdict = Checker::new(&m, &n)
                .tier(Tier::StateDependent { max_depth: 3 })
                .state_cap(STATE_CAP)
                .run()
                .expect("runs");
            assert!(verdict.is_equivalent());
            verdict
        })
    });

    group.bench_function("closure/micro_relational", |b| {
        let m = rel_micro(2);
        b.iter(|| m.reachable_states(10_000).expect("fits"))
    });

    group.bench_function("closure/micro_graph", |b| {
        let n = graph_micro();
        b.iter(|| n.reachable_states(10_000).expect("fits"))
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(400)).measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_checkers
}
criterion_main!(benches);
