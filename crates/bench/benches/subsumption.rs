//! The insert-statements pipeline and the normalization ablation
//! (DESIGN.md §3.1–3.2).
//!
//! §3.3.1's automatic deletion of dominated statements requires scanning
//! the target relation on every insertion. We measure the full
//! `insert-statements` (well-formedness + union + normalization +
//! constraint check), the normalization pass alone, and the raw insert
//! without normalization, across relation sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dme_relation::RelOp;
use dme_value::{tuple, Value};
use dme_workload::{relational_state, supervision_toggle_rel_ops, ShopConfig};

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("insert_statements");
    for n in [10usize, 50, 100, 200] {
        let cfg = ShopConfig::scaled(n);
        let state = relational_state(cfg);
        let op = &supervision_toggle_rel_ops(cfg, 1)[0];
        group.bench_with_input(BenchmarkId::new("full_pipeline", n), &n, |b, _| {
            b.iter(|| op.apply(black_box(&state)).expect("applies"))
        });
        group.bench_with_input(BenchmarkId::new("normalize_only", n), &n, |b, _| {
            b.iter(|| {
                let mut s = state.clone();
                s.normalize();
                s
            })
        });
        group.bench_with_input(
            BenchmarkId::new("raw_insert_no_normalize", n),
            &n,
            |b, _| {
                let RelOp::Insert(set) = op else {
                    // The first toggle op is always an insert with seed 42;
                    // fall back to a fixed statement otherwise.
                    let mut s = state.clone();
                    s.insert_raw("Jobs", tuple!["E00000", "E00001", Value::Null])
                        .ok();
                    return b.iter(|| s.clone());
                };
                b.iter(|| {
                    let mut s = state.clone();
                    for (rel, t) in set.iter() {
                        s.insert_raw(rel.as_str(), t.clone()).expect("well-formed");
                    }
                    s
                })
            },
        );
    }
    group.finish();
}

fn bench_delete(c: &mut Criterion) {
    let mut group = c.benchmark_group("delete_statements");
    for n in [10usize, 50, 100] {
        let cfg = ShopConfig::scaled(n);
        let state = relational_state(cfg);
        // Deny one operate statement: exercises weakening + cascade.
        let victim = state
            .tuples("Jobs")
            .find(|t| !t[2].is_null())
            .expect("some operate row")
            .clone();
        let op = RelOp::delete(
            "Jobs",
            [tuple![Value::Null, victim[1].clone(), victim[2].clone()]],
        );
        group.bench_with_input(BenchmarkId::new("semantic_cascade", n), &n, |b, _| {
            b.iter(|| op.apply(black_box(&state)).expect("applies"))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).warm_up_time(std::time::Duration::from_millis(400)).measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_insert, bench_delete
}
criterion_main!(benches);
