//! E-F3≡F4 at scale: the cost of deciding database state equivalence
//! (§3.2.3) between a semantic graph state and a semantic relation state
//! by compiling both to logic facts and comparing.
//!
//! Series: machine shops of n ∈ {10, 50, 100, 200} employees. The check
//! is linear in the number of facts (each side compiles once, the diff
//! is a sorted-set walk), which is the paper's practical argument for
//! semantic data models: the interpretation of a state is *direct*.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use dme_logic::{state_equivalent, ToFacts};
use dme_workload::{graph_state, relational_state, ShopConfig};

fn bench_state_equiv(c: &mut Criterion) {
    let mut group = c.benchmark_group("state_equiv");
    for n in [10usize, 50, 100, 200] {
        let cfg = ShopConfig::scaled(n);
        let g = graph_state(cfg);
        let r = relational_state(cfg);
        let facts = g.to_facts().len() as u64;
        group.throughput(Throughput::Elements(facts));
        group.bench_with_input(BenchmarkId::new("graph_vs_relational", n), &n, |b, _| {
            b.iter(|| {
                let report = state_equivalent(black_box(&g), black_box(&r));
                assert!(report.is_equivalent());
                report
            })
        });
        group.bench_with_input(BenchmarkId::new("compile_graph_facts", n), &n, |b, _| {
            b.iter(|| black_box(&g).to_facts())
        });
        group.bench_with_input(
            BenchmarkId::new("compile_relational_facts", n),
            &n,
            |b, _| b.iter(|| black_box(&r).to_facts()),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).warm_up_time(std::time::Duration::from_millis(400)).measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_state_equiv
}
criterion_main!(benches);
