#![deny(missing_docs)]

//! # dme-syntactic — the syntactic baselines
//!
//! The paper contrasts its *semantic* data models with the *syntactic*
//! ones they descend from: "We will call other data models, including
//! Codd's relational model and the DBTG model, syntactic data models"
//! (§3.1). This crate implements both baselines and the restricted
//! record↔tuple equivalence mappings from the prior work the paper
//! criticises:
//!
//! * [`codd`] — the syntactic relational model: attribute-named
//!   relations, key and functional-dependency constraints, and the
//!   syntactic algebra (select/project/**natural join**/union/difference)
//!   that the semantic case-join/predicate-join/conjunction replace;
//! * [`dbtg`] — a DBTG-style network model: record types, set types
//!   (owner/member with mandatory or optional membership), and the
//!   STORE/ERASE/MODIFY/CONNECT/DISCONNECT operations (currency
//!   indicators are modelled as direct record references — the paper's
//!   equivalence arguments do not depend on navigation state);
//! * [`mapping`] — the restricted mappings of §3.1: Zimmerman's and
//!   Fleck's "relational tuple for each DBTG record plus a binary
//!   relational tuple for each DBTG set ownership-membership link", and
//!   Kay's rule that "updates … be performed only on those relations
//!   whose tuples are in a 1-1 correspondence with the DBTG records and
//!   links" — together with executable demonstrations of the
//!   expressiveness limits the paper points out.

pub mod codd;
pub mod dbtg;
pub mod facts;
pub mod fixtures;
pub mod mapping;
