//! The restricted syntactic equivalence mappings of §3.1.
//!
//! * **Zimmerman / Fleck**: "require that there be a relational tuple for
//!   each DBTG record plus a binary relational tuple for each DBTG set
//!   ownership-membership link. These restrictions on the form of the
//!   relational state, and hence schema, severely limit the types of
//!   information which a user might desire to appear together in a
//!   single relation." — [`zimmerman_schema`], [`zimmerman_state`],
//!   [`zimmerman_ops`].
//!
//! * **Kay**: "allows more general relations, but allows updates to be
//!   performed only on those relations whose tuples are in a 1-1
//!   correspondence with the DBTG records and links." — [`KayMapper`],
//!   whose reads are the full syntactic algebra but whose
//!   [`KayMapper::update`] rejects anything that is not a base
//!   (record/link) relation.
//!
//! The tests demonstrate the limitation the paper points out: the
//! "user-desired" relation that combines employee and machine
//! information in one place exists only as a derived view, and updates
//! through it are rejected.

use std::fmt;
use std::sync::Arc;

use dme_value::{Domain, DomainCatalog, DomainSpec, Symbol, Tuple, Value};

use crate::codd::{Attribute, CoddOp, CoddSchema, CoddState, SynRelationSchema};
use crate::dbtg::{DbtgOp, DbtgOpError, DbtgState, Record, RecordId};

/// Domain name for database keys in the mapped relational schema.
pub const DBKEY_DOMAIN: &str = "dbkeys";

/// Derives the Zimmerman relational schema from a DBTG schema: one
/// relation per record type (`dbkey` + fields, keyed by `dbkey`) and one
/// binary relation per set type (`owner`, `member`, keyed by `member`).
pub fn zimmerman_schema(dbtg: &crate::dbtg::DbtgSchema) -> CoddSchema {
    let mut domains = DomainCatalog::new().with(Domain::new(DBKEY_DOMAIN, DomainSpec::AnyInt));
    for d in dbtg.domains().iter() {
        domains
            .add(d.clone())
            .expect("dbtg domains are duplicate-free");
    }
    let mut relations = Vec::new();
    for rt in dbtg.record_types() {
        let mut attributes = vec![Attribute::new("dbkey", DBKEY_DOMAIN)];
        attributes.extend(
            rt.fields()
                .iter()
                .map(|f| Attribute::new(f.name.clone(), f.domain.clone())),
        );
        relations.push(SynRelationSchema::new(
            rt.name().clone(),
            attributes,
            [0],
            [],
        ));
    }
    for st in dbtg.set_types() {
        relations.push(SynRelationSchema::new(
            st.name().clone(),
            [
                Attribute::new("owner", DBKEY_DOMAIN),
                Attribute::new("member", DBKEY_DOMAIN),
            ],
            [1],
            [],
        ));
    }
    CoddSchema::new(domains, relations).expect("derived schema is well-formed")
}

/// Maps a DBTG state to its Zimmerman relational image.
pub fn zimmerman_state(dbtg: &DbtgState) -> CoddState {
    let schema = Arc::new(zimmerman_schema(dbtg.schema()));
    let mut out = CoddState::empty(schema);
    for (id, record) in dbtg.records() {
        let values = std::iter::once(Value::int(id.0 as i64))
            .chain(record.values.iter().cloned().map(Value::Atom));
        out.insert_raw(record.record_type.as_str(), Tuple::new(values))
            .expect("record maps to a well-formed tuple");
    }
    for (set_type, member, owner) in dbtg.links() {
        out.insert_raw(
            set_type.as_str(),
            Tuple::new([Value::int(owner.0 as i64), Value::int(member.0 as i64)]),
        )
        .expect("link maps to a well-formed tuple");
    }
    out
}

/// Translates a DBTG operation into the equivalent relational operations
/// under the Zimmerman mapping, by diffing the images (and therefore
/// correct for cascading operations like ERASE ALL too).
pub fn zimmerman_ops(op: &DbtgOp, before: &DbtgState) -> Result<Vec<CoddOp>, DbtgOpError> {
    let after = op.apply(before)?;
    let img_before = zimmerman_state(before);
    let img_after = zimmerman_state(&after);
    let mut ops = Vec::new();
    for rel in img_before.schema().relations() {
        let name = rel.name();
        let b = img_before.relation(name.as_str()).expect("same schema");
        let a = img_after.relation(name.as_str()).expect("same schema");
        let removed: Vec<Tuple> = b.difference(a).cloned().collect();
        let added: Vec<Tuple> = a.difference(b).cloned().collect();
        if !removed.is_empty() {
            ops.push(CoddOp::delete(name.clone(), removed));
        }
        if !added.is_empty() {
            ops.push(CoddOp::insert(name.clone(), added));
        }
    }
    Ok(ops)
}

/// Errors raised by [`KayMapper::update`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KayError {
    /// The target is not one of the 1-1 base relations.
    NotUpdatable(Symbol),
    /// The tuple's key column does not correspond to a record/link.
    BadKey(String),
    /// The underlying DBTG operation failed.
    Dbtg(String),
}

impl fmt::Display for KayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KayError::NotUpdatable(r) => write!(
                f,
                "relation `{r}` is not in 1-1 correspondence with records or links; updates are not allowed (Kay's restriction)"
            ),
            KayError::BadKey(s) => write!(f, "bad database key: {s}"),
            KayError::Dbtg(s) => write!(f, "{s}"),
        }
    }
}

impl std::error::Error for KayError {}

/// Kay's architecture: a DBTG database presented relationally. Reads may
/// use arbitrary algebra over the image; updates are accepted only
/// against base relations and are translated to DBTG operations.
#[derive(Clone)]
pub struct KayMapper {
    dbtg: DbtgState,
}

impl KayMapper {
    /// Wraps a DBTG database.
    pub fn new(dbtg: DbtgState) -> Self {
        KayMapper { dbtg }
    }

    /// The current DBTG state.
    pub fn dbtg(&self) -> &DbtgState {
        &self.dbtg
    }

    /// The relational image (for reads).
    pub fn codd_state(&self) -> CoddState {
        zimmerman_state(&self.dbtg)
    }

    fn atom_id(v: &Value) -> Result<RecordId, KayError> {
        v.as_atom()
            .and_then(|a| a.as_int())
            .and_then(|i| u64::try_from(i).ok())
            .map(RecordId)
            .ok_or_else(|| KayError::BadKey(format!("`{v}` is not a database key")))
    }

    /// Applies a relational update through the 1-1 correspondence.
    pub fn update(&mut self, op: &CoddOp) -> Result<(), KayError> {
        let (relation, tuples, is_insert) = match op {
            CoddOp::InsertTuples { relation, tuples } => (relation, tuples, true),
            CoddOp::DeleteTuples { relation, tuples } => (relation, tuples, false),
        };
        let schema = self.dbtg.schema().clone();
        let mut dbtg_ops: Vec<DbtgOp> = Vec::new();
        if let Some(rt) = schema.record_type(relation.as_str()) {
            for t in tuples {
                if t.arity() != rt.fields().len() + 1 {
                    return Err(KayError::BadKey("wrong arity for record relation".into()));
                }
                let id = Self::atom_id(&t[0])?;
                let values: Vec<dme_value::Atom> = t
                    .as_slice()
                    .iter()
                    .skip(1)
                    .map(|v| {
                        v.as_atom()
                            .cloned()
                            .ok_or_else(|| KayError::BadKey("null field value".into()))
                    })
                    .collect::<Result<_, _>>()?;
                if is_insert {
                    // 1-1 correspondence: the key column must be exactly
                    // the next database key.
                    if id != self.dbtg.peek_next_id() {
                        return Err(KayError::BadKey(format!(
                            "inserted key {id} is not the next database key {}",
                            self.dbtg.peek_next_id()
                        )));
                    }
                    dbtg_ops.push(DbtgOp::Store(Record::new(rt.name().clone(), values)));
                } else {
                    dbtg_ops.push(DbtgOp::Erase(id));
                }
            }
        } else if schema.set_type(relation.as_str()).is_some() {
            for t in tuples {
                if t.arity() != 2 {
                    return Err(KayError::BadKey("wrong arity for link relation".into()));
                }
                let owner = Self::atom_id(&t[0])?;
                let member = Self::atom_id(&t[1])?;
                if is_insert {
                    dbtg_ops.push(DbtgOp::Connect {
                        set_type: relation.as_str().to_owned(),
                        owner,
                        member,
                    });
                } else {
                    dbtg_ops.push(DbtgOp::Disconnect {
                        set_type: relation.as_str().to_owned(),
                        member,
                    });
                }
            }
        } else {
            return Err(KayError::NotUpdatable(relation.clone()));
        }
        self.dbtg =
            DbtgOp::apply_all(&dbtg_ops, &self.dbtg).map_err(|e| KayError::Dbtg(e.to_string()))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codd::SynRelation;
    use crate::fixtures;
    use dme_value::{tuple, Atom};

    #[test]
    fn zimmerman_schema_shape() {
        let schema = zimmerman_schema(&fixtures::dbtg_machine_shop_schema());
        // 2 record relations + 2 link relations.
        assert_eq!(schema.len(), 4);
        let emp = schema.relation("EMP").unwrap();
        assert_eq!(emp.arity(), 3); // dbkey + name + age
        assert_eq!(emp.key(), &[0]);
        let operates = schema.relation("OPERATES").unwrap();
        assert_eq!(operates.arity(), 2);
        assert_eq!(operates.key(), &[1]); // one owner per member
    }

    #[test]
    fn zimmerman_state_counts_records_and_links() {
        let dbtg = fixtures::dbtg_machine_shop_state();
        let img = zimmerman_state(&dbtg);
        img.check_integrity().unwrap();
        assert_eq!(img.tuples("EMP").count(), 3);
        assert_eq!(img.tuples("MACHINE").count(), 2);
        assert_eq!(img.tuples("OPERATES").count(), 2);
        assert_eq!(img.tuples("SUPERVISES").count(), 1);
    }

    #[test]
    fn zimmerman_op_translation_matches_image() {
        let dbtg = fixtures::dbtg_machine_shop_state();
        let gw = dbtg
            .find("EMP", "name", &Atom::str("G.Wayshum"))
            .next()
            .unwrap();
        let tm = dbtg
            .find("EMP", "name", &Atom::str("T.Manhart"))
            .next()
            .unwrap();
        let op = DbtgOp::Connect {
            set_type: "SUPERVISES".into(),
            owner: gw,
            member: tm,
        };
        let codd_ops = zimmerman_ops(&op, &dbtg).unwrap();
        assert_eq!(codd_ops.len(), 1);
        // Applying the translated ops to the image equals the image of
        // the applied op.
        let mut img = zimmerman_state(&dbtg);
        for c in &codd_ops {
            img = c.apply(&img).unwrap();
        }
        assert_eq!(img, zimmerman_state(&op.apply(&dbtg).unwrap()));
    }

    #[test]
    fn zimmerman_translates_cascading_erase_all() {
        let dbtg = fixtures::dbtg_machine_shop_state();
        let tm = dbtg
            .find("EMP", "name", &Atom::str("T.Manhart"))
            .next()
            .unwrap();
        let op = DbtgOp::EraseAll(tm);
        let codd_ops = zimmerman_ops(&op, &dbtg).unwrap();
        // Deletes from EMP, MACHINE and OPERATES.
        assert_eq!(codd_ops.len(), 3);
        let mut img = zimmerman_state(&dbtg);
        for c in &codd_ops {
            img = c.apply(&img).unwrap();
        }
        assert_eq!(img, zimmerman_state(&op.apply(&dbtg).unwrap()));
    }

    #[test]
    fn user_desired_relation_is_not_a_base_relation() {
        // The paper: the restriction "severely limit[s] the types of
        // information which a user might desire to appear together in a
        // single relation". The employee⋈operates⋈machine view exists
        // only as derived algebra:
        let mapper = KayMapper::new(fixtures::dbtg_machine_shop_state());
        let img = mapper.codd_state();
        let emp = SynRelation::base(&img, "EMP").unwrap();
        let operates = SynRelation::base(&img, "OPERATES").unwrap();
        let machine = SynRelation::base(&img, "MACHINE").unwrap();
        let view = emp
            .rename("dbkey", "owner")
            .unwrap()
            .natural_join(&operates)
            .rename("member", "dbkey")
            .unwrap()
            .natural_join(&machine);
        assert_eq!(view.len(), 2);
        // No base relation has this heading.
        assert!(img
            .schema()
            .relations()
            .all(|r| r.arity() != view.attributes().len()));
    }

    #[test]
    fn kay_allows_base_updates_and_rejects_view_updates() {
        let mut mapper = KayMapper::new(fixtures::dbtg_machine_shop_premise_state());
        // Base-relation update: store a machine and connect it, through
        // the relational interface.
        let next = mapper.dbtg().peek_next_id();
        let tm = mapper
            .dbtg()
            .find("EMP", "name", &Atom::str("T.Manhart"))
            .next()
            .unwrap();
        // Inserting MACHINE alone violates mandatory OPERATES membership.
        let insert_machine = CoddOp::insert("MACHINE", [tuple![next.0 as i64, "NZ745", "lathe"]]);
        assert!(matches!(
            mapper.clone().update(&insert_machine),
            Err(KayError::Dbtg(_))
        ));
        // The Kay interface has no multi-relation operation, so the
        // machine + link insertion cannot be expressed atomically — the
        // workaround is a *different* DBTG database (optional membership)
        // or direct DBTG access. We demonstrate with the supervision link
        // instead, which is optional:
        let gw = mapper
            .dbtg()
            .find("EMP", "name", &Atom::str("G.Wayshum"))
            .next()
            .unwrap();
        mapper
            .update(&CoddOp::insert(
                "SUPERVISES",
                [tuple![gw.0 as i64, tm.0 as i64]],
            ))
            .unwrap();
        assert_eq!(mapper.dbtg().owner_of("SUPERVISES", tm), Some(gw));

        // View update: rejected.
        let err = mapper
            .update(&CoddOp::insert("EMPMACHINES", [tuple![1, 2]]))
            .unwrap_err();
        assert!(matches!(err, KayError::NotUpdatable(_)));

        // Key discipline: inserting a record with a non-next key fails.
        let err = mapper
            .update(&CoddOp::insert("EMP", [tuple![999, "T.Manhart", 32]]))
            .unwrap_err();
        assert!(matches!(err, KayError::BadKey(_)));
    }

    #[test]
    fn kay_delete_translates_to_erase_and_disconnect() {
        let mapper = KayMapper::new(fixtures::dbtg_machine_shop_state());
        let tm = mapper
            .dbtg()
            .find("EMP", "name", &Atom::str("T.Manhart"))
            .next()
            .unwrap();
        let nz = mapper
            .dbtg()
            .find("MACHINE", "number", &Atom::str("NZ745"))
            .next()
            .unwrap();
        // Disconnect alone violates mandatory membership.
        assert!(mapper
            .clone()
            .update(&CoddOp::delete(
                "OPERATES",
                [tuple![tm.0 as i64, nz.0 as i64]]
            ))
            .is_err());
        // Deleting machine alone fails while linked.
        assert!(mapper
            .clone()
            .update(&CoddOp::delete(
                "MACHINE",
                [tuple![nz.0 as i64, "NZ745", "lathe"]]
            ))
            .is_err());
    }
}
