//! The DBTG operation types as pure state transformers.
//!
//! Each operation is a function `state → state` (§2.1); record ids are
//! allocated deterministically by STORE, so operation application is a
//! pure function of the state.

use std::fmt;

use dme_value::Atom;

use super::state::{DbtgState, DbtgStateError, Record, RecordId};

/// Errors turning a DBTG operation into the error state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DbtgOpError(pub DbtgStateError);

impl fmt::Display for DbtgOpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DBTG operation failed: {}", self.0)
    }
}

impl std::error::Error for DbtgOpError {}

impl From<DbtgStateError> for DbtgOpError {
    fn from(e: DbtgStateError) -> Self {
        DbtgOpError(e)
    }
}

/// An operation of the DBTG model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DbtgOp {
    /// STORE a new record occurrence.
    Store(Record),
    /// ERASE a record (fails while it participates in any set).
    Erase(RecordId),
    /// ERASE ALL: disconnect everywhere, erase owned members recursively,
    /// then erase the record.
    EraseAll(RecordId),
    /// MODIFY a record's field values.
    Modify(RecordId, Vec<Atom>),
    /// CONNECT member under owner in a set type.
    Connect {
        /// The set type.
        set_type: String,
        /// The owner record.
        owner: RecordId,
        /// The member record.
        member: RecordId,
    },
    /// DISCONNECT member in a set type.
    Disconnect {
        /// The set type.
        set_type: String,
        /// The member record.
        member: RecordId,
    },
}

impl DbtgOp {
    /// Applies the operation, validating the result (mandatory
    /// membership etc.). The input state is never modified.
    pub fn apply(&self, state: &DbtgState) -> Result<DbtgState, DbtgOpError> {
        let mut next = state.clone();
        match self {
            DbtgOp::Store(record) => {
                next.store(record.clone())?;
            }
            DbtgOp::Erase(id) => {
                next.erase(*id)?;
            }
            DbtgOp::EraseAll(id) => {
                erase_all(&mut next, *id)?;
            }
            DbtgOp::Modify(id, values) => {
                next.modify(*id, values.clone())?;
            }
            DbtgOp::Connect {
                set_type,
                owner,
                member,
            } => {
                next.connect(set_type, *owner, *member)?;
            }
            DbtgOp::Disconnect { set_type, member } => {
                next.disconnect(set_type, *member)?;
            }
        }
        next.validate()?;
        Ok(next)
    }

    /// Applies a sequence, stopping at the first error.
    pub fn apply_all<'a>(
        ops: impl IntoIterator<Item = &'a DbtgOp>,
        state: &DbtgState,
    ) -> Result<DbtgState, DbtgOpError> {
        let mut cur = state.clone();
        for op in ops {
            cur = op.apply(&cur)?;
        }
        Ok(cur)
    }
}

fn erase_all(state: &mut DbtgState, id: RecordId) -> Result<(), DbtgStateError> {
    if state.record(id).is_none() {
        return Err(DbtgStateError::NoSuchRecord(id));
    }
    // Disconnect this record wherever it is a member.
    let memberships: Vec<String> = state
        .links()
        .filter(|(_, m, _)| *m == id)
        .map(|(st, _, _)| st.as_str().to_owned())
        .collect();
    for st in memberships {
        state.disconnect(&st, id)?;
    }
    // Recursively erase owned members whose membership is mandatory;
    // disconnect the others.
    let owned: Vec<(String, RecordId, bool)> = state
        .links()
        .filter(|(_, _, o)| *o == id)
        .map(|(st, m, _)| {
            let mandatory = state
                .schema()
                .set_type(st.as_str())
                .map(|s| s.mandatory())
                .unwrap_or(false);
            (st.as_str().to_owned(), m, mandatory)
        })
        .collect();
    for (st, member, mandatory) in owned {
        state.disconnect(&st, member)?;
        if mandatory {
            erase_all(state, member)?;
        }
    }
    state.erase(id)?;
    Ok(())
}

impl fmt::Display for DbtgOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbtgOp::Store(r) => write!(f, "STORE {r}"),
            DbtgOp::Erase(id) => write!(f, "ERASE {id}"),
            DbtgOp::EraseAll(id) => write!(f, "ERASE ALL {id}"),
            DbtgOp::Modify(id, _) => write!(f, "MODIFY {id}"),
            DbtgOp::Connect {
                set_type,
                owner,
                member,
            } => write!(f, "CONNECT {member} TO {owner} IN {set_type}"),
            DbtgOp::Disconnect { set_type, member } => {
                write!(f, "DISCONNECT {member} FROM {set_type}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    fn tm(state: &DbtgState) -> RecordId {
        state
            .find("EMP", "name", &Atom::str("T.Manhart"))
            .next()
            .unwrap()
    }

    #[test]
    fn store_requires_mandatory_connection() {
        // Storing a machine alone violates mandatory OPERATES membership —
        // the DBTG mirror of the semantic unit.
        let s = fixtures::dbtg_machine_shop_state();
        let op = DbtgOp::Store(Record::new(
            "MACHINE",
            [Atom::str("NZ745"), Atom::str("lathe")],
        ));
        // NZ745 already exists in the fixture; use a state without it.
        let premise = fixtures::dbtg_machine_shop_premise_state();
        assert!(matches!(
            op.apply(&premise),
            Err(DbtgOpError(DbtgStateError::MandatoryViolation { .. }))
        ));
        let _ = s;
    }

    #[test]
    fn modify_and_display() {
        let s = fixtures::dbtg_machine_shop_state();
        let id = tm(&s);
        let out = DbtgOp::Modify(id, vec![Atom::str("T.Manhart"), Atom::int(40)])
            .apply(&s)
            .unwrap();
        assert_eq!(out.record(id).unwrap().values[1], Atom::int(40));
        assert_eq!(DbtgOp::Erase(RecordId(7)).to_string(), "ERASE #7");
        assert!(DbtgOp::Modify(id, vec![]).to_string().starts_with("MODIFY"));
    }

    #[test]
    fn erase_all_cascades_through_mandatory_sets() {
        let s = fixtures::dbtg_machine_shop_state();
        let id = tm(&s);
        // T.Manhart owns machine NZ745 via mandatory OPERATES: ERASE ALL
        // removes both.
        let out = DbtgOp::EraseAll(id).apply(&s).unwrap();
        assert_eq!(out.sizes(), (3, 2));
        assert!(out
            .find("MACHINE", "number", &Atom::str("NZ745"))
            .next()
            .is_none());
    }

    #[test]
    fn erase_all_disconnects_optional_sets() {
        let s = fixtures::dbtg_machine_shop_state();
        let gw = s
            .find("EMP", "name", &Atom::str("G.Wayshum"))
            .next()
            .unwrap();
        // G.Wayshum owns a SUPERVISES link (optional): the supervisee
        // survives, only the link goes.
        let out = DbtgOp::EraseAll(gw).apply(&s).unwrap();
        assert_eq!(out.sizes(), (4, 2));
    }

    #[test]
    fn plain_erase_fails_when_linked() {
        let s = fixtures::dbtg_machine_shop_state();
        assert!(matches!(
            DbtgOp::Erase(tm(&s)).apply(&s),
            Err(DbtgOpError(DbtgStateError::StillLinked(_)))
        ));
    }

    #[test]
    fn connect_disconnect_round_trip() {
        let s = fixtures::dbtg_machine_shop_state();
        let gw = s
            .find("EMP", "name", &Atom::str("G.Wayshum"))
            .next()
            .unwrap();
        let id = tm(&s);
        let ops = vec![
            DbtgOp::Connect {
                set_type: "SUPERVISES".into(),
                owner: gw,
                member: id,
            },
            DbtgOp::Disconnect {
                set_type: "SUPERVISES".into(),
                member: id,
            },
        ];
        let out = DbtgOp::apply_all(&ops, &s).unwrap();
        assert_eq!(out, s);
    }

    #[test]
    fn apply_all_stops_on_error() {
        let s = fixtures::dbtg_machine_shop_state();
        let ops = vec![DbtgOp::Erase(RecordId(999))];
        assert!(DbtgOp::apply_all(&ops, &s).is_err());
    }
}
