//! DBTG schemas: record types and set types.

use std::collections::BTreeMap;
use std::fmt;

use dme_value::{DomainCatalog, Symbol};

/// A field of a record type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Field {
    /// Field name.
    pub name: Symbol,
    /// Value domain.
    pub domain: Symbol,
}

impl Field {
    /// Creates a field.
    pub fn new(name: impl Into<Symbol>, domain: impl Into<Symbol>) -> Self {
        Field {
            name: name.into(),
            domain: domain.into(),
        }
    }
}

/// A record type: a name and its fields.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecordType {
    name: Symbol,
    fields: Vec<Field>,
}

impl RecordType {
    /// Creates a record type.
    pub fn new(name: impl Into<Symbol>, fields: impl IntoIterator<Item = Field>) -> Self {
        RecordType {
            name: name.into(),
            fields: fields.into_iter().collect(),
        }
    }

    /// The type's name.
    pub fn name(&self) -> &Symbol {
        &self.name
    }

    /// The fields in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Index of a named field.
    pub fn field_index(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name.as_str() == name)
    }
}

/// A set type: owner record type → member record type, with optional or
/// mandatory membership for members.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SetType {
    name: Symbol,
    owner: Symbol,
    member: Symbol,
    mandatory: bool,
}

impl SetType {
    /// Creates a set type.
    pub fn new(
        name: impl Into<Symbol>,
        owner: impl Into<Symbol>,
        member: impl Into<Symbol>,
        mandatory: bool,
    ) -> Self {
        SetType {
            name: name.into(),
            owner: owner.into(),
            member: member.into(),
            mandatory,
        }
    }

    /// The set type's name.
    pub fn name(&self) -> &Symbol {
        &self.name
    }

    /// The owner record type.
    pub fn owner(&self) -> &Symbol {
        &self.owner
    }

    /// The member record type.
    pub fn member(&self) -> &Symbol {
        &self.member
    }

    /// Whether every member record must be connected to an owner.
    pub fn mandatory(&self) -> bool {
        self.mandatory
    }
}

/// Errors found while validating a DBTG schema.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DbtgSchemaError {
    /// Duplicate record type.
    DuplicateRecordType(Symbol),
    /// Duplicate set type.
    DuplicateSetType(Symbol),
    /// A field references an unknown domain.
    UnknownDomain {
        /// The record type at fault.
        record_type: Symbol,
        /// The field with the unknown domain.
        field: Symbol,
    },
    /// Duplicate field name within a record type.
    DuplicateField {
        /// The record type at fault.
        record_type: Symbol,
        /// The repeated field.
        field: Symbol,
    },
    /// A set type references an unknown record type.
    UnknownRecordType {
        /// The set type at fault.
        set_type: Symbol,
        /// The unknown record type.
        record_type: Symbol,
    },
}

impl fmt::Display for DbtgSchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbtgSchemaError::DuplicateRecordType(n) => write!(f, "duplicate record type `{n}`"),
            DbtgSchemaError::DuplicateSetType(n) => write!(f, "duplicate set type `{n}`"),
            DbtgSchemaError::UnknownDomain { record_type, field } => {
                write!(
                    f,
                    "record type `{record_type}`: field `{field}` has unknown domain"
                )
            }
            DbtgSchemaError::DuplicateField { record_type, field } => {
                write!(f, "record type `{record_type}`: duplicate field `{field}`")
            }
            DbtgSchemaError::UnknownRecordType {
                set_type,
                record_type,
            } => {
                write!(
                    f,
                    "set type `{set_type}`: unknown record type `{record_type}`"
                )
            }
        }
    }
}

impl std::error::Error for DbtgSchemaError {}

/// A DBTG schema: domains, record types, set types.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DbtgSchema {
    domains: DomainCatalog,
    record_types: BTreeMap<Symbol, RecordType>,
    set_types: BTreeMap<Symbol, SetType>,
}

impl DbtgSchema {
    /// Builds and validates a schema.
    pub fn new(
        domains: DomainCatalog,
        record_types: impl IntoIterator<Item = RecordType>,
        set_types: impl IntoIterator<Item = SetType>,
    ) -> Result<Self, DbtgSchemaError> {
        let mut rts = BTreeMap::new();
        for rt in record_types {
            let mut seen = std::collections::BTreeSet::new();
            for field in rt.fields() {
                if !seen.insert(field.name.clone()) {
                    return Err(DbtgSchemaError::DuplicateField {
                        record_type: rt.name().clone(),
                        field: field.name.clone(),
                    });
                }
                if domains.get(field.domain.as_str()).is_none() {
                    return Err(DbtgSchemaError::UnknownDomain {
                        record_type: rt.name().clone(),
                        field: field.name.clone(),
                    });
                }
            }
            if rts.contains_key(rt.name()) {
                return Err(DbtgSchemaError::DuplicateRecordType(rt.name().clone()));
            }
            rts.insert(rt.name().clone(), rt);
        }
        let mut sts = BTreeMap::new();
        for st in set_types {
            for role in [st.owner(), st.member()] {
                if !rts.contains_key(role) {
                    return Err(DbtgSchemaError::UnknownRecordType {
                        set_type: st.name().clone(),
                        record_type: role.clone(),
                    });
                }
            }
            if sts.contains_key(st.name()) {
                return Err(DbtgSchemaError::DuplicateSetType(st.name().clone()));
            }
            sts.insert(st.name().clone(), st);
        }
        Ok(DbtgSchema {
            domains,
            record_types: rts,
            set_types: sts,
        })
    }

    /// The domain catalog.
    pub fn domains(&self) -> &DomainCatalog {
        &self.domains
    }

    /// Looks up a record type.
    pub fn record_type(&self, name: &str) -> Option<&RecordType> {
        self.record_types.get(name)
    }

    /// Looks up a set type.
    pub fn set_type(&self, name: &str) -> Option<&SetType> {
        self.set_types.get(name)
    }

    /// All record types in name order.
    pub fn record_types(&self) -> impl Iterator<Item = &RecordType> {
        self.record_types.values()
    }

    /// All set types in name order.
    pub fn set_types(&self) -> impl Iterator<Item = &SetType> {
        self.set_types.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use dme_value::Domain;

    #[test]
    fn machine_shop_schema_builds() {
        let s = fixtures::dbtg_machine_shop_schema();
        assert_eq!(s.record_types().count(), 2);
        assert_eq!(s.set_types().count(), 2);
        let emp = s.record_type("EMP").unwrap();
        assert_eq!(emp.field_index("age"), Some(1));
        assert_eq!(emp.field_index("ghost"), None);
        let operates = s.set_type("OPERATES").unwrap();
        assert!(operates.mandatory());
        assert_eq!(operates.owner(), "EMP");
        assert_eq!(operates.member(), "MACHINE");
    }

    #[test]
    fn rejects_bad_schemas() {
        let d = DomainCatalog::new().with(Domain::of_strs("names", ["x"]));
        let rt = RecordType::new("R", [Field::new("f", "names")]);
        assert!(matches!(
            DbtgSchema::new(d.clone(), [rt.clone(), rt.clone()], []),
            Err(DbtgSchemaError::DuplicateRecordType(_))
        ));
        assert!(matches!(
            DbtgSchema::new(
                d.clone(),
                [RecordType::new("R", [Field::new("f", "ghost")])],
                []
            ),
            Err(DbtgSchemaError::UnknownDomain { .. })
        ));
        assert!(matches!(
            DbtgSchema::new(
                d.clone(),
                [RecordType::new(
                    "R",
                    [Field::new("f", "names"), Field::new("f", "names")]
                )],
                []
            ),
            Err(DbtgSchemaError::DuplicateField { .. })
        ));
        assert!(matches!(
            DbtgSchema::new(
                d.clone(),
                [rt.clone()],
                [SetType::new("S", "R", "GHOST", false)]
            ),
            Err(DbtgSchemaError::UnknownRecordType { .. })
        ));
        let st = SetType::new("S", "R", "R", false);
        assert!(matches!(
            DbtgSchema::new(d, [rt], [st.clone(), st]),
            Err(DbtgSchemaError::DuplicateSetType(_))
        ));
    }
}
