//! A DBTG-style network model.
//!
//! "A DBTG state would consist of sets of records and indicators of set
//! membership links" (§2.2). Records have database keys (record ids);
//! set types link one owner record to many member records. The operation
//! types are the ones §2.1 names — "store, delete, remove and modify" —
//! realised here as STORE / ERASE (with a cascading ERASE-ALL) / MODIFY
//! plus CONNECT / DISCONNECT for set membership.
//!
//! Currency indicators (the DBTG navigation state) are deliberately
//! modelled as direct record references: the paper's equivalence
//! arguments concern states and transitions, not navigation.

pub mod ops;
pub mod schema;
pub mod state;

pub use ops::{DbtgOp, DbtgOpError};
pub use schema::{DbtgSchema, DbtgSchemaError, Field, RecordType, SetType};
pub use state::{DbtgState, DbtgStateError, Record, RecordId};
