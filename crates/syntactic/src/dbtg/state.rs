//! DBTG states: records with database keys and set-membership links.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use dme_value::{Atom, Symbol};

use super::schema::DbtgSchema;

/// A database key (record id).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RecordId(pub u64);

impl fmt::Display for RecordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A record occurrence: its type and field values (in field order).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Record {
    /// The record type.
    pub record_type: Symbol,
    /// Field values, in the type's field order.
    pub values: Vec<Atom>,
}

impl Record {
    /// Creates a record occurrence.
    pub fn new(record_type: impl Into<Symbol>, values: impl IntoIterator<Item = Atom>) -> Self {
        Record {
            record_type: record_type.into(),
            values: values.into_iter().collect(),
        }
    }
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.record_type)?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// Errors raised by DBTG state manipulation and validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DbtgStateError {
    /// Unknown record type.
    UnknownRecordType(Symbol),
    /// Unknown set type.
    UnknownSetType(Symbol),
    /// Field count or domain mismatch.
    BadRecord(String),
    /// No record with this id.
    NoSuchRecord(RecordId),
    /// A link references a record of the wrong type.
    LinkTypeMismatch {
        /// The set type at fault.
        set_type: Symbol,
    },
    /// A member is already connected in this set type.
    AlreadyConnected {
        /// The set type at fault.
        set_type: Symbol,
        /// The already-connected member.
        member: RecordId,
    },
    /// The member is not connected in this set type.
    NotConnected {
        /// The set type at fault.
        set_type: Symbol,
        /// The unconnected member.
        member: RecordId,
    },
    /// A mandatory membership is unsatisfied.
    MandatoryViolation {
        /// The set type at fault.
        set_type: Symbol,
        /// The unconnected mandatory member.
        member: RecordId,
    },
    /// The record still owns members or is still connected somewhere.
    StillLinked(RecordId),
}

impl fmt::Display for DbtgStateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbtgStateError::UnknownRecordType(n) => write!(f, "unknown record type `{n}`"),
            DbtgStateError::UnknownSetType(n) => write!(f, "unknown set type `{n}`"),
            DbtgStateError::BadRecord(s) => write!(f, "bad record: {s}"),
            DbtgStateError::NoSuchRecord(id) => write!(f, "no record {id}"),
            DbtgStateError::LinkTypeMismatch { set_type } => {
                write!(f, "set `{set_type}`: record of wrong type")
            }
            DbtgStateError::AlreadyConnected { set_type, member } => {
                write!(f, "set `{set_type}`: {member} already connected")
            }
            DbtgStateError::NotConnected { set_type, member } => {
                write!(f, "set `{set_type}`: {member} not connected")
            }
            DbtgStateError::MandatoryViolation { set_type, member } => {
                write!(f, "set `{set_type}`: mandatory member {member} unconnected")
            }
            DbtgStateError::StillLinked(id) => write!(f, "record {id} still participates in sets"),
        }
    }
}

impl std::error::Error for DbtgStateError {}

/// A database state of the DBTG model.
#[derive(Clone)]
pub struct DbtgState {
    schema: Arc<DbtgSchema>,
    records: BTreeMap<RecordId, Record>,
    /// (set type, member) → owner.
    links: BTreeMap<(Symbol, RecordId), RecordId>,
    next_id: u64,
}

impl PartialEq for DbtgState {
    fn eq(&self, other: &Self) -> bool {
        self.records == other.records && self.links == other.links
    }
}

impl Eq for DbtgState {}

impl fmt::Debug for DbtgState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DbtgState {{")?;
        for (id, r) in &self.records {
            writeln!(f, "  {id} = {r}")?;
        }
        for ((st, member), owner) in &self.links {
            writeln!(f, "  {st}: {owner} owns {member}")?;
        }
        write!(f, "}}")
    }
}

impl DbtgState {
    /// The empty state.
    pub fn empty(schema: Arc<DbtgSchema>) -> Self {
        DbtgState {
            schema,
            records: BTreeMap::new(),
            links: BTreeMap::new(),
            next_id: 1,
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Arc<DbtgSchema> {
        &self.schema
    }

    /// Looks up a record.
    pub fn record(&self, id: RecordId) -> Option<&Record> {
        self.records.get(&id)
    }

    /// All records in id order.
    pub fn records(&self) -> impl Iterator<Item = (RecordId, &Record)> {
        self.records.iter().map(|(id, r)| (*id, r))
    }

    /// All links as (set type, member, owner).
    pub fn links(&self) -> impl Iterator<Item = (&Symbol, RecordId, RecordId)> {
        self.links.iter().map(|((st, m), o)| (st, *m, *o))
    }

    /// The owner of `member` in `set_type`, if connected.
    pub fn owner_of(&self, set_type: &str, member: RecordId) -> Option<RecordId> {
        self.links.get(&(Symbol::new(set_type), member)).copied()
    }

    /// The members owned by `owner` in `set_type`.
    pub fn members_of<'a>(
        &'a self,
        set_type: &'a str,
        owner: RecordId,
    ) -> impl Iterator<Item = RecordId> + 'a {
        self.links
            .iter()
            .filter(move |((st, _), o)| st.as_str() == set_type && **o == owner)
            .map(|((_, m), _)| *m)
    }

    /// Counts: (records, links).
    pub fn sizes(&self) -> (usize, usize) {
        (self.records.len(), self.links.len())
    }

    /// The database key the next STORE will allocate. Exposed so that
    /// 1-1 record↔tuple mappings (Kay) can validate key columns.
    pub fn peek_next_id(&self) -> RecordId {
        RecordId(self.next_id)
    }

    /// Finds records of a type whose field equals an atom (a simple
    /// "CALC key" lookup).
    pub fn find<'a>(
        &'a self,
        record_type: &'a str,
        field: &'a str,
        value: &'a Atom,
    ) -> impl Iterator<Item = RecordId> + 'a {
        let idx = self
            .schema
            .record_type(record_type)
            .and_then(|rt| rt.field_index(field));
        self.records
            .iter()
            .filter(move |(_, r)| {
                r.record_type.as_str() == record_type
                    && idx.is_some_and(|i| r.values.get(i) == Some(value))
            })
            .map(|(id, _)| *id)
    }

    fn check_record(&self, record: &Record) -> Result<(), DbtgStateError> {
        let rt = self
            .schema
            .record_type(record.record_type.as_str())
            .ok_or_else(|| DbtgStateError::UnknownRecordType(record.record_type.clone()))?;
        if record.values.len() != rt.fields().len() {
            return Err(DbtgStateError::BadRecord(format!(
                "{} has {} values, type has {} fields",
                record,
                record.values.len(),
                rt.fields().len()
            )));
        }
        for (v, field) in record.values.iter().zip(rt.fields()) {
            let ok = self
                .schema
                .domains()
                .get(field.domain.as_str())
                .is_some_and(|d| d.contains(v));
            if !ok {
                return Err(DbtgStateError::BadRecord(format!(
                    "value `{v}` outside domain of field `{}`",
                    field.name
                )));
            }
        }
        Ok(())
    }

    /// Stores a record, returning its database key.
    pub fn store(&mut self, record: Record) -> Result<RecordId, DbtgStateError> {
        self.check_record(&record)?;
        let id = RecordId(self.next_id);
        self.next_id += 1;
        self.records.insert(id, record);
        Ok(id)
    }

    /// Modifies a record's field values (type unchanged).
    pub fn modify(&mut self, id: RecordId, values: Vec<Atom>) -> Result<(), DbtgStateError> {
        let record_type = self
            .records
            .get(&id)
            .ok_or(DbtgStateError::NoSuchRecord(id))?
            .record_type
            .clone();
        let candidate = Record {
            record_type,
            values,
        };
        self.check_record(&candidate)?;
        self.records.insert(id, candidate);
        Ok(())
    }

    /// Removes a record; fails while it participates in any set.
    pub fn erase(&mut self, id: RecordId) -> Result<Record, DbtgStateError> {
        if !self.records.contains_key(&id) {
            return Err(DbtgStateError::NoSuchRecord(id));
        }
        let linked = self.links.iter().any(|((_, m), o)| *m == id || *o == id);
        if linked {
            return Err(DbtgStateError::StillLinked(id));
        }
        Ok(self.records.remove(&id).expect("checked"))
    }

    /// Connects `member` under `owner` in `set_type`.
    pub fn connect(
        &mut self,
        set_type: &str,
        owner: RecordId,
        member: RecordId,
    ) -> Result<(), DbtgStateError> {
        let st = self
            .schema
            .set_type(set_type)
            .ok_or_else(|| DbtgStateError::UnknownSetType(Symbol::new(set_type)))?
            .clone();
        let owner_rec = self
            .records
            .get(&owner)
            .ok_or(DbtgStateError::NoSuchRecord(owner))?;
        let member_rec = self
            .records
            .get(&member)
            .ok_or(DbtgStateError::NoSuchRecord(member))?;
        if owner_rec.record_type != *st.owner() || member_rec.record_type != *st.member() {
            return Err(DbtgStateError::LinkTypeMismatch {
                set_type: st.name().clone(),
            });
        }
        let key = (st.name().clone(), member);
        if self.links.contains_key(&key) {
            return Err(DbtgStateError::AlreadyConnected {
                set_type: st.name().clone(),
                member,
            });
        }
        self.links.insert(key, owner);
        Ok(())
    }

    /// Disconnects `member` in `set_type`.
    pub fn disconnect(&mut self, set_type: &str, member: RecordId) -> Result<(), DbtgStateError> {
        let st = self
            .schema
            .set_type(set_type)
            .ok_or_else(|| DbtgStateError::UnknownSetType(Symbol::new(set_type)))?;
        let key = (st.name().clone(), member);
        if self.links.remove(&key).is_none() {
            return Err(DbtgStateError::NotConnected {
                set_type: st.name().clone(),
                member,
            });
        }
        Ok(())
    }

    /// Full validation including mandatory membership.
    pub fn validate(&self) -> Result<(), DbtgStateError> {
        for record in self.records.values() {
            self.check_record(record)?;
        }
        for ((st_name, member), owner) in &self.links {
            let st = self
                .schema
                .set_type(st_name.as_str())
                .ok_or_else(|| DbtgStateError::UnknownSetType(st_name.clone()))?;
            let member_rec = self
                .records
                .get(member)
                .ok_or(DbtgStateError::NoSuchRecord(*member))?;
            let owner_rec = self
                .records
                .get(owner)
                .ok_or(DbtgStateError::NoSuchRecord(*owner))?;
            if member_rec.record_type != *st.member() || owner_rec.record_type != *st.owner() {
                return Err(DbtgStateError::LinkTypeMismatch {
                    set_type: st_name.clone(),
                });
            }
        }
        for st in self.schema.set_types() {
            if !st.mandatory() {
                continue;
            }
            for (id, record) in &self.records {
                if record.record_type == *st.member()
                    && !self.links.contains_key(&(st.name().clone(), *id))
                {
                    return Err(DbtgStateError::MandatoryViolation {
                        set_type: st.name().clone(),
                        member: *id,
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    #[test]
    fn machine_shop_state_validates() {
        let s = fixtures::dbtg_machine_shop_state();
        s.validate().unwrap();
        assert_eq!(s.sizes(), (5, 3));
    }

    #[test]
    fn lookups() {
        let s = fixtures::dbtg_machine_shop_state();
        let tm = s
            .find("EMP", "name", &Atom::str("T.Manhart"))
            .next()
            .unwrap();
        assert_eq!(s.record(tm).unwrap().values[1], Atom::int(32));
        let machine = s
            .find("MACHINE", "number", &Atom::str("NZ745"))
            .next()
            .unwrap();
        assert_eq!(s.owner_of("OPERATES", machine), Some(tm));
        assert_eq!(
            s.members_of("OPERATES", tm).collect::<Vec<_>>(),
            vec![machine]
        );
        assert_eq!(s.owner_of("SUPERVISES", tm), None);
    }

    #[test]
    fn store_modify_erase() {
        let mut s = fixtures::dbtg_machine_shop_state();
        let tm = s
            .find("EMP", "name", &Atom::str("T.Manhart"))
            .next()
            .unwrap();
        s.modify(tm, vec![Atom::str("T.Manhart"), Atom::int(40)])
            .unwrap();
        assert_eq!(s.record(tm).unwrap().values[1], Atom::int(40));
        // Erase fails while the record owns a machine.
        assert!(matches!(s.erase(tm), Err(DbtgStateError::StillLinked(_))));
        let machine = s
            .find("MACHINE", "number", &Atom::str("NZ745"))
            .next()
            .unwrap();
        s.disconnect("OPERATES", machine).unwrap();
        s.erase(machine).unwrap();
        s.erase(tm).unwrap();
        assert_eq!(s.sizes(), (3, 2));
        // A mandatory machine without OPERATES would be caught:
        s.validate().unwrap();
    }

    #[test]
    fn connect_rules() {
        let mut s = fixtures::dbtg_machine_shop_state();
        let tm = s
            .find("EMP", "name", &Atom::str("T.Manhart"))
            .next()
            .unwrap();
        let cg = s
            .find("EMP", "name", &Atom::str("C.Gershag"))
            .next()
            .unwrap();
        let machine = s
            .find("MACHINE", "number", &Atom::str("NZ745"))
            .next()
            .unwrap();
        // A machine cannot have two operators (single owner per set).
        assert!(matches!(
            s.connect("OPERATES", cg, machine),
            Err(DbtgStateError::AlreadyConnected { .. })
        ));
        // Wrong member type.
        assert!(matches!(
            s.connect("OPERATES", tm, cg),
            Err(DbtgStateError::LinkTypeMismatch { .. })
        ));
        // Unknown set type.
        assert!(matches!(
            s.connect("GHOSTS", tm, machine),
            Err(DbtgStateError::UnknownSetType(_))
        ));
        // Disconnecting something unconnected.
        assert!(matches!(
            s.disconnect("SUPERVISES", tm),
            Err(DbtgStateError::NotConnected { .. })
        ));
    }

    #[test]
    fn mandatory_membership_validated() {
        let mut s = fixtures::dbtg_machine_shop_state();
        let machine = s
            .find("MACHINE", "number", &Atom::str("NZ745"))
            .next()
            .unwrap();
        s.disconnect("OPERATES", machine).unwrap();
        assert!(matches!(
            s.validate(),
            Err(DbtgStateError::MandatoryViolation { .. })
        ));
    }

    #[test]
    fn bad_records_rejected() {
        let mut s = fixtures::dbtg_machine_shop_state();
        assert!(matches!(
            s.store(Record::new("GHOST", [Atom::int(1)])),
            Err(DbtgStateError::UnknownRecordType(_))
        ));
        assert!(matches!(
            s.store(Record::new("EMP", [Atom::str("T.Manhart")])),
            Err(DbtgStateError::BadRecord(_))
        ));
        assert!(matches!(
            s.store(Record::new("EMP", [Atom::str("Nobody"), Atom::int(32)])),
            Err(DbtgStateError::BadRecord(_))
        ));
        assert!(matches!(
            s.modify(RecordId(999), vec![]),
            Err(DbtgStateError::NoSuchRecord(_))
        ));
    }
}
