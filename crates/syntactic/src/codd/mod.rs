//! The syntactic relational model (Codd).
//!
//! Relations are sets of tuples over named attributes; the schema carries
//! "the name of each relation, the domains of allowed values for each
//! column of a relation and the integrity constraints to be satisfied by
//! the tuples in the relations" (§2.1). Unlike the semantic relation
//! model there are no predicate:case pairs, no statement reading, no
//! null-driven partial order: tuples are plain rows and the single
//! syntactic **natural join** replaces the three semantic joins.

pub mod algebra;
pub mod ops;
pub mod schema;
pub mod state;

pub use algebra::SynRelation;
pub use ops::{CoddOp, CoddOpError};
pub use schema::{Attribute, CoddSchema, CoddSchemaError, Fd, SynRelationSchema};
pub use state::{CoddState, CoddStateError};
