//! Syntactic relational states: plain sets of rows.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

use dme_value::{Symbol, Tuple};

use super::schema::{CoddSchema, SynRelationSchema};

/// Errors raised by syntactic state checks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoddStateError {
    /// A referenced relation is not in the schema.
    UnknownRelation(Symbol),
    /// Tuple arity differs from the heading's.
    ArityMismatch {
        /// The relation at fault.
        relation: Symbol,
        /// The heading's arity.
        expected: usize,
        /// The tuple's arity.
        found: usize,
    },
    /// A value is outside its attribute's domain (the syntactic model
    /// admits no nulls).
    DomainViolation {
        /// The relation at fault.
        relation: Symbol,
        /// The offending column.
        column: usize,
    },
    /// Two tuples share a primary key.
    KeyViolation {
        /// The relation at fault.
        relation: Symbol,
        /// The duplicated key projection.
        key: Tuple,
    },
    /// A functional dependency is violated.
    FdViolation {
        /// The relation at fault.
        relation: Symbol,
    },
}

impl fmt::Display for CoddStateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoddStateError::UnknownRelation(r) => write!(f, "unknown relation `{r}`"),
            CoddStateError::ArityMismatch {
                relation,
                expected,
                found,
            } => {
                write!(
                    f,
                    "relation `{relation}`: arity {found}, expected {expected}"
                )
            }
            CoddStateError::DomainViolation { relation, column } => {
                write!(f, "relation `{relation}`: bad value in column {column}")
            }
            CoddStateError::KeyViolation { relation, key } => {
                write!(f, "relation `{relation}`: duplicate key {key}")
            }
            CoddStateError::FdViolation { relation } => {
                write!(f, "relation `{relation}`: functional dependency violated")
            }
        }
    }
}

impl std::error::Error for CoddStateError {}

/// A database state of the syntactic relational model.
#[derive(Clone)]
pub struct CoddState {
    schema: Arc<CoddSchema>,
    relations: BTreeMap<Symbol, BTreeSet<Tuple>>,
}

impl PartialEq for CoddState {
    fn eq(&self, other: &Self) -> bool {
        self.relations == other.relations
    }
}

impl Eq for CoddState {}

impl fmt::Debug for CoddState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "CoddState {{")?;
        for (name, tuples) in &self.relations {
            writeln!(f, "  {name}: {} tuples", tuples.len())?;
        }
        write!(f, "}}")
    }
}

impl CoddState {
    /// The empty state.
    pub fn empty(schema: Arc<CoddSchema>) -> Self {
        let relations = schema
            .relations()
            .map(|r| (r.name().clone(), BTreeSet::new()))
            .collect();
        CoddState { schema, relations }
    }

    /// The schema.
    pub fn schema(&self) -> &Arc<CoddSchema> {
        &self.schema
    }

    /// The tuples of a relation.
    pub fn relation(&self, name: &str) -> Option<&BTreeSet<Tuple>> {
        self.relations.get(name)
    }

    /// Iterates over a relation's tuples (empty for unknown names).
    pub fn tuples(&self, name: &str) -> impl Iterator<Item = &Tuple> {
        self.relations.get(name).into_iter().flatten()
    }

    /// Total tuple count.
    pub fn len(&self) -> usize {
        self.relations.values().map(BTreeSet::len).sum()
    }

    /// Whether every relation is empty.
    pub fn is_empty(&self) -> bool {
        self.relations.values().all(BTreeSet::is_empty)
    }

    /// Checks one tuple: arity, domains, no nulls.
    pub fn check_tuple(
        schema: &CoddSchema,
        rel: &SynRelationSchema,
        tuple: &Tuple,
    ) -> Result<(), CoddStateError> {
        if tuple.arity() != rel.arity() {
            return Err(CoddStateError::ArityMismatch {
                relation: rel.name().clone(),
                expected: rel.arity(),
                found: tuple.arity(),
            });
        }
        for (i, attr) in rel.attributes().iter().enumerate() {
            let ok = tuple[i].as_atom().is_some_and(|a| {
                schema
                    .domains()
                    .get(attr.domain.as_str())
                    .is_some_and(|d| d.contains(a))
            });
            if !ok {
                return Err(CoddStateError::DomainViolation {
                    relation: rel.name().clone(),
                    column: i,
                });
            }
        }
        Ok(())
    }

    /// Inserts a tuple after tuple checks (no key/FD checks; operations
    /// perform those after the whole set is applied).
    pub fn insert_raw(&mut self, relation: &str, tuple: Tuple) -> Result<bool, CoddStateError> {
        let schema = Arc::clone(&self.schema);
        let rel = schema
            .relation(relation)
            .ok_or_else(|| CoddStateError::UnknownRelation(Symbol::new(relation)))?;
        Self::check_tuple(&schema, rel, &tuple)?;
        Ok(self
            .relations
            .get_mut(relation)
            .expect("pre-populated")
            .insert(tuple))
    }

    /// Removes an exact tuple.
    pub fn delete_raw(&mut self, relation: &str, tuple: &Tuple) -> Result<bool, CoddStateError> {
        let set = self
            .relations
            .get_mut(relation)
            .ok_or_else(|| CoddStateError::UnknownRelation(Symbol::new(relation)))?;
        Ok(set.remove(tuple))
    }

    /// Checks keys and functional dependencies of every relation.
    pub fn check_integrity(&self) -> Result<(), CoddStateError> {
        for rel in self.schema.relations() {
            let tuples = &self.relations[rel.name()];
            if !rel.key().is_empty() {
                let mut seen = BTreeSet::new();
                for t in tuples {
                    let key = t.project(rel.key()).expect("validated indices");
                    if !seen.insert(key.clone()) {
                        return Err(CoddStateError::KeyViolation {
                            relation: rel.name().clone(),
                            key,
                        });
                    }
                }
            }
            for fd in rel.fds() {
                let mut seen: BTreeMap<Tuple, Tuple> = BTreeMap::new();
                for t in tuples {
                    let lhs = t.project(&fd.lhs).expect("validated indices");
                    let rhs = t.project(&fd.rhs).expect("validated indices");
                    if let Some(prev) = seen.insert(lhs, rhs.clone()) {
                        if prev != rhs {
                            return Err(CoddStateError::FdViolation {
                                relation: rel.name().clone(),
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use dme_value::{tuple, Value};

    #[test]
    fn build_and_query() {
        let s = fixtures::codd_machine_shop_state();
        assert!(!s.is_empty());
        assert_eq!(s.tuples("EMP").count(), 3);
        assert!(s.relation("GHOST").is_none());
        s.check_integrity().unwrap();
    }

    #[test]
    fn nulls_rejected() {
        let mut s = fixtures::codd_machine_shop_state();
        let err = s.insert_raw("EMP", tuple![Value::Null, 32]).unwrap_err();
        assert!(matches!(err, CoddStateError::DomainViolation { .. }));
    }

    #[test]
    fn arity_and_domain_checked() {
        let mut s = fixtures::codd_machine_shop_state();
        assert!(matches!(
            s.insert_raw("EMP", tuple!["T.Manhart"]),
            Err(CoddStateError::ArityMismatch { .. })
        ));
        assert!(matches!(
            s.insert_raw("EMP", tuple!["Nobody", 32]),
            Err(CoddStateError::DomainViolation { .. })
        ));
        assert!(matches!(
            s.insert_raw("GHOST", tuple!["x"]),
            Err(CoddStateError::UnknownRelation(_))
        ));
    }

    #[test]
    fn key_violation_detected() {
        let mut s = fixtures::codd_machine_shop_state();
        s.insert_raw("EMP", tuple!["T.Manhart", 40]).unwrap();
        assert!(matches!(
            s.check_integrity(),
            Err(CoddStateError::KeyViolation { .. })
        ));
    }

    #[test]
    fn delete_raw_reports_presence() {
        let mut s = fixtures::codd_machine_shop_state();
        assert_eq!(s.delete_raw("EMP", &tuple!["T.Manhart", 32]), Ok(true));
        assert_eq!(s.delete_raw("EMP", &tuple!["T.Manhart", 32]), Ok(false));
    }
}
