//! `insert-tuples` / `delete-tuples` — the syntactic operation types.
//!
//! §2.1: "Operation types correspond in the relational model to
//! *insert-tuples* and *delete-tuples*." Unlike their semantic
//! counterparts these are purely set-theoretic: no null partial order, no
//! subsumption, no statement weakening — which is precisely why defining
//! equivalent updates against a network model is so awkward for them
//! (§3.1's survey of Zimmerman, Fleck and Kay).

use std::collections::BTreeSet;
use std::fmt;

use dme_value::{Symbol, Tuple};

use super::state::{CoddState, CoddStateError};

/// Errors turning an operation into the error state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoddOpError {
    /// A tuple failed the schema checks.
    State(CoddStateError),
    /// An inserted tuple was already present / a deleted one absent
    /// (strict set semantics).
    Strict(String),
}

impl fmt::Display for CoddOpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoddOpError::State(e) => write!(f, "{e}"),
            CoddOpError::Strict(s) => write!(f, "{s}"),
        }
    }
}

impl std::error::Error for CoddOpError {}

impl From<CoddStateError> for CoddOpError {
    fn from(e: CoddStateError) -> Self {
        CoddOpError::State(e)
    }
}

/// An operation of the syntactic relational model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoddOp {
    /// Insert a set of tuples into one relation.
    InsertTuples {
        /// Target relation.
        relation: Symbol,
        /// Tuples to insert (must be absent).
        tuples: BTreeSet<Tuple>,
    },
    /// Delete a set of tuples from one relation.
    DeleteTuples {
        /// Target relation.
        relation: Symbol,
        /// Tuples to delete (must be present).
        tuples: BTreeSet<Tuple>,
    },
}

impl CoddOp {
    /// Builds an insert.
    pub fn insert(relation: impl Into<Symbol>, tuples: impl IntoIterator<Item = Tuple>) -> Self {
        CoddOp::InsertTuples {
            relation: relation.into(),
            tuples: tuples.into_iter().collect(),
        }
    }

    /// Builds a delete.
    pub fn delete(relation: impl Into<Symbol>, tuples: impl IntoIterator<Item = Tuple>) -> Self {
        CoddOp::DeleteTuples {
            relation: relation.into(),
            tuples: tuples.into_iter().collect(),
        }
    }

    /// Applies the operation; key and FD constraints are checked on the
    /// result.
    pub fn apply(&self, state: &CoddState) -> Result<CoddState, CoddOpError> {
        let mut next = state.clone();
        match self {
            CoddOp::InsertTuples { relation, tuples } => {
                for t in tuples {
                    if !next.insert_raw(relation.as_str(), t.clone())? {
                        return Err(CoddOpError::Strict(format!(
                            "tuple {t} already present in `{relation}`"
                        )));
                    }
                }
            }
            CoddOp::DeleteTuples { relation, tuples } => {
                for t in tuples {
                    if !next.delete_raw(relation.as_str(), t)? {
                        return Err(CoddOpError::Strict(format!(
                            "tuple {t} not present in `{relation}`"
                        )));
                    }
                }
            }
        }
        next.check_integrity()?;
        Ok(next)
    }
}

impl fmt::Display for CoddOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (verb, relation, tuples) = match self {
            CoddOp::InsertTuples { relation, tuples } => ("insert-tuples", relation, tuples),
            CoddOp::DeleteTuples { relation, tuples } => ("delete-tuples", relation, tuples),
        };
        write!(f, "{verb} {relation} ({} tuples)", tuples.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use dme_value::tuple;

    #[test]
    fn insert_and_delete_round_trip() {
        let s = fixtures::codd_machine_shop_state();
        let op = CoddOp::delete("EMP", [tuple!["G.Wayshum", 50]]);
        let out = op.apply(&s).unwrap();
        assert_eq!(out.tuples("EMP").count(), 2);
        let back = CoddOp::insert("EMP", [tuple!["G.Wayshum", 50]])
            .apply(&out)
            .unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn strict_semantics() {
        let s = fixtures::codd_machine_shop_state();
        // Duplicate insert errors (unlike the semantic model's idempotent
        // insert-statements).
        let err = CoddOp::insert("EMP", [tuple!["G.Wayshum", 50]])
            .apply(&s)
            .unwrap_err();
        assert!(matches!(err, CoddOpError::Strict(_)));
        // Deleting an absent tuple errors.
        let err = CoddOp::delete("EMP", [tuple!["G.Wayshum", 99]])
            .apply(&s)
            .unwrap_err();
        assert!(matches!(
            err,
            CoddOpError::State(_) | CoddOpError::Strict(_)
        ));
    }

    #[test]
    fn key_checked_after_application() {
        let s = fixtures::codd_machine_shop_state();
        let err = CoddOp::insert("EMP", [tuple!["G.Wayshum", 32]])
            .apply(&s)
            .unwrap_err();
        assert!(matches!(
            err,
            CoddOpError::State(CoddStateError::KeyViolation { .. })
        ));
    }

    #[test]
    fn display() {
        let op = CoddOp::insert("EMP", [tuple!["a", 1]]);
        assert_eq!(op.to_string(), "insert-tuples EMP (1 tuples)");
    }
}
