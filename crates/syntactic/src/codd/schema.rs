//! Syntactic relational schemas: attributes, keys, functional
//! dependencies.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use dme_value::{DomainCatalog, Symbol};

/// A named, domain-typed attribute (column).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Attribute {
    /// The attribute name.
    pub name: Symbol,
    /// The domain of allowed values.
    pub domain: Symbol,
}

impl Attribute {
    /// Creates an attribute.
    pub fn new(name: impl Into<Symbol>, domain: impl Into<Symbol>) -> Self {
        Attribute {
            name: name.into(),
            domain: domain.into(),
        }
    }
}

/// A functional dependency `lhs → rhs` over attribute indices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fd {
    /// Determinant attribute indices.
    pub lhs: Vec<usize>,
    /// Dependent attribute indices.
    pub rhs: Vec<usize>,
}

/// One relation's heading: name, attributes, primary key, FDs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SynRelationSchema {
    name: Symbol,
    attributes: Vec<Attribute>,
    /// Primary key attribute indices (empty = all attributes).
    key: Vec<usize>,
    fds: Vec<Fd>,
}

impl SynRelationSchema {
    /// Creates a heading.
    pub fn new(
        name: impl Into<Symbol>,
        attributes: impl IntoIterator<Item = Attribute>,
        key: impl IntoIterator<Item = usize>,
        fds: impl IntoIterator<Item = Fd>,
    ) -> Self {
        SynRelationSchema {
            name: name.into(),
            attributes: attributes.into_iter().collect(),
            key: key.into_iter().collect(),
            fds: fds.into_iter().collect(),
        }
    }

    /// The relation name.
    pub fn name(&self) -> &Symbol {
        &self.name
    }

    /// The attributes in order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Index of a named attribute.
    pub fn attribute_index(&self, name: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a.name.as_str() == name)
    }

    /// The primary key indices (empty = whole tuple).
    pub fn key(&self) -> &[usize] {
        &self.key
    }

    /// The functional dependencies.
    pub fn fds(&self) -> &[Fd] {
        &self.fds
    }
}

/// Errors found while validating a syntactic relational schema.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoddSchemaError {
    /// Duplicate relation name.
    DuplicateRelation(Symbol),
    /// Duplicate attribute name within a relation.
    DuplicateAttribute {
        /// The relation at fault.
        relation: Symbol,
        /// The repeated attribute.
        attribute: Symbol,
    },
    /// An attribute references an unknown domain.
    UnknownDomain {
        /// The relation at fault.
        relation: Symbol,
        /// The attribute with the bad domain.
        attribute: Symbol,
        /// The unknown domain name.
        domain: Symbol,
    },
    /// A key or FD references an attribute index out of range.
    BadIndex {
        /// The relation at fault.
        relation: Symbol,
        /// The out-of-range index.
        index: usize,
    },
}

impl fmt::Display for CoddSchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoddSchemaError::DuplicateRelation(r) => write!(f, "duplicate relation `{r}`"),
            CoddSchemaError::DuplicateAttribute { relation, attribute } => {
                write!(f, "relation `{relation}`: duplicate attribute `{attribute}`")
            }
            CoddSchemaError::UnknownDomain { relation, attribute, domain } => write!(
                f,
                "relation `{relation}`: attribute `{attribute}` references unknown domain `{domain}`"
            ),
            CoddSchemaError::BadIndex { relation, index } => {
                write!(f, "relation `{relation}`: attribute index {index} out of range")
            }
        }
    }
}

impl std::error::Error for CoddSchemaError {}

/// A full syntactic relational schema: domains plus relation headings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoddSchema {
    domains: DomainCatalog,
    relations: BTreeMap<Symbol, SynRelationSchema>,
}

impl CoddSchema {
    /// Builds and validates a schema.
    pub fn new(
        domains: DomainCatalog,
        relations: impl IntoIterator<Item = SynRelationSchema>,
    ) -> Result<Self, CoddSchemaError> {
        let mut map = BTreeMap::new();
        for rel in relations {
            let mut seen = BTreeSet::new();
            for a in rel.attributes() {
                if !seen.insert(a.name.clone()) {
                    return Err(CoddSchemaError::DuplicateAttribute {
                        relation: rel.name().clone(),
                        attribute: a.name.clone(),
                    });
                }
                if domains.get(a.domain.as_str()).is_none() {
                    return Err(CoddSchemaError::UnknownDomain {
                        relation: rel.name().clone(),
                        attribute: a.name.clone(),
                        domain: a.domain.clone(),
                    });
                }
            }
            for &i in rel
                .key()
                .iter()
                .chain(rel.fds().iter().flat_map(|fd| fd.lhs.iter().chain(&fd.rhs)))
            {
                if i >= rel.arity() {
                    return Err(CoddSchemaError::BadIndex {
                        relation: rel.name().clone(),
                        index: i,
                    });
                }
            }
            if map.contains_key(rel.name()) {
                return Err(CoddSchemaError::DuplicateRelation(rel.name().clone()));
            }
            map.insert(rel.name().clone(), rel);
        }
        Ok(CoddSchema {
            domains,
            relations: map,
        })
    }

    /// The domain catalog.
    pub fn domains(&self) -> &DomainCatalog {
        &self.domains
    }

    /// Looks up a relation heading.
    pub fn relation(&self, name: &str) -> Option<&SynRelationSchema> {
        self.relations.get(name)
    }

    /// All relation headings in name order.
    pub fn relations(&self) -> impl Iterator<Item = &SynRelationSchema> {
        self.relations.values()
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Whether there are no relations.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dme_value::Domain;

    fn domains() -> DomainCatalog {
        DomainCatalog::new()
            .with(Domain::of_strs("names", ["a", "b"]))
            .with(Domain::of_ints("years", [1, 2]))
    }

    fn employees() -> SynRelationSchema {
        SynRelationSchema::new(
            "EMP",
            [
                Attribute::new("name", "names"),
                Attribute::new("age", "years"),
            ],
            [0],
            [Fd {
                lhs: vec![0],
                rhs: vec![1],
            }],
        )
    }

    #[test]
    fn valid_schema_builds() {
        let s = CoddSchema::new(domains(), [employees()]).unwrap();
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
        let r = s.relation("EMP").unwrap();
        assert_eq!(r.arity(), 2);
        assert_eq!(r.attribute_index("age"), Some(1));
        assert_eq!(r.attribute_index("ghost"), None);
        assert_eq!(r.key(), &[0]);
        assert_eq!(r.fds().len(), 1);
    }

    #[test]
    fn rejects_duplicate_relation() {
        let err = CoddSchema::new(domains(), [employees(), employees()]).unwrap_err();
        assert!(matches!(err, CoddSchemaError::DuplicateRelation(_)));
    }

    #[test]
    fn rejects_duplicate_attribute() {
        let bad = SynRelationSchema::new(
            "R",
            [Attribute::new("x", "names"), Attribute::new("x", "names")],
            [],
            [],
        );
        let err = CoddSchema::new(domains(), [bad]).unwrap_err();
        assert!(matches!(err, CoddSchemaError::DuplicateAttribute { .. }));
    }

    #[test]
    fn rejects_unknown_domain() {
        let bad = SynRelationSchema::new("R", [Attribute::new("x", "ghost")], [], []);
        let err = CoddSchema::new(domains(), [bad]).unwrap_err();
        assert!(matches!(err, CoddSchemaError::UnknownDomain { .. }));
    }

    #[test]
    fn rejects_bad_indices() {
        let bad = SynRelationSchema::new("R", [Attribute::new("x", "names")], [3], []);
        assert!(matches!(
            CoddSchema::new(domains(), [bad]).unwrap_err(),
            CoddSchemaError::BadIndex { index: 3, .. }
        ));
        let bad_fd = SynRelationSchema::new(
            "R",
            [Attribute::new("x", "names")],
            [],
            [Fd {
                lhs: vec![0],
                rhs: vec![9],
            }],
        );
        assert!(matches!(
            CoddSchema::new(domains(), [bad_fd]).unwrap_err(),
            CoddSchemaError::BadIndex { index: 9, .. }
        ));
    }

    #[test]
    fn error_display() {
        let e = CoddSchemaError::DuplicateRelation(Symbol::new("R"));
        assert_eq!(e.to_string(), "duplicate relation `R`");
    }
}
